/**
 * @file
 * Builds the capability tree of the paper's Fig. 4 — OS root, CPU
 * tasks, accelerator tasks and their data buffers — then audits its
 * monotonicity and demonstrates that a widened ("forged") capability
 * is caught by the audit.
 *
 *   ./capability_tree
 */

#include <iostream>

#include "cheri/captree.hh"

using namespace capcheck;
using namespace capcheck::cheri;

int
main()
{
    CapTree tree;
    const Capability root_cap = tree.capOf(tree.rootNode());

    // Two CPU tasks carved out of the application address space.
    const CapNodeId cpu1 =
        tree.derive(tree.rootNode(), CapNodeKind::cpuTask,
                    root_cap.setBounds(0x100000, 0x100000), "cpu-task-1");
    const CapNodeId cpu2 =
        tree.derive(tree.rootNode(), CapNodeKind::cpuTask,
                    root_cap.setBounds(0x200000, 0x100000), "cpu-task-2");

    // CPU task 1 launches two accelerator tasks (Fig. 4's green boxes);
    // every buffer pointer is created on the CPU, never by the device.
    const CapNodeId accel1 = tree.derive(
        cpu1, CapNodeKind::accelTask,
        tree.capOf(cpu1).setBounds(0x100000, 0x40000), "accel-task-1");
    tree.derive(accel1, CapNodeKind::buffer,
                tree.capOf(accel1)
                    .setBounds(0x100000, 0x4000)
                    .andPerms(permDataRO),
                "buffer-1 (input)");
    tree.derive(accel1, CapNodeKind::buffer,
                tree.capOf(accel1)
                    .setBounds(0x104000, 0x4000)
                    .andPerms(permDataWO),
                "buffer-2 (output)");

    const CapNodeId accel2 = tree.derive(
        cpu1, CapNodeKind::accelTask,
        tree.capOf(cpu1).setBounds(0x180000, 0x40000), "accel-task-2");
    tree.derive(accel2, CapNodeKind::buffer,
                tree.capOf(accel2)
                    .setBounds(0x180000, 0x8000)
                    .andPerms(permDataRW),
                "buffer-3");

    // CPU task 2 keeps a private buffer.
    tree.derive(cpu2, CapNodeKind::buffer,
                tree.capOf(cpu2).setBounds(0x200000, 0x1000),
                "cpu-2 private buffer");

    std::cout << "Capability tree (Fig. 4):\n"
              << tree.toString() << "\n";

    std::cout << "Monotonicity audit: "
              << (tree.audit().empty() ? "sound" : "VIOLATIONS") << "\n";

    // Now simulate what a successful forging attack would have done:
    // a node whose rights exceed its parent's.
    std::cout << "\nInjecting a forged capability (bounds wider than "
                 "the parent's)...\n";
    tree.derive(accel2, CapNodeKind::buffer,
                root_cap.setBounds(0, 0x400000), "forged!");
    const auto bad = tree.audit();
    std::cout << "Audit now flags " << bad.size()
              << " violating node(s):\n";
    for (const CapNodeId node : bad) {
        std::cout << "  - '" << tree.labelOf(node)
                  << "': " << tree.capOf(node).toString() << "\n";
    }

    std::cout << "\nOn real CHERI hardware this node could never have "
                 "been minted: derivations only narrow rights, and the "
                 "CapChecker clears tags on accelerator writes.\n";
    return bad.size() == 1 ? 0 : 1;
}
