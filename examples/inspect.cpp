/**
 * @file
 * Observability walkthrough: run a protected benchmark with platform
 * statistics collection, print the statistics tree, then trigger a
 * protection exception on purpose and show how software traces it
 * (the global flag, the exception log, and the capability table's
 * per-entry exception bits).
 *
 *   ./inspect [benchmark]          (default: spmv_crs)
 *
 * Debug tracing of the run itself:
 *   CAPCHECK_DEBUG=CapChecker,Driver ./inspect
 */

#include <iostream>
#include <string>

#include "base/trace.hh"
#include "capchecker/capchecker.hh"
#include "system/soc_system.hh"

using namespace capcheck;
using namespace capcheck::system;

int
main(int argc, char **argv)
{
    trace::DebugFlag::applyEnvironment();
    const std::string benchmark = argc > 1 ? argv[1] : "spmv_crs";

    // --- Part 1: a protected run with statistics. ---
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.collectStats = true;
    const RunResult r = SocSystem(cfg).runBenchmark(benchmark);

    std::cout << "=== " << benchmark << " on ccpu+caccel: "
              << r.totalCycles << " cycles, "
              << (r.functionallyCorrect ? "correct" : "WRONG") << ", "
              << r.exceptions << " exceptions ===\n\n"
              << "Platform statistics:\n"
              << r.statsText << "\n";

    // --- Part 2: what software sees when an access is blocked. ---
    std::cout << "=== Triggering a violation on a standalone "
                 "CapChecker ===\n";
    capchecker::CapChecker checker;
    checker.installCapability(/*task=*/3, /*obj=*/0,
                              cheri::Capability::root()
                                  .setBounds(0x10000, 0x100)
                                  .andPerms(cheri::permDataRO));

    MemRequest attack;
    attack.cmd = MemCmd::write; // read-only buffer
    attack.addr = 0x10040;
    attack.size = 8;
    attack.task = 3;
    attack.object = 0;
    const auto verdict = checker.check(attack);

    std::cout << "  verdict: "
              << (verdict.allowed ? "allowed" : "denied") << " ("
              << verdict.reason << ")\n"
              << "  global exception flag: "
              << (checker.exceptionFlagSet() ? "set" : "clear") << "\n";
    for (const auto &record : checker.exceptionLog()) {
        std::cout << "  exception log: task " << record.task
                  << ", object " << record.object << ", "
                  << memCmdName(record.cmd) << " @0x" << std::hex
                  << record.addr << std::dec << ": " << record.reason
                  << "\n";
    }
    for (const unsigned idx : checker.capTable().exceptionEntries()) {
        std::cout << "  table entry " << idx
                  << " has its exception bit set -> the driver can "
                     "identify the faulting pointer\n";
    }
    return r.functionallyCorrect ? 0 : 1;
}
