/**
 * @file
 * The paper's motivating example (Fig. 2) as an executable story: a
 * victim application decodes confidential data on an accelerator while
 * an attacker task on the same accelerator pool tries to (1) eavesdrop
 * on the victim's buffers and (2) forge a CPU capability by
 * overwriting one stored in shared memory.
 *
 * Run against every protection scheme to see who stops what:
 *
 *   ./attack_blocked
 */

#include <iostream>

#include "security/attack.hh"

using namespace capcheck;
using namespace capcheck::security;

namespace
{

void
show(const char *title, const AttackOutcome &outcome)
{
    std::cout << "    " << title << " -> grade "
              << gradeSymbol(outcome.grade) << "\n";
    for (const Probe &probe : outcome.probes) {
        std::cout << "      - " << probe.name << ": "
                  << (probe.allowed ? "REACHED" : "blocked") << "\n";
    }
    if (!outcome.note.empty())
        std::cout << "      note: " << outcome.note << "\n";
}

} // namespace

int
main()
{
    std::cout
        << "Fig. 2 attack walkthrough: an 'eavesdropper' task tries to\n"
           "read another task's data and to forge a CHERI capability.\n";

    for (const SchemeKind kind : allSchemes) {
        std::cout << "\n== scheme: " << schemeName(kind) << " ==\n";
        AttackLab lab(kind);

        std::cout << "  [1] buffer overflow from the attacker's own "
                     "buffer:\n";
        show("out-of-bounds read/write", lab.bufferOverflow());

        std::cout << "  [2] dereferencing an untrusted pointer value:\n";
        show("attacker-controlled 64-bit address",
             lab.untrustedPointer());

        std::cout << "  [3] forging a stored CPU capability:\n";
        show("overwrite capability bytes via DMA",
             lab.capabilityForging());
    }

    std::cout
        << "\nSummary: without protection everything is reachable; the\n"
           "IOMMU still exposes page-sharing neighbours and preserved\n"
           "capability tags; only the CapChecker confines the task to\n"
           "its objects (Fine) or its own task's objects (Coarse) and\n"
           "clears tags on every accelerator write, making forged\n"
           "capabilities impossible to mint.\n";
    return 0;
}
