/**
 * @file
 * A realistic SoC mixing heterogeneous accelerators (Fig. 9's setup):
 * eight different MachSuite accelerators run concurrent tasks behind a
 * single shared CapChecker. Shows per-configuration wall clock, bus
 * utilization, and capability-table pressure.
 *
 *   ./mixed_system
 */

#include <iostream>
#include <vector>

#include "system/soc_system.hh"

using namespace capcheck;
using namespace capcheck::system;

int
main()
{
    const std::vector<std::string> mix = {
        "aes",       "gemm_ncubed", "fft_strided", "viterbi",
        "spmv_crs",  "sort_radix",  "stencil2d",   "backprop",
    };

    std::cout << "Mixed-accelerator SoC with " << mix.size()
              << " different accelerators:\n  ";
    for (const auto &name : mix)
        std::cout << name << " ";
    std::cout << "\n\n";

    SocConfig cfg;
    cfg.seed = 7;

    cfg.mode = SystemMode::ccpuAccel;
    const RunResult base = SocSystem(cfg).runMixed(mix);
    cfg.mode = SystemMode::ccpuCaccel;
    const RunResult prot = SocSystem(cfg).runMixed(mix);
    cfg.provenance = capchecker::Provenance::coarse;
    const RunResult coarse = SocSystem(cfg).runMixed(mix);

    auto report = [&](const char *label, const RunResult &r) {
        std::cout << "  " << label << ": " << r.totalCycles
                  << " cycles, " << r.dmaBeats << " DMA beats ("
                  << (100.0 * static_cast<double>(r.dmaBeats) /
                      static_cast<double>(r.totalCycles))
                  << "% bus utilization), "
                  << (r.functionallyCorrect ? "all results correct"
                                            : "RESULTS WRONG")
                  << "\n";
    };

    report("ccpu+accel (unprotected) ", base);
    report("ccpu+caccel (Fine)       ", prot);
    report("ccpu+caccel (Coarse)     ", coarse);

    std::cout << "\n  protection overhead (Fine):   "
              << prot.overheadVs(base) * 100 << "%\n"
              << "  protection overhead (Coarse): "
              << coarse.overheadVs(base) * 100 << "%\n"
              << "  capability-table entries:     "
              << prot.peakTableEntries << " / 256\n";

    std::cout << "\nEight mutually distrusting applications shared one "
                 "memory system; each task could only touch the "
                 "buffers whose capabilities its driver installed.\n";
    return (base.functionallyCorrect && prot.functionallyCorrect &&
            coarse.functionallyCorrect)
               ? 0
               : 1;
}
