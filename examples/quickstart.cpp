/**
 * @file
 * Quickstart: run one MachSuite benchmark on the CHERI-protected
 * heterogeneous system and compare it against the unprotected
 * configuration.
 *
 *   ./quickstart [benchmark]       (default: gemm_ncubed)
 *
 * This is the smallest end-to-end use of the public API: pick a
 * configuration, build a SocSystem, run a benchmark, inspect the
 * result.
 */

#include <iostream>
#include <string>

#include "system/soc_system.hh"
#include "workloads/kernel.hh"

using namespace capcheck;
using namespace capcheck::system;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "gemm_ncubed";

    std::cout << "CapCheckerSim quickstart: " << benchmark
              << " with 8 accelerator instances\n\n";

    // 1. The plain CPU baseline (all eight tasks run sequentially).
    SocConfig cfg;
    cfg.mode = SystemMode::cpu;
    const RunResult cpu = SocSystem(cfg).runBenchmark(benchmark);

    // 2. CHERI CPU + CHERI-unaware accelerators (fast but unprotected).
    cfg.mode = SystemMode::ccpuAccel;
    const RunResult unprotected = SocSystem(cfg).runBenchmark(benchmark);

    // 3. The paper's system: the same accelerators behind a CapChecker.
    cfg.mode = SystemMode::ccpuCaccel;
    const RunResult prot = SocSystem(cfg).runBenchmark(benchmark);

    auto report = [](const char *label, const RunResult &r) {
        std::cout << "  " << label << ": " << r.totalCycles
                  << " cycles (driver alloc " << r.driverAllocCycles
                  << ", kernel " << r.kernelCycles << ", dealloc "
                  << r.driverDeallocCycles << "), "
                  << (r.functionallyCorrect ? "results correct"
                                            : "RESULTS WRONG")
                  << ", " << r.exceptions << " protection exceptions\n";
    };
    report("cpu          ", cpu);
    report("ccpu+accel   ", unprotected);
    report("ccpu+caccel  ", prot);

    std::cout << "\n  accelerator speedup over CPU: "
              << prot.speedupVs(cpu) << "x\n"
              << "  cost of pointer-level protection: "
              << prot.overheadVs(unprotected) * 100 << "%\n"
              << "  capability-table entries used: "
              << prot.peakTableEntries << " / 256\n";

    std::cout << "\nEvery DMA beat the accelerators issued was checked "
                 "against a CHERI capability installed by the trusted "
                 "driver; the protection cost above is the whole "
                 "price.\n";
    return prot.functionallyCorrect ? 0 : 1;
}
