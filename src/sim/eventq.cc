#include "sim/eventq.hh"

#include "base/logging.hh"

namespace capcheck
{

Event::~Event()
{
    // The owner must deschedule before destruction; the queue holds raw
    // pointers. Destroying a scheduled event is an ownership bug.
    if (_scheduled)
        warn("event destroyed while scheduled: %s", description().c_str());
}

void
EventQueue::schedule(Event *event, Cycles when)
{
    if (event->_scheduled)
        panic("scheduling already-scheduled event: %s",
              event->description().c_str());
    if (when < _curCycle)
        panic("scheduling event in the past (%llu < %llu): %s",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_curCycle),
              event->description().c_str());

    event->_when = when;
    event->_sequence = nextSequence++;
    event->_scheduled = true;
    heap.push(Entry{when, event->priority(), event->_sequence, event});
    ++live;
}

void
EventQueue::deschedule(Event *event)
{
    if (!event->_scheduled)
        panic("descheduling non-scheduled event: %s",
              event->description().c_str());
    // Lazy deletion: mark unscheduled; the heap entry is dropped when
    // popped (matched via the sequence number).
    event->_scheduled = false;
    --live;
}

void
EventQueue::reschedule(Event *event, Cycles when)
{
    if (event->_scheduled)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::serviceOne()
{
    const Entry entry = heap.top();
    heap.pop();

    Event *event = entry.event;
    // Skip stale entries left behind by deschedule()/reschedule().
    if (!event->_scheduled || event->_sequence != entry.sequence)
        return;

    if (entry.when != _curCycle) {
        _curCycle = entry.when;
        _cycleProbe.notify(_curCycle);
    }
    event->_scheduled = false;
    --live;
    event->process();
}

Cycles
EventQueue::run(Cycles limit)
{
    while (!heap.empty()) {
        if (heap.top().when > limit) {
            // Drop nothing; the caller may resume later.
            if (limit != _curCycle) {
                _curCycle = limit;
                _cycleProbe.notify(_curCycle);
            }
            return _curCycle;
        }
        serviceOne();
    }
    return _curCycle;
}

void
EventQueue::step()
{
    if (heap.empty())
        return;
    const Cycles cycle = heap.top().when;
    while (!heap.empty() && heap.top().when == cycle)
        serviceOne();
}

} // namespace capcheck
