#include "sim/eventq.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <exception>

#include "base/invariant.hh"
#include "base/logging.hh"

namespace capcheck
{

Event::~Event()
{
    // The owner must deschedule before destruction; the queue holds raw
    // pointers, so a still-scheduled event would leave a dangling entry
    // that serviceOne() dereferences later. A destructor cannot throw,
    // so this is a hard abort rather than a panic() -- except while a
    // SimError is already unwinding the stack, where owners being torn
    // down mid-simulation is expected collateral and aborting would
    // hide the original error from the caller.
    if (_scheduled) {
        if (std::uncaught_exceptions() > 0) {
            detail::logMessage(
                "warn", detail::formatString(
                            "event destroyed while scheduled during "
                            "error unwind: %s",
                            description().c_str()));
            return;
        }
        detail::logMessage(
            "panic", detail::formatString(
                         "event destroyed while scheduled: %s",
                         description().c_str()));
        std::abort();
    }
}

prof::SiteId
Event::profSite() const
{
    static const prof::SiteId site =
        prof::registerSite("sim", "event.generic");
    return site;
}

std::size_t
EventQueue::storedEntries() const
{
    if (impl == Impl::heap)
        return heap.size();
    std::size_t total = overflow.size();
    for (const std::vector<Entry> &bucket : ring)
        total += bucket.size();
    return total;
}

void
EventQueue::schedule(Event *event, Cycles when)
{
    if (event->_scheduled)
        panic("scheduling already-scheduled event: %s",
              event->description().c_str());
    if (when < _curCycle)
        panic("scheduling event in the past (%llu < %llu): %s",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_curCycle),
              event->description().c_str());

    event->_when = when;
    event->_sequence = nextSequence++;
    event->_scheduled = true;
    const Entry entry{when, event->priority(), event->_sequence, event};
    if (impl == Impl::heap) {
        heap.push_back(entry);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    } else if (when - _curCycle < ringSize) {
        std::vector<Entry> &bucket = ring[when & (ringSize - 1)];
        bucket.push_back(entry);
        std::push_heap(bucket.begin(), bucket.end(), std::greater<>{});
        markOccupied(when & (ringSize - 1));
        if (ringLive == 0 || when < ringCursor)
            ringCursor = when;
        ++ringLive;
    } else {
        overflow.push_back(entry);
        std::push_heap(overflow.begin(), overflow.end(),
                       std::greater<>{});
    }
    ++live;
    PARANOID_INVARIANT(storedEntries() ==
                           live + (impl == Impl::heap
                                       ? cancelled.size()
                                       : staleCount),
                       "live-count conservation after schedule");
}

void
EventQueue::deschedule(Event *event)
{
    if (!event->_scheduled)
        panic("descheduling non-scheduled event: %s",
              event->description().c_str());
    // Lazy deletion. Reference heap: remember the cancelled sequence
    // number; the stored entry is dropped when it surfaces — or
    // wholesale by compaction once stale entries outnumber live ones.
    // Bucketed: the entry's location is known from its cycle, so
    // tombstone it in place (null the Event pointer) instead of
    // paying a hash set on every later pop. Either way the Event is
    // never dereferenced through the stale entry, so the owner is
    // free to destroy a descheduled event immediately.
    if (impl == Impl::heap) {
        cancelled.insert(event->_sequence);
    } else {
        const auto tombstone = [event](std::vector<Entry> &entries) {
            for (Entry &e : entries) {
                if (e.sequence == event->_sequence && e.event) {
                    e.event = nullptr;
                    return true;
                }
            }
            return false;
        };
        // In-window entries live in their cycle's bucket — but an
        // entry scheduled while its cycle was beyond the window sits
        // in overflow even after time approached, so fall through.
        bool found = event->_when - _curCycle < ringSize &&
                     tombstone(ring[event->_when & (ringSize - 1)]);
        if (found) {
            --ringLive;
        } else {
            found = tombstone(overflow);
        }
        INVARIANT(found, "descheduled event not stored: %s",
                  event->description().c_str());
        ++staleCount;
    }
    event->_scheduled = false;
    --live;
    maybeCompact();
    PARANOID_INVARIANT(storedEntries() ==
                           live + (impl == Impl::heap
                                       ? cancelled.size()
                                       : staleCount),
                       "live-count conservation after deschedule");
}

void
EventQueue::reschedule(Event *event, Cycles when)
{
    if (event->_scheduled)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::maybeCompact()
{
    // Amortized O(1): a compaction costs O(stored) but only fires once
    // stale entries exceed live ones, so the next trigger needs the
    // (now at most half-sized) storage to degrade by half again.
    if (impl == Impl::heap) {
        if (cancelled.size() <= live)
            return;
        const auto stale = [this](const Entry &entry) {
            return cancelled.count(entry.sequence) != 0;
        };
        heap.erase(std::remove_if(heap.begin(), heap.end(), stale),
                   heap.end());
        std::make_heap(heap.begin(), heap.end(), std::greater<>{});
        cancelled.clear();
    } else {
        if (staleCount <= live)
            return;
        const auto dead = [](const Entry &entry) {
            return entry.event == nullptr;
        };
        for (std::size_t pos = 0; pos < ringSize; ++pos) {
            std::vector<Entry> &bucket = ring[pos];
            if (bucket.empty())
                continue;
            bucket.erase(
                std::remove_if(bucket.begin(), bucket.end(), dead),
                bucket.end());
            std::make_heap(bucket.begin(), bucket.end(),
                           std::greater<>{});
            if (bucket.empty())
                clearOccupied(pos);
        }
        overflow.erase(
            std::remove_if(overflow.begin(), overflow.end(), dead),
            overflow.end());
        std::make_heap(overflow.begin(), overflow.end(),
                       std::greater<>{});
        staleCount = 0;
    }
    INVARIANT(storedEntries() == live,
              "compaction lost events: %zu stored, %zu live",
              storedEntries(), live);
}

bool
EventQueue::purgeStale()
{
    if (impl == Impl::heap) {
        while (!heap.empty()) {
            const auto it = cancelled.find(heap.front().sequence);
            if (it == cancelled.end())
                return true;
            cancelled.erase(it);
            std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
            heap.pop_back();
        }
        INVARIANT(live == 0, "empty heap with %zu live events", live);
        return false;
    }

    // Overflow: pop surfaced tombstones so the top is live.
    while (!overflow.empty() && overflow.front().event == nullptr) {
        std::pop_heap(overflow.begin(), overflow.end(),
                      std::greater<>{});
        overflow.pop_back();
        --staleCount;
    }
    // Ring: advance the cursor to the first bucket with a live entry,
    // clearing surfaced tombstones along the way. The occupancy
    // bitmap jumps straight to the next non-empty bucket, so sparse
    // schedules do not pay a probe per empty cycle; the cursor is
    // monotonic between schedule() resets.
    if (ringLive > 0) {
        if (ringCursor < _curCycle)
            ringCursor = _curCycle;
        for (;;) {
            const std::size_t pos = ringCursor & (ringSize - 1);
            std::vector<Entry> &bucket = ring[pos];
            while (!bucket.empty() &&
                   bucket.front().event == nullptr) {
                std::pop_heap(bucket.begin(), bucket.end(),
                              std::greater<>{});
                bucket.pop_back();
                --staleCount;
            }
            if (!bucket.empty())
                break;
            clearOccupied(pos);
            const std::size_t next = nextOccupied(pos);
            INVARIANT(next < ringSize,
                      "ring scan found no live entry with %zu live",
                      ringLive);
            // Cyclic distance forward; every stored entry is within
            // the window, so the position maps back to one cycle.
            ringCursor += ((next - pos - 1) & (ringSize - 1)) + 1;
        }
    }
    INVARIANT((ringLive > 0 || !overflow.empty()) == (live != 0),
              "front bookkeeping out of sync with %zu live", live);
    return live != 0;
}

std::size_t
EventQueue::nextOccupied(std::size_t pos) const
{
    constexpr std::size_t numWords = ringSize / 64;
    std::size_t w = pos >> 6;
    std::uint64_t word =
        occupied[w] & (~std::uint64_t{0} << (pos & 63));
    for (std::size_t probed = 0; probed <= numWords; ++probed) {
        if (word)
            return (w << 6) +
                   static_cast<std::size_t>(std::countr_zero(word));
        w = (w + 1) & (numWords - 1);
        word = occupied[w];
    }
    return ringSize;
}

bool
EventQueue::frontInRing() const
{
    if (ringLive == 0)
        return false;
    if (overflow.empty())
        return true;
    // Both candidates are live (purgeStale cleared surfaced
    // tombstones); the full (when, priority, sequence) order decides,
    // so a ring entry and an overflow entry landing on the same cycle
    // still interleave exactly like the reference heap.
    return overflow.front() > ring[ringCursor & (ringSize - 1)].front();
}

const EventQueue::Entry &
EventQueue::front() const
{
    if (impl == Impl::heap)
        return heap.front();
    return frontInRing() ? ring[ringCursor & (ringSize - 1)].front()
                         : overflow.front();
}

void
EventQueue::serviceOne()
{
    const Entry entry = front();
    if (impl == Impl::heap) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
        heap.pop_back();
    } else if (frontInRing()) {
        const std::size_t pos = ringCursor & (ringSize - 1);
        std::vector<Entry> &bucket = ring[pos];
        std::pop_heap(bucket.begin(), bucket.end(), std::greater<>{});
        bucket.pop_back();
        if (bucket.empty())
            clearOccupied(pos);
        --ringLive;
    } else {
        std::pop_heap(overflow.begin(), overflow.end(),
                      std::greater<>{});
        overflow.pop_back();
    }

    Event *event = entry.event;
    // purgeStale() ran just before us: the front entry must be live and
    // current, so dereferencing the pointer is safe.
    INVARIANT(event->_scheduled && event->_sequence == entry.sequence,
              "stale entry survived purge");
    INVARIANT(entry.when >= _curCycle,
              "event time not monotonic (%llu < %llu)",
              static_cast<unsigned long long>(entry.when),
              static_cast<unsigned long long>(_curCycle));

    if (entry.when != _curCycle) {
        _curCycle = entry.when;
        _cycleProbe.notify(_curCycle);
    }
    event->_scheduled = false;
    --live;
    PARANOID_INVARIANT(storedEntries() ==
                           live + (impl == Impl::heap
                                       ? cancelled.size()
                                       : staleCount),
                       "live-count conservation after pop");
    // Event-dispatch boundary: when a profile session is active on
    // this thread, attribute the dispatch to the event's site. The
    // disabled path stays a TLS load + branch with no clock reads.
    if (prof::current() != nullptr) {
        const prof::ScopeTimer scope(event->profSite());
        event->process();
    } else {
        event->process();
    }
}

Cycles
EventQueue::run(Cycles limit)
{
    PROF_SCOPE("sim", "eventq.run");
    while (purgeStale() && front().when <= limit)
        serviceOne();
    // The queue drained or the next event lies beyond the horizon:
    // with a finite limit, time still advances to the horizon (and the
    // cycle probe fires) so periodic observers see their final window.
    if (limit != forever && _curCycle < limit) {
        _curCycle = limit;
        _cycleProbe.notify(_curCycle);
    }
    return _curCycle;
}

void
EventQueue::step()
{
    if (!purgeStale())
        return;
    const Cycles cycle = front().when;
    while (purgeStale() && front().when == cycle)
        serviceOne();
}

} // namespace capcheck
