#include "sim/eventq.hh"

#include <cstdlib>
#include <exception>

#include "base/invariant.hh"
#include "base/logging.hh"

namespace capcheck
{

Event::~Event()
{
    // The owner must deschedule before destruction; the queue holds raw
    // pointers, so a still-scheduled event would leave a dangling entry
    // that serviceOne() dereferences later. A destructor cannot throw,
    // so this is a hard abort rather than a panic() -- except while a
    // SimError is already unwinding the stack, where owners being torn
    // down mid-simulation is expected collateral and aborting would
    // hide the original error from the caller.
    if (_scheduled) {
        if (std::uncaught_exceptions() > 0) {
            detail::logMessage(
                "warn", detail::formatString(
                            "event destroyed while scheduled during "
                            "error unwind: %s",
                            description().c_str()));
            return;
        }
        detail::logMessage(
            "panic", detail::formatString(
                         "event destroyed while scheduled: %s",
                         description().c_str()));
        std::abort();
    }
}

void
EventQueue::schedule(Event *event, Cycles when)
{
    if (event->_scheduled)
        panic("scheduling already-scheduled event: %s",
              event->description().c_str());
    if (when < _curCycle)
        panic("scheduling event in the past (%llu < %llu): %s",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_curCycle),
              event->description().c_str());

    event->_when = when;
    event->_sequence = nextSequence++;
    event->_scheduled = true;
    heap.push(Entry{when, event->priority(), event->_sequence, event});
    ++live;
    PARANOID_INVARIANT(heap.size() == live + cancelled.size(),
                       "live-count conservation after schedule");
}

void
EventQueue::deschedule(Event *event)
{
    if (!event->_scheduled)
        panic("descheduling non-scheduled event: %s",
              event->description().c_str());
    // Lazy deletion: remember the cancelled sequence number; the heap
    // entry is dropped when it reaches the top. The Event itself is
    // never dereferenced through that entry, so the owner is free to
    // destroy a descheduled event immediately.
    cancelled.insert(event->_sequence);
    event->_scheduled = false;
    --live;
    PARANOID_INVARIANT(heap.size() == live + cancelled.size(),
                       "live-count conservation after deschedule");
}

void
EventQueue::reschedule(Event *event, Cycles when)
{
    if (event->_scheduled)
        deschedule(event);
    schedule(event, when);
}

bool
EventQueue::purgeStale()
{
    while (!heap.empty()) {
        const auto it = cancelled.find(heap.top().sequence);
        if (it == cancelled.end())
            return true;
        cancelled.erase(it);
        heap.pop();
    }
    INVARIANT(live == 0, "empty heap with %zu live events", live);
    return false;
}

void
EventQueue::serviceOne()
{
    const Entry entry = heap.top();
    heap.pop();

    Event *event = entry.event;
    // purgeStale() ran just before us: the top entry must be live and
    // current, so dereferencing the pointer is safe.
    INVARIANT(event->_scheduled && event->_sequence == entry.sequence,
              "stale heap entry survived purge");
    INVARIANT(entry.when >= _curCycle,
              "event time not monotonic (%llu < %llu)",
              static_cast<unsigned long long>(entry.when),
              static_cast<unsigned long long>(_curCycle));

    if (entry.when != _curCycle) {
        _curCycle = entry.when;
        _cycleProbe.notify(_curCycle);
    }
    event->_scheduled = false;
    --live;
    PARANOID_INVARIANT(heap.size() == live + cancelled.size(),
                       "live-count conservation after pop");
    event->process();
}

Cycles
EventQueue::run(Cycles limit)
{
    while (purgeStale() && heap.top().when <= limit)
        serviceOne();
    // The queue drained or the next event lies beyond the horizon:
    // with a finite limit, time still advances to the horizon (and the
    // cycle probe fires) so periodic observers see their final window.
    if (limit != forever && _curCycle < limit) {
        _curCycle = limit;
        _cycleProbe.notify(_curCycle);
    }
    return _curCycle;
}

void
EventQueue::step()
{
    if (!purgeStale())
        return;
    const Cycles cycle = heap.top().when;
    while (purgeStale() && heap.top().when == cycle)
        serviceOne();
}

} // namespace capcheck
