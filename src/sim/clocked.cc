#include "sim/clocked.hh"

#include "sim/port.hh"

namespace capcheck
{

SimObject::SimObject(EventQueue &eq, std::string name,
                     stats::StatGroup *parent_stats)
    : eq(eq), _name(std::move(name)), stats(_name, parent_stats)
{
}

void
SimObject::registerPort(PortBase &port)
{
    if (findPort(port.localName()) != nullptr) {
        throw PortError(PortError::Kind::duplicateName,
                        "duplicate port name '" + port.fullName() + "'",
                        port.fullName());
    }
    _ports.push_back(&port);
}

PortBase *
SimObject::findPort(const std::string &local_name) const
{
    for (PortBase *p : _ports) {
        if (p->localName() == local_name)
            return p;
    }
    return nullptr;
}

TickingObject::TickingObject(EventQueue &eq, std::string name,
                             stats::StatGroup *parent_stats,
                             int tick_priority)
    : SimObject(eq, std::move(name), parent_stats),
      tickEvent(*this, tick_priority)
{
}

TickingObject::~TickingObject()
{
    if (tickEvent.scheduled())
        eq.deschedule(&tickEvent);
}

void
TickingObject::activate(Cycles delta)
{
    const Cycles when = eq.curCycle() + delta;
    if (tickEvent.scheduled()) {
        if (tickEvent.when() <= when)
            return;
        eq.deschedule(&tickEvent);
    }
    eq.schedule(&tickEvent, when);
}

void
TickingObject::TickEvent::process()
{
    if (owner.tick())
        owner.activate(1);
}

std::string
TickingObject::TickEvent::description() const
{
    return "tick:" + owner.name();
}

prof::SiteId
TickingObject::TickEvent::profSite() const
{
    if (site == prof::invalidSite) {
        site = prof::registerSite(
            "sim", std::string("tick.") + owner.profKind());
    }
    return site;
}

} // namespace capcheck
