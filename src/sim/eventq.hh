/**
 * @file
 * Discrete-event simulation kernel. Time is measured in clock cycles of
 * the single system clock domain (the paper's prototype runs the CPU,
 * interconnect, CapChecker and accelerators off one clock).
 *
 * Events scheduled for the same cycle fire in (priority, sequence) order,
 * which keeps the simulation deterministic regardless of container
 * internals.
 *
 * Two storage implementations share that contract (and therefore
 * produce identical event orderings): the reference binary heap over
 * all entries, and the "eventq.bucketed" fast kernel (sim/kernels
 * registry) — a calendar queue: a power-of-two ring of per-cycle
 * buckets (each a small (priority, sequence) heap) for events within
 * the ring window, plus a min-heap for the rare far-future events.
 * Near-term scheduling is a bounded push into a reused vector, with
 * no balanced-tree nodes or hashing on the hot path. Both
 * implementations lazily delete descheduled entries and compact their
 * storage when stale entries outnumber live ones, so reschedule-heavy
 * components can no longer grow the queue without bound.
 */

#ifndef CAPCHECK_SIM_EVENTQ_HH
#define CAPCHECK_SIM_EVENTQ_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/probe.hh"
#include "base/types.hh"
#include "obs/prof.hh"

namespace capcheck
{

class EventQueue;

/**
 * A schedulable event. Subclass and override process(), or use
 * LambdaEvent for ad-hoc callbacks.
 */
class Event
{
  public:
    /** Standard priorities; lower values fire first within a cycle. */
    enum Priority : int
    {
        responsePrio = 10, ///< memory responses arrive first
        checkPrio = 20,    ///< protection checks
        arbitratePrio = 30,///< interconnect arbitration
        requestPrio = 40,  ///< new requests issue
        defaultPrio = 50,
        statsPrio = 90,
    };

    explicit Event(int priority = defaultPrio) : _priority(priority) {}

    /**
     * Destroying an event that is still scheduled is a hard error —
     * the queue would be left holding a dangling pointer, so this
     * aborts (destructors cannot throw). Deschedule first. A
     * descheduled event may be destroyed immediately: the queue tracks
     * its stale entry by sequence number and never touches the event
     * again.
     */
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    virtual void process() = 0;

    /** Human-readable event description, used in panic messages. */
    virtual std::string description() const { return "generic event"; }

    /**
     * Profiler site this event's dispatch is attributed to, keying
     * the (component kind, event kind) pair. The default is a shared
     * "sim"/"event.generic" site; components whose dispatch dominates
     * override it (TickingObject ticks, memory responses). Only
     * consulted while a profile session is active on the servicing
     * thread, so overrides may lazily register and cache their site.
     */
    virtual prof::SiteId profSite() const;

    bool scheduled() const { return _scheduled; }
    Cycles when() const { return _when; }
    int priority() const { return _priority; }

  private:
    friend class EventQueue;

    Cycles _when = 0;
    std::uint64_t _sequence = 0;
    int _priority;
    bool _scheduled = false;
};

/** Event wrapping a std::function. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = defaultPrio)
        : Event(priority), fn(std::move(fn))
    {
    }

    void process() override { fn(); }
    std::string description() const override { return "lambda event"; }

  private:
    std::function<void()> fn;
};

/**
 * The event queue. One instance per simulated system.
 */
class EventQueue
{
  public:
    /** Storage implementation (identical observable behaviour). */
    enum class Impl
    {
        /** Reference: one binary heap over every pending entry. */
        heap,
        /** Fast kernel "eventq.bucketed": per-cycle buckets. */
        bucketed,
    };

    explicit EventQueue(Impl impl = Impl::heap) : impl(impl)
    {
        if (impl == Impl::bucketed)
            ring.resize(ringSize);
    }

    /** run() limit meaning "no horizon": drain and stop at the last
     *  processed event's cycle. */
    static constexpr Cycles forever = ~Cycles{0};

    /** Current simulation time in cycles. */
    Cycles curCycle() const { return _curCycle; }

    /** Schedule @p event at absolute cycle @p when (>= curCycle()). */
    void schedule(Event *event, Cycles when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *event);

    /** Re-schedule an already scheduled event to a new time. */
    void reschedule(Event *event, Cycles when);

    /** True when no live events remain (stale entries ignored). */
    bool empty() const { return live == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return live; }

    /**
     * Entries physically held (live + not-yet-purged stale). The
     * compaction bound: storedEntries() never exceeds 2 * pending()
     * + 1, however reschedule-heavy the workload.
     */
    std::size_t storedEntries() const;

    /**
     * Run until the queue drains or @p limit cycles elapse. With a
     * finite limit, time always advances to @p limit (and the cycle
     * probe fires) even when the queue drains early, so periodic
     * observers see their final window.
     * @return the current cycle after the run.
     */
    Cycles run(Cycles limit = forever);

    /** Process events for exactly one cycle (the earliest pending one). */
    void step();

    /**
     * Fired whenever simulated time advances, with the new cycle.
     * Events within one cycle fire between two notifications; the
     * stats sampler keys its snapshots off this probe.
     */
    probe::ProbePoint<Cycles> &cycleProbe() { return _cycleProbe; }

  private:
    struct Entry
    {
        Cycles when;
        int priority;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return sequence > other.sequence;
        }
    };

    void serviceOne();
    bool purgeStale();
    /** Earliest live entry; call only after purgeStale() returned
     *  true. */
    const Entry &front() const;
    /** Drop stale entries wholesale once they outnumber live ones. */
    void maybeCompact();
    /** Bucketed only: true when the next entry to fire comes from the
     *  ring rather than the overflow heap. Call after purgeStale(). */
    bool frontInRing() const;
    /** First occupied ring position at or cyclically after @p pos;
     *  ringSize when the whole ring is empty. */
    std::size_t nextOccupied(std::size_t pos) const;
    void markOccupied(std::size_t pos)
    {
        occupied[pos >> 6] |= std::uint64_t{1} << (pos & 63);
    }
    void clearOccupied(std::size_t pos)
    {
        occupied[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
    }

    /** Reference storage: a min-heap (std::greater order) kept with
     *  the <algorithm> heap primitives so compaction can filter it in
     *  place. */
    std::vector<Entry> heap;

    /**
     * Bucketed storage, a calendar queue. Events within ringSize
     * cycles of schedule time go into ring[when % ringSize], a small
     * min-heap of one cycle's entries ordered by (priority,
     * sequence); within the window, distinct cycles can never collide
     * on a bucket. Everything further out lands in the overflow
     * min-heap (ordered like the reference heap) and is popped from
     * there when it becomes the global front — by then the ring holds
     * nothing earlier, so overflow entries never migrate.
     */
    static constexpr std::size_t ringSize = 1024;
    std::vector<std::vector<Entry>> ring;
    /**
     * Occupancy bitmap over the ring: bit (when % ringSize) is set
     * while that bucket stores any entry (live or tombstone). The
     * front scan uses it to jump to the next non-empty bucket with a
     * count-trailing-zeros walk, so sparse schedules (delay-heavy
     * workloads with events many cycles apart) cost O(1) per event
     * instead of a bucket-by-bucket probe across the gap.
     */
    std::array<std::uint64_t, ringSize / 64> occupied{};
    std::vector<Entry> overflow;
    /** Lower bound on the earliest cycle holding a ring entry; the
     *  front scan advances it monotonically and schedule() lowers it,
     *  so scans amortize to O(1) per cycle of simulated time. */
    Cycles ringCursor = 0;
    /** Live (non-tombstone) entries currently in the ring. */
    std::size_t ringLive = 0;
    /** Tombstoned entries still stored in ring + overflow. */
    std::size_t staleCount = 0;

    /**
     * Reference implementation's lazy deletion: sequence numbers of
     * descheduled entries still sitting in the heap. Stale entries are
     * identified by this set alone — their Event pointers are never
     * dereferenced, so the owner may destroy a descheduled event at
     * any time. (The bucketed implementation instead tombstones the
     * stored entry in place — deschedule can find it directly from
     * the event's cycle — which keeps hashing off the hot path; a
     * tombstone's Event pointer is nulled, never dereferenced.)
     */
    std::unordered_set<std::uint64_t> cancelled;
    Impl impl;
    Cycles _curCycle = 0;
    std::uint64_t nextSequence = 0;
    std::size_t live = 0;
    probe::ProbePoint<Cycles> _cycleProbe{"eventq.cycle"};
};

} // namespace capcheck

#endif // CAPCHECK_SIM_EVENTQ_HH
