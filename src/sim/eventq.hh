/**
 * @file
 * Discrete-event simulation kernel. Time is measured in clock cycles of
 * the single system clock domain (the paper's prototype runs the CPU,
 * interconnect, CapChecker and accelerators off one clock).
 *
 * Events scheduled for the same cycle fire in (priority, sequence) order,
 * which keeps the simulation deterministic regardless of container
 * internals.
 */

#ifndef CAPCHECK_SIM_EVENTQ_HH
#define CAPCHECK_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/probe.hh"
#include "base/types.hh"

namespace capcheck
{

class EventQueue;

/**
 * A schedulable event. Subclass and override process(), or use
 * LambdaEvent for ad-hoc callbacks.
 */
class Event
{
  public:
    /** Standard priorities; lower values fire first within a cycle. */
    enum Priority : int
    {
        responsePrio = 10, ///< memory responses arrive first
        checkPrio = 20,    ///< protection checks
        arbitratePrio = 30,///< interconnect arbitration
        requestPrio = 40,  ///< new requests issue
        defaultPrio = 50,
        statsPrio = 90,
    };

    explicit Event(int priority = defaultPrio) : _priority(priority) {}

    /**
     * Destroying an event that is still scheduled is a hard error —
     * the queue would be left holding a dangling pointer, so this
     * aborts (destructors cannot throw). Deschedule first. A
     * descheduled event may be destroyed immediately: the queue tracks
     * its stale heap entry by sequence number and never touches the
     * event again.
     */
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    virtual void process() = 0;

    /** Human-readable event description, used in panic messages. */
    virtual std::string description() const { return "generic event"; }

    bool scheduled() const { return _scheduled; }
    Cycles when() const { return _when; }
    int priority() const { return _priority; }

  private:
    friend class EventQueue;

    Cycles _when = 0;
    std::uint64_t _sequence = 0;
    int _priority;
    bool _scheduled = false;
};

/** Event wrapping a std::function. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = defaultPrio)
        : Event(priority), fn(std::move(fn))
    {
    }

    void process() override { fn(); }
    std::string description() const override { return "lambda event"; }

  private:
    std::function<void()> fn;
};

/**
 * The event queue. One instance per simulated system.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** run() limit meaning "no horizon": drain and stop at the last
     *  processed event's cycle. */
    static constexpr Cycles forever = ~Cycles{0};

    /** Current simulation time in cycles. */
    Cycles curCycle() const { return _curCycle; }

    /** Schedule @p event at absolute cycle @p when (>= curCycle()). */
    void schedule(Event *event, Cycles when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *event);

    /** Re-schedule an already scheduled event to a new time. */
    void reschedule(Event *event, Cycles when);

    /** True when no live events remain (stale heap entries ignored). */
    bool empty() const { return live == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return live; }

    /**
     * Run until the queue drains or @p limit cycles elapse. With a
     * finite limit, time always advances to @p limit (and the cycle
     * probe fires) even when the queue drains early, so periodic
     * observers see their final window.
     * @return the current cycle after the run.
     */
    Cycles run(Cycles limit = forever);

    /** Process events for exactly one cycle (the earliest pending one). */
    void step();

    /**
     * Fired whenever simulated time advances, with the new cycle.
     * Events within one cycle fire between two notifications; the
     * stats sampler keys its snapshots off this probe.
     */
    probe::ProbePoint<Cycles> &cycleProbe() { return _cycleProbe; }

  private:
    struct Entry
    {
        Cycles when;
        int priority;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return sequence > other.sequence;
        }
    };

    void serviceOne();
    bool purgeStale();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    /**
     * Sequence numbers of descheduled entries still sitting in the
     * heap. Stale entries are identified by this set alone — their
     * Event pointers are never dereferenced, so the owner may destroy
     * a descheduled event at any time.
     */
    std::unordered_set<std::uint64_t> cancelled;
    Cycles _curCycle = 0;
    std::uint64_t nextSequence = 0;
    std::size_t live = 0;
    probe::ProbePoint<Cycles> _cycleProbe{"eventq.cycle"};
};

} // namespace capcheck

#endif // CAPCHECK_SIM_EVENTQ_HH
