#include "sim/kernels/registry.hh"

namespace capcheck::sim
{

const char *
simKernelName(SimKernel kernel)
{
    switch (kernel) {
      case SimKernel::ref:
        return "ref";
      case SimKernel::fast:
        return "fast";
      case SimKernel::compare:
        return "compare";
    }
    return "?";
}

bool
simKernelFromName(const std::string &name, SimKernel &out)
{
    if (name == "ref") {
        out = SimKernel::ref;
        return true;
    }
    if (name == "fast") {
        out = SimKernel::fast;
        return true;
    }
    if (name == "compare") {
        out = SimKernel::compare;
        return true;
    }
    return false;
}

std::string
simKernelChoices()
{
    return "ref, fast, compare";
}

const std::vector<KernelInfo> &
fastKernels()
{
    static const std::vector<KernelInfo> kernels = {
        {
            "captable.index",
            "capchecker/cap_table",
            "O(N) associative scan over all table entries per lookup",
            "open-addressed (task, object) -> entry-index hash kept in "
            "sync by install/evict",
        },
        {
            "capcache.index",
            "capchecker/cap_cache",
            "O(N) scan per access computing hit and LRU victim",
            "(task, object) index for hits plus an intrusive LRU list "
            "and free-line set for O(1) victim selection",
        },
        {
            "eventq.bucketed",
            "sim/eventq",
            "one binary heap over every (cycle, priority, sequence) "
            "entry",
            "per-cycle buckets in a time-ordered map with per-bucket "
            "(priority, sequence) heaps and threshold-triggered "
            "compaction of cancelled entries",
        },
        {
            "player.retry",
            "accel/trace_player",
            "per-cycle busy-poll ticks while the crossbar slot is "
            "occupied",
            "sleep until the interconnect's grant-side retry wake; the "
            "re-issue cycle is provably identical to the poll cycle",
        },
    };
    return kernels;
}

const KernelInfo *
findKernel(const std::string &name)
{
    for (const KernelInfo &k : fastKernels()) {
        if (k.name == name)
            return &k;
    }
    return nullptr;
}

} // namespace capcheck::sim
