/**
 * @file
 * Simulation-kernel registry. Hot-path components of the simulator
 * (capability table/cache lookup, the event queue, DMA trace replay)
 * each have a reference implementation and a fast-path implementation.
 * A run selects between them with one knob — SocConfig::simKernel —
 * and the registry records what each fast path replaces so tooling
 * (`--kernel` help text, DESIGN docs, the comparator harness) can
 * enumerate the pairs.
 *
 * The contract for every fast kernel is *bit-exact equivalence*: the
 * same RunRequest must produce byte-identical results, stats dumps and
 * latency artefacts under `fast` and `ref`. The comparator harness
 * (harness/kernel_compare.hh, `--kernel compare`, and the CI
 * kernel-check job) enforces this differentially, in the spirit of
 * Myelin's KernelComparator: a fast kernel is only trusted while it
 * cannot be distinguished from the reference.
 */

#ifndef CAPCHECK_SIM_KERNELS_REGISTRY_HH
#define CAPCHECK_SIM_KERNELS_REGISTRY_HH

#include <string>
#include <vector>

namespace capcheck::sim
{

/** Which simulation-kernel set a run executes with. */
enum class SimKernel
{
    /** Reference implementations only (the default; the baseline every
     *  fast path is gated against). */
    ref,
    /** Fast-path implementations for every registered hot path. */
    fast,
    /** Run ref and fast back to back and hard-fail on any divergence
     *  in results or stats (resolved in the harness layer; a SocSystem
     *  itself only ever sees ref or fast). */
    compare,
};

const char *simKernelName(SimKernel kernel);

/** Inverse of simKernelName(); false when @p name matches none. */
bool simKernelFromName(const std::string &name, SimKernel &out);

/** "ref, fast, compare" — for CLI error messages and usage text. */
std::string simKernelChoices();

/** One registered fast-path kernel: what it replaces and how. */
struct KernelInfo
{
    /** Stable identifier ("captable.index"). */
    std::string name;
    /** Component the kernel lives in ("capchecker/cap_table"). */
    std::string component;
    /** The reference algorithm it replaces. */
    std::string replaces;
    /** One-line description of the fast-path technique. */
    std::string technique;
};

/**
 * The fast-path kernels a `--kernel fast` run enables, in activation
 * order. Static data: the actual switching happens where each
 * component is constructed (Elaborator / SocSystem), keyed off
 * SocConfig::simKernel.
 */
const std::vector<KernelInfo> &fastKernels();

/** Kernel info by name; nullptr when unknown. */
const KernelInfo *findKernel(const std::string &name);

} // namespace capcheck::sim

#endif // CAPCHECK_SIM_KERNELS_REGISTRY_HH
