/**
 * @file
 * Self-scheduling clocked components. A TickingObject owns a tick event;
 * it runs once per cycle while active and deschedules itself when idle,
 * so the event queue can skip dead time.
 */

#ifndef CAPCHECK_SIM_CLOCKED_HH
#define CAPCHECK_SIM_CLOCKED_HH

#include <string>
#include <vector>

#include "base/stats.hh"
#include "sim/eventq.hh"

namespace capcheck
{

class PortBase;

/**
 * Base class for named simulated objects; owns a stats group nested under
 * its parent's, and the list of ports the object exposes (each PortBase
 * registers itself on construction), which is what lets an elaborator
 * resolve "component.port" names without per-component glue.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name,
              stats::StatGroup *parent_stats);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    EventQueue &eventq() { return eq; }
    Cycles curCycle() const { return eq.curCycle(); }
    stats::StatGroup &statGroup() { return stats; }

    /** Called by PortBase on construction; rejects duplicate names. */
    void registerPort(PortBase &port);

    /** Port by local name ("mem_side"); nullptr when absent. */
    PortBase *findPort(const std::string &local_name) const;

    /** Exposed ports, in declaration order. */
    const std::vector<PortBase *> &ports() const { return _ports; }

  protected:
    EventQueue &eq;

  private:
    std::string _name;
    std::vector<PortBase *> _ports;

  protected:
    stats::StatGroup stats;
};

/**
 * A SimObject evaluated once per cycle while it has work to do.
 */
class TickingObject : public SimObject
{
  public:
    TickingObject(EventQueue &eq, std::string name,
                  stats::StatGroup *parent_stats,
                  int tick_priority = Event::defaultPrio);
    ~TickingObject() override;

    /**
     * Per-cycle evaluation.
     * @return true to tick again next cycle, false to go idle.
     */
    virtual bool tick() = 0;

    /** Ensure the object ticks on cycle curCycle() + @p delta. */
    void activate(Cycles delta = 1);

    bool active() const { return tickEvent.scheduled(); }

    /**
     * Component kind for profiler attribution: tick dispatches land
     * on the "sim"/"tick.<kind>" site. Stable short strings only
     * ("player", "xbar", "checkstage"), not instance names — sites
     * key (component kind, event kind), never individual objects.
     */
    virtual const char *profKind() const { return "ticking"; }

  private:
    class TickEvent : public Event
    {
      public:
        TickEvent(TickingObject &owner, int priority)
            : Event(priority), owner(owner)
        {
        }

        void process() override;
        std::string description() const override;
        prof::SiteId profSite() const override;

      private:
        TickingObject &owner;
        /** Lazily registered "tick.<kind>" site; profKind() is not
         *  virtual-dispatchable until the owner is fully constructed,
         *  so registration happens on first profiled dispatch. */
        mutable prof::SiteId site = prof::invalidSite;
    };

    TickEvent tickEvent;
};

} // namespace capcheck

#endif // CAPCHECK_SIM_CLOCKED_HH
