#include "sim/port.hh"

#include "sim/clocked.hh"

namespace capcheck
{

namespace
{

std::string
describe(PortError::Kind kind, const std::string &a,
         const std::string &b)
{
    switch (kind) {
      case PortError::Kind::unbound:
        return "port '" + a + "' is not bound to any peer" +
               (b.empty() ? "" : " (" + b + ")");
      case PortError::Kind::doubleBind:
        return "double bind: '" + a + "' is already bound; cannot "
               "bind it to '" + b + "'";
      case PortError::Kind::roleMismatch:
        return "type mismatch: cannot bind '" + a + "' to '" + b +
               "'; a bind needs exactly one request and one response "
               "endpoint";
      case PortError::Kind::protocolMismatch:
        return "protocol mismatch: '" + a + "' and '" + b +
               "' speak different packet protocols";
      case PortError::Kind::selfBind:
        return "port '" + a + "' cannot be bound to itself";
      case PortError::Kind::duplicateName:
        return "duplicate name '" + a + "'" +
               (b.empty() ? "" : ": " + b);
      case PortError::Kind::unknownComponent:
        return "unknown component in port name '" + a + "'" +
               (b.empty() ? "" : "; known components: " + b);
      case PortError::Kind::unknownPort:
        return "unknown port '" + a + "'" +
               (b.empty() ? "" : "; known ports: " + b);
    }
    return "port error on '" + a + "'";
}

} // namespace

PortError::PortError(Kind kind, std::string what, std::string endpoint_a,
                     std::string endpoint_b)
    : std::runtime_error(std::move(what)), _kind(kind),
      _endpointA(std::move(endpoint_a)), _endpointB(std::move(endpoint_b))
{
}

const char *
portErrorKindName(PortError::Kind kind)
{
    switch (kind) {
      case PortError::Kind::unbound:
        return "unbound";
      case PortError::Kind::doubleBind:
        return "doubleBind";
      case PortError::Kind::roleMismatch:
        return "roleMismatch";
      case PortError::Kind::protocolMismatch:
        return "protocolMismatch";
      case PortError::Kind::selfBind:
        return "selfBind";
      case PortError::Kind::duplicateName:
        return "duplicateName";
      case PortError::Kind::unknownComponent:
        return "unknownComponent";
      case PortError::Kind::unknownPort:
        return "unknownPort";
    }
    return "?";
}

namespace
{

[[noreturn]] void
throwPortError(PortError::Kind kind, const std::string &a,
               const std::string &b = "")
{
    throw PortError(kind, describe(kind, a, b), a, b);
}

} // namespace

PortBase::PortBase(SimObject &owner, std::string name, Role role,
                   std::string protocol)
    : _owner(owner), _name(std::move(name)), _role(role),
      _protocol(std::move(protocol))
{
    owner.registerPort(*this);
}

PortBase::~PortBase()
{
    unbind();
}

std::string
PortBase::fullName() const
{
    return _owner.name() + "." + _name;
}

void
PortBase::unbind()
{
    if (_peer) {
        _peer->_peer = nullptr;
        _peer = nullptr;
    }
}

void
PortBase::requireBound(const char *operation) const
{
    if (!_peer)
        throwPortError(PortError::Kind::unbound, fullName(), operation);
}

void
bindPorts(PortBase &a, PortBase &b)
{
    if (&a == &b)
        throwPortError(PortError::Kind::selfBind, a.fullName());
    if (a.role() == b.role()) {
        throwPortError(PortError::Kind::roleMismatch, a.fullName(),
                       b.fullName());
    }
    if (a.protocol() != b.protocol()) {
        throwPortError(PortError::Kind::protocolMismatch, a.fullName(),
                       b.fullName());
    }
    if (a.bound()) {
        throwPortError(PortError::Kind::doubleBind, a.fullName(),
                       b.fullName());
    }
    if (b.bound()) {
        throwPortError(PortError::Kind::doubleBind, b.fullName(),
                       a.fullName());
    }
    a._peer = &b;
    b._peer = &a;
}

RequestPort::RequestPort(SimObject &owner, std::string name,
                         ResponseHandler &handler, std::string protocol)
    : PortBase(owner, std::move(name), Role::request,
               std::move(protocol)),
      handler(handler)
{
}

void
RequestPort::bind(ResponsePort &peer)
{
    bindPorts(*this, peer);
}

ResponsePort::ResponsePort(SimObject &owner, std::string name,
                           TimingConsumer &consumer, std::string protocol)
    : PortBase(owner, std::move(name), Role::response,
               std::move(protocol)),
      tryFn([&consumer](const MemRequest &req) {
          return consumer.tryAccept(req);
      })
{
}

ResponsePort::ResponsePort(SimObject &owner, std::string name,
                           TryAcceptFn try_accept, CanAcceptFn can_accept,
                           std::string protocol)
    : PortBase(owner, std::move(name), Role::response,
               std::move(protocol)),
      tryFn(std::move(try_accept)), canFn(std::move(can_accept))
{
}

void
ResponsePort::bind(RequestPort &peer)
{
    bindPorts(*this, peer);
}

void
ComponentRegistry::add(SimObject &obj)
{
    if (find(obj.name()) != nullptr) {
        throw PortError(PortError::Kind::duplicateName,
                        describe(PortError::Kind::duplicateName,
                                 obj.name(),
                                 "a component with this name is "
                                 "already registered"),
                        obj.name());
    }
    objs.push_back(&obj);
}

SimObject *
ComponentRegistry::find(const std::string &name) const
{
    for (SimObject *obj : objs) {
        if (obj->name() == name)
            return obj;
    }
    return nullptr;
}

PortBase &
ComponentRegistry::port(const std::string &dotted) const
{
    const auto dot = dotted.rfind('.');
    const std::string comp =
        dot == std::string::npos ? dotted : dotted.substr(0, dot);
    const std::string port_name =
        dot == std::string::npos ? "" : dotted.substr(dot + 1);

    SimObject *obj = find(comp);
    if (!obj) {
        std::string known;
        for (const std::string &n : names())
            known += (known.empty() ? "" : ", ") + n;
        throwPortError(PortError::Kind::unknownComponent, dotted, known);
    }
    PortBase *p = obj->findPort(port_name);
    if (!p) {
        std::string known;
        for (PortBase *q : obj->ports())
            known += (known.empty() ? "" : ", ") + q->localName();
        throwPortError(PortError::Kind::unknownPort, dotted, known);
    }
    return *p;
}

void
ComponentRegistry::bind(const std::string &from, const std::string &to)
{
    bindPorts(port(from), port(to));
}

std::vector<std::string>
ComponentRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(objs.size());
    for (SimObject *obj : objs)
        out.push_back(obj->name());
    return out;
}

} // namespace capcheck
