/**
 * @file
 * gem5-style typed port/binding layer over the repo's packet protocol.
 * A RequestPort sends MemRequests downstream and receives MemResponses
 * back; a ResponsePort accepts MemRequests and sends MemResponses.
 * Peers are wired with bind(), which validates the pairing (unbound
 * use, double bind, role or protocol mismatch all raise a structured
 * PortError naming both endpoints instead of a raw assert), and a
 * ComponentRegistry resolves "component.port" names so an elaborator
 * can wire any topology from a declarative description.
 *
 * The ports are thin: a bound port forwards a call directly to its
 * peer's owner in the same stack frame, so converting a component from
 * peer pointers to ports changes no timing and no event ordering.
 */

#ifndef CAPCHECK_SIM_PORT_HH
#define CAPCHECK_SIM_PORT_HH

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mem/packet.hh"

namespace capcheck
{

class SimObject;
class RequestPort;
class ResponsePort;

/**
 * Structured port-layer diagnostic. Every message names the offending
 * endpoint(s) by their full "component.port" names, so a mis-wired
 * topology is debuggable from the error alone.
 */
class PortError : public std::runtime_error
{
  public:
    enum class Kind
    {
        unbound,          ///< used (or required) before any bind
        doubleBind,       ///< endpoint already has a peer
        roleMismatch,     ///< request-to-request / response-to-response
        protocolMismatch, ///< peers speak different packet protocols
        selfBind,         ///< a port bound to itself
        duplicateName,    ///< registry or owner already has this name
        unknownComponent, ///< registry lookup miss (component part)
        unknownPort,      ///< registry lookup miss (port part)
    };

    PortError(Kind kind, std::string what, std::string endpoint_a,
              std::string endpoint_b = "");

    Kind kind() const { return _kind; }
    /** Full name of the primary offending endpoint. */
    const std::string &endpointA() const { return _endpointA; }
    /** Full name of the other endpoint ("" when not applicable). */
    const std::string &endpointB() const { return _endpointB; }

  private:
    Kind _kind;
    std::string _endpointA;
    std::string _endpointB;
};

const char *portErrorKindName(PortError::Kind kind);

/**
 * Common state of both port roles: identity (owner + local name),
 * role, protocol tag and the peer link. Ports register with their
 * owning SimObject on construction and unbind automatically on
 * destruction, so a destroyed component never leaves a dangling peer.
 */
class PortBase
{
  public:
    enum class Role
    {
        request,
        response,
    };

    PortBase(SimObject &owner, std::string name, Role role,
             std::string protocol = "mem");
    virtual ~PortBase();

    PortBase(const PortBase &) = delete;
    PortBase &operator=(const PortBase &) = delete;

    SimObject &owner() const { return _owner; }
    const std::string &localName() const { return _name; }
    /** "owner.port", the name diagnostics and topologies use. */
    std::string fullName() const;

    Role role() const { return _role; }
    const std::string &protocol() const { return _protocol; }

    bool bound() const { return _peer != nullptr; }
    PortBase *peerBase() const { return _peer; }

    /** Drop the peer link on both sides (no-op when unbound). */
    void unbind();

    /**
     * Type-erased bind with full validation: exactly one request and
     * one response endpoint, same protocol, both unbound, not the
     * same port. @throw PortError naming both endpoints.
     */
    friend void bindPorts(PortBase &a, PortBase &b);

  protected:
    /** @throw PortError{unbound} when no peer is attached. */
    void requireBound(const char *operation) const;

    PortBase *_peer = nullptr;

  private:
    SimObject &_owner;
    std::string _name;
    Role _role;
    std::string _protocol;
};

void bindPorts(PortBase &a, PortBase &b);

/**
 * Master-side endpoint: the owner pushes requests downstream through
 * it and receives the matching responses on the ResponseHandler it
 * registered at construction.
 */
class RequestPort : public PortBase
{
  public:
    RequestPort(SimObject &owner, std::string name,
                ResponseHandler &handler, std::string protocol = "mem");

    void bind(ResponsePort &peer);

    /**
     * Offer a request to the peer this cycle.
     * @return false when the peer cannot take it (retry later).
     * @throw PortError{unbound} when no peer is bound.
     */
    bool trySend(const MemRequest &req); // inline below

    /** True when the bound peer can take a request this cycle. */
    bool canSend() const; // inline below

    ResponseHandler &responseHandler() const { return handler; }

  private:
    ResponseHandler &handler;
};

/**
 * Slave-side endpoint: accepts requests on behalf of its owner and
 * pushes responses back to the peer's ResponseHandler. The admission
 * functions are supplied at construction so multi-slot components
 * (e.g. one interconnect master slot per port) can expose per-port
 * admission without a per-port subclass.
 */
class ResponsePort : public PortBase
{
  public:
    using TryAcceptFn = std::function<bool(const MemRequest &)>;
    using CanAcceptFn = std::function<bool()>;

    /** Sink backed by the owner's TimingConsumer interface. */
    ResponsePort(SimObject &owner, std::string name,
                 TimingConsumer &consumer, std::string protocol = "mem");

    /** Sink backed by explicit admission functions (slot ports). */
    ResponsePort(SimObject &owner, std::string name,
                 TryAcceptFn try_accept, CanAcceptFn can_accept,
                 std::string protocol = "mem");

    void bind(RequestPort &peer);

    /** Admit a request into the owner (called via the peer). */
    bool tryAccept(const MemRequest &req) { return tryFn(req); }

    /** Whether the owner could admit a request this cycle. */
    bool canAccept() const { return canFn ? canFn() : true; }

    /**
     * Deliver a response to the peer's ResponseHandler.
     * @throw PortError{unbound} when no peer is bound.
     */
    void sendResponse(const MemResponse &resp); // inline below

    /**
     * Notify the peer's ResponseHandler that this endpoint freed up
     * (ResponseHandler::handleRetry). No-op when unbound — retries are
     * advisory, so an unbound slot has nobody to wake and nothing to
     * lose.
     */
    void sendRetry(); // inline below

  private:
    TryAcceptFn tryFn;
    CanAcceptFn canFn;
};

/*
 * The four per-packet forwarding calls are inline (defined here, after
 * both classes, because each casts its peer to the other role): every
 * simulated beat crosses a port twice, and the cross-TU call cost
 * dwarfed the one-pointer forward being done. The unbound error path
 * stays out of line in requireBound().
 */

inline bool
RequestPort::trySend(const MemRequest &req)
{
    if (!_peer) [[unlikely]]
        requireBound("trySend");
    return static_cast<ResponsePort *>(_peer)->tryAccept(req);
}

inline bool
RequestPort::canSend() const
{
    if (!_peer) [[unlikely]]
        requireBound("canSend");
    return static_cast<ResponsePort *>(_peer)->canAccept();
}

inline void
ResponsePort::sendResponse(const MemResponse &resp)
{
    if (!_peer) [[unlikely]]
        requireBound("sendResponse");
    static_cast<RequestPort *>(_peer)->responseHandler().handleResponse(
        resp);
}

inline void
ResponsePort::sendRetry()
{
    if (!_peer)
        return;
    static_cast<RequestPort *>(_peer)->responseHandler().handleRetry();
}

/**
 * Named-component registry: the elaborator's symbol table. Components
 * register under their topology node name; ports resolve by the
 * dotted "component.port" syntax used in topology edge lists.
 * Registration order is preserved (names() is deterministic).
 */
class ComponentRegistry
{
  public:
    /** @throw PortError{duplicateName} on a name collision. */
    void add(SimObject &obj);

    /** Component by name; nullptr when absent. */
    SimObject *find(const std::string &name) const;

    /**
     * Port by dotted name ("xbar.mem_side").
     * @throw PortError{unknownComponent|unknownPort} with the known
     *        names listed in the message.
     */
    PortBase &port(const std::string &dotted) const;

    /** bindPorts(port(from), port(to)). */
    void bind(const std::string &from, const std::string &to);

    /** Registered component names, in registration order. */
    std::vector<std::string> names() const;

    const std::vector<SimObject *> &components() const { return objs; }

  private:
    std::vector<SimObject *> objs;
};

} // namespace capcheck

#endif // CAPCHECK_SIM_PORT_HH
