/**
 * @file
 * Parameterized synthetic topology generator: turns a handful of shape
 * knobs (accelerator count, crossbar tree depth, memory channels,
 * checker banks, seed) into a valid Topology the elaborator accepts.
 * The same parameters always produce the same graph — the seed only
 * perturbs *parameters within the legal envelope* (per-crossbar burst
 * budgets, the router interleave stride), never the wiring — so capgen
 * output is canonical: byte-identical JSON for identical flags, and a
 * fuzzer can sweep seeds knowing every graph elaborates.
 */

#ifndef CAPCHECK_SYSTEM_TOPOGEN_HH
#define CAPCHECK_SYSTEM_TOPOGEN_HH

#include <cstdint>
#include <string>

#include "system/topology.hh"

namespace capcheck::system
{

/** Shape knobs for generateTopology(). */
struct TopoGenParams
{
    /** Accelerator masters the graph must be able to attach. */
    unsigned accels = 8;

    /**
     * Crossbar layers between the accelerators and memory. 1 is the
     * flat paper shape; deeper trees cascade leaf crossbars into
     * upper-level ones through accel_side<i> slots.
     */
    unsigned levels = 1;

    /** Maximum child crossbars per upper-level crossbar. */
    unsigned fanout = 4;

    /** Interleaved memory channels (1 = no router). */
    unsigned channels = 1;

    /**
     * Checker banks. 0 places shared per-channel check stages below
     * the root crossbar; >0 places one bank-addressed stage above each
     * leaf crossbar (per-pool protection over shared interconnect).
     */
    unsigned banks = 0;

    /** Protect-node scheme ("auto" resolves from the run's mode). */
    std::string scheme = "auto";

    /** Seed for the legal-envelope parameter jitter. */
    std::uint64_t seed = 0;

    /** Router interleave stride in bytes; 0 picks one from the seed. */
    std::uint64_t interleaveBytes = 0;
};

/**
 * Generate the topology described by @p p. Always valid: every graph
 * this returns elaborates under every SystemMode with accelerators.
 *
 * @throw TopologyError when the parameters themselves are out of the
 *        legal envelope (zero accels, zero levels, zero fanout...).
 */
Topology generateTopology(const TopoGenParams &p);

/** The canonical name embedded in a generated topology. */
std::string topoGenName(const TopoGenParams &p);

} // namespace capcheck::system

#endif // CAPCHECK_SYSTEM_TOPOGEN_HH
