#include "system/soc_config.hh"

namespace capcheck::system
{

const char *
systemModeName(SystemMode mode)
{
    switch (mode) {
      case SystemMode::cpu:
        return "cpu";
      case SystemMode::ccpu:
        return "ccpu";
      case SystemMode::cpuAccel:
        return "cpu+accel";
      case SystemMode::ccpuAccel:
        return "ccpu+accel";
      case SystemMode::ccpuCaccel:
        return "ccpu+caccel";
    }
    return "?";
}

bool
systemModeFromName(const std::string &name, SystemMode &out)
{
    for (const SystemMode mode :
         {SystemMode::cpu, SystemMode::ccpu, SystemMode::cpuAccel,
          SystemMode::ccpuAccel, SystemMode::ccpuCaccel}) {
        if (name == systemModeName(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

bool
modeUsesAccel(SystemMode mode)
{
    return mode == SystemMode::cpuAccel || mode == SystemMode::ccpuAccel ||
           mode == SystemMode::ccpuCaccel;
}

bool
modeUsesCheriCpu(SystemMode mode)
{
    return mode == SystemMode::ccpu || mode == SystemMode::ccpuAccel ||
           mode == SystemMode::ccpuCaccel;
}

bool
modeUsesCapChecker(SystemMode mode)
{
    return mode == SystemMode::ccpuCaccel;
}

} // namespace capcheck::system
