#include "system/soc_config.hh"

namespace capcheck::system
{

const char *
systemModeName(SystemMode mode)
{
    switch (mode) {
      case SystemMode::cpu:
        return "cpu";
      case SystemMode::ccpu:
        return "ccpu";
      case SystemMode::cpuAccel:
        return "cpu+accel";
      case SystemMode::ccpuAccel:
        return "ccpu+accel";
      case SystemMode::ccpuCaccel:
        return "ccpu+caccel";
    }
    return "?";
}

bool
modeUsesAccel(SystemMode mode)
{
    return mode == SystemMode::cpuAccel || mode == SystemMode::ccpuAccel ||
           mode == SystemMode::ccpuCaccel;
}

bool
modeUsesCheriCpu(SystemMode mode)
{
    return mode == SystemMode::ccpu || mode == SystemMode::ccpuAccel ||
           mode == SystemMode::ccpuCaccel;
}

bool
modeUsesCapChecker(SystemMode mode)
{
    return mode == SystemMode::ccpuCaccel;
}

} // namespace capcheck::system
