/**
 * @file
 * Results of one benchmark run on one system configuration — the raw
 * material for Figs. 7-11.
 */

#ifndef CAPCHECK_SYSTEM_RUN_RESULT_HH
#define CAPCHECK_SYSTEM_RUN_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "system/soc_config.hh"

namespace capcheck::system
{

struct RunResult
{
    std::string benchmark;
    SystemMode mode = SystemMode::cpu;
    unsigned numTasks = 0;

    /** Wall-clock cycles of the measured region. */
    Cycles totalCycles = 0;

    /** @{ Breakdown (Fig. 10). */
    Cycles driverAllocCycles = 0;
    Cycles kernelCycles = 0; ///< CPU execution or accelerator span
    Cycles driverDeallocCycles = 0;
    /** @} */

    /** Application-side input initialization (not in totalCycles;
     *  identical across configurations). */
    Cycles initCycles = 0;

    bool functionallyCorrect = false;
    unsigned exceptions = 0;
    std::uint64_t dmaBeats = 0;
    std::size_t peakTableEntries = 0;

    /** Platform statistics dump (when SocConfig::collectStats). */
    std::string statsText;

    /** The same statistics as a JSON object (when collectStats). */
    std::string statsJson;

    /** This run's speedup relative to @p baseline (Fig. 7). */
    double speedupVs(const RunResult &baseline) const;

    /** Fractional overhead of this run relative to @p baseline. */
    double overheadVs(const RunResult &baseline) const;

    /**
     * Field-by-field equality; the determinism contract is that a
     * request re-run on any thread count compares equal.
     */
    bool operator==(const RunResult &other) const = default;
};

double geometricMean(const std::vector<double> &values);

} // namespace capcheck::system

#endif // CAPCHECK_SYSTEM_RUN_RESULT_HH
