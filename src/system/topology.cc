#include "system/topology.hh"

#include <sstream>

#include "base/json.hh"

namespace capcheck::system
{

namespace
{

const std::vector<std::string> &
knownKinds()
{
    static const std::vector<std::string> kinds{
        "memctrl", "router", "protect", "checkstage", "xbar",
        "accel_pool"};
    return kinds;
}

bool
knownKind(const std::string &kind)
{
    for (const std::string &k : knownKinds()) {
        if (k == kind)
            return true;
    }
    return false;
}

[[noreturn]] void
fail(const std::string &what, const std::string &node = "")
{
    throw TopologyError("topology: " + what, node);
}

std::string
requireString(const json::JsonValue &obj, const std::string &key,
              const std::string &where, const std::string &node = "")
{
    const json::JsonValue *v = obj.get(key);
    if (!v || !v->isString())
        fail(where + " needs a string '" + key + "' member", node);
    return v->asString();
}

} // namespace

const TopologyNode *
Topology::findNode(const std::string &node_name) const
{
    for (const TopologyNode &node : nodes) {
        if (node.name == node_name)
            return &node;
    }
    return nullptr;
}

const std::vector<std::string> &
Topology::builtinNames()
{
    static const std::vector<std::string> names{
        "cpu", "ccpu", "cpu+accel", "ccpu+accel", "ccpu+caccel"};
    return names;
}

Topology
Topology::builtin(SystemMode mode)
{
    Topology topo;
    topo.name = systemModeName(mode);
    if (!modeUsesAccel(mode))
        return topo; // CPU-only: no timed platform

    const auto obj = [](std::vector<json::JsonValue::Member> members) {
        return json::JsonValue::makeObject(std::move(members));
    };

    // Node order is construction order and must match what the
    // hand-assembled platform used to do (checker, memctrl, check
    // stage, crossbar): the stat tree lists children in construction
    // order and the artifacts are compared byte for byte.
    topo.nodes.push_back(TopologyNode{
        "protect", "protect",
        obj({{"scheme", json::JsonValue::makeString("auto")}})});
    topo.nodes.push_back(TopologyNode{"memctrl", "memctrl", obj({})});
    topo.nodes.push_back(TopologyNode{
        "checkstage", "checkstage",
        obj({{"checker", json::JsonValue::makeString("protect")}})});
    topo.nodes.push_back(TopologyNode{"xbar", "xbar", obj({})});
    topo.nodes.push_back(TopologyNode{
        "accels", "accel_pool",
        obj({{"xbar", json::JsonValue::makeString("xbar")}})});

    topo.edges.push_back(
        TopologyEdge{"xbar.mem_side", "checkstage.cpu_side"});
    topo.edges.push_back(
        TopologyEdge{"checkstage.mem_side", "memctrl.cpu_side"});
    return topo;
}

Topology
Topology::builtinByName(const std::string &config_name)
{
    if (config_name == "cpu")
        return builtin(SystemMode::cpu);
    if (config_name == "ccpu")
        return builtin(SystemMode::ccpu);
    if (config_name == "cpu+accel")
        return builtin(SystemMode::cpuAccel);
    if (config_name == "ccpu+accel")
        return builtin(SystemMode::ccpuAccel);
    if (config_name == "ccpu+caccel")
        return builtin(SystemMode::ccpuCaccel);
    std::string known;
    for (const std::string &n : builtinNames())
        known += (known.empty() ? "" : ", ") + n;
    fail("unknown builtin configuration '" + config_name +
         "' (known: " + known + ")");
}

Topology
Topology::fromJson(const json::JsonValue &doc)
{
    if (!doc.isObject())
        fail("document root must be an object");

    Topology topo;
    if (const json::JsonValue *name = doc.get("name")) {
        if (!name->isString())
            fail("'name' must be a string");
        topo.name = name->asString();
    }

    const json::JsonValue *nodes = doc.get("nodes");
    if (!nodes || !nodes->isArray())
        fail("document needs a 'nodes' array");
    std::size_t index = 0;
    for (const json::JsonValue &entry : nodes->elements()) {
        const std::string where = "nodes[" + std::to_string(index++) +
                                  "]";
        if (!entry.isObject())
            fail(where + " must be an object");
        TopologyNode node;
        node.name = requireString(entry, "name", where);
        node.kind = requireString(entry, "kind", where, node.name);
        if (node.name.empty() ||
            node.name.find('.') != std::string::npos) {
            fail(where + ": node name '" + node.name +
                     "' must be non-empty and contain no '.'",
                 node.name);
        }
        if (!knownKind(node.kind)) {
            std::string known;
            for (const std::string &k : knownKinds())
                known += (known.empty() ? "" : ", ") + k;
            fail("node '" + node.name + "' has unknown kind '" +
                     node.kind + "' (known: " + known + ")",
                 node.name);
        }
        if (topo.findNode(node.name))
            fail("duplicate node name '" + node.name + "'", node.name);
        if (const json::JsonValue *params = entry.get("params")) {
            if (!params->isObject())
                fail("node '" + node.name + "' params must be an object",
                     node.name);
            node.params = *params;
        } else {
            node.params = json::JsonValue::makeObject({});
        }
        topo.nodes.push_back(std::move(node));
    }

    if (const json::JsonValue *edges = doc.get("edges")) {
        if (!edges->isArray())
            fail("'edges' must be an array");
        std::size_t edge_index = 0;
        for (const json::JsonValue &entry : edges->elements()) {
            const std::string where =
                "edges[" + std::to_string(edge_index++) + "]";
            if (!entry.isObject())
                fail(where + " must be an object");
            TopologyEdge edge;
            edge.from = requireString(entry, "from", where);
            edge.to = requireString(entry, "to", where, edge.from);
            for (const std::string *end : {&edge.from, &edge.to}) {
                const std::string component =
                    end->substr(0, end->find('.'));
                if (end->find('.') == std::string::npos) {
                    fail(where + ": endpoint '" + *end +
                             "' must use the 'component.port' form",
                         *end);
                }
                if (!topo.findNode(component)) {
                    fail(where + ": endpoint '" + *end +
                             "' names component '" + component +
                             "', which is not a declared node",
                         component);
                }
            }
            topo.edges.push_back(std::move(edge));
        }
    }
    return topo;
}

Topology
Topology::loadFile(const std::string &path)
{
    std::string error;
    const auto doc = json::parseJsonFile(path, &error);
    if (!doc) {
        throw TopologyError("topology: cannot load '" + path + "': " +
                                error,
                            "", path);
    }
    try {
        return fromJson(*doc);
    } catch (const TopologyError &e) {
        throw TopologyError(std::string(e.what()) + " (in '" + path +
                                "')",
                            e.node(), path);
    }
}

json::JsonValue
Topology::toJson() const
{
    using json::JsonValue;
    std::vector<JsonValue> node_list;
    for (const TopologyNode &node : nodes) {
        node_list.push_back(JsonValue::makeObject(
            {{"name", JsonValue::makeString(node.name)},
             {"kind", JsonValue::makeString(node.kind)},
             {"params", node.params.isObject()
                            ? node.params
                            : JsonValue::makeObject({})}}));
    }
    std::vector<JsonValue> edge_list;
    for (const TopologyEdge &edge : edges) {
        edge_list.push_back(JsonValue::makeObject(
            {{"from", JsonValue::makeString(edge.from)},
             {"to", JsonValue::makeString(edge.to)}}));
    }
    return JsonValue::makeObject(
        {{"name", JsonValue::makeString(name)},
         {"nodes", JsonValue::makeArray(std::move(node_list))},
         {"edges", JsonValue::makeArray(std::move(edge_list))}});
}

std::string
Topology::toJsonText() const
{
    return json::jsonValueToText(toJson()) + "\n";
}

} // namespace capcheck::system
