#include "system/soc_config_builder.hh"

#include <stdexcept>

#include "base/logging.hh"

namespace capcheck::system
{

namespace
{

/** The low megabyte is reserved for the "OS" (soc_system.cc). */
constexpr std::uint64_t minMemBytes = 2ull << 20;

std::string
fmtU64(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

std::vector<std::string>
validateSocConfig(const SocConfig &cfg)
{
    std::vector<std::string> errors;
    const bool checker = modeUsesCapChecker(cfg.mode);
    const char *mode_name = systemModeName(cfg.mode);

    if (cfg.numInstances == 0) {
        errors.push_back(
            "numInstances is 0: each functional-unit pool needs at "
            "least one accelerator instance (the paper uses 8)");
    }

    if (checker && cfg.capTableEntries == 0) {
        errors.push_back(
            "capTableEntries is 0 on a CapChecker mode: the checker "
            "cannot hold any capabilities; use 256 for the paper's "
            "prototype or >= buffers-per-task for a minimal system");
    }

    if (cfg.capCacheEntries > 0 &&
        cfg.capCacheEntries > cfg.capTableEntries) {
        errors.push_back(
            "capCacheEntries (" + fmtU64(cfg.capCacheEntries) +
            ") exceeds capTableEntries (" +
            fmtU64(cfg.capTableEntries) +
            "): a cache larger than the in-memory table it fronts is "
            "meaningless; lower capCacheEntries or raise "
            "capTableEntries");
    }

    if (!checker) {
        // CapChecker knobs silently doing nothing on a checker-less
        // mode is exactly the kind of sweep bug validate() exists to
        // catch (defaults are accepted so plain mode switches work).
        if (cfg.perAccelCheckers) {
            errors.push_back(
                std::string("perAccelCheckers is set but mode '") +
                mode_name +
                "' instantiates no CapChecker; use "
                "SystemMode::ccpuCaccel or drop the option");
        }
        if (cfg.capCacheEntries != 0) {
            errors.push_back(
                "capCacheEntries (" + fmtU64(cfg.capCacheEntries) +
                ") is set but mode '" + mode_name +
                "' instantiates no CapChecker; use "
                "SystemMode::ccpuCaccel or drop the option");
        }
        if (cfg.checkCycles != 1) {
            errors.push_back(
                "checkCycles (" + fmtU64(cfg.checkCycles) +
                ") differs from the default but mode '" + mode_name +
                "' instantiates no CapChecker, so the check pipeline "
                "it configures does not exist");
        }
        if (cfg.provenance != capchecker::Provenance::fine) {
            errors.push_back(
                std::string("provenance '") +
                capchecker::provenanceName(cfg.provenance) +
                "' differs from the default but mode '" + mode_name +
                "' instantiates no CapChecker, so the addressing "
                "scheme it selects never takes effect");
        }
    }

    if (checker && cfg.capCacheEntries == 0 &&
        cfg.capCacheWalkCycles != 60) {
        errors.push_back(
            "capCacheWalkCycles (" + fmtU64(cfg.capCacheWalkCycles) +
            ") differs from the default but capCacheEntries is 0 "
            "(whole table in SRAM), so no walk ever happens; enable "
            "the cache with capCache(entries, walk_cycles)");
    }

    if (!cfg.topologyFile.empty() && !modeUsesAccel(cfg.mode)) {
        errors.push_back(
            std::string("topologyFile '") + cfg.topologyFile +
            "' is set but mode '" + mode_name +
            "' runs on the CPU alone and elaborates no accelerator "
            "platform; use an accelerator mode or drop the file");
    }

    if (cfg.memBytes < minMemBytes) {
        errors.push_back(
            "memBytes (" + fmtU64(cfg.memBytes) +
            ") is below the " + fmtU64(minMemBytes) +
            "-byte minimum: the low 1 MiB is reserved for the OS and "
            "the heap needs room for benchmark buffers");
    }

    if (cfg.xbarMaxBurst == 0) {
        errors.push_back(
            "xbarMaxBurst is 0: the interconnect must grant at least "
            "one beat per arbitration (the prototype uses 1)");
    }

    if (cfg.memLatency == 0) {
        errors.push_back(
            "memLatency is 0: the memory controller pipeline needs at "
            "least one cycle of latency");
    }

    return errors;
}

std::string
validationErrors(const SocConfig &cfg)
{
    std::string joined;
    for (const std::string &e : validateSocConfig(cfg)) {
        if (!joined.empty())
            joined += "; ";
        joined += e;
    }
    return joined;
}

SocConfigBuilder &
SocConfigBuilder::mode(SystemMode m)
{
    cfg.mode = m;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::provenance(capchecker::Provenance p)
{
    cfg.provenance = p;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::numInstances(unsigned n)
{
    cfg.numInstances = n;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::capTableEntries(unsigned n)
{
    cfg.capTableEntries = n;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::checkCycles(Cycles c)
{
    cfg.checkCycles = c;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::perAccelCheckers(bool on)
{
    cfg.perAccelCheckers = on;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::capCache(unsigned entries, Cycles walk_cycles)
{
    cfg.capCacheEntries = entries;
    cfg.capCacheWalkCycles = walk_cycles;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::memLatency(Cycles c)
{
    cfg.memLatency = c;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::memBytes(std::uint64_t bytes)
{
    cfg.memBytes = bytes;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::xbarMaxBurst(unsigned beats)
{
    cfg.xbarMaxBurst = beats;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::guardBytes(std::uint64_t bytes)
{
    cfg.guardBytes = bytes;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::collectStats(bool on)
{
    cfg.collectStats = on;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::cpuCosts(const CpuCostParams &costs)
{
    cfg.cpuCosts = costs;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::driverCosts(const driver::DriverCostParams &costs)
{
    cfg.driverCosts = costs;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::seed(std::uint64_t s)
{
    cfg.seed = s;
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::topologyFile(std::string path)
{
    cfg.topologyFile = std::move(path);
    return *this;
}

SocConfigBuilder &
SocConfigBuilder::simKernel(sim::SimKernel k)
{
    cfg.simKernel = k;
    return *this;
}

SocConfig
SocConfigBuilder::build() const
{
    const std::string errors = validationErrors(cfg);
    if (!errors.empty())
        throw std::invalid_argument("invalid SocConfig: " + errors);
    return cfg;
}

} // namespace capcheck::system
