#include "system/run_result.hh"

#include <cmath>
#include <vector>

#include "base/logging.hh"

namespace capcheck::system
{

double
RunResult::speedupVs(const RunResult &baseline) const
{
    if (totalCycles == 0)
        return 0;
    return static_cast<double>(baseline.totalCycles) /
           static_cast<double>(totalCycles);
}

double
RunResult::overheadVs(const RunResult &baseline) const
{
    if (baseline.totalCycles == 0)
        return 0;
    return static_cast<double>(totalCycles) /
               static_cast<double>(baseline.totalCycles) -
           1.0;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double log_sum = 0;
    for (const double v : values) {
        if (v <= 0)
            fatal("geometricMean: non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace capcheck::system
