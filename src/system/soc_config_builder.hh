/**
 * @file
 * Fluent construction and validation of SocConfig. SocConfig itself
 * stays an aggregate (existing brace/field initialization keeps
 * working); the builder adds chainable setters and a validate() pass
 * that rejects inconsistent configurations with actionable messages
 * before a simulation is built around them.
 */

#ifndef CAPCHECK_SYSTEM_SOC_CONFIG_BUILDER_HH
#define CAPCHECK_SYSTEM_SOC_CONFIG_BUILDER_HH

#include <string>
#include <vector>

#include "system/soc_config.hh"

namespace capcheck::system
{

/**
 * Check @p cfg for internal consistency.
 *
 * @return one human-readable message per problem found; empty when the
 *         configuration is valid.
 */
std::vector<std::string> validateSocConfig(const SocConfig &cfg);

/** validateSocConfig() joined into one string (empty = valid). */
std::string validationErrors(const SocConfig &cfg);

/**
 * Fluent SocConfig builder.
 *
 *     const SocConfig cfg = SocConfigBuilder()
 *         .mode(SystemMode::ccpuCaccel)
 *         .capTableEntries(256)
 *         .seed(42)
 *         .build();
 *
 * build() runs validateSocConfig() and throws std::invalid_argument
 * listing every problem, so misconfigured sweeps fail fast instead of
 * producing silently meaningless numbers.
 */
class SocConfigBuilder
{
  public:
    SocConfigBuilder() = default;

    /** Start from an existing configuration. */
    explicit SocConfigBuilder(SocConfig base) : cfg(std::move(base)) {}

    SocConfigBuilder &mode(SystemMode m);
    SocConfigBuilder &provenance(capchecker::Provenance p);
    SocConfigBuilder &numInstances(unsigned n);
    SocConfigBuilder &capTableEntries(unsigned n);
    SocConfigBuilder &checkCycles(Cycles c);
    SocConfigBuilder &perAccelCheckers(bool on);
    SocConfigBuilder &capCache(unsigned entries,
                               Cycles walk_cycles = 60);
    SocConfigBuilder &memLatency(Cycles c);
    SocConfigBuilder &memBytes(std::uint64_t bytes);
    SocConfigBuilder &xbarMaxBurst(unsigned beats);
    SocConfigBuilder &guardBytes(std::uint64_t bytes);
    SocConfigBuilder &collectStats(bool on);
    SocConfigBuilder &cpuCosts(const CpuCostParams &costs);
    SocConfigBuilder &driverCosts(const driver::DriverCostParams &costs);
    SocConfigBuilder &seed(std::uint64_t s);
    /** Topology JSON file; "" restores the builtin for the mode. */
    SocConfigBuilder &topologyFile(std::string path);
    /** Simulation kernel (sim/kernels registry). */
    SocConfigBuilder &simKernel(sim::SimKernel k);

    /** The configuration as accumulated so far, unvalidated. */
    const SocConfig &peek() const { return cfg; }

    /**
     * Validate and return the configuration.
     * @throw std::invalid_argument listing every validation failure.
     */
    SocConfig build() const;

  private:
    SocConfig cfg;
};

} // namespace capcheck::system

#endif // CAPCHECK_SYSTEM_SOC_CONFIG_BUILDER_HH
