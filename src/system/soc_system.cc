#include "system/soc_system.hh"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "accel/accelerator.hh"
#include "base/invariant.hh"
#include "accel/trace_accessor.hh"
#include "accel/trace_player.hh"
#include "base/json.hh"
#include "base/logging.hh"
#include "cheri/captree.hh"
#include "driver/driver.hh"
#include "mem/allocator.hh"
#include "mem/interconnect.hh"
#include "mem/mem_ctrl.hh"
#include "mem/tagged_memory.hh"
#include "obs/observer.hh"
#include "obs/prof.hh"
#include "protect/check_stage.hh"
#include "protect/checker_bank.hh"
#include "protect/no_protection.hh"
#include "system/elaborator.hh"
#include "workloads/kernel.hh"

namespace capcheck::system
{

namespace
{

/** Heap layout: leave the low megabyte to the "OS". */
constexpr Addr heapBase = 1ull << 20;

/** Derive the application CPU task under the OS root (Fig. 4). */
cheri::CapNodeId
makeAppTask(cheri::CapTree &tree, std::uint64_t mem_bytes)
{
    const cheri::Capability app_cap =
        tree.capOf(tree.rootNode())
            .setBounds(heapBase, mem_bytes - heapBase)
            .andPerms(cheri::permDataRW | cheri::permLoadCap |
                      cheri::permStoreCap | cheri::permGlobal);
    return tree.derive(tree.rootNode(), cheri::CapNodeKind::cpuTask,
                       app_cap, "app");
}

} // namespace

SocSystem::SocSystem(const SocConfig &config) : cfg(config)
{
    // The compare pseudo-kernel is a harness-layer construct (run ref
    // and fast, diff the artefacts); by the time a system is built the
    // choice must have been resolved to one concrete kernel.
    if (cfg.simKernel == sim::SimKernel::compare)
        fatal("SocSystem: simKernel 'compare' must be resolved by the "
              "harness; a system runs 'ref' or 'fast'");
}

Topology
SocSystem::topology() const
{
    if (!cfg.topologyFile.empty())
        return Topology::loadFile(cfg.topologyFile);
    return Topology::builtin(cfg.mode);
}

RunResult
SocSystem::runBenchmark(const std::string &benchmark, unsigned num_tasks)
{
    if (num_tasks == 0)
        num_tasks = cfg.numInstances;

    std::vector<TaskPlan> plan;
    for (unsigned t = 0; t < num_tasks; ++t)
        plan.push_back(TaskPlan{benchmark, 0});

    if (!modeUsesAccel(cfg.mode))
        return runCpuOnly(plan);
    return runWithAccelerators(plan, {benchmark}, cfg.numInstances);
}

RunResult
SocSystem::runMixed(const std::vector<std::string> &benchmarks)
{
    std::vector<TaskPlan> plan;
    for (unsigned i = 0; i < benchmarks.size(); ++i)
        plan.push_back(TaskPlan{benchmarks[i], i});

    if (!modeUsesAccel(cfg.mode))
        return runCpuOnly(plan);
    return runWithAccelerators(plan, benchmarks, 1);
}

RunResult
SocSystem::runCpuOnly(const std::vector<TaskPlan> &plan)
{
    const bool cheri = modeUsesCheriCpu(cfg.mode);

    TaggedMemory mem(cfg.memBytes);
    RegionAllocator heap(heapBase, cfg.memBytes - heapBase);
    cheri::CapTree tree;
    const cheri::CapNodeId app = makeAppTask(tree, cfg.memBytes);
    const cheri::Capability authority = tree.capOf(app);

    RunResult result;
    result.benchmark = plan.size() == 1 ? plan[0].benchmark : "mixed";
    result.mode = cfg.mode;
    result.numTasks = static_cast<unsigned>(plan.size());
    result.functionallyCorrect = true;

    Rng rng(cfg.seed);
    for (const TaskPlan &task : plan) {
        const auto kernel = workloads::createKernel(task.benchmark);
        const workloads::KernelSpec &spec = kernel->spec();

        // Allocate buffers and derive capabilities (on a CHERI CPU).
        std::vector<BufferMapping> buffers;
        for (const workloads::BufferDef &def : spec.buffers) {
            const auto base = heap.allocate(def.size);
            if (!base)
                fatal("cpu run: out of heap for %s",
                      task.benchmark.c_str());
            BufferMapping mapping;
            mapping.base = *base;
            mapping.size = def.size;
            if (cheri)
                mapping.cap = authority.setBounds(*base, def.size);
            buffers.push_back(mapping);
        }

        // Input generation (untimed region, common to all configs).
        CpuAccessor init_acc(mem, buffers, /*cheri=*/false,
                             cfg.cpuCosts);
        {
            PROF_SCOPE("workload", "init");
            kernel->init(init_acc, rng);
        }
        result.initCycles += init_acc.cycles();

        // Timed region: the kernel itself.
        CpuAccessor acc(mem, buffers, cheri, cfg.cpuCosts);
        acc.chargeTaskSetup();
        {
            PROF_SCOPE("workload", "functional");
            kernel->run(acc);
        }
        result.kernelCycles += acc.cycles();

        CpuAccessor check_acc(mem, buffers, /*cheri=*/false,
                              cfg.cpuCosts);
        {
            PROF_SCOPE("workload", "check");
            result.functionallyCorrect &= kernel->check(check_acc);
        }

        for (const BufferMapping &buf : buffers)
            heap.free(buf.base);
    }

    result.totalCycles = result.kernelCycles;

    if (obsOpts.any())
        obs::RunObserver::writeEmptyOutputs(obsOpts);
    return result;
}

RunResult
SocSystem::runWithAccelerators(const std::vector<TaskPlan> &plan,
                               const std::vector<std::string> &pools,
                               unsigned instances_per_pool)
{
    const bool cheri = modeUsesCheriCpu(cfg.mode);
    const bool with_checker = modeUsesCapChecker(cfg.mode);

    // --- Platform (Fig. 2) ---
    TaggedMemory mem(cfg.memBytes);
    RegionAllocator heap(heapBase, cfg.memBytes - heapBase,
                         cfg.guardBytes);
    cheri::CapTree tree;
    const cheri::CapNodeId app = makeAppTask(tree, cfg.memBytes);

    EventQueue eq(cfg.simKernel == sim::SimKernel::fast
                      ? EventQueue::Impl::bucketed
                      : EventQueue::Impl::heap);
    stats::StatGroup stat_root("soc");

    // Declared before the components so it outlives them: probe
    // points hold listener closures referencing the observer, and the
    // components drop those closures first on teardown.
    std::unique_ptr<obs::RunObserver> observer;
    if (obsOpts.any())
        observer =
            std::make_unique<obs::RunObserver>(obsOpts, eq, stat_root);

    // --- Elaborate the platform graph from the topology ---
    const Topology topo = topology();
    if (!topo.hasPlatform()) {
        fatal("topology '%s' has no platform components but mode %s "
              "uses accelerators",
              topo.name.c_str(), systemModeName(cfg.mode));
    }
    const Elaborator elaborator(eq, &stat_root, cfg);
    Platform platform =
        elaborator.elaborate(topo, static_cast<unsigned>(plan.size()));

    // The checker the driver programs for a given task. Topology
    // protect nodes can also declare the iommu/iopmp schemes; the
    // driver programs whichever backend the task's downstream path
    // actually reaches (page mappings, regions, or a cap table).
    auto checker_for = [&](TaskId task) -> capchecker::CapChecker * {
        return platform.checkerFor(task);
    };
    auto iommu_for = [&](TaskId task) -> protect::Iommu * {
        return dynamic_cast<protect::Iommu *>(
            platform.protectionFor(task));
    };
    auto iopmp_for = [&](TaskId task) -> protect::Iopmp * {
        return dynamic_cast<protect::Iopmp *>(
            platform.protectionFor(task));
    };

    // With a tag-clearing checker interposed, the raw tag-preserving
    // DMA path does not exist in the modelled hardware; arm the
    // barrier so any use of it trips an invariant.
    if (platform.clearsTagsOnWrite())
        mem.setDmaTagBarrier(true);

    // Paranoid end-to-end security invariant, independent of the
    // CheckStage's internal routing: a request the active checker
    // denied must never be observed entering the memory controller.
    // Keyed by (srcPort, id) — request ids are per-master counters.
    std::unordered_set<std::uint64_t> denied_keys;
    if (paranoidChecks) {
        const auto request_key = [](const MemRequest &req) {
            return (static_cast<std::uint64_t>(req.srcPort) << 48) ^
                   req.id;
        };
        const auto watch = [&](capchecker::CapChecker &cc) {
            cc.checkResultProbe().attach(
                [&denied_keys, request_key](
                    const capchecker::CheckResultEvent &ev) {
                    if (!ev.allowed)
                        denied_keys.insert(request_key(*ev.req));
                });
        };
        for (const auto &owned : platform.checkers) {
            if (auto *bank = dynamic_cast<protect::CheckerBank *>(
                    owned.get())) {
                for (unsigned p = 0; p < bank->size(); ++p)
                    watch(bank->at(p));
            } else if (auto *cc = dynamic_cast<capchecker::CapChecker *>(
                           owned.get())) {
                watch(*cc);
            }
        }
        for (const auto &memctrl : platform.memctrls) {
            memctrl->acceptProbe().attach(
                [&denied_keys, request_key](const MemRequest &req) {
                    INVARIANT(denied_keys.count(request_key(req)) == 0,
                              "denied request (port %u, id %llu) "
                              "reached the memory controller",
                              req.srcPort,
                              static_cast<unsigned long long>(req.id));
                });
        }
    }

    if (observer) {
        for (const auto &owned : platform.checkers) {
            if (auto *bank = dynamic_cast<protect::CheckerBank *>(
                    owned.get())) {
                for (unsigned p = 0; p < bank->size(); ++p)
                    observer->attachChecker(bank->at(p),
                                            "CapChecker#" +
                                                std::to_string(p));
            } else if (auto *cc = dynamic_cast<capchecker::CapChecker *>(
                           owned.get())) {
                observer->attachChecker(*cc);
            }
        }
        for (const auto &stage : platform.checkStages)
            observer->attachCheckStage(*stage);
        for (const auto &memctrl : platform.memctrls)
            observer->attachMemory(*memctrl);
        for (const auto &xbar : platform.xbars)
            observer->attachXbar(*xbar);
    }

    std::vector<std::unique_ptr<accel::Accelerator>> accels;
    for (const std::string &name : pools) {
        accels.push_back(std::make_unique<accel::Accelerator>(
            name, workloads::kernelSpec(name), instances_per_pool));
    }

    // One trusted-driver context per task (with per-accelerator
    // checkers each context programs its own checker over MMIO).
    std::vector<std::unique_ptr<driver::Driver>> drivers;

    // --- Task setup: functional execution + trace extraction ---
    RunResult result;
    result.benchmark = pools.size() == 1 ? pools[0] : "mixed";
    result.mode = cfg.mode;
    result.numTasks = static_cast<unsigned>(plan.size());
    result.functionallyCorrect = true;

    accel::AddressingMode addressing;
    addressing.objectMetadata =
        with_checker &&
        cfg.provenance == capchecker::Provenance::fine;
    addressing.objectInAddress =
        with_checker &&
        cfg.provenance == capchecker::Provenance::coarse;

    struct LiveTask
    {
        unsigned planIndex = 0;
        std::unique_ptr<workloads::Kernel> kernel;
        driver::TaskHandle handle;
        std::unique_ptr<accel::TracePlayer> player;
        driver::Driver *driver = nullptr;
    };

    // Tasks run in waves: the driver allocates as many as resources
    // (functional units, capability-table entries) allow; when it
    // would stall (Fig. 6's "stalls until one becomes available"), the
    // current wave runs to completion and its deallocations free the
    // resources for the next wave. With the paper's 256-entry table
    // every benchmark fits in a single wave.
    Rng rng(cfg.seed);
    std::vector<unsigned> pending(plan.size());
    for (unsigned t = 0; t < plan.size(); ++t)
        pending[t] = t;

    Cycles wave_start = 0;
    while (!pending.empty()) {
        std::vector<LiveTask> wave;
        std::vector<unsigned> deferred;
        Cycles alloc_end = wave_start;

        for (const unsigned t : pending) {
            LiveTask task;
            task.planIndex = t;
            task.kernel = workloads::createKernel(plan[t].benchmark);
            accel::Accelerator &accel =
                *accels.at(plan[t].accelIndex);

            drivers.push_back(std::make_unique<driver::Driver>(
                mem, heap, tree, cheri, checker_for(t), iommu_for(t),
                iopmp_for(t), cfg.driverCosts));
            task.driver = drivers.back().get();
            if (observer)
                observer->attachDriver(*task.driver);

            auto handle = task.driver->allocateTask(accel, t, app);
            if (!handle) {
                // Out of FUs or table entries: defer to a later wave.
                deferred.push_back(t);
                continue;
            }
            task.handle = std::move(*handle);

            // Application-side input initialization on the CPU
            // (untimed region, identical across configurations).
            CpuAccessor init_acc(mem, task.handle.buffers,
                                 /*cheri=*/false, cfg.cpuCosts);
            {
                PROF_SCOPE("workload", "init");
                task.kernel->init(init_acc, rng);
            }
            result.initCycles += init_acc.cycles();

            // Functional execution under the trace recorder.
            accel::TraceAccessor tracer(mem, accel.spec(),
                                        task.handle.buffers);
            {
                PROF_SCOPE("workload", "functional");
                task.kernel->run(tracer);
            }

            task.player = std::make_unique<accel::TracePlayer>(
                eq, &stat_root,
                plan[t].benchmark + "#" + std::to_string(t),
                accel.spec(), tracer.take(), task.handle.buffers, t,
                /*port=*/t, addressing,
                /*fast_replay=*/cfg.simKernel == sim::SimKernel::fast);
            const Platform::TaskAttach &attach = platform.attachOf(t);
            bindPorts(task.player->memSide(),
                      attach.xbar->accelSide(attach.slot));
            if (observer)
                observer->attachPlayer(*task.player);

            alloc_end += task.handle.allocCycles;
            result.driverAllocCycles += task.handle.allocCycles;
            wave.push_back(std::move(task));
        }

        if (wave.empty())
            fatal("driver cannot allocate any task (table of %u "
                  "entries too small for a single task?)",
                  cfg.capTableEntries);

        // The driver programs tasks one after another over MMIO; the
        // measured region starts the wave's instances together once
        // setup completes (the bare-metal testbed's protocol).
        for (LiveTask &task : wave)
            task.player->start(alloc_end);

        if (with_checker) {
            result.peakTableEntries = std::max(
                result.peakTableEntries, platform.entriesUsed());
        }

        // --- Timing simulation of this wave ---
        eq.run();

        Cycles last_finish = alloc_end;
        for (LiveTask &task : wave) {
            if (!task.player->done())
                fatal("accelerator task did not finish (deadlock?)");
            last_finish =
                std::max(last_finish, task.player->finishCycle());
        }
        result.kernelCycles = last_finish;

        // Functional verification before buffers are released.
        for (LiveTask &task : wave) {
            CpuAccessor check_acc(mem, task.handle.buffers,
                                  /*cheri=*/false, cfg.cpuCosts);
            {
                PROF_SCOPE("workload", "check");
                result.functionallyCorrect &=
                    task.kernel->check(check_acc);
            }
        }

        // --- Teardown (Fig. 6 (2)) ---
        for (LiveTask &task : wave) {
            const bool failed = task.player->failed();
            result.exceptions += failed;
            result.driverDeallocCycles +=
                task.driver->deallocateTask(task.handle, failed);
        }

        wave_start = last_finish;
        pending = std::move(deferred);
    }

    result.dmaBeats = platform.beatsGranted();
    result.totalCycles =
        result.kernelCycles + result.driverDeallocCycles;

    if (observer)
        observer->finalize(result.totalCycles);

    if (cfg.collectStats) {
        std::ostringstream os;
        stat_root.dump(os);
        result.statsText = os.str();

        std::ostringstream js;
        json::JsonWriter jw(js);
        stat_root.dumpJson(jw);
        result.statsJson = js.str();
    }
    return result;
}

} // namespace capcheck::system
