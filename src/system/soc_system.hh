/**
 * @file
 * Full-system harness: assembles the prototype platform of Fig. 2 —
 * CHERI (or plain) CPU, shared tagged memory, AXI interconnect, the
 * configured protection interposer, and one or more accelerator
 * functional-unit pools — and runs MachSuite benchmarks on it in any
 * of the five evaluation configurations.
 */

#ifndef CAPCHECK_SYSTEM_SOC_SYSTEM_HH
#define CAPCHECK_SYSTEM_SOC_SYSTEM_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/options.hh"
#include "system/run_result.hh"
#include "system/topology.hh"

namespace capcheck::system
{

class SocSystem
{
  public:
    explicit SocSystem(const SocConfig &config);

    const SocConfig &config() const { return cfg; }

    /**
     * Select observability outputs (Chrome trace, stat samples,
     * audit log) for subsequent runs. CPU-only configurations have
     * no timed platform; they emit valid-but-empty outputs.
     */
    void setObsOptions(obs::ObsOptions opts) { obsOpts = std::move(opts); }
    const obs::ObsOptions &obsOptions() const { return obsOpts; }

    /**
     * Run @p num_tasks concurrent copies of one benchmark (default:
     * one per accelerator instance, the paper's setup). On CPU-only
     * configurations the tasks run sequentially on the core.
     */
    RunResult runBenchmark(const std::string &benchmark,
                           unsigned num_tasks = 0);

    /**
     * Run a mixed system (Fig. 9): one accelerator pool per named
     * benchmark, one task each, all concurrent.
     */
    RunResult runMixed(const std::vector<std::string> &benchmarks);

    /**
     * The topology accelerator runs elaborate: the file named by
     * config().topologyFile, or the canonical builtin for the mode.
     * @throw TopologyError when the file is unreadable or invalid.
     */
    Topology topology() const;

    /** topology() as deterministic JSON (--dump-topology output). */
    std::string dumpTopologyJson() const
    {
        return topology().toJsonText();
    }

  private:
    struct TaskPlan
    {
        std::string benchmark;
        unsigned accelIndex = 0;
    };

    RunResult runCpuOnly(const std::vector<TaskPlan> &plan);
    RunResult runWithAccelerators(const std::vector<TaskPlan> &plan,
                                  const std::vector<std::string> &pools,
                                  unsigned instances_per_pool);

    SocConfig cfg;
    obs::ObsOptions obsOpts;
};

} // namespace capcheck::system

#endif // CAPCHECK_SYSTEM_SOC_SYSTEM_HH
