/**
 * @file
 * Declarative platform description: a named graph of component nodes
 * (memory controllers, channel routers, protection checkers, check
 * stages, interconnects, accelerator attachment pools) plus the port
 * bindings between them. The five paper configurations are canonical
 * builtins; arbitrary shapes — N memory channels, banked checkers,
 * heterogeneous pools on separate crossbars — load from JSON through
 * the base/json_value parser and dump back losslessly, so a topology
 * file round-trips byte-for-byte through load -> dump -> load.
 */

#ifndef CAPCHECK_SYSTEM_TOPOLOGY_HH
#define CAPCHECK_SYSTEM_TOPOLOGY_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "base/json_value.hh"
#include "system/soc_config.hh"

namespace capcheck::system
{

/**
 * Malformed topology document or file. Structured in the PortError
 * style: the message always embeds the offending node/edge when one is
 * known, and the accessors expose it (plus the source file) so tools
 * and tests can key on the endpoint instead of parsing the message.
 */
class TopologyError : public std::runtime_error
{
  public:
    explicit TopologyError(const std::string &what,
                           std::string node = "",
                           std::string file = "")
        : std::runtime_error(what), _node(std::move(node)),
          _file(std::move(file))
    {
    }

    /** Offending node name or edge endpoint ("" when structural). */
    const std::string &node() const { return _node; }

    /** Source file the topology loaded from ("" for in-memory). */
    const std::string &file() const { return _file; }

  private:
    std::string _node;
    std::string _file;
};

/**
 * One component in the graph. @c kind selects the component class the
 * elaborator instantiates; @c params carries its kind-specific
 * configuration verbatim (unset parameters fall back to the
 * SocConfig the topology is elaborated under, which is what lets one
 * file serve every mode/provenance sweep point).
 *
 * Kinds and their params:
 *  - "memctrl":    {"latency": cycles}
 *  - "router":     {"interleaveBytes": bytes}
 *  - "protect":    {"scheme": "auto|none|capchecker|checker_bank|
 *                   iommu|iopmp", "banks": n, "iotlbEntries": n,
 *                   "iopmpRegions": n} — functional checker, not a
 *                   port-bearing component
 *  - "checkstage": {"checker": "<protect node name>", "bank": n} —
 *                   'bank' addresses one member of a CheckerBank (so
 *                   per-pool stages can sit above a shared crossbar);
 *                   a no-op when the checker is not banked
 *  - "xbar":       {"masters": n, "maxBurst": beats} — 'masters'
 *                   defaults to the attached tasks plus any
 *                   accel_side<i> slots edges bind (cascaded xbars)
 *  - "accel_pool": {"xbar": "<xbar node name>"} — attachment point
 *                   for accelerator masters; tasks are assigned to
 *                   pools round-robin
 */
struct TopologyNode
{
    std::string name;
    std::string kind;
    json::JsonValue params; ///< always an object (possibly empty)
};

/** One port binding, endpoints in "component.port" form. */
struct TopologyEdge
{
    std::string from;
    std::string to;
};

struct Topology
{
    std::string name;
    std::vector<TopologyNode> nodes; ///< construction order
    std::vector<TopologyEdge> edges;

    /**
     * False for the CPU-only configurations, whose topology has no
     * timed platform components at all.
     */
    bool hasPlatform() const { return !nodes.empty(); }

    const TopologyNode *findNode(const std::string &node_name) const;

    /**
     * The canonical builtin for @p mode — the exact platform
     * runWithAccelerators() used to assemble by hand, so elaborating
     * it reproduces today's artifacts byte for byte.
     */
    static Topology builtin(SystemMode mode);

    /** Builtin by configuration name ("ccpu+caccel", ...). */
    static Topology builtinByName(const std::string &config_name);

    /** The five configuration names, in paper order. */
    static const std::vector<std::string> &builtinNames();

    /** @throw TopologyError on any structural problem. */
    static Topology fromJson(const json::JsonValue &doc);

    /** @throw TopologyError when unreadable or invalid. */
    static Topology loadFile(const std::string &path);

    json::JsonValue toJson() const;

    /** Deterministic JSON text (the --dump-topology output). */
    std::string toJsonText() const;
};

} // namespace capcheck::system

#endif // CAPCHECK_SYSTEM_TOPOLOGY_HH
