/**
 * @file
 * System configurations matching the paper's five evaluation points
 * (Section 6.3): cpu, ccpu, cpu+accel, ccpu+accel, ccpu+caccel.
 */

#ifndef CAPCHECK_SYSTEM_SOC_CONFIG_HH
#define CAPCHECK_SYSTEM_SOC_CONFIG_HH

#include <cstdint>
#include <string>

#include "capchecker/capchecker.hh"
#include "cpu/cpu_model.hh"
#include "driver/driver.hh"
#include "sim/kernels/registry.hh"

namespace capcheck::system
{

/** The five system configurations of the overhead analysis. */
enum class SystemMode
{
    cpu,        ///< plain RISC-V CPU only
    ccpu,       ///< CHERI CPU only
    cpuAccel,   ///< plain CPU + unprotected accelerators
    ccpuAccel,  ///< CHERI CPU + unprotected accelerators
    ccpuCaccel, ///< CHERI CPU + CapChecker-protected accelerators
};

const char *systemModeName(SystemMode mode);

/** Inverse of systemModeName(); false when @p name matches no mode. */
bool systemModeFromName(const std::string &name, SystemMode &out);

bool modeUsesAccel(SystemMode mode);
bool modeUsesCheriCpu(SystemMode mode);
bool modeUsesCapChecker(SystemMode mode);

struct SocConfig
{
    SystemMode mode = SystemMode::ccpuCaccel;
    capchecker::Provenance provenance = capchecker::Provenance::fine;

    /** Accelerator instances per functional-unit pool (paper: 8). */
    unsigned numInstances = 8;
    /** CapChecker capability-table entries (paper: 256). */
    unsigned capTableEntries = 256;
    /** Check pipeline depth. */
    Cycles checkCycles = 1;
    /**
     * One exclusive CapChecker per accelerator master instead of a
     * single shared one (the Section 5.2.1 design alternative: more
     * area, no bandwidth gain on a single-beat interconnect).
     */
    bool perAccelCheckers = false;
    /** Capability-cache entries (0 = whole table in SRAM). */
    unsigned capCacheEntries = 0;
    /** Table-walk cycles on a capability-cache miss. */
    Cycles capCacheWalkCycles = 60;

    /** Memory controller latency. */
    Cycles memLatency = 30;
    /** Shared memory size. */
    std::uint64_t memBytes = 64ull << 20;
    /** Interconnect burst length (sticky arbitration beats). */
    unsigned xbarMaxBurst = 1;
    /** Guard bytes the driver pads after every buffer (Section 5.2.3's
     *  guard-region safeguard; 0 = none). */
    std::uint64_t guardBytes = 0;
    /** Collect and return the platform statistics dump. */
    bool collectStats = false;

    /**
     * Topology description file for accelerator runs; empty = the
     * canonical builtin for @c mode. A loaded topology shapes only the
     * platform graph (channels, routers, checkers, crossbars) — mode
     * and provenance still come from this config, and topology
     * "protect" nodes default to scheme "auto", which resolves from
     * the mode.
     */
    std::string topologyFile;

    /**
     * Host-side simulation kernel (sim/kernels registry). @c ref and
     * @c fast must produce bit-identical results and artefacts; @c
     * compare is resolved by the harness layer (which runs both and
     * diffs) and must never reach SocSystem.
     */
    sim::SimKernel simKernel = sim::SimKernel::ref;

    CpuCostParams cpuCosts;
    driver::DriverCostParams driverCosts;

    /** Workload-generation seed. */
    std::uint64_t seed = 1;
};

} // namespace capcheck::system

#endif // CAPCHECK_SYSTEM_SOC_CONFIG_HH
