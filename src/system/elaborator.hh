/**
 * @file
 * Turns a Topology description into a live platform: constructs the
 * components in node order (construction order is stat-tree order),
 * binds every edge through the port layer, assigns accelerator tasks
 * to interconnect slots via the accel_pool attachment points, and
 * resolves which protection checker guards each task by walking the
 * graph downstream from its crossbar. Mis-wired topologies fail with
 * structured diagnostics (PortError / TopologyError) naming the
 * offending endpoints, never a raw assert.
 */

#ifndef CAPCHECK_SYSTEM_ELABORATOR_HH
#define CAPCHECK_SYSTEM_ELABORATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/interconnect.hh"
#include "mem/mem_ctrl.hh"
#include "mem/router.hh"
#include "protect/check_stage.hh"
#include "protect/factory.hh"
#include "sim/port.hh"
#include "system/topology.hh"

namespace capcheck::system
{

/** A topology brought to life; owns every platform component. */
struct Platform
{
    /** Topology this platform was elaborated from (for dumps). */
    std::string topologyName;

    ComponentRegistry registry;

    /** @{ Owned components, in node order per kind. */
    std::vector<std::unique_ptr<protect::ProtectionChecker>> checkers;
    std::vector<std::string> checkerNames; ///< parallel to checkers
    std::vector<std::unique_ptr<MemoryController>> memctrls;
    std::vector<std::unique_ptr<AddrRouter>> routers;
    std::vector<std::unique_ptr<protect::CheckStage>> checkStages;
    std::vector<std::unique_ptr<AxiInterconnect>> xbars;
    /** @} */

    /** Where a task's accelerator master plugs in. */
    struct TaskAttach
    {
        AxiInterconnect *xbar = nullptr;
        unsigned slot = 0;
    };

    /** Indexed by task index (round-robin across accel pools). */
    std::vector<TaskAttach> taskAttach;

    const TaskAttach &attachOf(unsigned task) const
    {
        return taskAttach.at(task);
    }

    /** Any checker in the platform clears tags on DMA writes. */
    bool clearsTagsOnWrite() const;

    /** Live entries summed over every owned checker. */
    std::size_t entriesUsed() const;

    /** Beats granted summed over every interconnect. */
    std::uint64_t beatsGranted() const;

    /**
     * The protection backend task @p task's beats pass through, found
     * by walking downstream from its crossbar; nullptr when the path
     * reaches memory unchecked.
     * @throw TopologyError when the walk finds two check stages with
     *        different checkers (the driver could not program both).
     */
    protect::ProtectionChecker *protectionFor(TaskId task) const;

    /**
     * The CapChecker the driver must program for @p task: the bank
     * member for a CheckerBank, the checker itself for a CapChecker,
     * nullptr for the schemes the driver does not program.
     */
    capchecker::CapChecker *checkerFor(TaskId task) const;

    /**
     * Deterministic text rendering of the elaborated graph: every
     * component, its ports and their bound peers, and the task
     * attachment table. Golden-file friendly.
     */
    std::string graphDump() const;
};

class Elaborator
{
  public:
    Elaborator(EventQueue &eq, stats::StatGroup *stat_root,
               const SocConfig &cfg)
        : eq(eq), statRoot(stat_root), cfg(cfg)
    {
    }

    /**
     * Elaborate @p topo for @p num_tasks concurrent tasks.
     * @throw TopologyError on unresolved references, missing pools or
     *        ambiguous checker assignment; PortError on bad binds or
     *        ports a topology leaves unbound.
     */
    Platform elaborate(const Topology &topo, unsigned num_tasks) const;

  private:
    EventQueue &eq;
    stats::StatGroup *statRoot;
    const SocConfig &cfg;
};

} // namespace capcheck::system

#endif // CAPCHECK_SYSTEM_ELABORATOR_HH
