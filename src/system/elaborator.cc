#include "system/elaborator.hh"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "protect/checker_bank.hh"

namespace capcheck::system
{

namespace
{

[[noreturn]] void
fail(const std::string &what, const std::string &node = "")
{
    throw TopologyError("topology: " + what, node);
}

std::uint64_t
getU64(const json::JsonValue &params, const char *key,
       std::uint64_t fallback, const std::string &node)
{
    const json::JsonValue *v = params.get(key);
    if (!v)
        return fallback;
    if (!v->isNumber() || v->asNumber() < 0) {
        fail("node '" + node + "': param '" + key +
             "' must be a non-negative number");
    }
    return static_cast<std::uint64_t>(v->asNumber());
}

unsigned
getUnsigned(const json::JsonValue &params, const char *key,
            unsigned fallback, const std::string &node)
{
    return static_cast<unsigned>(getU64(params, key, fallback, node));
}

std::string
getString(const json::JsonValue &params, const char *key,
          std::string fallback, const std::string &node)
{
    const json::JsonValue *v = params.get(key);
    if (!v)
        return fallback;
    if (!v->isString()) {
        fail("node '" + node + "': param '" + key +
             "' must be a string");
    }
    return v->asString();
}

/**
 * Collect every CheckStage reachable downstream of @p from (through
 * routers and cascaded interconnects). @p visited is the set of
 * components the walk has already entered: revisiting one means the
 * topology wired a cycle, which would otherwise recurse forever.
 */
void
collectStages(RequestPort &from,
              std::vector<protect::CheckStage *> &out,
              std::vector<const SimObject *> &visited)
{
    if (!from.bound())
        return;
    SimObject &owner = from.peerBase()->owner();
    for (const SimObject *seen : visited) {
        if (seen == &owner) {
            fail("downstream walk revisits component '" + owner.name() +
                     "': the topology wires a cycle; request paths "
                     "must form a tree ending at a memory controller",
                 owner.name());
        }
    }
    visited.push_back(&owner);
    if (auto *stage = dynamic_cast<protect::CheckStage *>(&owner)) {
        out.push_back(stage);
        collectStages(stage->memSide(), out, visited);
        return;
    }
    if (auto *router = dynamic_cast<AddrRouter *>(&owner)) {
        for (unsigned i = 0; i < router->numChannels(); ++i)
            collectStages(router->memSide(i), out, visited);
        return;
    }
    if (auto *xbar = dynamic_cast<AxiInterconnect *>(&owner)) {
        collectStages(xbar->memSide(), out, visited);
        return;
    }
    // A memory controller (or any other sink) ends the walk.
}

/**
 * Master slots of xbar nodes that topology edges bind (cascaded
 * crossbars: a child xbar's mem_side plugs into "parent.accel_side<i>").
 * Those slots are taken — task attachment must skip them.
 */
std::unordered_map<std::string, std::set<unsigned>>
edgeBoundSlots(const Topology &topo)
{
    std::unordered_map<std::string, std::set<unsigned>> taken;
    static const std::string prefix = "accel_side";
    for (const TopologyEdge &edge : topo.edges) {
        for (const std::string *end : {&edge.from, &edge.to}) {
            const auto dot = end->find('.');
            if (dot == std::string::npos)
                continue;
            const std::string component = end->substr(0, dot);
            const std::string port = end->substr(dot + 1);
            if (port.rfind(prefix, 0) != 0)
                continue;
            const std::string index = port.substr(prefix.size());
            if (index.empty() ||
                index.find_first_not_of("0123456789") !=
                    std::string::npos)
                continue;
            const TopologyNode *node = topo.findNode(component);
            if (node && node->kind == "xbar") {
                taken[component].insert(
                    static_cast<unsigned>(std::stoul(index)));
            }
        }
    }
    return taken;
}

} // namespace

bool
Platform::clearsTagsOnWrite() const
{
    for (const auto &checker : checkers) {
        if (checker->clearsTagsOnWrite())
            return true;
    }
    return false;
}

std::size_t
Platform::entriesUsed() const
{
    std::size_t total = 0;
    for (const auto &checker : checkers)
        total += checker->entriesUsed();
    return total;
}

std::uint64_t
Platform::beatsGranted() const
{
    std::uint64_t total = 0;
    for (const auto &xbar : xbars)
        total += xbar->beatsGranted();
    return total;
}

protect::ProtectionChecker *
Platform::protectionFor(TaskId task) const
{
    const TaskAttach &attach = attachOf(task);
    std::vector<protect::CheckStage *> stages;
    std::vector<const SimObject *> visited;
    collectStages(attach.xbar->memSide(), stages, visited);

    protect::ProtectionChecker *found = nullptr;
    for (protect::CheckStage *stage : stages) {
        if (!found) {
            found = &stage->protection();
        } else if (found != &stage->protection()) {
            fail("task " + std::to_string(task) +
                     " reaches two check stages with different "
                     "checkers ('" +
                     found->name() + "' and '" +
                     stage->protection().name() +
                     "'); the driver can only program one — share a "
                     "checker or move the router below the check stage",
                 stage->name());
        }
    }
    return found;
}

capchecker::CapChecker *
Platform::checkerFor(TaskId task) const
{
    protect::ProtectionChecker *protection = protectionFor(task);
    if (!protection)
        return nullptr;
    if (auto *bank = dynamic_cast<protect::CheckerBank *>(protection))
        return &bank->at(task);
    return dynamic_cast<capchecker::CapChecker *>(protection);
}

std::string
Platform::graphDump() const
{
    std::ostringstream os;
    os << "topology " << topologyName << "\n";
    for (SimObject *obj : registry.components()) {
        os << "component " << obj->name() << "\n";
        for (PortBase *port : obj->ports()) {
            os << "  " << port->localName() << " ["
               << (port->role() == PortBase::Role::request
                       ? "request"
                       : "response")
               << "] -> ";
            if (port->bound())
                os << port->peerBase()->fullName();
            else
                os << "(unbound)";
            os << "\n";
        }
    }
    for (std::size_t i = 0; i < checkers.size(); ++i) {
        os << "checker " << checkerNames[i] << ": "
           << checkers[i]->name() << "\n";
    }
    for (std::size_t t = 0; t < taskAttach.size(); ++t) {
        os << "task " << t << " -> " << taskAttach[t].xbar->name()
           << ".accel_side" << taskAttach[t].slot << "\n";
    }
    return os.str();
}

Platform
Elaborator::elaborate(const Topology &topo, unsigned num_tasks) const
{
    Platform platform;
    platform.topologyName = topo.name;

    // --- Pre-scan: pools, task->xbar assignment, slot counts ---
    struct PoolRef
    {
        std::string name;
        std::string xbarName;
    };
    std::vector<PoolRef> pools;
    for (const TopologyNode &node : topo.nodes) {
        if (node.kind != "accel_pool")
            continue;
        const std::string xbar_name =
            getString(node.params, "xbar", "", node.name);
        const TopologyNode *target = topo.findNode(xbar_name);
        if (!target || target->kind != "xbar") {
            fail("accel_pool '" + node.name + "' references '" +
                     xbar_name + "', which is not an xbar node",
                 node.name);
        }
        pools.push_back(PoolRef{node.name, xbar_name});
    }
    if (topo.hasPlatform() && pools.empty())
        fail("topology '" + topo.name +
             "' has no accel_pool node; accelerator masters have "
             "nowhere to attach");

    // Cascaded crossbars: slots an edge already binds (a child xbar's
    // mem_side plugged into accel_side<i>) are off-limits for tasks.
    const auto taken_slots = edgeBoundSlots(topo);

    struct PendingAttach
    {
        std::string xbarName;
        unsigned slot;
    };
    // Tasks round-robin across pools; within a pool's xbar they take
    // the lowest free slots, skipping any slot an edge occupies.
    std::unordered_map<std::string, unsigned> nextFreeSlot;
    std::unordered_map<std::string, unsigned> slotsPerXbar;
    std::vector<PendingAttach> attach;
    for (unsigned t = 0; t < num_tasks; ++t) {
        const PoolRef &pool = pools[t % pools.size()];
        unsigned &candidate = nextFreeSlot[pool.xbarName];
        const auto taken_it = taken_slots.find(pool.xbarName);
        if (taken_it != taken_slots.end()) {
            while (taken_it->second.count(candidate))
                ++candidate;
        }
        attach.push_back(PendingAttach{pool.xbarName, candidate});
        slotsPerXbar[pool.xbarName] = ++candidate;
    }

    // --- Construct components, in node (= stat-tree) order ---
    std::unordered_map<std::string, protect::ProtectionChecker *>
        checkersByName;
    std::unordered_map<std::string, AxiInterconnect *> xbarsByName;

    for (const TopologyNode &node : topo.nodes) {
        if (node.kind == "protect") {
            protect::CheckerParams params;
            params.scheme =
                getString(node.params, "scheme", "auto", node.name);
            if (params.scheme == "auto") {
                // Resolve from the run's mode, so one topology file
                // serves every configuration sweep point.
                params.scheme =
                    modeUsesCapChecker(cfg.mode)
                        ? (cfg.perAccelCheckers ? "checker_bank"
                                                : "capchecker")
                        : "none";
            }
            if (!protect::knownCheckerScheme(params.scheme)) {
                fail("protect node '" + node.name +
                         "': unknown scheme '" + params.scheme + "'",
                     node.name);
            }
            params.cap.tableEntries = getUnsigned(
                node.params, "tableEntries", cfg.capTableEntries,
                node.name);
            params.cap.provenance = cfg.provenance;
            params.cap.checkCycles = getU64(
                node.params, "checkCycles", cfg.checkCycles, node.name);
            params.cap.cacheEntries = getUnsigned(
                node.params, "cacheEntries", cfg.capCacheEntries,
                node.name);
            params.cap.cacheWalkCycles =
                getU64(node.params, "cacheWalkCycles",
                       cfg.capCacheWalkCycles, node.name);
            params.cap.fastIndex =
                cfg.simKernel == sim::SimKernel::fast;
            params.banks =
                getUnsigned(node.params, "banks",
                            num_tasks ? num_tasks : 1, node.name);
            params.iotlbEntries = getUnsigned(
                node.params, "iotlbEntries", 32, node.name);
            params.iopmpRegions = getUnsigned(
                node.params, "iopmpRegions", 16, node.name);
            platform.checkers.push_back(protect::createChecker(params));
            platform.checkerNames.push_back(node.name);
            checkersByName[node.name] = platform.checkers.back().get();
        } else if (node.kind == "memctrl") {
            const Cycles latency = getU64(node.params, "latency",
                                          cfg.memLatency, node.name);
            platform.memctrls.push_back(
                std::make_unique<MemoryController>(eq, statRoot,
                                                   latency, node.name));
            platform.registry.add(*platform.memctrls.back());
        } else if (node.kind == "router") {
            unsigned channels =
                getUnsigned(node.params, "channels", 0, node.name);
            if (channels == 0) {
                // Derive the channel count from the mem_side<i> edges.
                const std::string prefix = node.name + ".mem_side";
                for (const TopologyEdge &edge : topo.edges) {
                    channels += edge.from.rfind(prefix, 0) == 0 ||
                                edge.to.rfind(prefix, 0) == 0;
                }
            }
            if (channels == 0) {
                fail("router '" + node.name +
                         "' has no channels: give it a 'channels' "
                         "param or mem_side<i> edges",
                     node.name);
            }
            const std::uint64_t interleave =
                getU64(node.params, "interleaveBytes",
                       AddrRouter::defaultInterleave, node.name);
            platform.routers.push_back(std::make_unique<AddrRouter>(
                eq, statRoot, channels, interleave, node.name));
            platform.registry.add(*platform.routers.back());
        } else if (node.kind == "checkstage") {
            const std::string checker_name =
                getString(node.params, "checker", "", node.name);
            const auto it = checkersByName.find(checker_name);
            if (it == checkersByName.end()) {
                fail("checkstage '" + node.name +
                         "' references protect node '" + checker_name +
                         "', which does not exist (or is declared "
                         "after it)",
                     node.name);
            }
            // A 'bank' param addresses one member of a CheckerBank so
            // per-pool stages can sit above a shared interconnect.
            // When the protect node resolves to an unbanked scheme
            // (e.g. scheme "auto" under a mode without per-accel
            // checkers) the param is a no-op and the stage wraps the
            // whole checker — one file serves every sweep point.
            protect::ProtectionChecker *target = it->second;
            if (node.params.get("bank")) {
                const unsigned bank =
                    getUnsigned(node.params, "bank", 0, node.name);
                if (auto *bankp = dynamic_cast<protect::CheckerBank *>(
                        target)) {
                    if (bank >= bankp->size()) {
                        fail("checkstage '" + node.name + "': bank " +
                                 std::to_string(bank) +
                                 " is out of range (protect node '" +
                                 checker_name + "' has " +
                                 std::to_string(bankp->size()) +
                                 " banks)",
                             node.name);
                    }
                    target = &bankp->at(bank);
                }
            }
            platform.checkStages.push_back(
                std::make_unique<protect::CheckStage>(
                    eq, statRoot, *target, node.name));
            platform.registry.add(*platform.checkStages.back());
        } else if (node.kind == "xbar") {
            unsigned masters =
                getUnsigned(node.params, "masters", 0, node.name);
            if (masters == 0) {
                // Enough slots for the attached tasks plus every slot
                // a topology edge binds (cascaded child crossbars).
                const auto it = slotsPerXbar.find(node.name);
                if (it != slotsPerXbar.end())
                    masters = it->second;
                const auto taken_it = taken_slots.find(node.name);
                if (taken_it != taken_slots.end()) {
                    masters = std::max(
                        masters, *taken_it->second.rbegin() + 1);
                }
            }
            if (masters == 0) {
                fail("xbar '" + node.name +
                         "' has no masters: no tasks or edges attach "
                         "to its accel_side slots and no 'masters' "
                         "param is given",
                     node.name);
            }
            const unsigned burst = getUnsigned(
                node.params, "maxBurst", cfg.xbarMaxBurst, node.name);
            platform.xbars.push_back(
                std::make_unique<AxiInterconnect>(eq, statRoot, masters,
                                                  burst, node.name));
            platform.registry.add(*platform.xbars.back());
            xbarsByName[node.name] = platform.xbars.back().get();
        }
        // accel_pool: attachment point only, no component.
    }

    // --- Bind the edges (PortError on any mis-wire) ---
    for (const TopologyEdge &edge : topo.edges)
        platform.registry.bind(edge.from, edge.to);

    // --- Completeness: every fixed port must be bound. The
    // accel_side<i> slots bind per wave when trace players exist. ---
    for (SimObject *obj : platform.registry.components()) {
        for (PortBase *port : obj->ports()) {
            if (port->bound() ||
                port->localName().rfind("accel_side", 0) == 0)
                continue;
            throw PortError(
                PortError::Kind::unbound,
                "port '" + port->fullName() +
                    "' is not bound to any peer (left unbound by "
                    "topology '" +
                    topo.name + "')",
                port->fullName());
        }
    }

    // --- Task attachment table ---
    for (const PendingAttach &pending : attach) {
        AxiInterconnect *xbar = xbarsByName.at(pending.xbarName);
        if (pending.slot >= xbar->numMasters()) {
            fail("xbar '" + pending.xbarName + "': task attachment "
                     "needs slot " +
                     std::to_string(pending.slot) +
                     " but it has only " +
                     std::to_string(xbar->numMasters()) +
                     " master slots (tasks skip edge-bound slots)",
                 pending.xbarName);
        }
        platform.taskAttach.push_back(
            Platform::TaskAttach{xbar, pending.slot});
    }

    // Resolve every task's checker now, so an ambiguous topology is
    // an elaboration error instead of a mid-run surprise.
    for (unsigned t = 0; t < num_tasks; ++t)
        (void)platform.protectionFor(t);

    return platform;
}

} // namespace capcheck::system
