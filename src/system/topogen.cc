#include "system/topogen.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "base/random.hh"

namespace capcheck::system
{

namespace
{

[[noreturn]] void
fail(const std::string &what)
{
    throw TopologyError("topogen: " + what);
}

json::JsonValue
num(std::uint64_t v)
{
    return json::JsonValue::makeNumber(static_cast<double>(v));
}

json::JsonValue
str(std::string v)
{
    return json::JsonValue::makeString(std::move(v));
}

json::JsonValue
obj(std::vector<json::JsonValue::Member> members)
{
    return json::JsonValue::makeObject(std::move(members));
}

} // namespace

std::string
topoGenName(const TopoGenParams &p)
{
    std::ostringstream os;
    os << "gen-a" << p.accels << "-l" << p.levels << "-c" << p.channels
       << "-b" << p.banks << "-s" << p.seed;
    return os.str();
}

Topology
generateTopology(const TopoGenParams &p)
{
    if (p.accels == 0)
        fail("need at least one accelerator (--accels)");
    if (p.levels == 0)
        fail("need at least one crossbar level (--levels)");
    if (p.fanout == 0)
        fail("crossbar fanout must be at least 1 (--fanout)");
    if (p.channels == 0)
        fail("need at least one memory channel (--channels)");

    // Layer widths, root (layer 0) to leaves. Each layer widens by at
    // most `fanout`, clamped so no leaf crossbar ends up with zero
    // accelerators.
    std::vector<unsigned> width(p.levels, 1);
    for (unsigned l = 1; l < p.levels; ++l) {
        const std::uint64_t grown =
            static_cast<std::uint64_t>(width[l - 1]) * p.fanout;
        width[l] = static_cast<unsigned>(
            std::min<std::uint64_t>(grown, p.accels));
    }
    const unsigned leaves = width[p.levels - 1];
    const unsigned perLeaf = (p.accels + leaves - 1) / leaves;

    // All seed-driven draws happen here, in one fixed order, so the
    // same flags always reproduce the same document byte for byte.
    Rng rng(p.seed ^ 0x70706f67656eULL); // "topogen"
    std::uint64_t interleave = p.interleaveBytes;
    if (p.channels > 1 && interleave == 0) {
        static const std::uint64_t strides[] = {64, 128, 256};
        interleave = strides[rng.nextBounded(3)];
    }
    std::vector<unsigned> burst;
    for (unsigned l = 0; l < p.levels; ++l) {
        for (unsigned j = 0; j < width[l]; ++j) {
            static const unsigned bursts[] = {1, 2, 4};
            burst.push_back(bursts[rng.nextBounded(3)]);
        }
    }

    const auto xbarName = [](unsigned l, unsigned j) {
        return "xbar" + std::to_string(l) + "_" + std::to_string(j);
    };
    const auto memName = [](unsigned i) {
        return "memctrl" + std::to_string(i);
    };
    const auto stageName = [](unsigned i) {
        return "stage" + std::to_string(i);
    };
    // Parent of node j in layer l (contiguous grouping), and j's slot
    // among that parent's children.
    const auto parentOf = [&](unsigned l, unsigned j) {
        return static_cast<unsigned>(
            static_cast<std::uint64_t>(j) * width[l - 1] / width[l]);
    };
    const auto slotOf = [&](unsigned l, unsigned j) {
        const unsigned parent = parentOf(l, j);
        unsigned slot = 0;
        for (unsigned k = 0; k < j; ++k)
            slot += parentOf(l, k) == parent;
        return slot;
    };

    Topology topo;
    topo.name = topoGenName(p);

    // --- Nodes, in construction (= stat-tree) order: protect,
    // memory, router, check stages, crossbars root-first, pools. ---
    {
        std::vector<json::JsonValue::Member> prot{
            {"scheme", str(p.scheme)}};
        if (p.banks > 0)
            prot.push_back({"banks", num(p.banks)});
        topo.nodes.push_back(
            TopologyNode{"protect", "protect", obj(std::move(prot))});
    }
    for (unsigned i = 0; i < p.channels; ++i)
        topo.nodes.push_back(
            TopologyNode{memName(i), "memctrl", obj({})});
    if (p.channels > 1) {
        topo.nodes.push_back(TopologyNode{
            "router", "router",
            obj({{"channels", num(p.channels)},
                 {"interleaveBytes", num(interleave)}})});
    }
    if (p.banks > 0) {
        // One bank-addressed stage above each leaf crossbar: per-pool
        // protection over the shared upper tree.
        for (unsigned k = 0; k < leaves; ++k) {
            topo.nodes.push_back(TopologyNode{
                stageName(k), "checkstage",
                obj({{"checker", str("protect")},
                     {"bank", num(k % p.banks)}})});
        }
    } else {
        // Shared checker behind the root: one stage per channel.
        for (unsigned i = 0; i < p.channels; ++i) {
            topo.nodes.push_back(TopologyNode{
                stageName(i), "checkstage",
                obj({{"checker", str("protect")}})});
        }
    }
    {
        std::size_t b = 0;
        for (unsigned l = 0; l < p.levels; ++l) {
            for (unsigned j = 0; j < width[l]; ++j, ++b) {
                unsigned masters;
                if (l + 1 < p.levels) {
                    masters = 0; // children of this upper-level node
                    for (unsigned k = 0; k < width[l + 1]; ++k)
                        masters += parentOf(l + 1, k) == j;
                } else {
                    masters = perLeaf;
                }
                topo.nodes.push_back(TopologyNode{
                    xbarName(l, j), "xbar",
                    obj({{"masters", num(masters)},
                         {"maxBurst", num(burst[b])}})});
            }
        }
    }
    for (unsigned k = 0; k < leaves; ++k) {
        topo.nodes.push_back(TopologyNode{
            "pool" + std::to_string(k), "accel_pool",
            obj({{"xbar", str(xbarName(p.levels - 1, k))}})});
    }

    // --- Edges: cascade (leaves upward), then root-to-memory. ---
    const auto edge = [&](std::string from, std::string to) {
        topo.edges.push_back(
            TopologyEdge{std::move(from), std::move(to)});
    };
    for (unsigned l = p.levels - 1; l >= 1; --l) {
        for (unsigned j = 0; j < width[l]; ++j) {
            const std::string up =
                xbarName(l - 1, parentOf(l, j)) + ".accel_side" +
                std::to_string(slotOf(l, j));
            if (p.banks > 0 && l == p.levels - 1) {
                edge(xbarName(l, j) + ".mem_side",
                     stageName(j) + ".cpu_side");
                edge(stageName(j) + ".mem_side", up);
            } else {
                edge(xbarName(l, j) + ".mem_side", up);
            }
        }
    }
    std::string trunk = xbarName(0, 0) + ".mem_side";
    if (p.banks > 0 && p.levels == 1) {
        edge(trunk, stageName(0) + ".cpu_side");
        trunk = stageName(0) + ".mem_side";
    }
    if (p.channels > 1) {
        edge(trunk, "router.cpu_side");
        for (unsigned i = 0; i < p.channels; ++i) {
            if (p.banks > 0) {
                edge("router.mem_side" + std::to_string(i),
                     memName(i) + ".cpu_side");
            } else {
                edge("router.mem_side" + std::to_string(i),
                     stageName(i) + ".cpu_side");
                edge(stageName(i) + ".mem_side",
                     memName(i) + ".cpu_side");
            }
        }
    } else if (p.banks > 0) {
        edge(trunk, memName(0) + ".cpu_side");
    } else {
        edge(trunk, stageName(0) + ".cpu_side");
        edge(stageName(0) + ".mem_side", memName(0) + ".cpu_side");
    }
    return topo;
}

} // namespace capcheck::system
