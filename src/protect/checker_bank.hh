/**
 * @file
 * A bank of per-accelerator CapCheckers (the Section 5.2.1 design
 * alternative to the single shared checker): each interconnect master
 * gets an exclusive checker, and requests route to their master's
 * checker. On the prototype's single-beat interconnect this buys no
 * bandwidth — only area — which the abl_shared_checker harness
 * quantifies.
 */

#ifndef CAPCHECK_PROTECT_CHECKER_BANK_HH
#define CAPCHECK_PROTECT_CHECKER_BANK_HH

#include <memory>
#include <vector>

#include "capchecker/capchecker.hh"

namespace capcheck::protect
{

class CheckerBank : public ProtectionChecker
{
  public:
    CheckerBank(unsigned num_checkers,
                const capchecker::CapChecker::Params &params);

    capchecker::CapChecker &at(PortId port);

    /** Number of per-master checkers in the bank. */
    unsigned size() const
    {
        return static_cast<unsigned>(checkers.size());
    }

    CheckResult check(const MemRequest &req) override;

    bool clearsTagsOnWrite() const override { return true; }
    Cycles checkLatency() const override;
    Cycles lastExtraLatency() const override;
    std::size_t entriesUsed() const override;

    bool exceptionFlagSet() const;

    SchemeProperties properties() const override;
    std::string name() const override;

  private:
    std::vector<std::unique_ptr<capchecker::CapChecker>> checkers;
    PortId lastPort = 0;
};

} // namespace capcheck::protect

#endif // CAPCHECK_PROTECT_CHECKER_BANK_HH
