#include "protect/factory.hh"

#include <stdexcept>

#include "protect/checker_bank.hh"
#include "protect/iommu.hh"
#include "protect/iopmp.hh"
#include "protect/no_protection.hh"

namespace capcheck::protect
{

const std::vector<std::string> &
checkerSchemeNames()
{
    static const std::vector<std::string> names{
        "none", "capchecker", "checker_bank", "iommu", "iopmp"};
    return names;
}

bool
knownCheckerScheme(const std::string &scheme)
{
    for (const std::string &name : checkerSchemeNames()) {
        if (name == scheme)
            return true;
    }
    return false;
}

std::unique_ptr<ProtectionChecker>
createChecker(const CheckerParams &params)
{
    if (params.scheme == "none")
        return std::make_unique<NoProtection>();
    if (params.scheme == "capchecker")
        return std::make_unique<capchecker::CapChecker>(params.cap);
    if (params.scheme == "checker_bank")
        return std::make_unique<CheckerBank>(params.banks, params.cap);
    if (params.scheme == "iommu")
        return std::make_unique<Iommu>(params.iotlbEntries);
    if (params.scheme == "iopmp")
        return std::make_unique<Iopmp>(params.iopmpRegions);

    std::string known;
    for (const std::string &name : checkerSchemeNames())
        known += (known.empty() ? "" : ", ") + name;
    throw std::invalid_argument("unknown protection scheme '" +
                                params.scheme + "' (known: " + known +
                                ")");
}

} // namespace capcheck::protect
