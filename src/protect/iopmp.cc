#include "protect/iopmp.hh"

namespace capcheck::protect
{

Iopmp::Iopmp(unsigned num_regions) : limit(num_regions)
{
}

std::optional<unsigned>
Iopmp::addRegion(const Region &region)
{
    if (regions.size() >= limit)
        return std::nullopt;
    regions.push_back(region);
    return static_cast<unsigned>(regions.size() - 1);
}

void
Iopmp::removeTaskRegions(TaskId task)
{
    std::erase_if(regions,
                  [task](const Region &r) { return r.task == task; });
}

CheckResult
Iopmp::check(const MemRequest &req)
{
    for (const Region &r : regions) {
        if (r.task != req.task)
            continue;
        if (req.addr >= r.base && req.addr + req.size <= r.base + r.size) {
            const bool write = req.cmd == MemCmd::write;
            if ((write && r.allowWrite) || (!write && r.allowRead))
                return CheckResult::allow();
            return CheckResult::deny("iopmp: permission violation");
        }
    }
    return CheckResult::deny("iopmp: no matching region");
}

std::size_t
Iopmp::entriesUsed() const
{
    return regions.size();
}

SchemeProperties
Iopmp::properties() const
{
    SchemeProperties p;
    p.name = "iopmp";
    p.spatialEnforcement = true;
    p.granularityBytes = 1;
    p.commonObjectRepresentation = false;
    p.unforgeable = false;
    p.scalable = "no"; // associative comparators do not scale
    p.addressTranslation = "no";
    p.suitsMicrocontrollers = true;
    p.suitsApplicationProcessors = false;
    return p;
}

} // namespace capcheck::protect
