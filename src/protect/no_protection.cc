#include "protect/no_protection.hh"

namespace capcheck::protect
{

SchemeProperties
NoProtection::properties() const
{
    SchemeProperties p;
    p.name = "none";
    p.spatialEnforcement = false;
    p.granularityBytes = 0;
    p.commonObjectRepresentation = false;
    p.unforgeable = false;
    p.scalable = "yes";
    p.addressTranslation = "no";
    p.suitsMicrocontrollers = true;
    p.suitsApplicationProcessors = true;
    return p;
}

} // namespace capcheck::protect
