/**
 * @file
 * Factory over the protection-scheme backends. Every scheme the paper
 * compares (Table 1) is constructible from one parameter struct by its
 * string name, so topology descriptions can pick a backend
 * declaratively and the elaborator needs no per-scheme code.
 */

#ifndef CAPCHECK_PROTECT_FACTORY_HH
#define CAPCHECK_PROTECT_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "capchecker/capchecker.hh"
#include "protect/checker.hh"

namespace capcheck::protect
{

/** Union of every backend's construction parameters. */
struct CheckerParams
{
    /**
     * Backend name: "none", "capchecker", "checker_bank", "iommu" or
     * "iopmp". (The topology layer's "auto" must be resolved to one of
     * these before calling createChecker().)
     */
    std::string scheme = "none";

    /** capchecker / checker_bank: the CapChecker configuration. */
    capchecker::CapChecker::Params cap;

    /** checker_bank: number of per-master checkers. */
    unsigned banks = 1;

    /** iommu: IOTLB capacity. */
    unsigned iotlbEntries = 32;

    /** iopmp: comparator (region) count. */
    unsigned iopmpRegions = 16;
};

/** Names createChecker() accepts, in canonical order. */
const std::vector<std::string> &checkerSchemeNames();

bool knownCheckerScheme(const std::string &scheme);

/**
 * Build the protection backend @p params.scheme describes.
 * @throw std::invalid_argument on an unknown scheme name (the message
 *        lists the known ones).
 */
std::unique_ptr<ProtectionChecker>
createChecker(const CheckerParams &params);

} // namespace capcheck::protect

#endif // CAPCHECK_PROTECT_FACTORY_HH
