/**
 * @file
 * IOMMU model: page-granularity protection with per-task page mappings
 * and an IOTLB. Protection granularity is the 4 KiB page (Table 1), so
 * intra-page overflows between co-located buffers are invisible to it;
 * for the Fig. 12 entry-count comparison the driver maps each buffer
 * onto private pages (one buffer per page, the paper's fairness rule).
 */

#ifndef CAPCHECK_PROTECT_IOMMU_HH
#define CAPCHECK_PROTECT_IOMMU_HH

#include <map>
#include <vector>

#include "protect/checker.hh"

namespace capcheck::protect
{

class Iommu : public ProtectionChecker
{
  public:
    static constexpr std::uint64_t pageSize = 4096;

    /** @param iotlb_entries IOTLB capacity (fully associative, FIFO). */
    explicit Iommu(unsigned iotlb_entries = 32);

    /**
     * Map every page overlapping [base, base+size) for @p task.
     * @return number of page-table entries created.
     */
    unsigned mapRange(TaskId task, Addr base, std::uint64_t size,
                      bool writable);

    /** Remove all mappings of @p task and shoot down its IOTLB slots. */
    void unmapTask(TaskId task);

    CheckResult check(const MemRequest &req) override;

    /**
     * Page-table entries currently live — the quantity Fig. 12 compares
     * against CapChecker capability-table entries.
     */
    std::size_t entriesUsed() const override;

    std::uint64_t iotlbHits() const { return _tlbHits; }
    std::uint64_t iotlbMisses() const { return _tlbMisses; }

    /** Latency model: IOTLB hit 1 cycle; misses walk the page table. */
    Cycles checkLatency() const override { return 1; }

    /** Extra cycles for the most recent check (page-walk cost). */
    Cycles lastWalkCycles() const { return _lastWalk; }

    Cycles lastExtraLatency() const override { return _lastWalk; }

    SchemeProperties properties() const override;

    std::string
    name() const override
    {
        return "iommu";
    }

  private:
    struct Pte
    {
        TaskId task;
        std::uint64_t page;

        bool
        operator<(const Pte &other) const
        {
            return task != other.task ? task < other.task
                                      : page < other.page;
        }

        bool
        operator==(const Pte &other) const
        {
            return task == other.task && page == other.page;
        }
    };

    unsigned tlbCapacity;
    std::map<Pte, bool> pageTable; ///< -> writable
    std::vector<Pte> iotlb;        ///< FIFO
    std::uint64_t _tlbHits = 0;
    std::uint64_t _tlbMisses = 0;
    Cycles _lastWalk = 0;
};

} // namespace capcheck::protect

#endif // CAPCHECK_PROTECT_IOMMU_HH
