#include "protect/check_stage.hh"

#include "base/invariant.hh"
#include "obs/prof.hh"
#include "base/logging.hh"

namespace capcheck::protect
{

CheckStage::CheckStage(EventQueue &eq, stats::StatGroup *parent_stats,
                       ProtectionChecker &checker, std::string name)
    : TickingObject(eq, std::move(name), parent_stats,
                    Event::checkPrio),
      checker(checker),
      cpuSidePort(*this, "cpu_side",
                  static_cast<TimingConsumer &>(*this)),
      memSidePort(*this, "mem_side",
                  static_cast<ResponseHandler &>(*this)),
      checked(stats, "checked", "requests checked"),
      denied(stats, "denied", "requests denied"),
      stallCycles(stats, "stallCycles",
                  "cycles the stage head waited for downstream")
{
}

bool
CheckStage::tryAccept(const MemRequest &req)
{
    PROF_SCOPE("capcheck", "stage.accept");
    // One new request per cycle (the check pipeline's issue rate).
    if (lastAcceptCycle == curCycle())
        return false;
    if (pipe.size() > checker.checkLatency() + 4)
        return false; // downstream badly stalled

    lastAcceptCycle = curCycle();
    ++checked;
    const CheckResult verdict = checker.check(req);
    if (!verdict.allowed)
        ++denied;

    const Cycles latency =
        checker.checkLatency() + checker.lastExtraLatency();
    _timingProbe.notify(CheckTimingEvent{&req, verdict.allowed,
                                         curCycle(),
                                         curCycle() + latency});
    if (latency == 0 && verdict.allowed && pipe.empty()) {
        // Transparent pass-through (the "no method" configuration).
        return memSidePort.trySend(req);
    }

    // The pipe drains strictly FIFO, so a cache-miss walk making an
    // older entry due *later* than a newer hit is legal (head-of-line
    // blocking); what must hold is the structural depth bound enforced
    // by the admission guard above.
    PARANOID_INVARIANT(pipe.size() <= checker.checkLatency() + 5,
                       "check pipeline deeper than its structural bound "
                       "(%zu entries)",
                       pipe.size());
    pipe.push_back(Staged{req, verdict.allowed, curCycle() + latency});
    activate(latency ? latency : 1);
    return true;
}

bool
CheckStage::tick()
{
    while (!pipe.empty() && pipe.front().due <= curCycle()) {
        Staged &head = pipe.front();
        if (!head.allowed) {
            MemResponse resp;
            resp.id = head.req.id;
            resp.srcPort = head.req.srcPort;
            resp.ok = false;
            cpuSidePort.sendResponse(resp);
            pipe.pop_front();
            continue;
        }
        // The paper's core security property, asserted at the memory
        // boundary: a request the checker denied is never forwarded.
        INVARIANT(head.allowed,
                  "denied request (id %llu) about to cross the memory "
                  "boundary",
                  static_cast<unsigned long long>(head.req.id));
        if (memSidePort.trySend(head.req)) {
            pipe.pop_front();
            // Only one forward per cycle (single downstream channel).
            break;
        }
        ++stallCycles;
        break;
    }
    return !pipe.empty();
}

void
CheckStage::handleResponse(const MemResponse &resp)
{
    // Memory responses pass through combinationally: the stage only
    // filters the request path, so the response reaches the
    // interconnect in the same cycle it left the controller.
    cpuSidePort.sendResponse(resp);
}

} // namespace capcheck::protect
