/**
 * @file
 * Common interface for the I/O memory protection schemes the paper
 * compares (Table 1): no protection, IOPMP, IOMMU, and the CapChecker.
 * A checker gives a functional allow/deny verdict per accelerator
 * memory request, declares its tag discipline (whether accelerator
 * writes clear capability tags — the anti-forgery property only the
 * CapChecker has), and reports its static properties for Table 1.
 */

#ifndef CAPCHECK_PROTECT_CHECKER_HH
#define CAPCHECK_PROTECT_CHECKER_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "mem/packet.hh"

namespace capcheck::protect
{

/** Verdict for one accelerator memory request. */
struct CheckResult
{
    bool allowed = false;
    std::string reason; ///< diagnostic, empty when allowed

    static CheckResult
    allow()
    {
        return CheckResult{true, {}};
    }

    static CheckResult
    deny(std::string reason)
    {
        return CheckResult{false, std::move(reason)};
    }
};

/** Static properties, one column of the paper's Table 1. */
struct SchemeProperties
{
    std::string name;
    bool spatialEnforcement = false;
    std::uint64_t granularityBytes = 0; ///< 0 = no enforcement
    bool commonObjectRepresentation = false;
    bool unforgeable = false;
    /** "yes", "no" or "semi" in the paper's table. */
    std::string scalable = "no";
    std::string addressTranslation = "no";
    bool suitsMicrocontrollers = false;
    bool suitsApplicationProcessors = false;
};

class ProtectionChecker
{
  public:
    virtual ~ProtectionChecker() = default;

    /** Functional verdict for an accelerator request. */
    virtual CheckResult check(const MemRequest &req) = 0;

    /**
     * Whether accelerator-side writes clear capability tags in memory.
     * Only a CHERI-aware interposer does; the others leave the tag
     * path untouched, which is what makes forging possible.
     */
    virtual bool clearsTagsOnWrite() const { return false; }

    /** Pipeline latency the checker adds per request (cycles). */
    virtual Cycles checkLatency() const { return 0; }

    /**
     * Additional latency incurred by the most recent check() — e.g. an
     * IOTLB page walk or a capability-cache miss. Zero for schemes
     * whose state is entirely on-chip.
     */
    virtual Cycles lastExtraLatency() const { return 0; }

    /** Entries (table rows / TLB slots / regions) currently in use. */
    virtual std::size_t entriesUsed() const { return 0; }

    /** Static property column for Table 1. */
    virtual SchemeProperties properties() const = 0;

    virtual std::string name() const = 0;
};

} // namespace capcheck::protect

#endif // CAPCHECK_PROTECT_CHECKER_HH
