#include "protect/checker.hh"

// Interface-only translation unit: keeps the vtable anchored here.

namespace capcheck::protect
{
} // namespace capcheck::protect
