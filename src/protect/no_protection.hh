/**
 * @file
 * The "no method" baseline: every accelerator access reaches memory —
 * the vanilla embedded-system configuration of Fig. 1(a).
 */

#ifndef CAPCHECK_PROTECT_NO_PROTECTION_HH
#define CAPCHECK_PROTECT_NO_PROTECTION_HH

#include "protect/checker.hh"

namespace capcheck::protect
{

class NoProtection : public ProtectionChecker
{
  public:
    CheckResult
    check(const MemRequest &) override
    {
        return CheckResult::allow();
    }

    SchemeProperties properties() const override;

    std::string
    name() const override
    {
        return "none";
    }
};

} // namespace capcheck::protect

#endif // CAPCHECK_PROTECT_NO_PROTECTION_HH
