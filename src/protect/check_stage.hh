/**
 * @file
 * Timing wrapper placing a ProtectionChecker between the interconnect
 * and the memory controller. Throughput is one request per cycle
 * (pipelined); each request spends the checker's latency in the stage.
 * Denied requests never reach memory — an error response goes back to
 * the issuing master instead.
 */

#ifndef CAPCHECK_PROTECT_CHECK_STAGE_HH
#define CAPCHECK_PROTECT_CHECK_STAGE_HH

#include <deque>

#include "base/probe.hh"
#include "protect/checker.hh"
#include "sim/clocked.hh"
#include "sim/port.hh"

namespace capcheck::protect
{

/** One check occupying the stage: accept cycle through result cycle. */
struct CheckTimingEvent
{
    const MemRequest *req;
    bool allowed;
    Cycles start;
    Cycles end;
};

class CheckStage : public TickingObject, public TimingConsumer,
                   public ResponseHandler
{
  public:
    CheckStage(EventQueue &eq, stats::StatGroup *parent_stats,
               ProtectionChecker &checker,
               std::string name = "checkstage");

    /**
     * Upstream-facing port (bind to the interconnect's mem side):
     * requests enter through it; denial responses — and responses
     * forwarded up from memory — leave through it.
     */
    ResponsePort &cpuSide() { return cpuSidePort; }

    /** Downstream-facing port (bind to memory or a channel router). */
    RequestPort &memSide() { return memSidePort; }

    /** The functional checker this stage wraps (any of the backends). */
    ProtectionChecker &protection() { return checker; }

    bool tryAccept(const MemRequest &req) override;
    bool tick() override;
    const char *profKind() const override { return "checkstage"; }

    /** ResponseHandler: pass memory responses through, upstream. */
    void handleResponse(const MemResponse &resp) override;

    /** Fired once per accepted request with its occupancy window. */
    probe::ProbePoint<CheckTimingEvent> &timingProbe()
    {
        return _timingProbe;
    }

    std::uint64_t
    denials() const
    {
        return static_cast<std::uint64_t>(denied.value());
    }

  private:
    struct Staged
    {
        MemRequest req;
        bool allowed;
        Cycles due;
    };

    ProtectionChecker &checker;
    ResponsePort cpuSidePort;
    RequestPort memSidePort;
    std::deque<Staged> pipe;
    Cycles lastAcceptCycle = ~Cycles{0};

    stats::Scalar checked;
    stats::Scalar denied;
    stats::Scalar stallCycles;

    probe::ProbePoint<CheckTimingEvent> _timingProbe{
        "checkstage.timing"};
};

} // namespace capcheck::protect

#endif // CAPCHECK_PROTECT_CHECK_STAGE_HH
