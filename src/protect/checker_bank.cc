#include "protect/checker_bank.hh"

#include "base/logging.hh"

namespace capcheck::protect
{

CheckerBank::CheckerBank(unsigned num_checkers,
                         const capchecker::CapChecker::Params &params)
{
    if (num_checkers == 0)
        fatal("CheckerBank needs at least one checker");
    for (unsigned i = 0; i < num_checkers; ++i)
        checkers.push_back(
            std::make_unique<capchecker::CapChecker>(params));
}

capchecker::CapChecker &
CheckerBank::at(PortId port)
{
    if (port >= checkers.size())
        panic("CheckerBank: no checker for port %u", port);
    return *checkers[port];
}

CheckResult
CheckerBank::check(const MemRequest &req)
{
    lastPort = req.srcPort;
    return at(req.srcPort).check(req);
}

Cycles
CheckerBank::checkLatency() const
{
    return checkers.front()->checkLatency();
}

Cycles
CheckerBank::lastExtraLatency() const
{
    return checkers[lastPort < checkers.size() ? lastPort : 0]
        ->lastExtraLatency();
}

std::size_t
CheckerBank::entriesUsed() const
{
    std::size_t used = 0;
    for (const auto &checker : checkers)
        used += checker->entriesUsed();
    return used;
}

bool
CheckerBank::exceptionFlagSet() const
{
    for (const auto &checker : checkers) {
        if (checker->exceptionFlagSet())
            return true;
    }
    return false;
}

SchemeProperties
CheckerBank::properties() const
{
    return checkers.front()->properties();
}

std::string
CheckerBank::name() const
{
    return checkers.front()->name() + "-bank";
}

} // namespace capcheck::protect
