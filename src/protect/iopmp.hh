/**
 * @file
 * RISC-V IOPMP model: a small set of physical-memory regions checked
 * associatively against each request's source (task). Byte-granular but
 * limited to a handful of regions — real implementations are "limited
 * to single-digit or teen numbers of regions" (Section 3.2) because the
 * parallel comparators are expensive.
 */

#ifndef CAPCHECK_PROTECT_IOPMP_HH
#define CAPCHECK_PROTECT_IOPMP_HH

#include <optional>
#include <vector>

#include "protect/checker.hh"

namespace capcheck::protect
{

class Iopmp : public ProtectionChecker
{
  public:
    struct Region
    {
        TaskId task = invalidTaskId;
        Addr base = 0;
        std::uint64_t size = 0;
        bool allowRead = true;
        bool allowWrite = true;
    };

    /** @param num_regions comparator count (default 16). */
    explicit Iopmp(unsigned num_regions = 16);

    /**
     * Program a region for a task.
     * @return region index, or nullopt when all comparators are in use.
     */
    std::optional<unsigned> addRegion(const Region &region);

    /** Clear all regions belonging to @p task. */
    void removeTaskRegions(TaskId task);

    unsigned regionLimit() const { return limit; }

    CheckResult check(const MemRequest &req) override;
    std::size_t entriesUsed() const override;
    SchemeProperties properties() const override;

    std::string
    name() const override
    {
        return "iopmp";
    }

  private:
    unsigned limit;
    std::vector<Region> regions;
};

} // namespace capcheck::protect

#endif // CAPCHECK_PROTECT_IOPMP_HH
