#include "protect/iommu.hh"

#include <algorithm>

namespace capcheck::protect
{

Iommu::Iommu(unsigned iotlb_entries) : tlbCapacity(iotlb_entries)
{
}

unsigned
Iommu::mapRange(TaskId task, Addr base, std::uint64_t size,
                bool writable)
{
    unsigned created = 0;
    const std::uint64_t first = base / pageSize;
    const std::uint64_t last = (base + size - 1) / pageSize;
    for (std::uint64_t page = first; page <= last; ++page) {
        if (pageTable.emplace(Pte{task, page}, writable).second)
            ++created;
    }
    return created;
}

void
Iommu::unmapTask(TaskId task)
{
    std::erase_if(pageTable, [task](const auto &kv) {
        return kv.first.task == task;
    });
    std::erase_if(iotlb,
                  [task](const Pte &pte) { return pte.task == task; });
}

CheckResult
Iommu::check(const MemRequest &req)
{
    _lastWalk = 0;
    const std::uint64_t first = req.addr / pageSize;
    const std::uint64_t last =
        (req.addr + (req.size ? req.size - 1 : 0)) / pageSize;

    for (std::uint64_t page = first; page <= last; ++page) {
        const Pte key{req.task, page};
        const bool in_tlb =
            std::find(iotlb.begin(), iotlb.end(), key) != iotlb.end();
        if (in_tlb) {
            ++_tlbHits;
        } else {
            ++_tlbMisses;
            _lastWalk += 4 * 30; // 4-level walk, DRAM latency each
        }

        const auto it = pageTable.find(key);
        if (it == pageTable.end())
            return CheckResult::deny("iommu: unmapped page");
        if (req.cmd == MemCmd::write && !it->second)
            return CheckResult::deny("iommu: read-only page");

        if (!in_tlb) {
            if (iotlb.size() >= tlbCapacity)
                iotlb.erase(iotlb.begin());
            iotlb.push_back(key);
        }
    }
    return CheckResult::allow();
}

std::size_t
Iommu::entriesUsed() const
{
    return pageTable.size();
}

SchemeProperties
Iommu::properties() const
{
    SchemeProperties p;
    p.name = "iommu";
    p.spatialEnforcement = true;
    p.granularityBytes = pageSize;
    p.commonObjectRepresentation = false;
    p.unforgeable = false;
    p.scalable = "yes";
    p.addressTranslation = "yes";
    p.suitsMicrocontrollers = false;
    p.suitsApplicationProcessors = true;
    return p;
}

} // namespace capcheck::protect
