/**
 * @file
 * Accelerator-specialized protection baseline in the style of sNPU
 * (Feng et al., ISCA 2024): the interposer knows, per task, the union
 * of memory regions that task may touch — task-granularity ("TA")
 * protection with no per-object intent, and a protection scheme
 * private to the accelerator (no common object representation with the
 * CPU, hence forgeable from the CPU's perspective).
 */

#ifndef CAPCHECK_PROTECT_TASK_BOUND_HH
#define CAPCHECK_PROTECT_TASK_BOUND_HH

#include <vector>

#include "protect/checker.hh"

namespace capcheck::protect
{

class TaskBound : public ProtectionChecker
{
  public:
    struct Region
    {
        TaskId task = invalidTaskId;
        Addr base = 0;
        std::uint64_t size = 0;
    };

    void
    addRegion(TaskId task, Addr base, std::uint64_t size)
    {
        regions.push_back(Region{task, base, size});
    }

    void
    removeTask(TaskId task)
    {
        std::erase_if(regions, [task](const Region &r) {
            return r.task == task;
        });
    }

    CheckResult
    check(const MemRequest &req) override
    {
        for (const Region &r : regions) {
            if (r.task == req.task && req.addr >= r.base &&
                req.addr + req.size <= r.base + r.size)
                return CheckResult::allow();
        }
        return CheckResult::deny("task-bound: outside task regions");
    }

    Cycles checkLatency() const override { return 1; }
    std::size_t entriesUsed() const override { return regions.size(); }

    SchemeProperties
    properties() const override
    {
        SchemeProperties p;
        p.name = name();
        p.spatialEnforcement = true;
        p.granularityBytes = 1;
        p.commonObjectRepresentation = false;
        p.unforgeable = false;
        p.scalable = "no"; // tied to one accelerator architecture
        p.addressTranslation = "no";
        p.suitsMicrocontrollers = true;
        p.suitsApplicationProcessors = false;
        return p;
    }

    std::string
    name() const override
    {
        return "snpu-like";
    }

  private:
    std::vector<Region> regions;
};

} // namespace capcheck::protect

#endif // CAPCHECK_PROTECT_TASK_BOUND_HH
