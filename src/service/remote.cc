#include "service/remote.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "base/logging.hh"
#include "service/frame.hh"
#include "service/wire.hh"

namespace capcheck::service
{

namespace
{

std::uint64_t
hashFromHex(const std::string &hex)
{
    return std::strtoull(hex.c_str(), nullptr, 16);
}

/** Map a framing failure onto the structured service error space. */
[[noreturn]] void
rethrowFrameError(const FrameError &e)
{
    switch (e.kind()) {
      case FrameError::Kind::badMagic:
        throw ServiceError(errBadFrame, e.what());
      case FrameError::Kind::oversize:
        throw ServiceError(errOversizeFrame, e.what());
      case FrameError::Kind::io:
        break;
    }
    throw ServiceError(errConnect, e.what());
}

/** Throw when the server itself reported a structured error. */
void
throwIfErrorFrame(const json::JsonValue &v)
{
    if (messageType(v) != "error")
        return;
    const json::JsonValue *code = v.get("code");
    const json::JsonValue *message = v.get("message");
    throw ServiceError(
        code && code->isString() ? code->asString() : errProtocol,
        message && message->isString() ? message->asString()
                                       : "daemon error");
}

json::JsonValue
parseFrame(const std::string &payload)
{
    std::string err;
    auto v = json::parseJson(payload, &err);
    if (!v) {
        throw ServiceError(errProtocol,
                           "unparseable frame from daemon: " + err);
    }
    return std::move(*v);
}

} // namespace

RemoteService::RemoteService(harness::SweepOptions options)
    : opts(std::move(options))
{
    std::string err;
    conn = connectUnix(opts.serverSocket, &err);
    if (!conn.valid()) {
        throw ServiceError(errConnect,
                           "cannot connect to capcheckd at '" +
                               opts.serverSocket + "': " + err);
    }
    // Handshake: a pong with a matching protocol version, before the
    // caller invests in building a batch.
    const json::JsonValue pongv = parseFrame(roundTrip(encodePing()));
    throwIfErrorFrame(pongv);
    const auto pong = pongFromJson(pongv);
    if (!pong) {
        throw ServiceError(errProtocol,
                           "expected pong, got '" +
                               messageType(pongv) + "'");
    }
    if (pong->protocol != protocolVersion) {
        throw ServiceError(
            errProtocol,
            "protocol version mismatch: daemon speaks " +
                std::to_string(pong->protocol) +
                ", this client speaks " +
                std::to_string(protocolVersion));
    }
    // Same protocol but diverging request hashing is survivable (the
    // daemon re-hashes and would answer from a differently-keyed
    // cache, not corrupt one), so skew is a warning, not an error.
    if (!pong->build.empty() && pong->build != buildHash()) {
        warn("capcheckd at '%s' is a different build (daemon %s, "
             "client %s): caches will not be shared across the skew",
             opts.serverSocket.c_str(), pong->build.c_str(),
             buildHash().c_str());
    }
}

std::string
RemoteService::roundTrip(const std::string &payload)
{
    try {
        sendFrame(conn.get(), payload, &meter);
        auto reply = recvFrame(conn.get(), defaultMaxFrameBytes,
                               &meter);
        if (!reply) {
            throw ServiceError(errConnect,
                               "daemon closed the connection");
        }
        return std::move(*reply);
    } catch (const FrameError &e) {
        rethrowFrameError(e);
    }
}

std::vector<harness::RunOutcome>
RemoteService::submit(const std::vector<harness::RunRequest> &requests,
                      const std::string &sweep_name, const Sink &sink)
{
    std::scoped_lock lock(mtx);
    const auto batch_t0 = std::chrono::steady_clock::now();
    const std::uint64_t batch = nextBatch++;

    std::vector<harness::RunOutcome> outcomes(requests.size());
    std::vector<std::string> bodies(requests.size());
    std::vector<char> filled(requests.size(), 0);
    for (std::size_t i = 0; i < requests.size(); ++i)
        outcomes[i].request = requests[i];

    harness::SweepProfile profile;
    std::size_t executedSeen = 0;
    std::size_t firstFailed = requests.size();
    std::string firstError;

    try {
        sendFrame(conn.get(),
                  encodeSubmit(batch, sweep_name,
                               SubmitOptions::fromSweepOptions(opts),
                               requests, opts.traceId),
                  &meter);
        bool done = false;
        while (!done) {
            auto payload = recvFrame(conn.get(),
                                     defaultMaxFrameBytes, &meter);
            if (!payload) {
                throw ServiceError(
                    errConnect,
                    "daemon closed the connection mid-batch");
            }
            const json::JsonValue v = parseFrame(*payload);
            throwIfErrorFrame(v);
            const std::string type = messageType(v);
            if (type == "result") {
                const json::JsonValue *idx = v.get("index");
                const std::size_t i =
                    idx && idx->isNumber()
                        ? static_cast<std::size_t>(idx->asNumber())
                        : requests.size();
                if (i >= requests.size()) {
                    throw ServiceError(errProtocol,
                                       "result index out of range");
                }
                const json::JsonValue *st = v.get("status");
                const std::string status =
                    st && st->isString() ? st->asString() : "";
                const json::JsonValue *wall = v.get("wallMillis");
                const double wallMillis =
                    wall && wall->isNumber() ? wall->asNumber() : 0;

                harness::RunOutcome &out = outcomes[i];
                filled[i] = 1;
                if (status == "failed") {
                    const json::JsonValue *em = v.get("error");
                    if (firstFailed == requests.size()) {
                        firstFailed = i;
                        firstError = em && em->isString()
                                         ? em->asString()
                                         : "simulation failed";
                    }
                } else {
                    const json::JsonValue *res = v.get("result");
                    std::string perr = "missing 'result'";
                    std::optional<system::RunResult> parsed;
                    if (res)
                        parsed =
                            harness::resultFromWireJson(*res, &perr);
                    if (!parsed) {
                        throw ServiceError(
                            errProtocol,
                            "result frame for index " +
                                std::to_string(i) +
                                " unparseable: " + perr);
                    }
                    out.result = std::move(*parsed);
                    out.cacheHit = status == "cached";
                    out.wallMillis = out.cacheHit ? 0 : wallMillis;
                    if (const json::JsonValue *rj =
                            v.get("resultJson");
                        rj && rj->isString())
                        bodies[i] = rj->asString();
                    if (!out.cacheHit)
                        profile.simWallMillis += wallMillis;
                }

                if (opts.progress) {
                    // The fresh-simulation total is only known at the
                    // done frame, so remote progress counts against
                    // the batch size instead.
                    if (status == "cached") {
                        *opts.progress
                            << "[cache] " << requests[i].label()
                            << " cycles=" << out.result.totalCycles
                            << " cache=hit\n";
                    } else if (status == "failed") {
                        *opts.progress
                            << "[fail] " << requests[i].label()
                            << ": " << firstError << "\n";
                    } else {
                        ++executedSeen;
                        *opts.progress
                            << "[" << executedSeen << "/"
                            << requests.size() << "] "
                            << requests[i].label()
                            << " cycles=" << out.result.totalCycles
                            << " cache=miss wall="
                            << static_cast<std::uint64_t>(wallMillis)
                            << "ms\n";
                    }
                    opts.progress->flush();
                }

                if (sink) {
                    StreamItem item;
                    item.index = i;
                    const json::JsonValue *hx = v.get("hash");
                    item.hash = hx && hx->isString()
                                    ? hashFromHex(hx->asString())
                                    : requests[i].hash();
                    item.status = status == "cached"
                                      ? RunStatus::cached
                                  : status == "failed"
                                      ? RunStatus::failed
                                      : RunStatus::executed;
                    item.result =
                        status == "failed" ? nullptr : &out.result;
                    item.resultJson =
                        bodies[i].empty() ? nullptr : &bodies[i];
                    item.wallMillis = out.wallMillis;
                    if (status == "failed")
                        item.error = firstError;
                    sink(item);
                }
            } else if (type == "done") {
                const json::JsonValue *jb = v.get("jobs");
                profile.workers =
                    jb && jb->isNumber()
                        ? static_cast<unsigned>(jb->asNumber())
                        : 1;
                const auto u64 = [&](const char *key)
                    -> std::uint64_t {
                    const json::JsonValue *f = v.get(key);
                    return f && f->isNumber()
                               ? static_cast<std::uint64_t>(
                                     f->asNumber())
                               : 0;
                };
                profile.executed = u64("executed");
                profile.cacheHits = u64("cached");
                done = true;
            } else {
                throw ServiceError(errProtocol,
                                   "unexpected frame '" + type +
                                       "' mid-batch");
            }
        }
    } catch (const FrameError &e) {
        rethrowFrameError(e);
    }

    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!filled[i]) {
            throw ServiceError(errProtocol,
                               "daemon finished the batch without a "
                               "result for index " +
                                   std::to_string(i));
        }
    }
    if (firstFailed < requests.size()) {
        fatal("sweep '%s': request [%s] failed: %s",
              sweep_name.c_str(),
              requests[firstFailed].label().c_str(),
              firstError.c_str());
    }

    profile.sweepWallMillis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - batch_t0)
            .count();

    // Cache occupancy in the manifest profile reflects the daemon's
    // shared caches, fetched after the batch like SweepRunner snapshots
    // its own caches after the publish loop.
    {
        const json::JsonValue sv =
            parseFrame(roundTrip(encodeStatsQuery()));
        throwIfErrorFrame(sv);
        if (auto stats = statsFromJson(sv)) {
            profile.memCache = stats->memCache;
            profile.diskCache = stats->diskCache;
            profile.diskCachePresent = stats->diskCachePresent;
        }
    }

    if (opts.progress) {
        char util[16];
        std::snprintf(util, sizeof(util), "%.2f",
                      profile.utilization());
        *opts.progress << "[sweep " << sweep_name << "] "
                       << requests.size() << " requests: "
                       << profile.executed << " executed, "
                       << profile.cacheHits << " cached, wall="
                       << static_cast<std::uint64_t>(
                              profile.sweepWallMillis)
                       << "ms, jobs=" << profile.workers
                       << ", utilization=" << util << " (remote)\n";
        opts.progress->flush();
    }

    if (!opts.jsonDir.empty())
        writeArtefacts(outcomes, bodies, sweep_name, profile);

    return outcomes;
}

void
RemoteService::writeArtefacts(
    const std::vector<harness::RunOutcome> &outcomes,
    const std::vector<std::string> &result_bodies,
    const std::string &sweep_name,
    const harness::SweepProfile &profile) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(opts.jsonDir, ec);
    if (ec) {
        warn("sweep '%s': cannot create json dir '%s': %s",
             sweep_name.c_str(), opts.jsonDir.c_str(),
             ec.message().c_str());
        return;
    }

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const harness::RunOutcome &o = outcomes[i];
        const fs::path file =
            fs::path(opts.jsonDir) /
            ("run-" + o.request.hashHex() + ".json");
        std::ofstream os(file);
        if (!os) {
            warn("cannot write '%s'", file.string().c_str());
            continue;
        }
        // Prefer the daemon-rendered body (it is the contract that
        // both backends produce the same bytes); fall back to local
        // rendering when the daemon was asked not to ship bodies.
        if (!result_bodies[i].empty())
            os << result_bodies[i];
        else
            os << harness::runJson(o.request, o.result);
    }

    const fs::path manifest =
        fs::path(opts.jsonDir) / (sweep_name + ".manifest.json");
    std::ofstream os(manifest);
    if (!os) {
        warn("cannot write '%s'", manifest.string().c_str());
        return;
    }
    os << harness::manifestJson(sweep_name, outcomes, &profile);
}

ServiceStats
RemoteService::stats()
{
    std::scoped_lock lock(mtx);
    const json::JsonValue v =
        parseFrame(roundTrip(encodeStatsQuery()));
    throwIfErrorFrame(v);
    auto stats = statsFromJson(v);
    if (!stats) {
        throw ServiceError(errProtocol,
                           "expected stats, got '" + messageType(v) +
                               "'");
    }
    return *stats;
}

bool
RemoteService::ping()
{
    std::scoped_lock lock(mtx);
    try {
        const json::JsonValue v = parseFrame(roundTrip(encodePing()));
        return messageType(v) == "pong";
    } catch (const ServiceError &) {
        return false;
    }
}

} // namespace capcheck::service
