/**
 * @file
 * RemoteService: the SweepService client that submits batches to a
 * capcheckd daemon over its Unix-domain socket. Simulation and
 * observability artefacts happen daemon-side (same filesystem);
 * result JSON and the sweep manifest are written client-side from
 * the streamed result frames, so a remote sweep leaves exactly the
 * artefact tree an in-process sweep would.
 */

#ifndef CAPCHECK_SERVICE_REMOTE_HH
#define CAPCHECK_SERVICE_REMOTE_HH

#include <mutex>

#include "service/frame.hh"
#include "service/socket.hh"
#include "service/sweep_service.hh"

namespace capcheck::service
{

class RemoteService : public SweepService
{
  public:
    /**
     * Connect to the daemon at @p opts.serverSocket and verify it
     * answers ping. Throws ServiceError(errConnect) when nothing is
     * listening — a misspelled socket should fail before a harness
     * builds ten thousand requests.
     */
    explicit RemoteService(harness::SweepOptions opts);

    std::vector<harness::RunOutcome>
    submit(const std::vector<harness::RunRequest> &requests,
           const std::string &sweep_name,
           const Sink &sink = {}) override;

    ServiceStats stats() override;

    bool ping() override;

  private:
    /** One request/response (or submit/stream) exchange at a time. */
    std::string roundTrip(const std::string &payload);

    void writeArtefacts(
        const std::vector<harness::RunOutcome> &outcomes,
        const std::vector<std::string> &result_bodies,
        const std::string &sweep_name,
        const harness::SweepProfile &profile) const;

    harness::SweepOptions opts;
    std::mutex mtx;
    Fd conn;
    std::uint64_t nextBatch = 1;
    /** Client-side wire accounting over this connection. */
    FrameMeter meter;
};

} // namespace capcheck::service

#endif // CAPCHECK_SERVICE_REMOTE_HH
