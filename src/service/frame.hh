/**
 * @file
 * The capcheckd framing layer: every message on the wire is one frame
 * —
 *
 *     +------+------+------+------+----+----+----+----+---------+
 *     | 'C'  | 'C'  | 'K'  | '1'  | length (u32 LE)   | payload |
 *     +------+------+------+------+----+----+----+----+---------+
 *
 * — an 8-byte header (4-byte magic "CCK1", then the payload length
 * as a little-endian u32) followed by exactly `length` bytes of JSON.
 * The magic makes a desynchronized or non-capcheckd peer fail fast
 * with badMagic instead of interpreting garbage as a length; the
 * receiver-side length cap turns a hostile or corrupt length prefix
 * into a clean oversize error instead of an unbounded allocation.
 */

#ifndef CAPCHECK_SERVICE_FRAME_HH
#define CAPCHECK_SERVICE_FRAME_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace capcheck::service
{

/** Frame header magic; bump the trailing digit on layout changes. */
inline constexpr char frameMagic[4] = {'C', 'C', 'K', '1'};

inline constexpr std::size_t frameHeaderBytes = 8;

/** Default receiver-side payload cap (64 MiB). */
inline constexpr std::size_t defaultMaxFrameBytes = 64u << 20;

class FrameError : public std::runtime_error
{
  public:
    enum class Kind
    {
        io,       ///< short read/write, connection reset mid-frame
        badMagic, ///< header does not start with "CCK1"
        oversize, ///< length prefix exceeds the receiver's cap
    };

    FrameError(Kind kind, const std::string &what)
        : std::runtime_error(what), errorKind(kind)
    {
    }

    Kind kind() const { return errorKind; }

  private:
    Kind errorKind;
};

/** @{ Header encode/decode, shared by the fd I/O below and tests. */
void encodeFrameHeader(char (&header)[frameHeaderBytes],
                       std::size_t payload_bytes);

/**
 * Decode @p header; returns the payload length. Throws FrameError
 * (badMagic / oversize against @p max_bytes, 0 = uncapped).
 */
std::size_t decodeFrameHeader(const char (&header)[frameHeaderBytes],
                              std::size_t max_bytes);
/** @} */

/**
 * Frame traffic accounting, shared by all connections of one peer
 * (the daemon counts every client; a client counts its one daemon).
 * Bytes include the 8-byte header, so the counters are true wire
 * bytes. Thread-safe relaxed atomics — counts, not synchronization.
 */
struct FrameMeter
{
    std::atomic<std::uint64_t> framesIn{0};
    std::atomic<std::uint64_t> bytesIn{0};
    std::atomic<std::uint64_t> framesOut{0};
    std::atomic<std::uint64_t> bytesOut{0};
};

/**
 * Write one frame; throws FrameError(io) when the peer is gone.
 * @p meter (optional) accumulates frames/bytes written.
 */
void sendFrame(int fd, std::string_view payload,
               FrameMeter *meter = nullptr);

/**
 * Read one frame. nullopt on clean EOF between frames; throws
 * FrameError on header corruption, an over-cap length, or EOF/error
 * mid-frame. @p meter (optional) accumulates frames/bytes read.
 */
std::optional<std::string>
recvFrame(int fd, std::size_t max_bytes = defaultMaxFrameBytes,
          FrameMeter *meter = nullptr);

} // namespace capcheck::service

#endif // CAPCHECK_SERVICE_FRAME_HH
