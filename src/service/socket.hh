/**
 * @file
 * Thin RAII wrappers over AF_UNIX stream sockets: the transport under
 * the capcheckd framing protocol. Everything here is blocking I/O
 * with EINTR retry; writes use MSG_NOSIGNAL so a vanished peer
 * surfaces as an error return, never as SIGPIPE.
 */

#ifndef CAPCHECK_SERVICE_SOCKET_HH
#define CAPCHECK_SERVICE_SOCKET_HH

#include <cstddef>
#include <string>

namespace capcheck::service
{

/** Move-only owner of one file descriptor. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd(other.fd) { other.fd = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd = other.fd;
            other.fd = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd; }
    bool valid() const { return fd >= 0; }

    /** Close now (idempotent). */
    void reset();

    /** Release ownership without closing. */
    int release();

  private:
    int fd = -1;
};

/**
 * Connect to the Unix-domain socket at @p path. Invalid Fd on
 * failure, with a one-line reason in @p error.
 */
Fd connectUnix(const std::string &path, std::string *error);

/**
 * Bind and listen on @p path, unlinking any stale socket file first.
 * Invalid Fd on failure, with a one-line reason in @p error.
 */
Fd listenUnix(const std::string &path, int backlog,
              std::string *error);

/** Accept one connection; invalid Fd on error (incl. listener close). */
Fd acceptUnix(int listen_fd);

/** Write all of @p len bytes; false on any error or closed peer. */
bool sendAll(int fd, const void *data, std::size_t len);

/**
 * Read exactly @p len bytes. 1 = success, 0 = clean EOF before any
 * byte, -1 = error or EOF mid-read.
 */
int recvAll(int fd, void *data, std::size_t len);

} // namespace capcheck::service

#endif // CAPCHECK_SERVICE_SOCKET_HH
