#include "service/server.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "base/logging.hh"
#include "harness/result_json.hh"
#include "service/frame.hh"
#include "system/soc_config_builder.hh"

namespace capcheck::service
{

ServiceInstruments::ServiceInstruments(obs::MetricsRegistry &r)
    : batchesReceived(
          r.counter("batches.received", "Submit frames received")),
      batchesAdmitted(
          r.counter("batches.admitted", "Batches admitted in full")),
      batchesRejected(r.counter(
          "batches.rejected",
          "Batches rejected (overload, oversize, invalid)")),
      requestsReceived(
          r.counter("requests.received",
                    "Requests arriving in submit frames")),
      requestsAdmitted(
          r.counter("requests.admitted",
                    "Requests admitted into the daemon")),
      requestsRejected(r.counter("requests.rejected",
                                 "Requests in rejected batches")),
      requestsExecuted(r.counter("requests.executed",
                                 "Fresh simulations completed")),
      requestsFailed(r.counter("requests.failed",
                               "Requests whose simulation failed")),
      cacheHitsMem(
          r.counter("requests.cacheHitsMem",
                    "Requests answered from the memory cache")),
      cacheHitsDisk(
          r.counter("requests.cacheHitsDisk",
                    "Requests answered from the disk cache")),
      coalesced(r.counter(
          "requests.coalesced",
          "Requests coalesced onto an in-flight simulation")),
      workerBusyMicros(r.counter("worker.busyMicros",
                                 "Cumulative worker simulation time")),
      framesIn(r.counter("frames.in", "Frames received")),
      framesOut(r.counter("frames.out", "Frames sent")),
      bytesIn(r.counter("bytes.in",
                        "Wire bytes received, headers included")),
      bytesOut(r.counter("bytes.out",
                         "Wire bytes sent, headers included")),
      queueDepth(
          r.gauge("queue.depth", "Units waiting for a worker")),
      clientsActive(r.gauge("clients.active", "Connected clients")),
      requestsInflight(
          r.gauge("requests.inflight",
                  "Requests admitted but not yet answered")),
      workersBusy(
          r.gauge("workers.busy", "Workers simulating right now")),
      workersTotal(r.gauge("workers.total", "Worker pool size")),
      uptimeMillis(
          r.gauge("uptime.millis", "Milliseconds since start")),
      memCacheEntries(
          r.gauge("cache.mem.entries", "Memory-cache entries")),
      memCacheBytes(
          r.gauge("cache.mem.bytes", "Memory-cache body bytes")),
      diskCacheEntries(
          r.gauge("cache.disk.entries", "Disk-cache entries")),
      diskCacheBytes(
          r.gauge("cache.disk.bytes", "Disk-cache body bytes")),
      spanAdmit(r.histogram(
          "span.admit", "received -> admitted, microseconds")),
      spanQueue(r.histogram(
          "span.queue", "admitted -> dequeued, microseconds")),
      spanExecute(r.histogram(
          "span.execute", "dequeued -> executed, microseconds")),
      spanRender(r.histogram(
          "span.render", "executed -> rendered, microseconds")),
      spanStream(r.histogram(
          "span.stream", "rendered -> streamed, microseconds")),
      spanEndToEnd(r.histogram(
          "span.endToEnd", "received -> streamed, microseconds")),
      batchSize(
          r.histogram("batch.size", "Requests per admitted batch"))
{
}

namespace
{

/** The span/disk-cache hash spelling: 16 lowercase hex digits. */
std::string
spanHashHex(std::uint64_t hash)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    return hex;
}

} // namespace

/** One connected client and its write-side state. */
struct Server::Client
{
    std::uint64_t id = 0;
    Fd fd;
    std::thread reader;
    /** Serializes result/done/error frames from workers + reader. */
    std::mutex writeMtx;
    /** Requests admitted but not yet answered. */
    std::atomic<std::size_t> inflight{0};
    /** A write failed; stop talking to this peer. */
    std::atomic<bool> dead{false};
};

/** One admitted submit message and its completion accounting. */
struct Server::Batch
{
    std::shared_ptr<Client> client;
    std::uint64_t id = 0;
    SubmitOptions options;
    /** options.toSweepOptions(): what obsOptionsFor() consumes. */
    harness::SweepOptions execOpts;
    std::vector<harness::RunRequest> requests;
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::uint64_t> nExecuted{0};
    std::atomic<std::uint64_t> nCached{0};
    std::atomic<std::uint64_t> nFailed{0};

    /** Batch trace id: the client's, or daemon-synthesized. */
    std::string traceId;
    /** One span per request, sized at admission; the shared stamps
     *  (received/admitted) are filled under the server lock, after
     *  which each index is written only by its answering thread. */
    std::vector<obs::RequestSpan> spans;
};

/**
 * One unique simulation in flight. waiters[0] is the (batch, index)
 * that triggered it — and whose obs options it runs with; everyone
 * else coalesced onto it and will be answered as "cached".
 */
struct Server::Unit
{
    struct Waiter
    {
        std::shared_ptr<Batch> batch;
        std::size_t index = 0;
    };

    std::uint64_t hash = 0;
    std::vector<Waiter> waiters;
    /** The creating batch asked for --no-cache: do not publish. */
    bool noStore = false;

    /** @{ SpanClock stamps for waiters[0]'s queue/execute segments;
     *  coalesced waiters stamp their own at answer time. */
    std::int64_t dequeuedAt = 0;
    std::int64_t executedAt = 0;
    /** @} */

    const harness::RunRequest &
    request() const
    {
        return waiters.front().batch->requests[waiters.front().index];
    }
};

Server::Server(ServerOptions options) : opts(std::move(options))
{
    numJobs = opts.jobs != 0 ? opts.jobs
                             : std::thread::hardware_concurrency();
    if (numJobs == 0)
        numJobs = 1;
    if (!opts.cacheDir.empty()) {
        disk = std::make_unique<harness::DiskResultCache>(
            opts.cacheDir, opts.cacheMaxBytes);
    }
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    std::string err;
    listener = listenUnix(opts.socketPath, 16, &err);
    if (!listener.valid()) {
        throw ServiceError(errConnect,
                           "cannot listen on '" + opts.socketPath +
                               "': " + err);
    }
    {
        std::scoped_lock lock(mtx);
        running = true;
        stopping = false;
    }
    ins.workersTotal.set(numJobs);
    if (!opts.jsonLogFile.empty()) {
        jsonLog = std::make_unique<obs::ServerLog>(opts.jsonLogFile);
        if (!jsonLog->ok()) {
            if (opts.log) {
                *opts.log << "[capcheckd] cannot open --log-json "
                          << opts.jsonLogFile << "; logging disabled\n";
                opts.log->flush();
            }
            jsonLog.reset();
        }
    }
    if (opts.log) {
        *opts.log << "[capcheckd] listening on " << opts.socketPath
                  << " jobs=" << numJobs
                  << (disk ? " cache=" + opts.cacheDir : "") << "\n";
        opts.log->flush();
    }
    workers.reserve(numJobs);
    for (unsigned t = 0; t < numJobs; ++t)
        workers.emplace_back([this] { workerLoop(); });
    acceptor = std::thread([this] { acceptLoop(); });
    if (!opts.metricsOutFile.empty()) {
        {
            std::scoped_lock mlock(metricsMtx);
            metricsStop = false;
        }
        metricsThread = std::thread([this] { metricsLoop(); });
    }
}

void
Server::stop()
{
    {
        std::scoped_lock lock(mtx);
        if (!running)
            return;
        stopping = true;
    }
    wake.notify_all();

    // Unblock accept(); closing the fd alone does not wake it.
    if (listener.valid())
        ::shutdown(listener.get(), SHUT_RDWR);
    if (acceptor.joinable())
        acceptor.join();
    listener.reset();

    // Workers drain whatever was already queued before exiting, so
    // admitted batches still get their done frames.
    for (std::thread &t : workers)
        t.join();
    workers.clear();

    // Only now hang up on the clients and join their readers. The
    // acceptor is gone, so this snapshot is complete.
    std::vector<std::shared_ptr<Client>> toClose;
    {
        std::scoped_lock lock(mtx);
        toClose = clients;
    }
    for (const auto &client : toClose) {
        if (client->fd.valid())
            ::shutdown(client->fd.get(), SHUT_RDWR);
    }
    for (const auto &client : toClose) {
        if (client->reader.joinable())
            client->reader.join();
    }

    // Stop the metrics writer, then leave one final exposition
    // behind that reflects the fully drained state.
    {
        std::scoped_lock mlock(metricsMtx);
        metricsStop = true;
    }
    metricsWake.notify_all();
    if (metricsThread.joinable())
        metricsThread.join();
    if (!opts.metricsOutFile.empty())
        writeMetricsFile();

    std::error_code ec;
    std::filesystem::remove(opts.socketPath, ec);
    {
        std::scoped_lock lock(mtx);
        running = false;
        clients.clear();
    }
    if (opts.log) {
        *opts.log << "[capcheckd] stopped\n";
        opts.log->flush();
    }
}

void
Server::acceptLoop()
{
    while (true) {
        Fd conn = acceptUnix(listener.get());
        {
            std::scoped_lock lock(mtx);
            if (stopping)
                return;
        }
        if (!conn.valid())
            continue;
        auto client = std::make_shared<Client>();
        client->fd = std::move(conn);
        {
            // The reader is spawned and assigned under the lock: its
            // self-cleanup in serveClient() takes the same lock before
            // touching client->reader, so a client that disconnects
            // instantly cannot observe the member unassigned.
            std::scoped_lock lock(mtx);
            client->id = nextClientId++;
            clients.push_back(client);
            client->reader =
                std::thread([this, client] { serveClient(client); });
        }
        if (opts.log) {
            *opts.log << "[capcheckd] client " << client->id
                      << " connected\n";
            opts.log->flush();
        }
    }
}

void
Server::serveClient(const std::shared_ptr<Client> &client)
{
    while (true) {
        std::optional<std::string> payload;
        try {
            payload = recvFrame(client->fd.get(), opts.maxFrameBytes,
                                &frameMeter);
        } catch (const FrameError &e) {
            // Tell the peer why before hanging up; a desynchronized
            // stream cannot be resynchronized, so the connection ends
            // either way.
            const char *code =
                e.kind() == FrameError::Kind::badMagic
                    ? errBadFrame
                : e.kind() == FrameError::Kind::oversize
                    ? errOversizeFrame
                    : errProtocol;
            sendToClient(client,
                         encodeError(code, e.what(), std::nullopt));
            break;
        }
        if (!payload)
            break; // clean EOF

        std::string perr;
        auto v = json::parseJson(*payload, &perr);
        if (!v) {
            sendToClient(client,
                         encodeError(errBadRequest,
                                     "unparseable message: " + perr,
                                     std::nullopt));
            continue;
        }
        const std::string type = messageType(*v);
        if (type == "ping") {
            sendToClient(client, encodePong());
        } else if (type == "stats") {
            sendToClient(client, encodeStats(stats()));
        } else if (type == "submit") {
            std::string serr;
            auto msg = submitFromJson(*v, &serr);
            if (!msg) {
                sendToClient(client,
                             encodeError(errBadRequest, serr,
                                         std::nullopt));
                continue;
            }
            handleSubmit(client, std::move(*msg));
        } else {
            sendToClient(client,
                         encodeError(errProtocol,
                                     "unknown message type '" + type +
                                         "'",
                                     std::nullopt));
        }
        if (client->dead.load(std::memory_order_relaxed))
            break;
    }

    std::thread self;
    {
        std::scoped_lock lock(mtx);
        if (stopping)
            return; // stay in `clients` so stop() can join us
        for (auto it = clients.begin(); it != clients.end(); ++it) {
            if (it->get() == client.get()) {
                clients.erase(it);
                break;
            }
        }
        self = std::move(client->reader);
    }
    if (opts.log) {
        *opts.log << "[capcheckd] client " << client->id
                  << " disconnected\n";
        opts.log->flush();
    }
    if (self.joinable())
        self.detach();
    client->fd.reset();
}

void
Server::handleSubmit(const std::shared_ptr<Client> &client,
                     SubmitMessage &&msg)
{
    const std::int64_t receivedNanos = spanClock.nowNanos();
    const std::size_t n = msg.requests.size();
    const std::string traceId =
        msg.traceId.empty()
            ? "client" + std::to_string(client->id) + ".batch" +
                  std::to_string(msg.batch)
            : msg.traceId;
    ins.batchesReceived.inc();
    ins.requestsReceived.inc(n);

    if (n > opts.maxBatchRequests) {
        rejectBatch(client, msg.batch, traceId, n, errOversizeBatch,
                    "batch of " + std::to_string(n) +
                        " requests exceeds the daemon cap of " +
                        std::to_string(opts.maxBatchRequests));
        return;
    }

    // Validate every configuration up front — the in-process runner
    // fatal()s here, but a daemon answers with a structured error and
    // lives on.
    for (const harness::RunRequest &req : msg.requests) {
        const std::string errors =
            system::validationErrors(req.config);
        if (!errors.empty()) {
            rejectBatch(client, msg.batch, traceId, n, errBadRequest,
                        "invalid request [" + req.label() +
                            "]: " + errors);
            return;
        }
    }

    auto batch = std::make_shared<Batch>();
    batch->client = client;
    batch->id = msg.batch;
    batch->options = msg.options;
    batch->execOpts = msg.options.toSweepOptions();
    batch->requests = std::move(msg.requests);
    batch->remaining.store(n, std::memory_order_relaxed);

    // Observability directories must exist before a worker touches
    // them (same rule as SweepRunner, including the samples-into-
    // jsonDir fallback).
    {
        namespace fs = std::filesystem;
        std::error_code ec;
        const harness::SweepOptions &eo = batch->execOpts;
        for (const std::string *dir :
             {&eo.traceDir, &eo.auditDir, &eo.flightDir,
              &eo.latencyDir}) {
            if (!dir->empty())
                fs::create_directories(*dir, ec);
        }
        if (eo.sampleInterval > 0 && eo.traceDir.empty() &&
            !eo.jsonDir.empty())
            fs::create_directories(eo.jsonDir, ec);
    }

    // Submit-time cache hits are answered inline below; fresh work is
    // collected first so admission can be all-or-nothing, then
    // enqueued in one shot.
    struct InlineHit
    {
        std::size_t index;
        std::uint64_t hash;
        system::RunResult result;
        bool fromDisk;
    };
    std::vector<InlineHit> hits;
    std::vector<std::shared_ptr<Unit>> fresh;
    const bool useCache = !batch->options.noCache;

    {
        std::unique_lock lock(mtx);
        const std::size_t inflight =
            client->inflight.load(std::memory_order_relaxed);
        if (inflight + n > opts.maxInflightPerClient) {
            ++rejectedOverload;
            lock.unlock();
            rejectBatch(client, batch->id, traceId, n, errOverloaded,
                        "client has " + std::to_string(inflight) +
                            " requests in flight; cap is " +
                            std::to_string(opts.maxInflightPerClient),
                        100);
            return;
        }
        if (queue.size() + n > opts.maxQueue) {
            ++rejectedOverload;
            lock.unlock();
            rejectBatch(client, batch->id, traceId, n, errOverloaded,
                        "queue depth " +
                            std::to_string(queue.size()) +
                            " cannot absorb a batch of " +
                            std::to_string(n) + " (cap " +
                            std::to_string(opts.maxQueue) + ")",
                        100);
            return;
        }
        client->inflight.fetch_add(n, std::memory_order_relaxed);
        ins.batchesAdmitted.inc();
        ins.requestsAdmitted.inc(n);
        ins.requestsInflight.add(static_cast<std::int64_t>(n));
        ins.batchSize.observe(n);

        // Span skeletons before any unit can be answered: the shared
        // received/admitted stamps are written here under the lock,
        // after which spans[i] belongs to whichever thread answers
        // request i.
        const std::int64_t admittedNanos = spanClock.nowNanos();
        batch->traceId = traceId;
        batch->spans.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            obs::RequestSpan &span = batch->spans[i];
            span.traceId = traceId + "#" + std::to_string(i);
            span.batch = batch->id;
            span.index = i;
            span.received = receivedNanos;
            span.admitted = admittedNanos;
        }

        std::map<std::uint64_t, std::shared_ptr<Unit>> batchLocal;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t h = batch->requests[i].hash();
            if (useCache) {
                if (auto cached = memCache.lookup(h)) {
                    ++totalCacheHits;
                    hits.push_back(
                        {i, h, std::move(*cached), false});
                    continue;
                }
                if (disk) {
                    if (auto stored = disk->lookup(h)) {
                        memCache.store(h, *stored);
                        ++totalCacheHits;
                        hits.push_back(
                            {i, h, std::move(*stored), true});
                        continue;
                    }
                }
                if (auto it = pending.find(h);
                    it != pending.end()) {
                    ++totalCacheHits;
                    it->second->waiters.push_back({batch, i});
                    continue;
                }
            }
            // With noCache, duplicates inside the batch still
            // coalesce (SweepRunner's cacheEnabled=false re-runs
            // them; one simulation per unique hash is strictly
            // better and keeps "cached" attribution meaningful).
            if (auto it = batchLocal.find(h);
                it != batchLocal.end()) {
                ++totalCacheHits;
                it->second->waiters.push_back({batch, i});
                continue;
            }
            auto unit = std::make_shared<Unit>();
            unit->hash = h;
            unit->waiters.push_back({batch, i});
            unit->noStore = !useCache;
            if (useCache)
                pending.emplace(h, unit);
            batchLocal.emplace(h, unit);
            fresh.push_back(unit);
        }
        for (const auto &unit : fresh)
            queue.push_back(unit);
        ins.queueDepth.set(static_cast<std::int64_t>(queue.size()));
    }
    for (std::size_t k = 0; k < fresh.size(); ++k)
        wake.notify_one();

    if (jsonLog) {
        jsonLog->admit(client->id, batch->id, batch->traceId, n,
                       fresh.size(), hits.size(),
                       n - fresh.size() - hits.size());
    }

    for (const InlineHit &hit : hits) {
        sendResult(batch, hit.index, hit.hash, RunStatus::cached,
                   hit.fromDisk ? AnswerSource::diskCacheHit
                                : AnswerSource::memCacheHit,
                   &hit.result, 0, std::string());
    }
}

void
Server::rejectBatch(const std::shared_ptr<Client> &client,
                    std::uint64_t batch_id,
                    const std::string &trace_id, std::size_t n,
                    const std::string &code,
                    const std::string &message,
                    unsigned retry_after_millis)
{
    ins.batchesRejected.inc();
    ins.requestsRejected.inc(n);
    if (jsonLog)
        jsonLog->reject(client->id, batch_id, trace_id, code, message,
                        n);
    sendToClient(client, encodeError(code, message, batch_id,
                                     retry_after_millis));
}

void
Server::recordHostProfile(const prof::RunProfile &profile)
{
    // Counter get-or-create takes the registry lock, but this runs
    // once per executed request (not per event), with a handful of
    // domains — noise next to the simulation it just measured.
    registry
        .counter("prof.wallNanos",
                 "host nanoseconds spent executing requests")
        .inc(profile.wallNanos());
    for (const prof::RunProfile::DomainTotals &dom :
         profile.domainTotals()) {
        registry
            .counter("prof." + dom.domain + ".selfNanos",
                     "host self-time of the " + dom.domain +
                         " profiler domain")
            .inc(dom.selfNanos);
        registry
            .counter("prof." + dom.domain + ".calls",
                     "profiled scope entries in the " + dom.domain +
                         " domain")
            .inc(dom.calls);
    }
}

void
Server::workerLoop()
{
    while (true) {
        std::shared_ptr<Unit> unit;
        {
            std::unique_lock lock(mtx);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            unit = queue.front();
            queue.pop_front();
            ins.queueDepth.set(
                static_cast<std::int64_t>(queue.size()));
        }

        const harness::RunRequest &req = unit->request();
        const harness::SweepOptions &execOpts =
            unit->waiters.front().batch->execOpts;

        system::RunResult result;
        std::string error;
        unit->dequeuedAt = spanClock.nowNanos();
        ins.workersBusy.add(1);
        prof::RunProfile hostProfile;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            // Worker-side host-time attribution rides along on every
            // request (the scopes are near-free), feeding aggregate
            // prof.* counters rather than per-run files.
            const prof::ProfileSession session(hostProfile);
            result = req.execute(
                harness::obsOptionsFor(execOpts, req));
        } catch (const SimError &e) {
            error = e.what();
        } catch (const std::exception &e) {
            error = e.what();
        }
        const double wallMillis =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        unit->executedAt = spanClock.nowNanos();
        ins.workersBusy.sub(1);
        ins.workerBusyMicros.inc(static_cast<std::uint64_t>(
            (unit->executedAt - unit->dequeuedAt) / 1000));
        recordHostProfile(hostProfile);

        std::vector<Unit::Waiter> waiters;
        {
            std::scoped_lock lock(mtx);
            pending.erase(unit->hash);
            if (error.empty()) {
                ++totalExecuted;
                if (!unit->noStore) {
                    memCache.store(unit->hash, result);
                    if (disk)
                        disk->store(unit->hash, result);
                }
            }
            // Coalescing window closes here: the hash is out of
            // `pending`, so no waiter can be added after this swap.
            waiters.swap(unit->waiters);
        }

        for (std::size_t k = 0; k < waiters.size(); ++k) {
            const Unit::Waiter &waiter = waiters[k];
            // Only waiters[0] owns the queue/execute stamps; everyone
            // coalesced stamps dequeued == executed at answer time.
            const std::int64_t dq = k == 0 ? unit->dequeuedAt : 0;
            const std::int64_t ex = k == 0 ? unit->executedAt : 0;
            if (!error.empty()) {
                sendResult(waiter.batch, waiter.index, unit->hash,
                           RunStatus::failed, AnswerSource::failure,
                           nullptr, wallMillis, error, dq, ex);
            } else {
                sendResult(waiter.batch, waiter.index, unit->hash,
                           k == 0 ? RunStatus::executed
                                  : RunStatus::cached,
                           k == 0 ? AnswerSource::fresh
                                  : AnswerSource::coalescedHit,
                           &result, k == 0 ? wallMillis : 0,
                           std::string(), dq, ex);
            }
        }
    }
}

void
Server::sendResult(const std::shared_ptr<Batch> &batch,
                   std::size_t index, std::uint64_t hash,
                   RunStatus status, AnswerSource source,
                   const system::RunResult *result,
                   double wall_millis, const std::string &error,
                   std::int64_t dequeued_nanos,
                   std::int64_t executed_nanos)
{
    switch (status) {
      case RunStatus::executed:
        batch->nExecuted.fetch_add(1, std::memory_order_relaxed);
        break;
      case RunStatus::cached:
        batch->nCached.fetch_add(1, std::memory_order_relaxed);
        break;
      case RunStatus::failed:
        batch->nFailed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    switch (source) {
      case AnswerSource::fresh:
        ins.requestsExecuted.inc();
        break;
      case AnswerSource::memCacheHit:
        ins.cacheHitsMem.inc();
        break;
      case AnswerSource::diskCacheHit:
        ins.cacheHitsDisk.inc();
        break;
      case AnswerSource::coalescedHit:
        ins.coalesced.inc();
        break;
      case AnswerSource::failure:
        ins.requestsFailed.inc();
        break;
    }

    obs::RequestSpan &span = batch->spans[index];
    span.hash = spanHashHex(hash);
    span.status = runStatusName(status);
    if (executed_nanos > 0) {
        span.dequeued = dequeued_nanos;
        span.executed = executed_nanos;
    } else {
        // Never visited the queue (cache hit / coalesced waiter):
        // whatever it waited for lands in the queue segment, and the
        // execute segment is defined as zero.
        span.dequeued = span.executed = spanClock.nowNanos();
    }

    std::string body;
    const std::string *bodyPtr = nullptr;
    if (result && batch->options.wantResultJson) {
        body = harness::runJson(batch->requests[index], *result);
        bodyPtr = &body;
    }
    span.rendered = spanClock.nowNanos();
    sendToClient(batch->client,
                 encodeResult(batch->id, index, hash, status, result,
                              bodyPtr, wall_millis, error));
    span.streamed = spanClock.nowNanos();
    span.checkInvariant();

    const auto micros = [](std::int64_t nanos) {
        return static_cast<std::uint64_t>(nanos / 1000);
    };
    ins.spanAdmit.observe(micros(span.admitNanos()));
    ins.spanQueue.observe(micros(span.queueNanos()));
    ins.spanExecute.observe(micros(span.executeNanos()));
    ins.spanRender.observe(micros(span.renderNanos()));
    ins.spanStream.observe(micros(span.streamNanos()));
    ins.spanEndToEnd.observe(micros(span.endToEndNanos()));
    if (jsonLog) {
        jsonLog->complete(span);
        if (opts.slowMillis > 0 &&
            span.endToEndNanos() >=
                static_cast<std::int64_t>(opts.slowMillis) * 1000000)
            jsonLog->slow(span, opts.slowMillis);
    }

    ins.requestsInflight.sub(1);
    batch->client->inflight.fetch_sub(1, std::memory_order_relaxed);
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
        ServiceStats s;
        s.jobs = numJobs;
        sendToClient(
            batch->client,
            encodeDone(batch->id,
                       batch->nExecuted.load(
                           std::memory_order_relaxed),
                       batch->nCached.load(std::memory_order_relaxed),
                       batch->nFailed.load(std::memory_order_relaxed),
                       s));
    }
}

void
Server::sendToClient(const std::shared_ptr<Client> &client,
                     const std::string &payload)
{
    if (client->dead.load(std::memory_order_relaxed))
        return;
    std::scoped_lock lock(client->writeMtx);
    try {
        sendFrame(client->fd.get(), payload, &frameMeter);
    } catch (const FrameError &) {
        client->dead.store(true, std::memory_order_relaxed);
    }
}

void
Server::refreshGaugesLocked()
{
    ins.queueDepth.set(static_cast<std::int64_t>(queue.size()));
    ins.clientsActive.set(static_cast<std::int64_t>(clients.size()));
    ins.workersTotal.set(numJobs);
    ins.uptimeMillis.set(spanClock.nowNanos() / 1000000);
    const harness::CacheStats mem = memCache.stats();
    ins.memCacheEntries.set(static_cast<std::int64_t>(mem.entries));
    ins.memCacheBytes.set(static_cast<std::int64_t>(mem.bytes));
    if (disk) {
        const harness::CacheStats d = disk->stats();
        ins.diskCacheEntries.set(
            static_cast<std::int64_t>(d.entries));
        ins.diskCacheBytes.set(static_cast<std::int64_t>(d.bytes));
    }
    // The FrameMeter is the source of truth; its registry mirrors
    // are brought up to it by delta. Refresh always runs under
    // `mtx`, so two deltas cannot race.
    const auto sync = [](obs::MetricsRegistry::Counter &counter,
                         const std::atomic<std::uint64_t> &truth) {
        const std::uint64_t now =
            truth.load(std::memory_order_relaxed);
        if (now > counter.value())
            counter.inc(now - counter.value());
    };
    sync(ins.framesIn, frameMeter.framesIn);
    sync(ins.framesOut, frameMeter.framesOut);
    sync(ins.bytesIn, frameMeter.bytesIn);
    sync(ins.bytesOut, frameMeter.bytesOut);
}

void
Server::writeMetricsFile()
{
    obs::MetricsSnapshot snap;
    {
        std::scoped_lock lock(mtx);
        refreshGaugesLocked();
        snap = registry.snapshot();
    }
    // tmp + rename so a scraper never reads a half-written file.
    const std::string tmp = opts.metricsOutFile + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return;
        // Instance metadata as an info gauge; socket paths are the
        // kind of arbitrary string the label escaping exists for.
        os << snap.prometheusText(
            {{"socket", opts.socketPath},
             {"protocol", std::to_string(protocolVersion)}});
    }
    std::error_code ec;
    std::filesystem::rename(tmp, opts.metricsOutFile, ec);
}

void
Server::metricsLoop()
{
    const auto interval = std::chrono::milliseconds(
        std::max(1u, opts.metricsIntervalMillis));
    std::unique_lock lock(metricsMtx);
    while (!metricsStop) {
        metricsWake.wait_for(lock, interval);
        if (metricsStop)
            break; // stop() writes the final exposition itself
        lock.unlock();
        writeMetricsFile();
        lock.lock();
    }
}

ServiceStats
Server::stats()
{
    std::scoped_lock lock(mtx);
    return statsLocked();
}

ServiceStats
Server::statsLocked()
{
    ServiceStats s;
    s.executed = totalExecuted;
    s.cacheHits = totalCacheHits;
    s.jobs = numJobs;
    s.memCache = memCache.stats();
    if (disk) {
        s.diskCache = disk->stats();
        s.diskCachePresent = true;
    }
    s.queueDepth = queue.size();
    s.activeClients = clients.size();
    s.rejectedOverload = rejectedOverload;
    refreshGaugesLocked();
    s.metrics = registry.snapshot();
    s.metricsPresent = true;
    return s;
}

} // namespace capcheck::service
