#include "service/server.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>

#include "base/logging.hh"
#include "harness/result_json.hh"
#include "service/frame.hh"
#include "system/soc_config_builder.hh"

namespace capcheck::service
{

/** One connected client and its write-side state. */
struct Server::Client
{
    std::uint64_t id = 0;
    Fd fd;
    std::thread reader;
    /** Serializes result/done/error frames from workers + reader. */
    std::mutex writeMtx;
    /** Requests admitted but not yet answered. */
    std::atomic<std::size_t> inflight{0};
    /** A write failed; stop talking to this peer. */
    std::atomic<bool> dead{false};
};

/** One admitted submit message and its completion accounting. */
struct Server::Batch
{
    std::shared_ptr<Client> client;
    std::uint64_t id = 0;
    SubmitOptions options;
    /** options.toSweepOptions(): what obsOptionsFor() consumes. */
    harness::SweepOptions execOpts;
    std::vector<harness::RunRequest> requests;
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::uint64_t> nExecuted{0};
    std::atomic<std::uint64_t> nCached{0};
    std::atomic<std::uint64_t> nFailed{0};
};

/**
 * One unique simulation in flight. waiters[0] is the (batch, index)
 * that triggered it — and whose obs options it runs with; everyone
 * else coalesced onto it and will be answered as "cached".
 */
struct Server::Unit
{
    struct Waiter
    {
        std::shared_ptr<Batch> batch;
        std::size_t index = 0;
    };

    std::uint64_t hash = 0;
    std::vector<Waiter> waiters;
    /** The creating batch asked for --no-cache: do not publish. */
    bool noStore = false;

    const harness::RunRequest &
    request() const
    {
        return waiters.front().batch->requests[waiters.front().index];
    }
};

Server::Server(ServerOptions options) : opts(std::move(options))
{
    numJobs = opts.jobs != 0 ? opts.jobs
                             : std::thread::hardware_concurrency();
    if (numJobs == 0)
        numJobs = 1;
    if (!opts.cacheDir.empty()) {
        disk = std::make_unique<harness::DiskResultCache>(
            opts.cacheDir, opts.cacheMaxBytes);
    }
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    std::string err;
    listener = listenUnix(opts.socketPath, 16, &err);
    if (!listener.valid()) {
        throw ServiceError(errConnect,
                           "cannot listen on '" + opts.socketPath +
                               "': " + err);
    }
    {
        std::scoped_lock lock(mtx);
        running = true;
        stopping = false;
    }
    if (opts.log) {
        *opts.log << "[capcheckd] listening on " << opts.socketPath
                  << " jobs=" << numJobs
                  << (disk ? " cache=" + opts.cacheDir : "") << "\n";
        opts.log->flush();
    }
    workers.reserve(numJobs);
    for (unsigned t = 0; t < numJobs; ++t)
        workers.emplace_back([this] { workerLoop(); });
    acceptor = std::thread([this] { acceptLoop(); });
}

void
Server::stop()
{
    {
        std::scoped_lock lock(mtx);
        if (!running)
            return;
        stopping = true;
    }
    wake.notify_all();

    // Unblock accept(); closing the fd alone does not wake it.
    if (listener.valid())
        ::shutdown(listener.get(), SHUT_RDWR);
    if (acceptor.joinable())
        acceptor.join();
    listener.reset();

    // Workers drain whatever was already queued before exiting, so
    // admitted batches still get their done frames.
    for (std::thread &t : workers)
        t.join();
    workers.clear();

    // Only now hang up on the clients and join their readers. The
    // acceptor is gone, so this snapshot is complete.
    std::vector<std::shared_ptr<Client>> toClose;
    {
        std::scoped_lock lock(mtx);
        toClose = clients;
    }
    for (const auto &client : toClose) {
        if (client->fd.valid())
            ::shutdown(client->fd.get(), SHUT_RDWR);
    }
    for (const auto &client : toClose) {
        if (client->reader.joinable())
            client->reader.join();
    }

    std::error_code ec;
    std::filesystem::remove(opts.socketPath, ec);
    {
        std::scoped_lock lock(mtx);
        running = false;
        clients.clear();
    }
    if (opts.log) {
        *opts.log << "[capcheckd] stopped\n";
        opts.log->flush();
    }
}

void
Server::acceptLoop()
{
    while (true) {
        Fd conn = acceptUnix(listener.get());
        {
            std::scoped_lock lock(mtx);
            if (stopping)
                return;
        }
        if (!conn.valid())
            continue;
        auto client = std::make_shared<Client>();
        client->fd = std::move(conn);
        {
            // The reader is spawned and assigned under the lock: its
            // self-cleanup in serveClient() takes the same lock before
            // touching client->reader, so a client that disconnects
            // instantly cannot observe the member unassigned.
            std::scoped_lock lock(mtx);
            client->id = nextClientId++;
            clients.push_back(client);
            client->reader =
                std::thread([this, client] { serveClient(client); });
        }
        if (opts.log) {
            *opts.log << "[capcheckd] client " << client->id
                      << " connected\n";
            opts.log->flush();
        }
    }
}

void
Server::serveClient(const std::shared_ptr<Client> &client)
{
    while (true) {
        std::optional<std::string> payload;
        try {
            payload = recvFrame(client->fd.get(), opts.maxFrameBytes);
        } catch (const FrameError &e) {
            // Tell the peer why before hanging up; a desynchronized
            // stream cannot be resynchronized, so the connection ends
            // either way.
            const char *code =
                e.kind() == FrameError::Kind::badMagic
                    ? errBadFrame
                : e.kind() == FrameError::Kind::oversize
                    ? errOversizeFrame
                    : errProtocol;
            sendToClient(client,
                         encodeError(code, e.what(), std::nullopt));
            break;
        }
        if (!payload)
            break; // clean EOF

        std::string perr;
        auto v = json::parseJson(*payload, &perr);
        if (!v) {
            sendToClient(client,
                         encodeError(errBadRequest,
                                     "unparseable message: " + perr,
                                     std::nullopt));
            continue;
        }
        const std::string type = messageType(*v);
        if (type == "ping") {
            sendToClient(client, encodePong());
        } else if (type == "stats") {
            sendToClient(client, encodeStats(stats()));
        } else if (type == "submit") {
            std::string serr;
            auto msg = submitFromJson(*v, &serr);
            if (!msg) {
                sendToClient(client,
                             encodeError(errBadRequest, serr,
                                         std::nullopt));
                continue;
            }
            handleSubmit(client, std::move(*msg));
        } else {
            sendToClient(client,
                         encodeError(errProtocol,
                                     "unknown message type '" + type +
                                         "'",
                                     std::nullopt));
        }
        if (client->dead.load(std::memory_order_relaxed))
            break;
    }

    std::thread self;
    {
        std::scoped_lock lock(mtx);
        if (stopping)
            return; // stay in `clients` so stop() can join us
        for (auto it = clients.begin(); it != clients.end(); ++it) {
            if (it->get() == client.get()) {
                clients.erase(it);
                break;
            }
        }
        self = std::move(client->reader);
    }
    if (opts.log) {
        *opts.log << "[capcheckd] client " << client->id
                  << " disconnected\n";
        opts.log->flush();
    }
    if (self.joinable())
        self.detach();
    client->fd.reset();
}

void
Server::handleSubmit(const std::shared_ptr<Client> &client,
                     SubmitMessage &&msg)
{
    const std::size_t n = msg.requests.size();
    if (n > opts.maxBatchRequests) {
        sendToClient(
            client,
            encodeError(errOversizeBatch,
                        "batch of " + std::to_string(n) +
                            " requests exceeds the daemon cap of " +
                            std::to_string(opts.maxBatchRequests),
                        msg.batch));
        return;
    }

    // Validate every configuration up front — the in-process runner
    // fatal()s here, but a daemon answers with a structured error and
    // lives on.
    for (const harness::RunRequest &req : msg.requests) {
        const std::string errors =
            system::validationErrors(req.config);
        if (!errors.empty()) {
            sendToClient(client,
                         encodeError(errBadRequest,
                                     "invalid request [" +
                                         req.label() +
                                         "]: " + errors,
                                     msg.batch));
            return;
        }
    }

    auto batch = std::make_shared<Batch>();
    batch->client = client;
    batch->id = msg.batch;
    batch->options = msg.options;
    batch->execOpts = msg.options.toSweepOptions();
    batch->requests = std::move(msg.requests);
    batch->remaining.store(n, std::memory_order_relaxed);

    // Observability directories must exist before a worker touches
    // them (same rule as SweepRunner, including the samples-into-
    // jsonDir fallback).
    {
        namespace fs = std::filesystem;
        std::error_code ec;
        const harness::SweepOptions &eo = batch->execOpts;
        for (const std::string *dir :
             {&eo.traceDir, &eo.auditDir, &eo.flightDir,
              &eo.latencyDir}) {
            if (!dir->empty())
                fs::create_directories(*dir, ec);
        }
        if (eo.sampleInterval > 0 && eo.traceDir.empty() &&
            !eo.jsonDir.empty())
            fs::create_directories(eo.jsonDir, ec);
    }

    // Submit-time cache hits are answered inline below; fresh work is
    // collected first so admission can be all-or-nothing, then
    // enqueued in one shot.
    struct InlineHit
    {
        std::size_t index;
        std::uint64_t hash;
        system::RunResult result;
    };
    std::vector<InlineHit> hits;
    std::vector<std::shared_ptr<Unit>> fresh;
    const bool useCache = !batch->options.noCache;

    {
        std::unique_lock lock(mtx);
        const std::size_t inflight =
            client->inflight.load(std::memory_order_relaxed);
        if (inflight + n > opts.maxInflightPerClient) {
            ++rejectedOverload;
            lock.unlock();
            sendToClient(
                client,
                encodeError(errOverloaded,
                            "client has " + std::to_string(inflight) +
                                " requests in flight; cap is " +
                                std::to_string(
                                    opts.maxInflightPerClient),
                            batch->id, 100));
            return;
        }
        if (queue.size() + n > opts.maxQueue) {
            ++rejectedOverload;
            lock.unlock();
            sendToClient(
                client,
                encodeError(errOverloaded,
                            "queue depth " +
                                std::to_string(queue.size()) +
                                " cannot absorb a batch of " +
                                std::to_string(n) + " (cap " +
                                std::to_string(opts.maxQueue) + ")",
                            batch->id, 100));
            return;
        }
        client->inflight.fetch_add(n, std::memory_order_relaxed);

        std::map<std::uint64_t, std::shared_ptr<Unit>> batchLocal;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t h = batch->requests[i].hash();
            if (useCache) {
                if (auto cached = memCache.lookup(h)) {
                    ++totalCacheHits;
                    hits.push_back({i, h, std::move(*cached)});
                    continue;
                }
                if (disk) {
                    if (auto stored = disk->lookup(h)) {
                        memCache.store(h, *stored);
                        ++totalCacheHits;
                        hits.push_back({i, h, std::move(*stored)});
                        continue;
                    }
                }
                if (auto it = pending.find(h);
                    it != pending.end()) {
                    ++totalCacheHits;
                    it->second->waiters.push_back({batch, i});
                    continue;
                }
            }
            // With noCache, duplicates inside the batch still
            // coalesce (SweepRunner's cacheEnabled=false re-runs
            // them; one simulation per unique hash is strictly
            // better and keeps "cached" attribution meaningful).
            if (auto it = batchLocal.find(h);
                it != batchLocal.end()) {
                ++totalCacheHits;
                it->second->waiters.push_back({batch, i});
                continue;
            }
            auto unit = std::make_shared<Unit>();
            unit->hash = h;
            unit->waiters.push_back({batch, i});
            unit->noStore = !useCache;
            if (useCache)
                pending.emplace(h, unit);
            batchLocal.emplace(h, unit);
            fresh.push_back(unit);
        }
        for (const auto &unit : fresh)
            queue.push_back(unit);
    }
    for (std::size_t k = 0; k < fresh.size(); ++k)
        wake.notify_one();

    for (const InlineHit &hit : hits) {
        sendResult(batch, hit.index, hit.hash, RunStatus::cached,
                   &hit.result, 0, std::string());
    }
}

void
Server::workerLoop()
{
    while (true) {
        std::shared_ptr<Unit> unit;
        {
            std::unique_lock lock(mtx);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            unit = queue.front();
            queue.pop_front();
        }

        const harness::RunRequest &req = unit->request();
        const harness::SweepOptions &execOpts =
            unit->waiters.front().batch->execOpts;

        system::RunResult result;
        std::string error;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            result = req.execute(
                harness::obsOptionsFor(execOpts, req));
        } catch (const SimError &e) {
            error = e.what();
        } catch (const std::exception &e) {
            error = e.what();
        }
        const double wallMillis =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();

        std::vector<Unit::Waiter> waiters;
        {
            std::scoped_lock lock(mtx);
            pending.erase(unit->hash);
            if (error.empty()) {
                ++totalExecuted;
                if (!unit->noStore) {
                    memCache.store(unit->hash, result);
                    if (disk)
                        disk->store(unit->hash, result);
                }
            }
            // Coalescing window closes here: the hash is out of
            // `pending`, so no waiter can be added after this swap.
            waiters.swap(unit->waiters);
        }

        for (std::size_t k = 0; k < waiters.size(); ++k) {
            const Unit::Waiter &waiter = waiters[k];
            if (!error.empty()) {
                sendResult(waiter.batch, waiter.index, unit->hash,
                           RunStatus::failed, nullptr, wallMillis,
                           error);
            } else {
                sendResult(waiter.batch, waiter.index, unit->hash,
                           k == 0 ? RunStatus::executed
                                  : RunStatus::cached,
                           &result, k == 0 ? wallMillis : 0,
                           std::string());
            }
        }
    }
}

void
Server::sendResult(const std::shared_ptr<Batch> &batch,
                   std::size_t index, std::uint64_t hash,
                   RunStatus status, const system::RunResult *result,
                   double wall_millis, const std::string &error)
{
    switch (status) {
      case RunStatus::executed:
        batch->nExecuted.fetch_add(1, std::memory_order_relaxed);
        break;
      case RunStatus::cached:
        batch->nCached.fetch_add(1, std::memory_order_relaxed);
        break;
      case RunStatus::failed:
        batch->nFailed.fetch_add(1, std::memory_order_relaxed);
        break;
    }

    std::string body;
    const std::string *bodyPtr = nullptr;
    if (result && batch->options.wantResultJson) {
        body = harness::runJson(batch->requests[index], *result);
        bodyPtr = &body;
    }
    sendToClient(batch->client,
                 encodeResult(batch->id, index, hash, status, result,
                              bodyPtr, wall_millis, error));

    batch->client->inflight.fetch_sub(1, std::memory_order_relaxed);
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
        ServiceStats s;
        s.jobs = numJobs;
        sendToClient(
            batch->client,
            encodeDone(batch->id,
                       batch->nExecuted.load(
                           std::memory_order_relaxed),
                       batch->nCached.load(std::memory_order_relaxed),
                       batch->nFailed.load(std::memory_order_relaxed),
                       s));
    }
}

void
Server::sendToClient(const std::shared_ptr<Client> &client,
                     const std::string &payload)
{
    if (client->dead.load(std::memory_order_relaxed))
        return;
    std::scoped_lock lock(client->writeMtx);
    try {
        sendFrame(client->fd.get(), payload);
    } catch (const FrameError &) {
        client->dead.store(true, std::memory_order_relaxed);
    }
}

ServiceStats
Server::stats()
{
    std::scoped_lock lock(mtx);
    return statsLocked();
}

ServiceStats
Server::statsLocked()
{
    ServiceStats s;
    s.executed = totalExecuted;
    s.cacheHits = totalCacheHits;
    s.jobs = numJobs;
    s.memCache = memCache.stats();
    if (disk) {
        s.diskCache = disk->stats();
        s.diskCachePresent = true;
    }
    s.queueDepth = queue.size();
    s.activeClients = clients.size();
    s.rejectedOverload = rejectedOverload;
    return s;
}

} // namespace capcheck::service
