/**
 * @file
 * InProcessService: the SweepService implementation that runs
 * simulations on this process's own SweepRunner. It is the
 * no-daemon default, and doubles as the reference semantics the
 * remote path must reproduce byte-for-byte.
 */

#ifndef CAPCHECK_SERVICE_INPROCESS_HH
#define CAPCHECK_SERVICE_INPROCESS_HH

#include "harness/sweep_runner.hh"
#include "service/sweep_service.hh"

namespace capcheck::service
{

class InProcessService : public SweepService
{
  public:
    explicit InProcessService(const harness::SweepOptions &opts)
        : runner(opts)
    {
    }

    std::vector<harness::RunOutcome>
    submit(const std::vector<harness::RunRequest> &requests,
           const std::string &sweep_name,
           const Sink &sink = {}) override;

    ServiceStats stats() override;

    bool ping() override { return true; }

    harness::SweepRunner &sweepRunner() { return runner; }

  private:
    harness::SweepRunner runner;
};

} // namespace capcheck::service

#endif // CAPCHECK_SERVICE_INPROCESS_HH
