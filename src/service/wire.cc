#include "service/wire.hh"

#include <cstdio>
#include <sstream>

#include "base/json.hh"
#include "harness/result_json.hh"
#include "system/soc_config_builder.hh"

namespace capcheck::service
{

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::executed:
        return "executed";
      case RunStatus::cached:
        return "cached";
      case RunStatus::failed:
        return "failed";
    }
    return "?";
}

SubmitOptions
SubmitOptions::fromSweepOptions(const harness::SweepOptions &opts)
{
    SubmitOptions so;
    so.jsonDir = opts.jsonDir;
    so.traceDir = opts.traceDir;
    so.auditDir = opts.auditDir;
    so.flightDir = opts.flightDir;
    so.latencyDir = opts.latencyDir;
    so.sampleInterval = opts.sampleInterval;
    so.topN = opts.topN;
    so.noCache = !opts.cacheEnabled;
    so.wantResultJson = true;
    return so;
}

harness::SweepOptions
SubmitOptions::toSweepOptions() const
{
    harness::SweepOptions opts;
    opts.jsonDir = jsonDir;
    opts.traceDir = traceDir;
    opts.auditDir = auditDir;
    opts.flightDir = flightDir;
    opts.latencyDir = latencyDir;
    opts.sampleInterval = sampleInterval;
    opts.topN = topN;
    opts.cacheEnabled = !noCache;
    return opts;
}

std::string
messageType(const json::JsonValue &v)
{
    const json::JsonValue *type = v.get("type");
    return type && type->isString() ? type->asString()
                                    : std::string();
}

namespace
{

std::string
oneKeyMessage(const char *type)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("type").value(type);
    w.endObject();
    return os.str();
}

void
writeCacheStats(json::JsonWriter &w, const harness::CacheStats &c)
{
    w.beginObject();
    w.key("entries").value(std::uint64_t{c.entries});
    w.key("bytes").value(std::uint64_t{c.bytes});
    w.key("hits").value(std::uint64_t{c.hits});
    w.key("lookups").value(std::uint64_t{c.lookups});
    w.key("evictions").value(std::uint64_t{c.evictions});
    w.endObject();
}

harness::CacheStats
cacheStatsFrom(const json::JsonValue *v)
{
    harness::CacheStats c;
    if (!v || !v->isObject())
        return c;
    const auto u64 = [&](const char *key) -> std::uint64_t {
        const json::JsonValue *f = v->get(key);
        return f && f->isNumber()
                   ? static_cast<std::uint64_t>(f->asNumber())
                   : 0;
    };
    c.entries = u64("entries");
    c.bytes = u64("bytes");
    c.hits = u64("hits");
    c.lookups = u64("lookups");
    c.evictions = u64("evictions");
    return c;
}

std::uint64_t
u64Field(const json::JsonValue &v, const char *key)
{
    const json::JsonValue *f = v.get(key);
    return f && f->isNumber()
               ? static_cast<std::uint64_t>(f->asNumber())
               : 0;
}

} // namespace

const std::string &
buildHash()
{
    // One canonical request whose hash folds in every cost parameter
    // and config field: if two builds would hash an experiment
    // differently, they disagree here too.
    static const std::string hash =
        harness::RunRequest::single(
            "aes", system::SocConfigBuilder()
                       .mode(system::SystemMode::ccpuCaccel)
                       .numInstances(2)
                       .seed(1)
                       .build())
            .hashHex();
    return hash;
}

std::string
encodePing()
{
    return oneKeyMessage("ping");
}

std::string
encodePong()
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("type").value("pong");
    w.key("protocol").value(protocolVersion);
    w.key("protocolVersion").value(protocolVersion);
    w.key("build").value(buildHash());
    w.endObject();
    return os.str();
}

std::optional<PongInfo>
pongFromJson(const json::JsonValue &v)
{
    if (!v.isObject() || messageType(v) != "pong")
        return std::nullopt;
    PongInfo info;
    // "protocolVersion" is the satellite-added alias; "protocol" is
    // the v1 field every daemon has sent since PR 6.
    const json::JsonValue *proto = v.get("protocolVersion");
    if (!proto)
        proto = v.get("protocol");
    info.protocol = proto && proto->isNumber()
                        ? static_cast<unsigned>(proto->asNumber())
                        : 0;
    const json::JsonValue *build = v.get("build");
    if (build && build->isString())
        info.build = build->asString();
    return info;
}

std::string
encodeStatsQuery()
{
    return oneKeyMessage("stats");
}

std::string
encodeStats(const ServiceStats &stats)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("type").value("stats");
    w.key("executed").value(std::uint64_t{stats.executed});
    w.key("cacheHits").value(std::uint64_t{stats.cacheHits});
    w.key("jobs").value(stats.jobs);
    w.key("queueDepth").value(std::uint64_t{stats.queueDepth});
    w.key("activeClients").value(std::uint64_t{stats.activeClients});
    w.key("rejectedOverload")
        .value(std::uint64_t{stats.rejectedOverload});
    w.key("memCache");
    writeCacheStats(w, stats.memCache);
    if (stats.diskCachePresent) {
        w.key("diskCache");
        writeCacheStats(w, stats.diskCache);
    }
    if (stats.metricsPresent) {
        w.key("metrics");
        stats.metrics.writeJson(w);
    }
    w.endObject();
    return os.str();
}

std::optional<ServiceStats>
statsFromJson(const json::JsonValue &v)
{
    if (!v.isObject() || messageType(v) != "stats")
        return std::nullopt;
    ServiceStats s;
    s.executed = u64Field(v, "executed");
    s.cacheHits = u64Field(v, "cacheHits");
    s.jobs = static_cast<unsigned>(u64Field(v, "jobs"));
    s.queueDepth = u64Field(v, "queueDepth");
    s.activeClients = u64Field(v, "activeClients");
    s.rejectedOverload = u64Field(v, "rejectedOverload");
    s.memCache = cacheStatsFrom(v.get("memCache"));
    if (const json::JsonValue *disk = v.get("diskCache")) {
        s.diskCache = cacheStatsFrom(disk);
        s.diskCachePresent = true;
    }
    if (const json::JsonValue *metrics = v.get("metrics")) {
        if (auto snap = obs::MetricsSnapshot::fromJson(*metrics)) {
            s.metrics = std::move(*snap);
            s.metricsPresent = true;
        }
    }
    return s;
}

std::string
encodeSubmit(std::uint64_t batch, const std::string &sweep_name,
             const SubmitOptions &options,
             const std::vector<harness::RunRequest> &reqs,
             const std::string &trace_id)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("type").value("submit");
    w.key("batch").value(std::uint64_t{batch});
    w.key("sweep").value(sweep_name);
    // Optional field: old daemons ignore unknown members, so the
    // protocol stays v1-compatible in both directions.
    if (!trace_id.empty())
        w.key("traceId").value(trace_id);
    w.key("options").beginObject();
    w.key("jsonDir").value(options.jsonDir);
    w.key("traceDir").value(options.traceDir);
    w.key("auditDir").value(options.auditDir);
    w.key("flightDir").value(options.flightDir);
    w.key("latencyDir").value(options.latencyDir);
    w.key("sampleInterval")
        .value(std::uint64_t{options.sampleInterval});
    w.key("topN").value(options.topN);
    w.key("noCache").value(options.noCache);
    w.key("wantResultJson").value(options.wantResultJson);
    w.endObject();
    w.key("requests").beginArray();
    for (const harness::RunRequest &req : reqs)
        harness::writeRequestWireJson(w, req);
    w.endArray();
    w.endObject();
    return os.str();
}

std::optional<SubmitMessage>
submitFromJson(const json::JsonValue &v, std::string *error)
{
    if (!v.isObject() || messageType(v) != "submit") {
        if (error)
            *error = "not a submit message";
        return std::nullopt;
    }
    SubmitMessage msg;
    msg.batch = u64Field(v, "batch");
    const json::JsonValue *sweep = v.get("sweep");
    msg.sweep = sweep && sweep->isString() ? sweep->asString()
                                           : std::string("sweep");
    const json::JsonValue *trace = v.get("traceId");
    if (trace && trace->isString())
        msg.traceId = trace->asString();
    if (const json::JsonValue *o = v.get("options");
        o && o->isObject()) {
        const auto str = [&](const char *key) -> std::string {
            const json::JsonValue *f = o->get(key);
            return f && f->isString() ? f->asString()
                                      : std::string();
        };
        msg.options.jsonDir = str("jsonDir");
        msg.options.traceDir = str("traceDir");
        msg.options.auditDir = str("auditDir");
        msg.options.flightDir = str("flightDir");
        msg.options.latencyDir = str("latencyDir");
        msg.options.sampleInterval = u64Field(*o, "sampleInterval");
        msg.options.topN =
            static_cast<unsigned>(u64Field(*o, "topN"));
        const json::JsonValue *nc = o->get("noCache");
        msg.options.noCache = nc && nc->isBool() && nc->asBool();
        const json::JsonValue *wj = o->get("wantResultJson");
        msg.options.wantResultJson =
            !wj || !wj->isBool() || wj->asBool();
    }
    const json::JsonValue *reqs = v.get("requests");
    if (!reqs || !reqs->isArray()) {
        if (error)
            *error = "submit: missing 'requests' array";
        return std::nullopt;
    }
    msg.requests.reserve(reqs->elements().size());
    for (std::size_t i = 0; i < reqs->elements().size(); ++i) {
        std::string err;
        auto parsed =
            harness::requestFromWireJson(reqs->elements()[i], &err);
        if (!parsed) {
            if (error) {
                *error = "request " + std::to_string(i) + ": " + err;
            }
            return std::nullopt;
        }
        // Hash integrity: the client's claimed hash must match what
        // this build computes from the decoded fields.
        const json::JsonValue *claimed =
            reqs->elements()[i].get("hash");
        if (claimed && claimed->isString() &&
            claimed->asString() != parsed->hashHex()) {
            if (error) {
                *error = "request " + std::to_string(i) +
                         ": hash mismatch (client " +
                         claimed->asString() + ", server " +
                         parsed->hashHex() +
                         ") — client/server builds disagree";
            }
            return std::nullopt;
        }
        msg.requests.push_back(std::move(*parsed));
    }
    return msg;
}

std::string
encodeResult(std::uint64_t batch, std::size_t index,
             std::uint64_t hash, RunStatus status,
             const system::RunResult *result,
             const std::string *result_json, double wall_millis,
             const std::string &error)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("type").value("result");
    w.key("batch").value(std::uint64_t{batch});
    w.key("index").value(std::uint64_t{index});
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    w.key("hash").value(hex);
    w.key("status").value(runStatusName(status));
    w.key("wallMillis").value(wall_millis);
    if (!error.empty())
        w.key("error").value(error);
    if (result) {
        w.key("result");
        harness::writeResultWireJson(w, *result);
    }
    if (result_json)
        w.key("resultJson").value(*result_json);
    w.endObject();
    return os.str();
}

std::string
encodeDone(std::uint64_t batch, std::uint64_t executed,
           std::uint64_t cached, std::uint64_t failed,
           const ServiceStats &stats)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("type").value("done");
    w.key("batch").value(std::uint64_t{batch});
    w.key("executed").value(std::uint64_t{executed});
    w.key("cached").value(std::uint64_t{cached});
    w.key("failed").value(std::uint64_t{failed});
    w.key("jobs").value(stats.jobs);
    w.endObject();
    return os.str();
}

std::string
encodeError(const std::string &code, const std::string &message,
            std::optional<std::uint64_t> batch,
            unsigned retry_after_millis)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("type").value("error");
    w.key("code").value(code);
    w.key("message").value(message);
    if (batch)
        w.key("batch").value(std::uint64_t{*batch});
    if (retry_after_millis > 0)
        w.key("retryAfterMillis").value(retry_after_millis);
    w.endObject();
    return os.str();
}

} // namespace capcheck::service
