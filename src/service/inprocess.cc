#include "service/inprocess.hh"

#include "harness/result_json.hh"

namespace capcheck::service
{

std::vector<harness::RunOutcome>
InProcessService::submit(
    const std::vector<harness::RunRequest> &requests,
    const std::string &sweep_name, const Sink &sink)
{
    auto outcomes = runner.run(requests, sweep_name);
    if (sink) {
        // In-process there is nothing to overlap with, so the stream
        // fires after the batch, in input order — deterministic, and
        // exactly the artefact order the JSON writer used.
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const harness::RunOutcome &o = outcomes[i];
            const std::string body =
                harness::runJson(o.request, o.result);
            StreamItem item;
            item.index = i;
            item.hash = o.request.hash();
            item.status = o.cacheHit ? RunStatus::cached
                                     : RunStatus::executed;
            item.result = &o.result;
            item.resultJson = &body;
            item.wallMillis = o.wallMillis;
            sink(item);
        }
    }
    return outcomes;
}

ServiceStats
InProcessService::stats()
{
    ServiceStats s;
    s.executed = runner.simulationsExecuted();
    s.cacheHits = runner.cacheHits();
    s.jobs = runner.jobs();
    s.memCache = runner.cache().stats();
    if (harness::DiskResultCache *disk = runner.diskCache()) {
        s.diskCache = disk->stats();
        s.diskCachePresent = true;
    }
    return s;
}

} // namespace capcheck::service
