#include "service/frame.hh"

#include <cstring>

#include "service/socket.hh"

namespace capcheck::service
{

void
encodeFrameHeader(char (&header)[frameHeaderBytes],
                  std::size_t payload_bytes)
{
    std::memcpy(header, frameMagic, sizeof(frameMagic));
    const auto len = static_cast<std::uint32_t>(payload_bytes);
    header[4] = static_cast<char>(len & 0xff);
    header[5] = static_cast<char>((len >> 8) & 0xff);
    header[6] = static_cast<char>((len >> 16) & 0xff);
    header[7] = static_cast<char>((len >> 24) & 0xff);
}

std::size_t
decodeFrameHeader(const char (&header)[frameHeaderBytes],
                  std::size_t max_bytes)
{
    if (std::memcmp(header, frameMagic, sizeof(frameMagic)) != 0) {
        throw FrameError(FrameError::Kind::badMagic,
                         "frame header magic mismatch (not a "
                         "capcheckd peer, or desynchronized stream)");
    }
    std::uint32_t len = 0;
    for (unsigned i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(header[4 + i]))
               << (i * 8);
    }
    if (max_bytes > 0 && len > max_bytes) {
        throw FrameError(FrameError::Kind::oversize,
                         "frame of " + std::to_string(len) +
                             " bytes exceeds the " +
                             std::to_string(max_bytes) + "-byte cap");
    }
    return len;
}

void
sendFrame(int fd, std::string_view payload, FrameMeter *meter)
{
    if (payload.size() > UINT32_MAX) {
        throw FrameError(FrameError::Kind::oversize,
                         "frame payload exceeds u32 length prefix");
    }
    char header[frameHeaderBytes];
    encodeFrameHeader(header, payload.size());
    if (!sendAll(fd, header, sizeof(header)) ||
        !sendAll(fd, payload.data(), payload.size())) {
        throw FrameError(FrameError::Kind::io,
                         "frame write failed (peer closed?)");
    }
    if (meter) {
        meter->framesOut.fetch_add(1, std::memory_order_relaxed);
        meter->bytesOut.fetch_add(frameHeaderBytes + payload.size(),
                                  std::memory_order_relaxed);
    }
}

std::optional<std::string>
recvFrame(int fd, std::size_t max_bytes, FrameMeter *meter)
{
    char header[frameHeaderBytes];
    const int rc = recvAll(fd, header, sizeof(header));
    if (rc == 0)
        return std::nullopt;
    if (rc < 0) {
        throw FrameError(FrameError::Kind::io,
                         "frame header read failed");
    }
    const std::size_t len = decodeFrameHeader(header, max_bytes);
    std::string payload(len, '\0');
    if (len > 0 && recvAll(fd, payload.data(), len) != 1) {
        throw FrameError(FrameError::Kind::io,
                         "frame payload truncated");
    }
    if (meter) {
        meter->framesIn.fetch_add(1, std::memory_order_relaxed);
        meter->bytesIn.fetch_add(frameHeaderBytes + len,
                                 std::memory_order_relaxed);
    }
    return payload;
}

} // namespace capcheck::service
