/**
 * @file
 * JSON message bodies of the capcheckd protocol — the layer between
 * the framing (service/frame.hh) and the client/server state
 * machines. Every message is one JSON object with a "type" member:
 *
 *   client → server: "ping", "stats", "submit"
 *   server → client: "pong", "stats", "result", "done", "error"
 *
 * Submitted requests travel in the full-fidelity wire encoding
 * (harness::writeRequestWireJson), and the server re-hashes each
 * parsed request against the client-claimed hash, so a client and
 * daemon built from diverging trees fail loudly instead of silently
 * keying different experiments to the same cache entry.
 */

#ifndef CAPCHECK_SERVICE_WIRE_HH
#define CAPCHECK_SERVICE_WIRE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/json_value.hh"
#include "harness/run_request.hh"
#include "harness/sweep_options.hh"
#include "service/sweep_service.hh"

namespace capcheck::service
{

/** Protocol revision carried in "pong"; bumped on breaking changes. */
inline constexpr unsigned protocolVersion = 1;

/**
 * Hex hash identifying this build's request-hashing behaviour: the
 * content hash of one canonical RunRequest. Two binaries that would
 * key the same experiment differently (diverging cost tables, config
 * fields, hash function) disagree on it, so a client can warn about
 * build skew at ping time instead of discovering it at re-hash time
 * mid-submit. Computed once, then cached.
 */
const std::string &buildHash();

/** Parsed "pong" reply. */
struct PongInfo
{
    unsigned protocol = 0;
    /** Daemon's buildHash(); empty from pre-telemetry daemons. */
    std::string build;
};

/** Decode a pong message; nullopt when @p v is not a pong. */
std::optional<PongInfo> pongFromJson(const json::JsonValue &v);

/**
 * Per-batch execution options a client sends with "submit": which
 * observability artefacts the daemon writes (into client-chosen
 * directories — the transport is a local socket, so client and
 * daemon share a filesystem), and cache/result-body behaviour.
 */
struct SubmitOptions
{
    /** Client's jsonDir — results are written client-side, but the
     *  samples file falls back to this directory when traceDir is
     *  empty, and the daemon must reproduce that path exactly. */
    std::string jsonDir;
    std::string traceDir;
    std::string auditDir;
    std::string flightDir;
    std::string latencyDir;
    Cycles sampleInterval = 0;
    unsigned topN = 10;
    /** Re-simulate even when cached (the client's --no-cache). */
    bool noCache = false;
    /** Embed the run-<hash>.json body in each result frame (the
     *  client writes the files; off saves the bandwidth). */
    bool wantResultJson = true;

    /** The artefact-selecting subset of @p opts. */
    static SubmitOptions fromSweepOptions(
        const harness::SweepOptions &opts);

    /** As a SweepOptions for harness::obsOptionsFor() on the daemon. */
    harness::SweepOptions toSweepOptions() const;
};

/** Parsed "submit" message. */
struct SubmitMessage
{
    std::uint64_t batch = 0;
    std::string sweep;
    /** Client-generated trace id (optional wire field; empty when
     *  the client did not send one — the daemon synthesizes). */
    std::string traceId;
    SubmitOptions options;
    std::vector<harness::RunRequest> requests;
};

/** The "type" member; empty when absent/ill-typed. */
std::string messageType(const json::JsonValue &v);

/** @{ Encoders. Each returns a complete frame payload. */
std::string encodePing();
std::string encodePong();
std::string encodeStatsQuery();
std::string encodeStats(const ServiceStats &stats);
std::string encodeSubmit(std::uint64_t batch,
                         const std::string &sweep_name,
                         const SubmitOptions &options,
                         const std::vector<harness::RunRequest> &reqs,
                         const std::string &trace_id = std::string());
std::string encodeResult(std::uint64_t batch, std::size_t index,
                         std::uint64_t hash, RunStatus status,
                         const system::RunResult *result,
                         const std::string *result_json,
                         double wall_millis,
                         const std::string &error);
std::string encodeDone(std::uint64_t batch, std::uint64_t executed,
                       std::uint64_t cached, std::uint64_t failed,
                       const ServiceStats &stats);
std::string encodeError(const std::string &code,
                        const std::string &message,
                        std::optional<std::uint64_t> batch,
                        unsigned retry_after_millis = 0);
/** @} */

/** @{ Decoders; nullopt (with @p error filled) on shape errors. */
std::optional<SubmitMessage>
submitFromJson(const json::JsonValue &v, std::string *error);

std::optional<ServiceStats> statsFromJson(const json::JsonValue &v);
/** @} */

} // namespace capcheck::service

#endif // CAPCHECK_SERVICE_WIRE_HH
