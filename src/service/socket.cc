#include "service/socket.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace capcheck::service
{

void
Fd::reset()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

int
Fd::release()
{
    const int out = fd;
    fd = -1;
    return out;
}

namespace
{

/**
 * Fill a sockaddr_un for @p path; false when the path exceeds
 * sun_path (AF_UNIX's infamous ~107-byte limit).
 */
bool
makeAddress(const std::string &path, sockaddr_un &addr,
            std::string *error)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        if (error) {
            *error = "socket path '" + path +
                     "' empty or longer than sun_path (" +
                     std::to_string(sizeof(addr.sun_path) - 1) +
                     " bytes)";
        }
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

Fd
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!makeAddress(path, addr, error))
        return Fd{};
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error)
            *error = std::string("socket(): ") + std::strerror(errno);
        return Fd{};
    }
    int rc;
    do {
        rc = ::connect(fd.get(),
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        if (error) {
            *error = "connect('" + path +
                     "'): " + std::strerror(errno);
        }
        return Fd{};
    }
    return fd;
}

Fd
listenUnix(const std::string &path, int backlog, std::string *error)
{
    sockaddr_un addr;
    if (!makeAddress(path, addr, error))
        return Fd{};
    // A stale socket file from a crashed daemon would make bind()
    // fail with EADDRINUSE; a live daemon is indistinguishable here,
    // so the caller decides whether replacing is safe.
    ::unlink(path.c_str());
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error)
            *error = std::string("socket(): ") + std::strerror(errno);
        return Fd{};
    }
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (error)
            *error = "bind('" + path + "'): " + std::strerror(errno);
        return Fd{};
    }
    if (::listen(fd.get(), backlog) < 0) {
        if (error)
            *error = "listen('" + path + "'): " + std::strerror(errno);
        return Fd{};
    }
    return fd;
}

Fd
acceptUnix(int listen_fd)
{
    int rc;
    do {
        rc = ::accept(listen_fd, nullptr, nullptr);
    } while (rc < 0 && errno == EINTR);
    return Fd(rc);
}

bool
sendAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

int
recvAll(int fd, void *data, std::size_t len)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            return got == 0 ? 0 : -1;
        got += static_cast<std::size_t>(n);
    }
    return 1;
}

} // namespace capcheck::service
