#include "service/sweep_service.hh"

#include "service/inprocess.hh"
#include "service/remote.hh"

namespace capcheck::service
{

std::unique_ptr<SweepService>
makeService(const harness::SweepOptions &opts)
{
    if (!opts.serverSocket.empty())
        return std::make_unique<RemoteService>(opts);
    return std::make_unique<InProcessService>(opts);
}

} // namespace capcheck::service
