/**
 * @file
 * SweepService: the one client API for executing RunRequest batches,
 * whatever is behind it. `submit()` takes a batch and streams one
 * item per input request — {hash, status, resultJson} plus the parsed
 * result — as each completes, then returns the outcome vector in
 * input order; `stats()` and `ping()` round out the interface.
 *
 * Two implementations exist:
 *
 *  - InProcessService wraps the classic SweepRunner: simulations run
 *    on this process's worker threads.
 *  - RemoteService speaks the length-prefixed framing protocol to a
 *    capcheckd daemon over a Unix-domain socket; the daemon owns the
 *    worker pool, the admission control and the shared caches.
 *
 * The two are artefact-compatible by construction: the same batch
 * through either backend yields byte-identical run-<hash>.json files
 * and observability artefacts, so every bench harness can flip
 * between them with --server and nothing downstream notices.
 */

#ifndef CAPCHECK_SERVICE_SWEEP_SERVICE_HH
#define CAPCHECK_SERVICE_SWEEP_SERVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/result_json.hh"
#include "harness/run_request.hh"
#include "harness/sweep_options.hh"
#include "obs/metrics.hh"

namespace capcheck::service
{

/** Structured failure from either backend (connect refused, protocol
 *  violation, daemon overload, ...). `code` is machine-stable. */
class ServiceError : public std::runtime_error
{
  public:
    ServiceError(std::string code, const std::string &what)
        : std::runtime_error(what), errorCode(std::move(code))
    {
    }

    const std::string &code() const { return errorCode; }

  private:
    std::string errorCode;
};

/** @{ Machine-stable ServiceError / wire error codes. */
inline constexpr const char *errConnect = "connect";
inline constexpr const char *errBadFrame = "badFrame";
inline constexpr const char *errOversizeFrame = "oversizeFrame";
inline constexpr const char *errOversizeBatch = "oversizeBatch";
inline constexpr const char *errBadRequest = "badRequest";
inline constexpr const char *errOverloaded = "overloaded";
inline constexpr const char *errProtocol = "protocol";
/** @} */

/** How one submitted request was satisfied. */
enum class RunStatus
{
    executed, ///< fresh simulation
    cached,   ///< served from a result cache or batch deduplication
    failed,   ///< the simulation itself raised an error
};

const char *runStatusName(RunStatus status);

/** One streamed completion. Pointers are valid only for the duration
 *  of the sink call. */
struct StreamItem
{
    /** Index of the request in the submitted batch. */
    std::size_t index = 0;
    std::uint64_t hash = 0;
    RunStatus status = RunStatus::executed;
    /** Parsed result; nullptr when status == failed. */
    const system::RunResult *result = nullptr;
    /** The run-<hash>.json document body; may be null when the
     *  backend was asked not to materialize it. */
    const std::string *resultJson = nullptr;
    /** Simulation wall time (0 for cache hits). Non-deterministic. */
    double wallMillis = 0;
    /** Failure description when status == failed. */
    std::string error;
};

/** Aggregate counters of one backend, for `capcheckd`'s stats frame
 *  and the harness summary tables. */
struct ServiceStats
{
    /** Fresh simulations executed over the backend's lifetime. */
    std::uint64_t executed = 0;
    /** Requests served from a cache or by deduplication. */
    std::uint64_t cacheHits = 0;
    /** Worker threads behind the backend. */
    unsigned jobs = 0;
    harness::CacheStats memCache;
    harness::CacheStats diskCache;
    bool diskCachePresent = false;
    /** @{ Daemon-only gauges (zero for in-process backends). */
    std::uint64_t queueDepth = 0;
    std::uint64_t activeClients = 0;
    std::uint64_t rejectedOverload = 0;
    /** @} */

    /** Full telemetry registry snapshot; daemon-side stats replies
     *  carry it (metricsPresent), in-process backends omit it. */
    obs::MetricsSnapshot metrics;
    bool metricsPresent = false;
};

class SweepService
{
  public:
    using Sink = std::function<void(const StreamItem &)>;

    virtual ~SweepService() = default;

    /**
     * Execute @p requests, invoking @p sink once per input index as
     * results become available (streaming order is completion order,
     * not input order), and return one outcome per request in input
     * order. Throws ServiceError on protocol/admission failures and
     * fatal()s on simulation failures, mirroring SweepRunner.
     */
    virtual std::vector<harness::RunOutcome>
    submit(const std::vector<harness::RunRequest> &requests,
           const std::string &sweep_name, const Sink &sink = {}) = 0;

    virtual ServiceStats stats() = 0;

    /** Liveness probe; false when the backend is unreachable. */
    virtual bool ping() = 0;
};

/**
 * Backend selection: a RemoteService talking to
 * @p opts.serverSocket when that is non-empty, otherwise an
 * InProcessService around a SweepRunner built from @p opts.
 */
std::unique_ptr<SweepService>
makeService(const harness::SweepOptions &opts);

} // namespace capcheck::service

#endif // CAPCHECK_SERVICE_SWEEP_SERVICE_HH
