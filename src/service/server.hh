/**
 * @file
 * The capcheckd server: accepts clients on a Unix-domain socket,
 * admits batches of RunRequests into a bounded work queue, executes
 * them on a worker pool sharing one in-memory + optional disk result
 * cache, and streams each result frame back as it completes.
 *
 * Admission control is all-or-nothing per batch: a submit that would
 * exceed the queue bound or the per-client in-flight cap is rejected
 * with a structured "overloaded" error (carrying retryAfterMillis)
 * before any of its requests are enqueued, so a client never sees a
 * half-admitted batch.
 *
 * Identical in-flight requests coalesce across batches and clients: a
 * hash already simulating gains a waiter instead of a second queue
 * entry, and every waiter beyond the first reports status "cached" —
 * the same attribution rule SweepRunner applies at submission time.
 */

#ifndef CAPCHECK_SERVICE_SERVER_HH
#define CAPCHECK_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/disk_cache.hh"
#include "harness/result_cache.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "obs/span.hh"
#include "service/frame.hh"
#include "service/socket.hh"
#include "service/sweep_service.hh"
#include "service/wire.hh"

namespace capcheck::service
{

struct ServerOptions
{
    /** Path of the Unix-domain socket to listen on. */
    std::string socketPath;

    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Queue-depth bound: a batch is rejected as overloaded when the
     *  queue could not absorb all of its requests. */
    std::size_t maxQueue = 1024;

    /** Per-client cap on requests admitted but not yet answered. */
    std::size_t maxInflightPerClient = 512;

    /** Largest accepted batch; bigger submits are oversizeBatch. */
    std::size_t maxBatchRequests = 4096;

    /** Receiver-side frame payload cap. */
    std::size_t maxFrameBytes = defaultMaxFrameBytes;

    /** Disk-backed result cache directory; empty = memory only. */
    std::string cacheDir;

    /** LRU byte cap of the disk cache; 0 = unbounded. */
    std::uint64_t cacheMaxBytes = 1ull << 30;

    /** Daemon log lines; nullptr silences them. */
    std::ostream *log = nullptr;

    /** Prometheus text exposition file, atomically rewritten (tmp +
     *  rename) every metricsIntervalMillis and once more at stop();
     *  empty disables the writer thread. */
    std::string metricsOutFile;
    unsigned metricsIntervalMillis = 1000;

    /** Structured JSONL event log (obs::ServerLog); empty = off. */
    std::string jsonLogFile;

    /** Completions slower than this (end-to-end) log an extra
     *  "slow" event; 0 disables slow-request logging. */
    std::uint64_t slowMillis = 1000;
};

/**
 * References into one MetricsRegistry, bound once at construction so
 * the serving hot paths bump instruments without any name lookup.
 * The counters obey two conservation identities, checked by CI from
 * the Prometheus dump:
 *
 *   requests.received = requests.admitted + requests.rejected
 *   requests.admitted = requests.executed + requests.cacheHitsMem
 *                     + requests.cacheHitsDisk + requests.coalesced
 *                     + requests.failed
 */
struct ServiceInstruments
{
    explicit ServiceInstruments(obs::MetricsRegistry &r);

    /** @{ Admission counters. */
    obs::MetricsRegistry::Counter &batchesReceived;
    obs::MetricsRegistry::Counter &batchesAdmitted;
    obs::MetricsRegistry::Counter &batchesRejected;
    obs::MetricsRegistry::Counter &requestsReceived;
    obs::MetricsRegistry::Counter &requestsAdmitted;
    obs::MetricsRegistry::Counter &requestsRejected;
    /** @} */

    /** @{ Outcome counters; exactly one fires per admitted request. */
    obs::MetricsRegistry::Counter &requestsExecuted;
    obs::MetricsRegistry::Counter &requestsFailed;
    obs::MetricsRegistry::Counter &cacheHitsMem;
    obs::MetricsRegistry::Counter &cacheHitsDisk;
    obs::MetricsRegistry::Counter &coalesced;
    /** @} */

    obs::MetricsRegistry::Counter &workerBusyMicros;
    /** @{ FrameMeter mirrors, synced on snapshot/exposition. */
    obs::MetricsRegistry::Counter &framesIn;
    obs::MetricsRegistry::Counter &framesOut;
    obs::MetricsRegistry::Counter &bytesIn;
    obs::MetricsRegistry::Counter &bytesOut;
    /** @} */

    obs::MetricsRegistry::Gauge &queueDepth;
    obs::MetricsRegistry::Gauge &clientsActive;
    obs::MetricsRegistry::Gauge &requestsInflight;
    obs::MetricsRegistry::Gauge &workersBusy;
    obs::MetricsRegistry::Gauge &workersTotal;
    obs::MetricsRegistry::Gauge &uptimeMillis;
    obs::MetricsRegistry::Gauge &memCacheEntries;
    obs::MetricsRegistry::Gauge &memCacheBytes;
    obs::MetricsRegistry::Gauge &diskCacheEntries;
    obs::MetricsRegistry::Gauge &diskCacheBytes;

    /** @{ Span segment latencies, microseconds. */
    obs::MetricsRegistry::Histo &spanAdmit;
    obs::MetricsRegistry::Histo &spanQueue;
    obs::MetricsRegistry::Histo &spanExecute;
    obs::MetricsRegistry::Histo &spanRender;
    obs::MetricsRegistry::Histo &spanStream;
    obs::MetricsRegistry::Histo &spanEndToEnd;
    /** @} */
    obs::MetricsRegistry::Histo &batchSize;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and launch the accept loop and worker pool.
     * Throws ServiceError(errConnect) when the socket cannot be
     * bound.
     */
    void start();

    /** Graceful stop: drain queued work, close every connection,
     *  join all threads, unlink the socket. Idempotent. */
    void stop();

    ServiceStats stats();

    const std::string &socketPath() const { return opts.socketPath; }

    unsigned jobs() const { return numJobs; }

  private:
    struct Client;
    struct Batch;
    struct Unit;

    /** How an answer was produced; picks the one outcome counter
     *  sendResult bumps, so the conservation identity holds even for
     *  coalesced waiters of a failed simulation. */
    enum class AnswerSource
    {
        fresh,        ///< simulated on a worker
        memCacheHit,  ///< answered from the in-memory cache
        diskCacheHit, ///< answered from the disk cache
        coalescedHit, ///< rode on another in-flight simulation
        failure,      ///< simulation raised an error
    };

    void acceptLoop();
    void serveClient(const std::shared_ptr<Client> &client);
    void handleSubmit(const std::shared_ptr<Client> &client,
                      SubmitMessage &&msg);
    void workerLoop();

    /** Best-effort framed write; marks the client dead on failure. */
    void sendToClient(const std::shared_ptr<Client> &client,
                      const std::string &payload);

    /**
     * Send one result frame to @p batch's client and retire the
     * request from the batch's accounting; emits the done frame when
     * this was the batch's last outstanding request. Completes the
     * request's span (stamping dequeued == executed at answer time
     * when @p dequeued_nanos is 0 — cache hits and coalesced
     * waiters), checks the span-sum INVARIANT, feeds the span
     * histograms and the JSONL log.
     */
    void sendResult(const std::shared_ptr<Batch> &batch,
                    std::size_t index, std::uint64_t hash,
                    RunStatus status, AnswerSource source,
                    const system::RunResult *result,
                    double wall_millis, const std::string &error,
                    std::int64_t dequeued_nanos = 0,
                    std::int64_t executed_nanos = 0);

    /** Reject @p n requests of @p batch_id with one error frame,
     *  bumping the rejection counters and the JSONL log. */
    void rejectBatch(const std::shared_ptr<Client> &client,
                     std::uint64_t batch_id,
                     const std::string &trace_id, std::size_t n,
                     const std::string &code,
                     const std::string &message,
                     unsigned retry_after_millis = 0);

    /**
     * Fold one executed request's host-time profile into the
     * aggregate prof.<domain>.selfNanos / prof.<domain>.calls /
     * prof.wallNanos counters, so `capstat live` and the Prometheus
     * exposition show where the worker pool's wall-clock goes.
     */
    void recordHostProfile(const prof::RunProfile &profile);

    /** Pull level-style values (queue depth, cache sizes, frame
     *  meter, uptime) into the registry; call with `mtx` held. */
    void refreshGaugesLocked();

    /** Atomically rewrite opts.metricsOutFile (tmp + rename). */
    void writeMetricsFile();
    void metricsLoop();

    ServiceStats statsLocked();

    ServerOptions opts;
    unsigned numJobs = 1;

    Fd listener;
    std::thread acceptor;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake;
    bool running = false;
    bool stopping = false;

    std::deque<std::shared_ptr<Unit>> queue;
    /** hash → unit queued or executing, for coalescing. */
    std::map<std::uint64_t, std::shared_ptr<Unit>> pending;
    std::vector<std::shared_ptr<Client>> clients;
    std::uint64_t nextClientId = 1;

    harness::ResultCache memCache;
    std::unique_ptr<harness::DiskResultCache> disk;

    std::uint64_t totalExecuted = 0;
    std::uint64_t totalCacheHits = 0;
    std::uint64_t rejectedOverload = 0;

    /** @{ Telemetry. `registry` must precede `ins` (references). */
    obs::SpanClock spanClock;
    obs::MetricsRegistry registry;
    ServiceInstruments ins{registry};
    FrameMeter frameMeter;
    std::unique_ptr<obs::ServerLog> jsonLog;

    std::thread metricsThread;
    std::mutex metricsMtx;
    std::condition_variable metricsWake;
    bool metricsStop = false;
    /** @} */
};

} // namespace capcheck::service

#endif // CAPCHECK_SERVICE_SERVER_HH
