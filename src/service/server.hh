/**
 * @file
 * The capcheckd server: accepts clients on a Unix-domain socket,
 * admits batches of RunRequests into a bounded work queue, executes
 * them on a worker pool sharing one in-memory + optional disk result
 * cache, and streams each result frame back as it completes.
 *
 * Admission control is all-or-nothing per batch: a submit that would
 * exceed the queue bound or the per-client in-flight cap is rejected
 * with a structured "overloaded" error (carrying retryAfterMillis)
 * before any of its requests are enqueued, so a client never sees a
 * half-admitted batch.
 *
 * Identical in-flight requests coalesce across batches and clients: a
 * hash already simulating gains a waiter instead of a second queue
 * entry, and every waiter beyond the first reports status "cached" —
 * the same attribution rule SweepRunner applies at submission time.
 */

#ifndef CAPCHECK_SERVICE_SERVER_HH
#define CAPCHECK_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/disk_cache.hh"
#include "harness/result_cache.hh"
#include "service/frame.hh"
#include "service/socket.hh"
#include "service/sweep_service.hh"
#include "service/wire.hh"

namespace capcheck::service
{

struct ServerOptions
{
    /** Path of the Unix-domain socket to listen on. */
    std::string socketPath;

    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Queue-depth bound: a batch is rejected as overloaded when the
     *  queue could not absorb all of its requests. */
    std::size_t maxQueue = 1024;

    /** Per-client cap on requests admitted but not yet answered. */
    std::size_t maxInflightPerClient = 512;

    /** Largest accepted batch; bigger submits are oversizeBatch. */
    std::size_t maxBatchRequests = 4096;

    /** Receiver-side frame payload cap. */
    std::size_t maxFrameBytes = defaultMaxFrameBytes;

    /** Disk-backed result cache directory; empty = memory only. */
    std::string cacheDir;

    /** LRU byte cap of the disk cache; 0 = unbounded. */
    std::uint64_t cacheMaxBytes = 1ull << 30;

    /** Daemon log lines; nullptr silences them. */
    std::ostream *log = nullptr;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and launch the accept loop and worker pool.
     * Throws ServiceError(errConnect) when the socket cannot be
     * bound.
     */
    void start();

    /** Graceful stop: drain queued work, close every connection,
     *  join all threads, unlink the socket. Idempotent. */
    void stop();

    ServiceStats stats();

    const std::string &socketPath() const { return opts.socketPath; }

    unsigned jobs() const { return numJobs; }

  private:
    struct Client;
    struct Batch;
    struct Unit;

    void acceptLoop();
    void serveClient(const std::shared_ptr<Client> &client);
    void handleSubmit(const std::shared_ptr<Client> &client,
                      SubmitMessage &&msg);
    void workerLoop();

    /** Best-effort framed write; marks the client dead on failure. */
    void sendToClient(const std::shared_ptr<Client> &client,
                      const std::string &payload);

    /**
     * Send one result frame to @p batch's client and retire the
     * request from the batch's accounting; emits the done frame when
     * this was the batch's last outstanding request.
     */
    void sendResult(const std::shared_ptr<Batch> &batch,
                    std::size_t index, std::uint64_t hash,
                    RunStatus status,
                    const system::RunResult *result,
                    double wall_millis, const std::string &error);

    ServiceStats statsLocked();

    ServerOptions opts;
    unsigned numJobs = 1;

    Fd listener;
    std::thread acceptor;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake;
    bool running = false;
    bool stopping = false;

    std::deque<std::shared_ptr<Unit>> queue;
    /** hash → unit queued or executing, for coalescing. */
    std::map<std::uint64_t, std::shared_ptr<Unit>> pending;
    std::vector<std::shared_ptr<Client>> clients;
    std::uint64_t nextClientId = 1;

    harness::ResultCache memCache;
    std::unique_ptr<harness::DiskResultCache> disk;

    std::uint64_t totalExecuted = 0;
    std::uint64_t totalCacheHits = 0;
    std::uint64_t rejectedOverload = 0;
};

} // namespace capcheck::service

#endif // CAPCHECK_SERVICE_SERVER_HH
