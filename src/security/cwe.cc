#include "security/cwe.hh"

namespace capcheck::security
{

const char *
cweGroupName(CweGroup group)
{
    switch (group) {
      case CweGroup::a:
        return "a";
      case CweGroup::b:
        return "b";
      case CweGroup::c:
        return "c";
      case CweGroup::d:
        return "d";
      case CweGroup::e:
        return "e";
      case CweGroup::f:
        return "f";
    }
    return "?";
}

const std::vector<CweEntry> &
cweCatalog()
{
    static const std::vector<CweEntry> catalog = {
        // Group (a): buffer over-reads / overwrites.
        {119, "Improper Restriction of Operations within Buffer Bounds",
         CweGroup::a},
        {120, "Classic Buffer Overflow", CweGroup::a},
        {122, "Heap-based Buffer Overflow", CweGroup::a},
        {123, "Write-what-where Condition", CweGroup::a},
        {124, "Buffer Underwrite", CweGroup::a},
        {125, "Out-of-bounds Read", CweGroup::a},
        {126, "Buffer Over-read", CweGroup::a},
        {127, "Buffer Under-read", CweGroup::a},
        {129, "Improper Validation of Array Index", CweGroup::a},
        {131, "Incorrect Calculation of Buffer Size", CweGroup::a},
        {466, "Return of Pointer Value Outside of Expected Range",
         CweGroup::a},
        {680, "Integer Overflow to Buffer Overflow", CweGroup::a},
        {786, "Access of Memory Location Before Start of Buffer",
         CweGroup::a},
        {787, "Out-of-bounds Write", CweGroup::a},
        {788, "Access of Memory Location After End of Buffer",
         CweGroup::a},
        {805, "Buffer Access with Incorrect Length Value", CweGroup::a},
        {806, "Buffer Access Using Size of Source Buffer", CweGroup::a},
        {761, "Free of Pointer not at Start of Buffer", CweGroup::a},
        {822, "Untrusted Pointer Dereference", CweGroup::a},
        {823, "Use of Out-of-range Pointer Offset", CweGroup::a},

        // Group (b): protected by all schemes.
        {416, "Use After Free", CweGroup::b},
        {587, "Assignment of a Fixed Address to a Pointer", CweGroup::b},
        {824, "Access of Uninitialized Pointer", CweGroup::b},

        // Group (c): temporal, handled by the trusted driver.
        {244, "Improper Clearing of Heap Memory Before Release",
         CweGroup::c},
        {415, "Double Free", CweGroup::c},
        {590, "Free of Memory not on the Heap", CweGroup::c},
        {690, "Unchecked Return Value to NULL Pointer Dereference",
         CweGroup::c},
        {763, "Release of Invalid Pointer or Reference", CweGroup::c},

        // Group (d): stack memory — accelerator-internal.
        {121, "Stack-based Buffer Overflow", CweGroup::d},
        {562, "Return of Stack Variable Address", CweGroup::d},
        {789, "Memory Allocation with Excessive Size Value",
         CweGroup::d},

        // Group (e): environment-specific.
        {134, "Use of Externally-Controlled Format String", CweGroup::e},
        {762, "Mismatched Memory Management Routines", CweGroup::e},

        // Group (f): unprotected by all compared methods.
        {188, "Reliance on Data/Memory Layout", CweGroup::f},
        {198, "Use of Incorrect Byte Ordering", CweGroup::f},
        {401, "Missing Release of Memory (Memory Leak)", CweGroup::f},
        {825, "Expired Pointer Dereference", CweGroup::f},
    };
    return catalog;
}

const CweEntry *
findCwe(unsigned id)
{
    for (const CweEntry &entry : cweCatalog()) {
        if (entry.id == id)
            return &entry;
    }
    return nullptr;
}

} // namespace capcheck::security
