/**
 * @file
 * Assembles the full Table 3 matrix: every CWE row of the paper's
 * security analysis against every scheme column. Group (a) and (b)
 * cells are produced by *executing* the attack scenarios in AttackLab;
 * groups (c)-(f) are analytical (they concern driver software
 * properties or are out of scope for all schemes, as in the paper).
 */

#ifndef CAPCHECK_SECURITY_SCENARIOS_HH
#define CAPCHECK_SECURITY_SCENARIOS_HH

#include <array>
#include <vector>

#include "security/attack.hh"
#include "security/cwe.hh"

namespace capcheck::security
{

struct Table3Cell
{
    Grade grade = Grade::notApplicable;
    bool executed = false; ///< produced by a live attack (vs analysis)
};

struct Table3Row
{
    CweEntry entry;
    std::array<Table3Cell, allSchemes.size()> cells;
};

/** Build the whole matrix (runs all executable attacks). */
std::vector<Table3Row> buildTable3();

/** The Fig. 2 end-to-end forging demo against one scheme. */
AttackOutcome runForgingDemo(SchemeKind kind);

} // namespace capcheck::security

#endif // CAPCHECK_SECURITY_SCENARIOS_HH
