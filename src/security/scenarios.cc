#include "security/scenarios.hh"

#include "base/logging.hh"

namespace capcheck::security
{

namespace
{

/** Analytical grade for CWE 761 (free of pointer not at start). */
Grade
freeNotAtStartGrade(SchemeKind kind)
{
    // Only a scheme with a common object representation can relate an
    // interior pointer back to its allocation: the CapChecker mirrors
    // the CPU's parent capability (Section 6.2). Fine retains the
    // object; Coarse retains at least the task binding. Everything
    // else would need bespoke shadow tables.
    switch (kind) {
      case SchemeKind::capFine:
        return Grade::object;
      case SchemeKind::capCoarse:
        return Grade::task;
      default:
        return Grade::none;
    }
}

} // namespace

std::vector<Table3Row>
buildTable3()
{
    // Execute the live scenarios once per scheme.
    struct SchemeResults
    {
        AttackOutcome overflow;
        AttackOutcome underflow;
        AttackOutcome www;
        AttackOutcome index;
        AttackOutcome intOverflow;
        AttackOutcome length;
        AttackOutcome untrusted;
        AttackOutcome uaf;
        AttackOutcome fixedPtr;
    };
    std::array<SchemeResults, allSchemes.size()> results;
    for (std::size_t s = 0; s < allSchemes.size(); ++s) {
        AttackLab lab(allSchemes[s]);
        results[s].overflow = lab.bufferOverflow();
        results[s].underflow = lab.bufferUnderflow();
        results[s].www = lab.writeWhatWhere();
        results[s].index = lab.indexValidation();
        results[s].intOverflow = lab.integerOverflow();
        results[s].length = lab.incorrectLength();
        results[s].untrusted = lab.untrustedPointer();
        results[s].uaf = lab.useAfterFree();
        results[s].fixedPtr = lab.fixedAddressPointer();
    }

    std::vector<Table3Row> table;
    for (const CweEntry &entry : cweCatalog()) {
        Table3Row row;
        row.entry = entry;
        for (std::size_t s = 0; s < allSchemes.size(); ++s) {
            Table3Cell cell;
            switch (entry.group) {
              case CweGroup::a:
                cell.executed = true;
                switch (entry.id) {
                  case 822:
                  case 823:
                    cell.grade = results[s].untrusted.grade;
                    break;
                  case 761:
                    cell.grade = freeNotAtStartGrade(allSchemes[s]);
                    cell.executed = false;
                    break;
                  case 124:
                  case 127:
                  case 786:
                    cell.grade = results[s].underflow.grade;
                    break;
                  case 123:
                  case 787:
                    cell.grade = results[s].www.grade;
                    break;
                  case 129:
                    cell.grade = results[s].index.grade;
                    break;
                  case 680:
                    cell.grade = results[s].intOverflow.grade;
                    break;
                  case 805:
                  case 806:
                    cell.grade = results[s].length.grade;
                    break;
                  default:
                    cell.grade = results[s].overflow.grade;
                    break;
                }
                break;
              case CweGroup::b:
                if (entry.id == 416) {
                    cell.grade = results[s].uaf.grade;
                } else {
                    cell.grade = results[s].fixedPtr.grade;
                }
                cell.executed = true;
                break;
              case CweGroup::c:
                // Temporal lifecycle issues: handled by the trusted
                // driver identically for every scheme (assumption 3).
                cell.grade = Grade::protectedFull;
                break;
              case CweGroup::d:
              case CweGroup::e:
                cell.grade = Grade::notApplicable;
                break;
              case CweGroup::f:
                cell.grade = Grade::none;
                break;
            }
            row.cells[s] = cell;
        }
        table.push_back(row);
    }
    return table;
}

AttackOutcome
runForgingDemo(SchemeKind kind)
{
    AttackLab lab(kind);
    return lab.capabilityForging();
}

} // namespace capcheck::security
