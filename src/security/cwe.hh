/**
 * @file
 * The Common Weakness Enumeration entries of the paper's Table 3,
 * organized into the paper's six groups (a)-(f) by how heterogeneous
 * accelerator systems treat them.
 */

#ifndef CAPCHECK_SECURITY_CWE_HH
#define CAPCHECK_SECURITY_CWE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace capcheck::security
{

/** The paper's row groups. */
enum class CweGroup
{
    a, ///< spatial violations, protected at differing granularity
    b, ///< protected by all schemes (with trusted-driver lifecycle)
    c, ///< temporal issues handled by the trusted driver
    d, ///< stack memory: not applicable (accelerator-internal state)
    e, ///< environment-specific: not applicable
    f, ///< unprotected by all compared methods
};

const char *cweGroupName(CweGroup group);

struct CweEntry
{
    unsigned id;
    std::string name;
    CweGroup group;
};

/** All Table 3 entries, in the paper's order. */
const std::vector<CweEntry> &cweCatalog();

/** Look up an entry by CWE id; nullptr if not in the table. */
const CweEntry *findCwe(unsigned id);

} // namespace capcheck::security

#endif // CAPCHECK_SECURITY_CWE_HH
