#include "security/attack.hh"

#include <cstring>

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace capcheck::security
{

namespace
{

constexpr TaskId attackerTask = 0;
constexpr TaskId victimTask = 1;
constexpr std::uint64_t pageSize = protect::Iommu::pageSize;

} // namespace

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::none:
        return "none";
      case SchemeKind::iopmp:
        return "iopmp";
      case SchemeKind::iommu:
        return "iommu";
      case SchemeKind::snpu:
        return "snpu";
      case SchemeKind::capCoarse:
        return "coarse";
      case SchemeKind::capFine:
        return "fine";
    }
    return "?";
}

const char *
gradeSymbol(Grade grade)
{
    switch (grade) {
      case Grade::none:
        return "X";
      case Grade::page:
        return "PG";
      case Grade::task:
        return "TA";
      case Grade::object:
        return "OB";
      case Grade::protectedFull:
        return "ok";
      case Grade::notApplicable:
        return "NA";
    }
    return "?";
}

AttackLab::AttackLab(SchemeKind kind) : kind(kind), mem(1 << 20)
{
    build();
}

void
AttackLab::build()
{
    // Layout: page P0 holds (bottom to top) a victim buffer, the
    // attacker's two buffers, and another victim buffer; a granule
    // inside attacker buffer B holds a CPU-stored capability. Page P1
    // holds a victim buffer of its own. Having victims both below and
    // above the attacker's pointers lets the under- and overflow
    // scenarios probe in their natural directions.
    bufSize = 256;
    const Addr p0 = 0x10000;
    const Addr p1 = p0 + pageSize;
    victimLow = p0 + 0x080;
    bufB = p0 + 0x200;
    bufA = p0 + 0x300;
    capSlot = bufB + 0xf0; // last granule of B
    victimSamePage = p0 + 0x800;
    victimOtherPage = p1;

    // A victim-task capability (a pointer to its private buffer) lives
    // in shared memory where the attacker's buffer B overlaps it —
    // e.g. a pointer table the CPU shares with the device.
    const cheri::Capability victim_ptr =
        cheri::Capability::root()
            .setBounds(victimOtherPage, bufSize)
            .andPerms(cheri::permDataRW);
    mem.writeCap(capSlot, victim_ptr);

    switch (kind) {
      case SchemeKind::none:
        noProt = std::make_unique<protect::NoProtection>();
        activeChecker = noProt.get();
        break;
      case SchemeKind::iopmp:
        iopmp = std::make_unique<protect::Iopmp>(16);
        iopmp->addRegion({attackerTask, bufA, bufSize, true, true});
        iopmp->addRegion({attackerTask, bufB, bufSize, true, true});
        iopmp->addRegion({victimTask, victimLow, bufSize, true, true});
        iopmp->addRegion({victimTask, victimSamePage, bufSize, true,
                          true});
        iopmp->addRegion({victimTask, victimOtherPage, bufSize, true,
                          true});
        activeChecker = iopmp.get();
        break;
      case SchemeKind::iommu:
        iommu = std::make_unique<protect::Iommu>();
        // The attacker's buffers live in P0, so P0 is mapped for it —
        // along with everything else that happens to share the page.
        iommu->mapRange(attackerTask, bufA, bufSize, true);
        iommu->mapRange(attackerTask, bufB, bufSize, true);
        iommu->mapRange(victimTask, victimLow, bufSize, true);
        iommu->mapRange(victimTask, victimSamePage, bufSize, true);
        iommu->mapRange(victimTask, victimOtherPage, bufSize, true);
        activeChecker = iommu.get();
        break;
      case SchemeKind::snpu:
        snpu = std::make_unique<protect::TaskBound>();
        snpu->addRegion(attackerTask, bufA, bufSize);
        snpu->addRegion(attackerTask, bufB, bufSize);
        snpu->addRegion(victimTask, victimLow, bufSize);
        snpu->addRegion(victimTask, victimSamePage, bufSize);
        snpu->addRegion(victimTask, victimOtherPage, bufSize);
        activeChecker = snpu.get();
        break;
      case SchemeKind::capCoarse:
      case SchemeKind::capFine: {
        capchecker::CapChecker::Params params;
        params.provenance = kind == SchemeKind::capFine
                                ? capchecker::Provenance::fine
                                : capchecker::Provenance::coarse;
        capChecker = std::make_unique<capchecker::CapChecker>(params);
        const cheri::Capability root = cheri::Capability::root();
        capChecker->installCapability(
            attackerTask, 0,
            root.setBounds(bufA, bufSize)
                .andPerms(cheri::permDataRW));
        capChecker->installCapability(
            attackerTask, 1,
            root.setBounds(bufB, bufSize)
                .andPerms(cheri::permDataRW));
        capChecker->installCapability(
            victimTask, 0,
            root.setBounds(victimSamePage, bufSize)
                .andPerms(cheri::permDataRW));
        capChecker->installCapability(
            victimTask, 1,
            root.setBounds(victimOtherPage, bufSize)
                .andPerms(cheri::permDataRW));
        capChecker->installCapability(
            victimTask, 2,
            root.setBounds(victimLow, bufSize)
                .andPerms(cheri::permDataRW));
        activeChecker = capChecker.get();
        break;
      }
    }

    // A CHERI-aware interposer removes the raw DMA path from the
    // platform entirely; arm the tag barrier so any attack modelling
    // that bypass under a CapChecker is itself flagged as a bug.
    if (activeChecker->clearsTagsOnWrite())
        mem.setDmaTagBarrier(true);
}

bool
AttackLab::tryAccess(TaskId task, ObjectId intended_obj, Addr phys,
                     MemCmd cmd, std::uint32_t size, const void *data)
{
    MemRequest req;
    req.cmd = cmd;
    req.size = size;
    req.srcPort = task; // source id on the interconnect == task here
    req.task = task;

    if (kind == SchemeKind::capCoarse) {
        // The address is data: the attacker controls all 64 bits,
        // including the object-ID top bits.
        req.addr =
            (Addr{intended_obj} << capchecker::CapChecker::coarseAddrBits) |
            phys;
        req.object = invalidObjectId;
    } else if (kind == SchemeKind::capFine) {
        // Object provenance is hardware metadata: the attacker can
        // pick addresses, not which port/object the access uses.
        req.addr = phys;
        req.object = intended_obj;
    } else {
        req.addr = phys;
        req.object = intended_obj;
    }

    const protect::CheckResult verdict = activeChecker->check(req);
    if (!verdict.allowed)
        return false;

    // Perform the functional effect with the scheme's tag discipline.
    if (cmd == MemCmd::write && data) {
        if (activeChecker->clearsTagsOnWrite())
            mem.write(phys, data, size);
        else
            mem.writeRawDma(phys, data, size);
    }
    return true;
}

Grade
AttackLab::gradeFromReach(bool sibling, bool same_page_victim,
                          bool other_page_victim) const
{
    if (other_page_victim)
        return Grade::none;
    if (same_page_victim)
        return Grade::page;
    if (sibling)
        return Grade::task;
    return Grade::object;
}

AttackOutcome
AttackLab::bufferOverflow()
{
    // The accelerator indexes buffer A with an attacker-controlled
    // 64-bit index: addr = &A[idx]. Any target is expressible as an
    // index, including (in Coarse mode) values whose scaled offset
    // carries into the object-ID bits.
    const std::uint64_t payload = 0x4141414141414141ull;
    auto probe_rw = [&](Addr target) {
        // Coarse object bits follow the arithmetic: the attacker can
        // aim at any object id of its own task.
        ObjectId carried_obj = 0;
        if (kind == SchemeKind::capCoarse) {
            // idx chosen so (A.base + idx) mod 2^56 == target and the
            // top bits select the sibling object when profitable.
            if (target >= bufB && target < bufB + bufSize)
                carried_obj = 1;
        }
        const bool read_ok =
            tryAccess(attackerTask, carried_obj, target, MemCmd::read,
                      8);
        const bool write_ok =
            tryAccess(attackerTask, carried_obj, target, MemCmd::write,
                      8, &payload);
        return read_ok || write_ok;
    };

    AttackOutcome outcome;
    const bool in_bounds = probe_rw(bufA + 8);
    const bool sibling = probe_rw(bufB + 8);
    const bool same_page = probe_rw(victimSamePage + 8);
    const bool other_page = probe_rw(victimOtherPage + 8);
    outcome.probes = {
        {"own buffer (sanity)", in_bounds},
        {"same-task sibling buffer", sibling},
        {"victim buffer, shared page", same_page},
        {"victim buffer, private page", other_page},
    };
    if (!in_bounds) {
        outcome.grade = Grade::notApplicable;
        outcome.note = "scheme broke legitimate accesses";
        return outcome;
    }
    outcome.grade = gradeFromReach(sibling, same_page, other_page);
    return outcome;
}

AttackOutcome
AttackLab::untrustedPointer()
{
    // The accelerator dereferences a pointer taken verbatim from
    // untrusted input: all 64 bits are attacker data. In Fine mode the
    // object binding is hardware port metadata the attacker cannot
    // choose — the dereference site is bound to object 0.
    auto probe = [&](Addr target, ObjectId coarse_obj) {
        const ObjectId obj =
            kind == SchemeKind::capFine ? 0 : coarse_obj;
        return tryAccess(attackerTask, obj, target, MemCmd::read, 8);
    };

    AttackOutcome outcome;
    const bool sibling = probe(bufB + 16, 1);
    const bool same_page = probe(victimSamePage + 16, 1);
    const bool other_page = probe(victimOtherPage + 16, 1);
    const bool os_memory = probe(0x1000, 2); // outside any buffer
    outcome.probes = {
        {"same-task sibling buffer", sibling},
        {"victim buffer, shared page", same_page},
        {"victim buffer, private page", other_page},
        {"OS memory", os_memory},
    };
    outcome.grade =
        os_memory ? Grade::none
                  : gradeFromReach(sibling, same_page, other_page);
    return outcome;
}

AttackOutcome
AttackLab::bufferUnderflow()
{
    // Negative offsets from the attacker's A pointer: first the
    // sibling buffer B just below it, then the victim buffer at the
    // bottom of the shared page, then below the page entirely.
    const std::uint64_t payload = 0x4242424242424242ull;
    auto probe = [&](Addr target, ObjectId coarse_obj) {
        const ObjectId obj =
            kind == SchemeKind::capFine ? 0 : coarse_obj;
        const bool read_ok =
            tryAccess(attackerTask, obj, target, MemCmd::read, 8);
        const bool write_ok = tryAccess(attackerTask, obj, target,
                                        MemCmd::write, 8, &payload);
        return read_ok || write_ok;
    };

    AttackOutcome outcome;
    const bool in_bounds = probe(bufA + 8, 0);
    const bool sibling = probe(bufB + 8, 1); // B sits below A
    const bool same_page_victim = probe(victimLow + 8, 1);
    const bool below_page = probe(0xf008, 2); // page below P0
    outcome.probes = {
        {"own buffer (sanity)", in_bounds},
        {"sibling buffer below", sibling},
        {"victim buffer at page bottom", same_page_victim},
        {"below the attacker's page", below_page},
    };
    if (!in_bounds) {
        outcome.grade = Grade::notApplicable;
        return outcome;
    }
    outcome.grade =
        gradeFromReach(sibling, same_page_victim, below_page);
    return outcome;
}

AttackOutcome
AttackLab::writeWhatWhere()
{
    // Attacker-chosen value to attacker-chosen address; verify the
    // functional effect where the scheme lets the write through.
    const std::uint64_t what = 0xd00df00dcafef00dull;
    auto probe = [&](Addr where, ObjectId coarse_obj) {
        const ObjectId obj =
            kind == SchemeKind::capFine ? 0 : coarse_obj;
        const std::uint64_t before =
            mem.readValue<std::uint64_t>(where);
        const bool allowed = tryAccess(attackerTask, obj, where,
                                       MemCmd::write, 8, &what);
        const std::uint64_t after = mem.readValue<std::uint64_t>(where);
        // A granted write must actually land; a denied one must leave
        // memory untouched. Either failure is a lab bug.
        if (allowed && after != what)
            panic("write-what-where: granted write did not land");
        if (!allowed && after != before)
            panic("write-what-where: denied write mutated memory");
        return allowed;
    };

    AttackOutcome outcome;
    const bool sibling = probe(bufB + 0x20, 1);
    const bool same_page_victim = probe(victimSamePage + 0x20, 1);
    const bool other_page_victim = probe(victimOtherPage + 0x20, 2);
    outcome.probes = {
        {"write into sibling buffer", sibling},
        {"write into same-page victim", same_page_victim},
        {"write into other-page victim", other_page_victim},
    };
    outcome.grade = gradeFromReach(sibling, same_page_victim,
                                   other_page_victim);
    return outcome;
}

AttackOutcome
AttackLab::indexValidation()
{
    // addr = &A[idx] with a 32-bit index taken from input data and
    // scaled by the element size: idx*4 spans +-8 GiB around A, so
    // any in-memory target is expressible (including, in Coarse mode,
    // carries into the object-id bits once idx exceeds 2^54).
    auto probe = [&](Addr target, ObjectId coarse_obj) {
        const std::int64_t idx =
            (static_cast<std::int64_t>(target) -
             static_cast<std::int64_t>(bufA)) /
            4;
        const Addr addr =
            bufA + static_cast<std::uint64_t>(idx) * 4;
        const ObjectId obj =
            kind == SchemeKind::capFine ? 0 : coarse_obj;
        return tryAccess(attackerTask, obj, addr, MemCmd::read, 4);
    };

    AttackOutcome outcome;
    const bool sibling = probe(bufB + 16, 1);
    const bool same_page_victim = probe(victimSamePage + 16, 1);
    const bool other_page_victim = probe(victimOtherPage + 16, 2);
    outcome.probes = {
        {"index reaches sibling buffer", sibling},
        {"index reaches same-page victim", same_page_victim},
        {"index reaches other-page victim", other_page_victim},
    };
    outcome.grade = gradeFromReach(sibling, same_page_victim,
                                   other_page_victim);
    return outcome;
}

AttackOutcome
AttackLab::integerOverflow()
{
    // The classic 680 chain: a 32-bit size computation (count *
    // element_size) wraps to a small value, the bounds check against
    // the wrapped size passes, but the access loop uses the unwrapped
    // count — producing offsets far beyond the buffer.
    const std::uint32_t count = 0x40000001u; // *4 wraps to 4
    const std::uint32_t wrapped = count * 4u; // = 4: "fits"
    AttackOutcome outcome;
    if (wrapped > bufSize) {
        outcome.grade = Grade::notApplicable;
        return outcome;
    }

    // The loop's 64-bit effective offsets walk out of the buffer; use
    // representative iterations that land on our probe targets.
    auto probe = [&](Addr target, ObjectId coarse_obj) {
        const ObjectId obj =
            kind == SchemeKind::capFine ? 0 : coarse_obj;
        return tryAccess(attackerTask, obj, target, MemCmd::write, 4,
                         &wrapped);
    };
    const bool sibling = probe(bufB + 8, 1);
    const bool same_page_victim = probe(victimSamePage + 8, 1);
    const bool other_page_victim = probe(victimOtherPage + 8, 2);
    outcome.probes = {
        {"wrapped-size write reaches sibling", sibling},
        {"wrapped-size write reaches same-page victim",
         same_page_victim},
        {"wrapped-size write reaches other-page victim",
         other_page_victim},
    };
    outcome.grade = gradeFromReach(sibling, same_page_victim,
                                   other_page_victim);
    return outcome;
}

AttackOutcome
AttackLab::incorrectLength()
{
    // memcpy(dst=A, src, len) where len is the *source's* size: a
    // contiguous run from A's base of attacker-chosen length. The
    // worst case (matching the paper's single worst-case grade per
    // row) lets the attacker also steer the scaled cursor, so Coarse's
    // object-id bits are in play once the run is long enough.
    auto sweep_reaches = [&](Addr target,
                             ObjectId coarse_obj) -> bool {
        // Does a contiguous run from A of length (target - A + 8)
        // get its final beat granted?
        const ObjectId obj =
            kind == SchemeKind::capFine ? 0 : coarse_obj;
        return tryAccess(attackerTask, obj, target, MemCmd::read, 8);
    };

    AttackOutcome outcome;
    const bool sibling = sweep_reaches(bufB + bufSize - 8, 1);
    const bool same_page_victim =
        sweep_reaches(victimSamePage + bufSize - 8, 1);
    const bool other_page_victim =
        sweep_reaches(victimOtherPage + 8, 2);
    outcome.probes = {
        {"run covers sibling buffer", sibling},
        {"run covers same-page victim", same_page_victim},
        {"run covers other-page victim", other_page_victim},
    };
    outcome.grade = gradeFromReach(sibling, same_page_victim,
                                   other_page_victim);
    return outcome;
}

AttackOutcome
AttackLab::capabilityForging()
{
    // Craft the 16-byte image of an almighty capability and write it
    // over the victim pointer stored in attacker-writable memory.
    std::uint64_t pesbt;
    std::uint64_t cursor;
    cheri::Capability::root().compress(pesbt, cursor);
    std::uint8_t image[16];
    std::memcpy(image, &cursor, 8);
    std::memcpy(image + 8, &pesbt, 8);

    // In every mode, the slot is inside attacker buffer B, so the
    // write itself is legitimate for B's owner.
    const bool wrote = tryAccess(attackerTask, 1, capSlot, MemCmd::write,
                                 16, image);

    // The CPU later loads the capability and dereferences it.
    const cheri::Capability loaded = mem.readCap(capSlot);
    const bool forged = wrote && loaded.tag() &&
                        loaded.length() > 4096; // bounds grew

    AttackOutcome outcome;
    outcome.probes = {
        {"overwrite stored capability bytes", wrote},
        {"CPU still observes a tagged capability", loaded.tag()},
        {"capability now grants attacker-chosen bounds", forged},
    };
    outcome.grade = forged ? Grade::none : Grade::protectedFull;
    outcome.note = forged
                       ? "tag survived a device write: forgery succeeded"
                       : (wrote ? "write landed but the tag was cleared"
                                : "write was blocked outright");
    return outcome;
}

AttackOutcome
AttackLab::useAfterFree()
{
    // The driver tears the attacker task down (eviction/unmap), then
    // the device tries to keep using its old buffer.
    switch (kind) {
      case SchemeKind::none:
        break;
      case SchemeKind::iopmp:
        iopmp->removeTaskRegions(attackerTask);
        break;
      case SchemeKind::iommu:
        iommu->unmapTask(attackerTask);
        break;
      case SchemeKind::snpu:
        snpu->removeTask(attackerTask);
        break;
      case SchemeKind::capCoarse:
      case SchemeKind::capFine:
        capChecker->evictTask(attackerTask);
        break;
    }

    const bool reached =
        tryAccess(attackerTask, 0, bufA + 8, MemCmd::read, 8);
    AttackOutcome outcome;
    outcome.probes = {{"DMA to freed buffer", reached}};
    outcome.grade = reached ? Grade::none : Grade::protectedFull;

    // Restore the environment for subsequent scenarios.
    build();
    return outcome;
}

AttackOutcome
AttackLab::fixedAddressPointer()
{
    // CWE 587/824: the device dereferences a hard-coded / uninitialized
    // pointer (zero page or an arbitrary constant).
    const bool zero = tryAccess(attackerTask, 0, 0x0, MemCmd::read, 8);
    const bool constant =
        tryAccess(attackerTask, 0, 0xdead0, MemCmd::read, 8);
    AttackOutcome outcome;
    outcome.probes = {
        {"dereference address 0", zero},
        {"dereference arbitrary constant", constant},
    };
    outcome.grade = (zero || constant) ? Grade::none
                                       : Grade::protectedFull;
    return outcome;
}

} // namespace capcheck::security
