/**
 * @file
 * Executable attack scenarios for the security analysis of Table 3 and
 * the Fig. 2 motivating example. An AttackLab instantiates a two-task
 * environment (an attacker task with two buffers, a victim task with a
 * buffer in the attacker's page and one in a private page, and a CPU
 * capability stored in shared memory), configures one protection
 * scheme, and launches attacks as real memory requests. Outcomes are
 * graded by what the attacker could actually reach.
 */

#ifndef CAPCHECK_SECURITY_ATTACK_HH
#define CAPCHECK_SECURITY_ATTACK_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "capchecker/capchecker.hh"
#include "mem/tagged_memory.hh"
#include "protect/iommu.hh"
#include "protect/iopmp.hh"
#include "protect/no_protection.hh"
#include "protect/task_bound.hh"

namespace capcheck::security
{

/** The compared schemes, in Table 3 column order. */
enum class SchemeKind
{
    none,
    iopmp,
    iommu,
    snpu,
    capCoarse,
    capFine,
};

inline constexpr std::array<SchemeKind, 6> allSchemes = {
    SchemeKind::none,   SchemeKind::iopmp,     SchemeKind::iommu,
    SchemeKind::snpu,   SchemeKind::capCoarse, SchemeKind::capFine,
};

const char *schemeName(SchemeKind kind);

/** Protection grade of an outcome (Table 3 cell). */
enum class Grade
{
    none,          ///< X  — attack unrestricted
    page,          ///< PG — contained only at page granularity
    task,          ///< TA — contained at task granularity
    object,        ///< OB — contained at object granularity
    protectedFull, ///< check-mark — attack defeated outright
    notApplicable, ///< NA
};

const char *gradeSymbol(Grade grade);

struct Probe
{
    std::string name;
    bool allowed = false;
};

struct AttackOutcome
{
    Grade grade = Grade::none;
    std::vector<Probe> probes;
    std::string note;
};

class AttackLab
{
  public:
    explicit AttackLab(SchemeKind kind);

    SchemeKind scheme() const { return kind; }
    protect::ProtectionChecker &checker() { return *activeChecker; }

    /**
     * Group (a) core rows (119/120/122/125/126/131/466/788): out-of-
     * bounds access through a buffer pointer with an attacker-
     * controlled 64-bit index — probes the same-task sibling buffer, a
     * victim buffer sharing the page, and a victim buffer in another
     * page, for both reads and writes.
     */
    AttackOutcome bufferOverflow();

    /**
     * CWE 124/127/786: buffer under-write/under-read — negative
     * offsets from the attacker's pointer, reaching the sibling buffer
     * and a victim buffer placed *below* it in the same page.
     */
    AttackOutcome bufferUnderflow();

    /**
     * CWE 123/787: write-what-where — an attacker-chosen value written
     * to an attacker-chosen address; where allowed, the write's
     * functional effect is verified to have landed.
     */
    AttackOutcome writeWhatWhere();

    /**
     * CWE 129: unvalidated array index, scaled by the element size
     * (addr = base + idx * 4 with idx from input data).
     */
    AttackOutcome indexValidation();

    /**
     * CWE 680: integer overflow to buffer overflow — a 32-bit length
     * product wraps, the resulting "small" allocation is then indexed
     * with the unwrapped bound.
     */
    AttackOutcome integerOverflow();

    /**
     * CWE 805/806: buffer access with an incorrect length (e.g. the
     * source buffer's size used on the destination): a contiguous run
     * from the buffer start with attacker-chosen length.
     */
    AttackOutcome incorrectLength();

    /**
     * CWE 822/823: the accelerator dereferences a fully attacker-
     * controlled pointer value (any 64 bits, including Coarse-mode
     * object-ID top bits).
     */
    AttackOutcome untrustedPointer();

    /**
     * The Fig. 2 forging attack: overwrite a valid CPU capability
     * stored in a buffer the accelerator may write, then see whether
     * the CPU would still observe a *tagged* capability with attacker-
     * chosen bounds.
     */
    AttackOutcome capabilityForging();

    /** CWE 416: DMA into buffers of a task already deallocated. */
    AttackOutcome useAfterFree();

    /** CWE 587/824: dereference of a fixed/uninitialized address. */
    AttackOutcome fixedAddressPointer();

  private:
    /** Issue one attacker request through the active scheme. */
    bool tryAccess(TaskId task, ObjectId intended_obj, Addr phys,
                   MemCmd cmd, std::uint32_t size,
                   const void *data = nullptr);

    Grade gradeFromReach(bool sibling, bool same_page_victim,
                         bool other_page_victim) const;

    void build();

    SchemeKind kind;
    TaggedMemory mem;

    std::unique_ptr<protect::NoProtection> noProt;
    std::unique_ptr<protect::Iopmp> iopmp;
    std::unique_ptr<protect::Iommu> iommu;
    std::unique_ptr<protect::TaskBound> snpu;
    std::unique_ptr<capchecker::CapChecker> capChecker;
    protect::ProtectionChecker *activeChecker = nullptr;

    // Layout (see attack.cc).
    Addr victimLow = 0;  ///< victim buffer below the attacker's, page P0
    Addr bufB = 0;       ///< attacker buffer (holds the stored cap)
    Addr bufA = 0;       ///< attacker buffer the pointers derive from
    Addr capSlot = 0;
    Addr victimSamePage = 0;  ///< victim buffer above, page P0
    Addr victimOtherPage = 0; ///< victim buffer, private page P1
    std::uint64_t bufSize = 0;
};

} // namespace capcheck::security

#endif // CAPCHECK_SECURITY_ATTACK_HH
