/**
 * @file
 * Open-addressed (task, object) -> slot-index hash used by the fast
 * simulation kernels of CapTable and CapCache (sim/kernels registry,
 * "captable.index" / "capcache.index"). The reference implementations
 * scan every entry per lookup; this index makes the same lookups O(1)
 * without changing any observable result — it is pure bookkeeping on
 * the host side and holds no simulated state of its own.
 *
 * Linear probing with tombstones; the table is sized to a power of
 * two at >= 2x the expected entry count so probe chains stay short.
 * Keys are unique: inserting an existing key is a hard error (callers
 * update through erase + insert or keep the slot index stable).
 */

#ifndef CAPCHECK_CAPCHECKER_PAIR_INDEX_HH
#define CAPCHECK_CAPCHECKER_PAIR_INDEX_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/invariant.hh"
#include "base/types.hh"

namespace capcheck::capchecker
{

class PairIndex
{
  public:
    /** @param capacity maximum number of live keys ever held. */
    explicit PairIndex(unsigned capacity)
    {
        std::size_t size = 16;
        while (size < 2 * static_cast<std::size_t>(capacity) + 2)
            size *= 2;
        slots.assign(size, Slot{});
        mask = size - 1;
    }

    /** Slot index for (task, object); nullopt on a miss. */
    std::optional<std::uint32_t>
    find(TaskId task, ObjectId object) const
    {
        const std::uint64_t k = key(task, object);
        for (std::size_t i = hash(k);; i = (i + 1) & mask) {
            const Slot &slot = slots[i];
            if (slot.state == State::empty)
                return std::nullopt;
            if (slot.state == State::live && slot.key == k)
                return slot.index;
        }
    }

    /** Map (task, object) to @p index. The key must not be present. */
    void
    insert(TaskId task, ObjectId object, std::uint32_t index)
    {
        // Tombstones from erased keys lengthen probe chains but never
        // free slots; rebuild once they dominate, so install/evict
        // churn (task waves) cannot degrade lookups to O(N).
        if (2 * (occupied + 1) > slots.size())
            compact();
        const std::uint64_t k = key(task, object);
        std::size_t target = ~std::size_t{0};
        for (std::size_t i = hash(k);; i = (i + 1) & mask) {
            Slot &slot = slots[i];
            if (slot.state == State::live) {
                INVARIANT(slot.key != k,
                          "PairIndex: duplicate insert for (task %u, "
                          "object %u)",
                          task, object);
                continue;
            }
            // First tombstone on the chain is reusable, but the probe
            // must continue to the chain's end to rule out a duplicate.
            if (target == ~std::size_t{0})
                target = i;
            if (slot.state == State::empty)
                break;
        }
        Slot &slot = slots[target];
        if (slot.state != State::tombstone)
            ++occupied;
        INVARIANT(occupied < slots.size(),
                  "PairIndex: table overfull (%zu of %zu slots)",
                  occupied, slots.size());
        slot.state = State::live;
        slot.key = k;
        slot.index = index;
        ++liveKeys;
    }

    /** Drop (task, object). The key must be present. */
    void
    erase(TaskId task, ObjectId object)
    {
        const std::uint64_t k = key(task, object);
        for (std::size_t i = hash(k);; i = (i + 1) & mask) {
            Slot &slot = slots[i];
            INVARIANT(slot.state != State::empty,
                      "PairIndex: erasing absent key (task %u, "
                      "object %u)",
                      task, object);
            if (slot.state == State::live && slot.key == k) {
                slot.state = State::tombstone;
                --liveKeys;
                return;
            }
        }
    }

    std::size_t size() const { return liveKeys; }

  private:
    void
    compact()
    {
        std::vector<Slot> old;
        old.swap(slots);
        slots.assign(old.size(), Slot{});
        occupied = 0;
        liveKeys = 0;
        for (const Slot &slot : old) {
            if (slot.state != State::live)
                continue;
            for (std::size_t i = hash(slot.key);; i = (i + 1) & mask) {
                if (slots[i].state == State::empty) {
                    slots[i] = slot;
                    ++occupied;
                    ++liveKeys;
                    break;
                }
            }
        }
    }

    enum class State : std::uint8_t
    {
        empty,
        live,
        tombstone,
    };

    struct Slot
    {
        State state = State::empty;
        std::uint64_t key = 0;
        std::uint32_t index = 0;
    };

    static std::uint64_t
    key(TaskId task, ObjectId object)
    {
        return (static_cast<std::uint64_t>(task) << 32) | object;
    }

    std::size_t
    hash(std::uint64_t k) const
    {
        // splitmix64 finalizer: full-avalanche, so linear probing sees
        // well-scattered home slots even for dense task/object ids.
        k ^= k >> 30;
        k *= 0xbf58476d1ce4e5b9ull;
        k ^= k >> 27;
        k *= 0x94d049bb133111ebull;
        k ^= k >> 31;
        return static_cast<std::size_t>(k) & mask;
    }

    std::vector<Slot> slots;
    std::size_t mask = 0;
    /** Live + tombstone slots (bounds the probe-chain length). */
    std::size_t occupied = 0;
    std::size_t liveKeys = 0;
};

} // namespace capcheck::capchecker

#endif // CAPCHECK_CAPCHECKER_PAIR_INDEX_HH
