/**
 * @file
 * The CapChecker (the paper's primary contribution, Fig. 5): a
 * CHERI-aware hardware interposer between CHERI-unaware accelerators
 * and the memory controller. It holds CPU-installed capabilities in a
 * capability table, identifies which object each DMA request refers to
 * — from hardware port metadata (*Fine*) or from the top bits of a
 * 56-bit address space (*Coarse*) — and permits only accesses the
 * matching capability authorizes. Writes that pass are still
 * tag-clearing, so an accelerator can never mint a valid capability.
 */

#ifndef CAPCHECK_CAPCHECKER_CAPCHECKER_HH
#define CAPCHECK_CAPCHECKER_CAPCHECKER_HH

#include <string>
#include <vector>

#include <memory>

#include "base/probe.hh"
#include "capchecker/cap_cache.hh"
#include "capchecker/cap_table.hh"
#include "protect/checker.hh"

namespace capcheck::capchecker
{

/** How object provenance reaches the checker (Section 5.2.2/5.2.3). */
enum class Provenance
{
    /** Object ID carried as trusted hardware interface metadata. */
    fine,
    /** Object ID recovered from the top 8 bits of a 56-bit address. */
    coarse,
};

const char *provenanceName(Provenance mode);

/** Inverse of provenanceName(); false when @p name matches neither. */
bool provenanceFromName(const std::string &name, Provenance &out);

/** A recorded violation, for software tracing and the audit log. */
struct ExceptionRecord
{
    TaskId task = invalidTaskId;
    ObjectId object = invalidObjectId;
    Addr addr = 0;
    MemCmd cmd = MemCmd::read;
    std::string reason;
    /** @{ Bounds/permissions of the matched capability; capValid is
     *  false when no entry existed for (task, object). */
    bool capValid = false;
    Addr capBase = 0;
    std::uint64_t capLength = 0;
    std::uint32_t capPerms = 0;
    /** @} */
};

/** Payload of the check-start probe. */
struct CheckStartedEvent
{
    const MemRequest *req;
};

/** Payload of the check-result probe. */
struct CheckResultEvent
{
    const MemRequest *req;
    bool allowed;
    /** Table-walk cycles this check added (cap-cache miss). */
    Cycles extraLatency;
};

/** Payload of the capability-cache hit/miss probes. */
struct CapCacheEvent
{
    TaskId task;
    ObjectId object;
};

/** Payload of the eviction probe (driver revokes a task). */
struct CapEvictEvent
{
    TaskId task;
    unsigned entriesFreed;
};

class CapChecker : public protect::ProtectionChecker
{
  public:
    /** Address bits available for data in Coarse mode (Fig. 5). */
    static constexpr unsigned coarseAddrBits = 56;

    struct Params
    {
        unsigned tableEntries = 256;
        Provenance provenance = Provenance::fine;
        /** Pipelined check latency added per request. */
        Cycles checkCycles = 1;
        /** Driver-side cost of installing one capability over MMIO. */
        Cycles installCycles = 20;
        /** Driver-side cost of evicting one capability. */
        Cycles evictCycles = 4;
        /**
         * Capability-cache size; 0 means the whole table is on-chip
         * SRAM (the paper's prototype). Non-zero models the smaller
         * cached CapChecker of Section 5.2.3: hits are free, misses
         * walk the in-memory table.
         */
        unsigned cacheEntries = 0;
        /** Table-walk latency on a capability-cache miss. */
        Cycles cacheWalkCycles = 60;
        /**
         * Route table and cache lookups through the fast-kernel hash
         * indexes ("captable.index" / "capcache.index" in the
         * sim/kernels registry). Result-identical to the reference
         * scans; selected by SocConfig::simKernel == fast.
         */
        bool fastIndex = false;
    };

    CapChecker();
    explicit CapChecker(const Params &params);

    /** @{ Driver-facing API (reached through the capability MMIO). */
    std::optional<unsigned> installCapability(TaskId task, ObjectId obj,
                                              const cheri::Capability &cap);
    unsigned evictTask(TaskId task);
    /** @} */

    /**
     * Compose the address an accelerator must be programmed with for
     * buffer @p obj at physical @p base. Fine mode passes addresses
     * through; Coarse mode folds the object ID into the top bits.
     */
    Addr accelAddress(ObjectId obj, Addr base) const;

    protect::CheckResult check(const MemRequest &req) override;

    bool clearsTagsOnWrite() const override { return true; }
    Cycles checkLatency() const override { return params.checkCycles; }
    Cycles lastExtraLatency() const override { return lastWalk; }
    std::size_t entriesUsed() const override { return table.used(); }

    /** The capability cache, when configured (nullptr otherwise). */
    const CapCache *capCache() const { return cache.get(); }

    Cycles installCycles() const { return params.installCycles; }
    Cycles evictCycles() const { return params.evictCycles; }
    Provenance provenance() const { return params.provenance; }
    const CapTable &capTable() const { return table; }

    /** The global flag the CPU polls (Section 5.2.2). */
    bool exceptionFlagSet() const { return exceptionFlag; }
    void clearExceptionFlag() { exceptionFlag = false; }
    const std::vector<ExceptionRecord> &exceptionLog() const
    {
        return exceptions;
    }

    std::uint64_t checksPerformed() const { return _checks; }
    std::uint64_t checksDenied() const { return _denied; }

    /** @{ Probe points (near-zero cost with no listener attached). */
    probe::ProbePoint<CheckStartedEvent> &checkStartProbe()
    {
        return _checkStartProbe;
    }
    probe::ProbePoint<CheckResultEvent> &checkResultProbe()
    {
        return _checkResultProbe;
    }
    probe::ProbePoint<ExceptionRecord> &exceptionProbe()
    {
        return _exceptionProbe;
    }
    probe::ProbePoint<CapCacheEvent> &cacheHitProbe()
    {
        return _cacheHitProbe;
    }
    probe::ProbePoint<CapCacheEvent> &cacheMissProbe()
    {
        return _cacheMissProbe;
    }
    probe::ProbePoint<CapEvictEvent> &evictProbe()
    {
        return _evictProbe;
    }
    /** @} */

    protect::SchemeProperties properties() const override;

    std::string name() const override;

  private:
    protect::CheckResult deny(const MemRequest &req, TaskId task,
                              ObjectId obj, Addr addr, std::string why,
                              const CapTable::Entry *entry = nullptr);

    Params params;
    CapTable table;
    std::unique_ptr<CapCache> cache;
    Cycles lastWalk = 0;
    bool exceptionFlag = false;
    std::vector<ExceptionRecord> exceptions;
    std::uint64_t _checks = 0;
    std::uint64_t _denied = 0;

    probe::ProbePoint<CheckStartedEvent> _checkStartProbe{
        "capchecker.checkStart"};
    probe::ProbePoint<CheckResultEvent> _checkResultProbe{
        "capchecker.checkResult"};
    probe::ProbePoint<ExceptionRecord> _exceptionProbe{
        "capchecker.exception"};
    probe::ProbePoint<CapCacheEvent> _cacheHitProbe{
        "capchecker.cacheHit"};
    probe::ProbePoint<CapCacheEvent> _cacheMissProbe{
        "capchecker.cacheMiss"};
    probe::ProbePoint<CapEvictEvent> _evictProbe{"capchecker.evict"};
};

} // namespace capcheck::capchecker

#endif // CAPCHECK_CAPCHECKER_CAPCHECKER_HH
