/**
 * @file
 * Capability cache (Section 5.2.3): instead of holding every
 * capability in on-chip SRAM, a small CapChecker can cache entries of
 * a larger table that lives in (driver-owned) main memory — "similar
 * to page table caching in IOMMUs/IOTLBs, but with each entry holding
 * a capability". A miss costs a table walk; task eviction shoots the
 * task's cached entries down.
 *
 * Fully associative, LRU replacement, keyed by (task, object). The
 * reference implementation computes hit and victim in one scan per
 * access; the "capcache.index" fast kernel (sim/kernels registry)
 * resolves hits through a (task, object) hash and victims through an
 * intrusive LRU list plus a free-line set, with bit-identical
 * replacement decisions (gated by the kernel comparator).
 */

#ifndef CAPCHECK_CAPCHECKER_CAP_CACHE_HH
#define CAPCHECK_CAPCHECKER_CAP_CACHE_HH

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "base/types.hh"

namespace capcheck::capchecker
{

class PairIndex;

class CapCache
{
  public:
    /**
     * @param entries cache capacity.
     * @param walk_cycles latency of fetching one capability from the
     *        in-memory table on a miss (two 64-bit reads + tag).
     * @param fast_index enable the "capcache.index" fast kernel.
     */
    explicit CapCache(unsigned entries, Cycles walk_cycles = 60,
                      bool fast_index = false);
    ~CapCache();

    CapCache(const CapCache &) = delete;
    CapCache &operator=(const CapCache &) = delete;

    unsigned capacity() const { return static_cast<unsigned>(lines.size()); }
    Cycles walkCycles() const { return _walkCycles; }

    /**
     * Look up (task, object).
     * @return 0 on a hit, the walk latency on a miss (the entry is
     *         filled as a side effect).
     */
    Cycles access(TaskId task, ObjectId object);

    /** Invalidate all lines of @p task (eviction shootdown). */
    void invalidateTask(TaskId task);

    /** Invalidate everything. */
    void flush();

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

  private:
    struct Line
    {
        bool valid = false;
        TaskId task = invalidTaskId;
        ObjectId object = invalidObjectId;
        std::uint64_t lastUse = 0;
    };

    /** No list neighbour / list empty. */
    static constexpr unsigned npos = ~0u;

    /** Reference scan: the hit line or the replacement victim. */
    Cycles accessScan(TaskId task, ObjectId object);
    /** Fast kernel: hash hit, O(1) LRU victim. */
    Cycles accessIndexed(TaskId task, ObjectId object);

    /** @{ Intrusive LRU list over line indices, least-recent first.
     *  Stamps strictly increase, so appending on every touch keeps the
     *  list sorted by lastUse. */
    void lruDetach(unsigned idx);
    void lruAppend(unsigned idx);
    /** @} */

    void fill(Line &line, TaskId task, ObjectId object);

    /** Deep check: LRU stamps unique, within the use clock, no
     *  duplicate (task, object) lines, and the fast-kernel structures
     *  (when on) mirror the lines. Run under CAPCHECK_PARANOID. */
    void checkLruSanity() const;

    std::vector<Line> lines;
    Cycles _walkCycles;
    std::uint64_t useClock = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;

    /** @{ Fast-kernel state; engaged iff index is non-null. */
    std::unique_ptr<PairIndex> index;
    /** Invalid line indices; the reference scan victimizes the *last*
     *  invalid line, i.e. the largest index. */
    std::set<unsigned> freeLines;
    std::vector<unsigned> lruPrev;
    std::vector<unsigned> lruNext;
    unsigned lruHead = npos;
    unsigned lruTail = npos;
    /** @} */
};

} // namespace capcheck::capchecker

#endif // CAPCHECK_CAPCHECKER_CAP_CACHE_HH
