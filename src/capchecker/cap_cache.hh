/**
 * @file
 * Capability cache (Section 5.2.3): instead of holding every
 * capability in on-chip SRAM, a small CapChecker can cache entries of
 * a larger table that lives in (driver-owned) main memory — "similar
 * to page table caching in IOMMUs/IOTLBs, but with each entry holding
 * a capability". A miss costs a table walk; task eviction shoots the
 * task's cached entries down.
 *
 * Fully associative, LRU replacement, keyed by (task, object).
 */

#ifndef CAPCHECK_CAPCHECKER_CAP_CACHE_HH
#define CAPCHECK_CAPCHECKER_CAP_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace capcheck::capchecker
{

class CapCache
{
  public:
    /**
     * @param entries cache capacity.
     * @param walk_cycles latency of fetching one capability from the
     *        in-memory table on a miss (two 64-bit reads + tag).
     */
    explicit CapCache(unsigned entries, Cycles walk_cycles = 60);

    unsigned capacity() const { return static_cast<unsigned>(lines.size()); }
    Cycles walkCycles() const { return _walkCycles; }

    /**
     * Look up (task, object).
     * @return 0 on a hit, the walk latency on a miss (the entry is
     *         filled as a side effect).
     */
    Cycles access(TaskId task, ObjectId object);

    /** Invalidate all lines of @p task (eviction shootdown). */
    void invalidateTask(TaskId task);

    /** Invalidate everything. */
    void flush();

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

  private:
    struct Line
    {
        bool valid = false;
        TaskId task = invalidTaskId;
        ObjectId object = invalidObjectId;
        std::uint64_t lastUse = 0;
    };

    /** Deep check: LRU stamps unique, within the use clock, and no
     *  duplicate (task, object) lines. Run under CAPCHECK_PARANOID. */
    void checkLruSanity() const;

    std::vector<Line> lines;
    Cycles _walkCycles;
    std::uint64_t useClock = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace capcheck::capchecker

#endif // CAPCHECK_CAPCHECKER_CAP_CACHE_HH
