/**
 * @file
 * The CapChecker's capability table (Fig. 5): a fixed number of entries
 * (256 in the paper's prototype), each holding one compressed CHERI
 * capability indexed by (accelerator task, buffer object). Allocation
 * is associative; when the table is full the driver stalls until
 * another task's capabilities are evicted. Each entry carries an
 * exception bit so software can trace which pointer faulted.
 */

#ifndef CAPCHECK_CAPCHECKER_CAP_TABLE_HH
#define CAPCHECK_CAPCHECKER_CAP_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.hh"
#include "cheri/capability.hh"

namespace capcheck::capchecker
{

class CapTable
{
  public:
    struct Entry
    {
        bool valid = false;
        bool exception = false;
        TaskId task = invalidTaskId;
        ObjectId object = invalidObjectId;
        /** Stored compressed form (what the hardware holds). */
        std::uint64_t pesbt = 0;
        std::uint64_t cursor = 0;
        bool tag = false;
        /** Decoded view (the hardware decoder's output). */
        cheri::Capability decoded;
    };

    explicit CapTable(unsigned num_entries = 256);

    unsigned capacity() const { return static_cast<unsigned>(entries.size()); }
    std::size_t used() const { return liveCount; }
    bool full() const { return liveCount == entries.size(); }

    /**
     * Install a capability for (task, object).
     * Untagged capabilities are rejected (the control logic verifies
     * the tag, Section 5.3).
     * @return the entry index, or nullopt when the table is full.
     */
    std::optional<unsigned> install(TaskId task, ObjectId object,
                                    const cheri::Capability &cap);

    /** Associative lookup; nullptr when no entry matches. */
    const Entry *lookup(TaskId task, ObjectId object) const;

    /** Mark the entry for (task, object) as having faulted. */
    void markException(TaskId task, ObjectId object);

    /** Evict all entries of @p task. @return entries freed. */
    unsigned evictTask(TaskId task);

    /** Entry by index (diagnostics). */
    const Entry &at(unsigned idx) const { return entries.at(idx); }

    /** Indices of entries whose exception bit is set. */
    std::vector<unsigned> exceptionEntries() const;

  private:
    Entry *find(TaskId task, ObjectId object);

    std::vector<Entry> entries;
    std::size_t liveCount = 0;
};

} // namespace capcheck::capchecker

#endif // CAPCHECK_CAPCHECKER_CAP_TABLE_HH
