/**
 * @file
 * The CapChecker's capability table (Fig. 5): a fixed number of entries
 * (256 in the paper's prototype), each holding one compressed CHERI
 * capability indexed by (accelerator task, buffer object). Allocation
 * is associative; when the table is full the driver stalls until
 * another task's capabilities are evicted. Each entry carries an
 * exception bit so software can trace which pointer faulted.
 *
 * Lookups model a fully associative CAM, so the reference
 * implementation scans every entry. With the "captable.index" fast
 * kernel enabled (sim/kernels registry) the same lookups go through an
 * open-addressed (task, object) hash instead — pure host-side
 * bookkeeping with identical results, gated by the kernel comparator.
 */

#ifndef CAPCHECK_CAPCHECKER_CAP_TABLE_HH
#define CAPCHECK_CAPCHECKER_CAP_TABLE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "base/types.hh"
#include "cheri/capability.hh"

namespace capcheck::capchecker
{

class PairIndex;

class CapTable
{
  public:
    struct Entry
    {
        bool valid = false;
        bool exception = false;
        TaskId task = invalidTaskId;
        ObjectId object = invalidObjectId;
        /** Stored compressed form (what the hardware holds). */
        std::uint64_t pesbt = 0;
        std::uint64_t cursor = 0;
        bool tag = false;
        /** Decoded view (the hardware decoder's output). */
        cheri::Capability decoded;
    };

    /** @param fast_index route lookups through the (task, object)
     *        hash of the "captable.index" fast kernel. */
    explicit CapTable(unsigned num_entries = 256,
                      bool fast_index = false);
    ~CapTable();

    CapTable(const CapTable &) = delete;
    CapTable &operator=(const CapTable &) = delete;

    unsigned capacity() const { return static_cast<unsigned>(entries.size()); }
    std::size_t used() const { return liveCount; }
    bool full() const { return liveCount == entries.size(); }

    /**
     * Install a capability for (task, object).
     * Untagged capabilities are rejected (the control logic verifies
     * the tag, Section 5.3).
     * @return the entry index, or nullopt when the table is full.
     */
    std::optional<unsigned> install(TaskId task, ObjectId object,
                                    const cheri::Capability &cap);

    /** Associative lookup; nullptr when no entry matches. */
    const Entry *lookup(TaskId task, ObjectId object) const;

    /**
     * Mark the entry for (task, object) as having faulted. An entry
     * must exist: the checker records exceptions against the entry it
     * just matched, so a miss here means the driver and the CapChecker
     * disagree about what is installed.
     * @throw SimError (via INVARIANT) when no entry matches.
     */
    void markException(TaskId task, ObjectId object);

    /** Evict all entries of @p task. @return entries freed. */
    unsigned evictTask(TaskId task);

    /** Entry by index (diagnostics). */
    const Entry &at(unsigned idx) const { return entries.at(idx); }

    /** Indices of entries whose exception bit is set. */
    std::vector<unsigned> exceptionEntries() const;

  private:
    Entry *find(TaskId task, ObjectId object);

    /** Deep conservation check: liveCount equals the number of valid
     *  entries and the fast index (when on) mirrors them exactly. Run
     *  under CAPCHECK_PARANOID. */
    void checkConservation() const;

    std::vector<Entry> entries;
    std::size_t liveCount = 0;
    /** Non-null iff the fast kernel is selected for this table. */
    std::unique_ptr<PairIndex> index;
};

} // namespace capcheck::capchecker

#endif // CAPCHECK_CAPCHECKER_CAP_TABLE_HH
