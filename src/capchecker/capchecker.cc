#include "capchecker/capchecker.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/trace.hh"
#include "obs/prof.hh"

namespace capcheck::capchecker
{

const char *
provenanceName(Provenance mode)
{
    return mode == Provenance::fine ? "fine" : "coarse";
}

bool
provenanceFromName(const std::string &name, Provenance &out)
{
    if (name == "fine") {
        out = Provenance::fine;
        return true;
    }
    if (name == "coarse") {
        out = Provenance::coarse;
        return true;
    }
    return false;
}

CapChecker::CapChecker() : CapChecker(Params{})
{
}

CapChecker::CapChecker(const Params &params)
    : params(params), table(params.tableEntries, params.fastIndex)
{
    if (params.cacheEntries > 0) {
        cache = std::make_unique<CapCache>(params.cacheEntries,
                                           params.cacheWalkCycles,
                                           params.fastIndex);
    }
}

std::optional<unsigned>
CapChecker::installCapability(TaskId task, ObjectId obj,
                              const cheri::Capability &cap)
{
    if (params.provenance == Provenance::coarse && obj >= 256)
        fatal("coarse CapChecker: object id %u does not fit in 8 bits",
              obj);
    return table.install(task, obj, cap);
}

unsigned
CapChecker::evictTask(TaskId task)
{
    if (cache)
        cache->invalidateTask(task);
    const unsigned freed = table.evictTask(task);
    _evictProbe.notify(CapEvictEvent{task, freed});
    return freed;
}

Addr
CapChecker::accelAddress(ObjectId obj, Addr base) const
{
    if (params.provenance == Provenance::fine)
        return base;
    if (base >= (Addr{1} << coarseAddrBits))
        fatal("coarse CapChecker: physical address beyond 56 bits");
    return (Addr{obj} << coarseAddrBits) | base;
}

protect::CheckResult
CapChecker::deny(const MemRequest &req, TaskId task, ObjectId obj,
                 Addr addr, std::string why,
                 const CapTable::Entry *entry)
{
    ++_denied;
    exceptionFlag = true;
    // The exception bit lives in the matched entry; denials with no
    // matching entry (missing capability, missing metadata) have
    // nothing to mark — and markException treats a miss as a
    // driver/checker desync.
    if (entry)
        table.markException(task, obj);
    ExceptionRecord record{task, obj, addr, req.cmd, why};
    if (entry) {
        record.capValid = true;
        record.capBase = entry->decoded.base();
        record.capLength =
            static_cast<std::uint64_t>(entry->decoded.length());
        record.capPerms = entry->decoded.perms();
    }
    exceptions.push_back(record);
    _exceptionProbe.notify(exceptions.back());
    CAPCHECK_DPRINTF(debug::capchecker,
                     "DENY task=%u obj=%u %s 0x%llx+%u: %s", task, obj,
                     memCmdName(req.cmd),
                     static_cast<unsigned long long>(addr), req.size,
                     why.c_str());
    return protect::CheckResult::deny(std::move(why));
}

protect::CheckResult
CapChecker::check(const MemRequest &req)
{
    PROF_SCOPE("capcheck", "check");
    ++_checks;
    lastWalk = 0;
    _checkStartProbe.notify(CheckStartedEvent{&req});

    const auto decided = [&](protect::CheckResult result) {
        _checkResultProbe.notify(
            CheckResultEvent{&req, result.allowed, lastWalk});
        return result;
    };

    // Recover provenance: which object does this access intend?
    ObjectId obj;
    Addr addr;
    if (params.provenance == Provenance::fine) {
        obj = req.object;
        addr = req.addr;
        if (obj == invalidObjectId) {
            return decided(deny(
                req, req.task, obj, addr,
                "capchecker: request carries no object metadata"));
        }
    } else {
        obj = static_cast<ObjectId>(req.addr >> coarseAddrBits);
        addr = req.addr & mask(coarseAddrBits);
    }

    const CapTable::Entry *entry = table.lookup(req.task, obj);
    if (!entry) {
        return decided(
            deny(req, req.task, obj, addr,
                 "capchecker: no capability for (task, object)"));
    }

    // With a cached CapChecker the entry may need fetching from the
    // in-memory table first.
    if (cache) {
        lastWalk = cache->access(req.task, obj);
        if (lastWalk == 0)
            _cacheHitProbe.notify(CapCacheEvent{req.task, obj});
        else
            _cacheMissProbe.notify(CapCacheEvent{req.task, obj});
    }

    const cheri::AccessKind kind = req.cmd == MemCmd::write
                                       ? cheri::AccessKind::store
                                       : cheri::AccessKind::load;
    const cheri::CapFault fault =
        entry->decoded.checkAccess(kind, addr, req.size);
    if (fault != cheri::CapFault::none) {
        return decided(deny(req, req.task, obj, addr,
                            std::string("capchecker: ") +
                                cheri::capFaultName(fault),
                            entry));
    }
    return decided(protect::CheckResult::allow());
}

protect::SchemeProperties
CapChecker::properties() const
{
    protect::SchemeProperties p;
    p.name = name();
    p.spatialEnforcement = true;
    p.granularityBytes = 1;
    p.commonObjectRepresentation = true;
    p.unforgeable = true;
    p.scalable = "semi";
    p.addressTranslation = "optional";
    p.suitsMicrocontrollers = true;
    p.suitsApplicationProcessors = true;
    return p;
}

std::string
CapChecker::name() const
{
    return std::string("capchecker-") + provenanceName(params.provenance);
}

} // namespace capcheck::capchecker
