#include "capchecker/cap_cache.hh"

#include "base/invariant.hh"
#include "base/logging.hh"

namespace capcheck::capchecker
{

CapCache::CapCache(unsigned entries, Cycles walk_cycles)
    : lines(entries), _walkCycles(walk_cycles)
{
    if (entries == 0)
        fatal("CapCache needs at least one entry");
}

Cycles
CapCache::access(TaskId task, ObjectId object)
{
    ++useClock;

    Line *victim = &lines.front();
    for (Line &line : lines) {
        if (line.valid && line.task == task && line.object == object) {
            line.lastUse = useClock;
            ++_hits;
            if (paranoidChecks)
                checkLruSanity();
            return 0;
        }
        if (!line.valid ||
            (victim->valid && line.lastUse < victim->lastUse))
            victim = &line;
    }

    ++_misses;
    victim->valid = true;
    victim->task = task;
    victim->object = object;
    victim->lastUse = useClock;
    if (paranoidChecks)
        checkLruSanity();
    return _walkCycles;
}

void
CapCache::checkLruSanity() const
{
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const Line &a = lines[i];
        if (!a.valid)
            continue;
        INVARIANT(a.lastUse > 0 && a.lastUse <= useClock,
                  "LRU stamp %llu outside (0, %llu]",
                  static_cast<unsigned long long>(a.lastUse),
                  static_cast<unsigned long long>(useClock));
        for (std::size_t j = i + 1; j < lines.size(); ++j) {
            const Line &b = lines[j];
            if (!b.valid)
                continue;
            INVARIANT(a.lastUse != b.lastUse,
                      "duplicate LRU stamp %llu",
                      static_cast<unsigned long long>(a.lastUse));
            INVARIANT(a.task != b.task || a.object != b.object,
                      "duplicate cache line for (task %u, object %u)",
                      a.task, a.object);
        }
    }
}

void
CapCache::invalidateTask(TaskId task)
{
    for (Line &line : lines) {
        if (line.valid && line.task == task)
            line = Line{};
    }
}

void
CapCache::flush()
{
    for (Line &line : lines)
        line = Line{};
    useClock = 0;
}

} // namespace capcheck::capchecker
