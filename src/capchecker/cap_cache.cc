#include "capchecker/cap_cache.hh"

#include "base/invariant.hh"
#include "base/logging.hh"
#include "capchecker/pair_index.hh"
#include "obs/prof.hh"

namespace capcheck::capchecker
{

CapCache::CapCache(unsigned entries, Cycles walk_cycles,
                   bool fast_index)
    : lines(entries), _walkCycles(walk_cycles)
{
    if (entries == 0)
        fatal("CapCache needs at least one entry");
    if (fast_index) {
        index = std::make_unique<PairIndex>(entries);
        lruPrev.assign(entries, npos);
        lruNext.assign(entries, npos);
        for (unsigned i = 0; i < entries; ++i)
            freeLines.insert(i);
    }
}

CapCache::~CapCache() = default;

void
CapCache::fill(Line &line, TaskId task, ObjectId object)
{
    line.valid = true;
    line.task = task;
    line.object = object;
    line.lastUse = useClock;
}

Cycles
CapCache::access(TaskId task, ObjectId object)
{
    PROF_SCOPE("capcheck", "cache.walk");
    ++useClock;
    const Cycles walk = index ? accessIndexed(task, object)
                              : accessScan(task, object);
    if (paranoidChecks)
        checkLruSanity();
    return walk;
}

Cycles
CapCache::accessScan(TaskId task, ObjectId object)
{
    Line *victim = &lines.front();
    for (Line &line : lines) {
        if (line.valid && line.task == task && line.object == object) {
            line.lastUse = useClock;
            ++_hits;
            return 0;
        }
        if (!line.valid ||
            (victim->valid && line.lastUse < victim->lastUse))
            victim = &line;
    }

    ++_misses;
    fill(*victim, task, object);
    return _walkCycles;
}

Cycles
CapCache::accessIndexed(TaskId task, ObjectId object)
{
    if (const auto slot = index->find(task, object)) {
        lines[*slot].lastUse = useClock;
        lruDetach(*slot);
        lruAppend(*slot);
        ++_hits;
        return 0;
    }

    ++_misses;
    unsigned victim;
    if (!freeLines.empty()) {
        // The reference scan lets every invalid line overwrite the
        // victim candidate, so it picks the *last* invalid line.
        const auto last = std::prev(freeLines.end());
        victim = *last;
        freeLines.erase(last);
    } else {
        victim = lruHead;
        INVARIANT(victim != npos, "CapCache: no victim with no free "
                                  "lines and an empty LRU list");
        index->erase(lines[victim].task, lines[victim].object);
        lruDetach(victim);
    }
    fill(lines[victim], task, object);
    index->insert(task, object, victim);
    lruAppend(victim);
    return _walkCycles;
}

void
CapCache::lruDetach(unsigned idx)
{
    const unsigned prev = lruPrev[idx];
    const unsigned next = lruNext[idx];
    if (prev != npos)
        lruNext[prev] = next;
    else
        lruHead = next;
    if (next != npos)
        lruPrev[next] = prev;
    else
        lruTail = prev;
    lruPrev[idx] = npos;
    lruNext[idx] = npos;
}

void
CapCache::lruAppend(unsigned idx)
{
    lruPrev[idx] = lruTail;
    lruNext[idx] = npos;
    if (lruTail != npos)
        lruNext[lruTail] = idx;
    else
        lruHead = idx;
    lruTail = idx;
}

void
CapCache::checkLruSanity() const
{
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const Line &a = lines[i];
        if (!a.valid)
            continue;
        INVARIANT(a.lastUse > 0 && a.lastUse <= useClock,
                  "LRU stamp %llu outside (0, %llu]",
                  static_cast<unsigned long long>(a.lastUse),
                  static_cast<unsigned long long>(useClock));
        for (std::size_t j = i + 1; j < lines.size(); ++j) {
            const Line &b = lines[j];
            if (!b.valid)
                continue;
            INVARIANT(a.lastUse != b.lastUse,
                      "duplicate LRU stamp %llu",
                      static_cast<unsigned long long>(a.lastUse));
            INVARIANT(a.task != b.task || a.object != b.object,
                      "duplicate cache line for (task %u, object %u)",
                      a.task, a.object);
        }
    }
    if (!index)
        return;
    // Fast-kernel mirrors: every valid line is indexed and threaded on
    // the LRU list in ascending lastUse order; every invalid line is a
    // free line.
    std::size_t valid = 0;
    for (unsigned i = 0; i < lines.size(); ++i) {
        if (lines[i].valid) {
            ++valid;
            const auto slot = index->find(lines[i].task,
                                          lines[i].object);
            INVARIANT(slot && *slot == i,
                      "CapCache: fast index out of sync for line %u", i);
            INVARIANT(freeLines.count(i) == 0,
                      "CapCache: valid line %u in the free set", i);
        } else {
            INVARIANT(freeLines.count(i) == 1,
                      "CapCache: invalid line %u missing from the free "
                      "set",
                      i);
        }
    }
    INVARIANT(index->size() == valid,
              "CapCache: fast index holds %zu keys for %zu valid lines",
              index->size(), valid);
    std::size_t chained = 0;
    std::uint64_t last_stamp = 0;
    for (unsigned i = lruHead; i != npos; i = lruNext[i]) {
        ++chained;
        INVARIANT(lines[i].valid, "CapCache: invalid line %u on the "
                                  "LRU list",
                  i);
        INVARIANT(lines[i].lastUse > last_stamp,
                  "CapCache: LRU list out of order at line %u", i);
        last_stamp = lines[i].lastUse;
        INVARIANT(chained <= lines.size(),
                  "CapCache: LRU list cycle detected");
    }
    INVARIANT(chained == valid,
              "CapCache: LRU list threads %zu lines, %zu valid", chained,
              valid);
}

void
CapCache::invalidateTask(TaskId task)
{
    for (unsigned i = 0; i < lines.size(); ++i) {
        Line &line = lines[i];
        if (line.valid && line.task == task) {
            if (index) {
                index->erase(line.task, line.object);
                lruDetach(i);
                freeLines.insert(i);
            }
            line = Line{};
        }
    }
    if (paranoidChecks)
        checkLruSanity();
}

void
CapCache::flush()
{
    for (unsigned i = 0; i < lines.size(); ++i) {
        Line &line = lines[i];
        if (index && line.valid) {
            index->erase(line.task, line.object);
            lruDetach(i);
            freeLines.insert(i);
        }
        line = Line{};
    }
    useClock = 0;
}

} // namespace capcheck::capchecker
