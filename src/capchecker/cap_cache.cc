#include "capchecker/cap_cache.hh"

#include "base/logging.hh"

namespace capcheck::capchecker
{

CapCache::CapCache(unsigned entries, Cycles walk_cycles)
    : lines(entries), _walkCycles(walk_cycles)
{
    if (entries == 0)
        fatal("CapCache needs at least one entry");
}

Cycles
CapCache::access(TaskId task, ObjectId object)
{
    ++useClock;

    Line *victim = &lines.front();
    for (Line &line : lines) {
        if (line.valid && line.task == task && line.object == object) {
            line.lastUse = useClock;
            ++_hits;
            return 0;
        }
        if (!line.valid ||
            (victim->valid && line.lastUse < victim->lastUse))
            victim = &line;
    }

    ++_misses;
    victim->valid = true;
    victim->task = task;
    victim->object = object;
    victim->lastUse = useClock;
    return _walkCycles;
}

void
CapCache::invalidateTask(TaskId task)
{
    for (Line &line : lines) {
        if (line.valid && line.task == task)
            line = Line{};
    }
}

void
CapCache::flush()
{
    for (Line &line : lines)
        line = Line{};
    useClock = 0;
}

} // namespace capcheck::capchecker
