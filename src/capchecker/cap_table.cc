#include "capchecker/cap_table.hh"

#include "base/invariant.hh"
#include "base/logging.hh"
#include "capchecker/pair_index.hh"
#include "obs/prof.hh"

namespace capcheck::capchecker
{

CapTable::CapTable(unsigned num_entries, bool fast_index)
    : entries(num_entries)
{
    if (num_entries == 0)
        fatal("CapTable needs at least one entry");
    if (fast_index)
        index = std::make_unique<PairIndex>(num_entries);
}

CapTable::~CapTable() = default;

CapTable::Entry *
CapTable::find(TaskId task, ObjectId object)
{
    if (index) {
        if (const auto slot = index->find(task, object))
            return &entries[*slot];
        return nullptr;
    }
    for (Entry &entry : entries) {
        if (entry.valid && entry.task == task && entry.object == object)
            return &entry;
    }
    return nullptr;
}

std::optional<unsigned>
CapTable::install(TaskId task, ObjectId object,
                  const cheri::Capability &cap)
{
    if (!cap.tag())
        fatal("CapTable: refusing to install an untagged capability");

    // Re-installing for the same (task, object) overwrites in place.
    if (Entry *existing = find(task, object)) {
        existing->exception = false;
        cap.compress(existing->pesbt, existing->cursor);
        existing->tag = cap.tag();
        existing->decoded = cap;
        return static_cast<unsigned>(existing - entries.data());
    }

    for (unsigned i = 0; i < entries.size(); ++i) {
        Entry &entry = entries[i];
        if (entry.valid)
            continue;
        entry.valid = true;
        entry.exception = false;
        entry.task = task;
        entry.object = object;
        cap.compress(entry.pesbt, entry.cursor);
        entry.tag = cap.tag();
        // The hardware decoder recovers bounds/permissions from the
        // compressed form; decode what was actually stored.
        entry.decoded = cheri::Capability::fromCompressed(
            entry.tag, entry.pesbt, entry.cursor);
        ++liveCount;
        if (index)
            index->insert(task, object, i);
        if (paranoidChecks)
            checkConservation();
        return i;
    }
    return std::nullopt;
}

const CapTable::Entry *
CapTable::lookup(TaskId task, ObjectId object) const
{
    PROF_SCOPE("capcheck", "table.lookup");
    return const_cast<CapTable *>(this)->find(task, object);
}

void
CapTable::markException(TaskId task, ObjectId object)
{
    Entry *entry = find(task, object);
    INVARIANT(entry != nullptr,
              "CapTable: marking an exception for (task %u, object %u) "
              "with no matching entry — driver/checker desync",
              task, object);
    entry->exception = true;
}

unsigned
CapTable::evictTask(TaskId task)
{
    unsigned freed = 0;
    for (Entry &entry : entries) {
        if (entry.valid && entry.task == task) {
            if (index)
                index->erase(entry.task, entry.object);
            entry = Entry{};
            ++freed;
        }
    }
    INVARIANT(liveCount >= freed,
              "CapTable: evicting %u entries of task %u with only %zu "
              "live",
              freed, task, liveCount);
    liveCount -= freed;
    if (paranoidChecks)
        checkConservation();
    return freed;
}

void
CapTable::checkConservation() const
{
    std::size_t valid = 0;
    for (const Entry &entry : entries)
        valid += entry.valid;
    INVARIANT(valid == liveCount,
              "CapTable: liveCount %zu but %zu valid entries", liveCount,
              valid);
    if (index) {
        INVARIANT(index->size() == liveCount,
                  "CapTable: fast index holds %zu keys for %zu live "
                  "entries",
                  index->size(), liveCount);
        for (unsigned i = 0; i < entries.size(); ++i) {
            if (!entries[i].valid)
                continue;
            const auto slot =
                index->find(entries[i].task, entries[i].object);
            INVARIANT(slot && *slot == i,
                      "CapTable: fast index out of sync for entry %u "
                      "(task %u, object %u)",
                      i, entries[i].task, entries[i].object);
        }
    }
}

std::vector<unsigned>
CapTable::exceptionEntries() const
{
    std::vector<unsigned> out;
    for (unsigned i = 0; i < entries.size(); ++i) {
        if (entries[i].valid && entries[i].exception)
            out.push_back(i);
    }
    return out;
}

} // namespace capcheck::capchecker
