#include "capchecker/cap_table.hh"

#include "base/logging.hh"

namespace capcheck::capchecker
{

CapTable::CapTable(unsigned num_entries) : entries(num_entries)
{
    if (num_entries == 0)
        fatal("CapTable needs at least one entry");
}

CapTable::Entry *
CapTable::find(TaskId task, ObjectId object)
{
    for (Entry &entry : entries) {
        if (entry.valid && entry.task == task && entry.object == object)
            return &entry;
    }
    return nullptr;
}

std::optional<unsigned>
CapTable::install(TaskId task, ObjectId object,
                  const cheri::Capability &cap)
{
    if (!cap.tag())
        fatal("CapTable: refusing to install an untagged capability");

    // Re-installing for the same (task, object) overwrites in place.
    if (Entry *existing = find(task, object)) {
        existing->exception = false;
        cap.compress(existing->pesbt, existing->cursor);
        existing->tag = cap.tag();
        existing->decoded = cap;
        return static_cast<unsigned>(existing - entries.data());
    }

    for (unsigned i = 0; i < entries.size(); ++i) {
        Entry &entry = entries[i];
        if (entry.valid)
            continue;
        entry.valid = true;
        entry.exception = false;
        entry.task = task;
        entry.object = object;
        cap.compress(entry.pesbt, entry.cursor);
        entry.tag = cap.tag();
        // The hardware decoder recovers bounds/permissions from the
        // compressed form; decode what was actually stored.
        entry.decoded = cheri::Capability::fromCompressed(
            entry.tag, entry.pesbt, entry.cursor);
        ++liveCount;
        return i;
    }
    return std::nullopt;
}

const CapTable::Entry *
CapTable::lookup(TaskId task, ObjectId object) const
{
    for (const Entry &entry : entries) {
        if (entry.valid && entry.task == task && entry.object == object)
            return &entry;
    }
    return nullptr;
}

void
CapTable::markException(TaskId task, ObjectId object)
{
    if (Entry *entry = find(task, object))
        entry->exception = true;
}

unsigned
CapTable::evictTask(TaskId task)
{
    unsigned freed = 0;
    for (Entry &entry : entries) {
        if (entry.valid && entry.task == task) {
            entry = Entry{};
            ++freed;
        }
    }
    liveCount -= freed;
    return freed;
}

std::vector<unsigned>
CapTable::exceptionEntries() const
{
    std::vector<unsigned> out;
    for (unsigned i = 0; i < entries.size(); ++i) {
        if (entries[i].valid && entries[i].exception)
            out.push_back(i);
    }
    return out;
}

} // namespace capcheck::capchecker
