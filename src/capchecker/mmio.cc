#include "capchecker/mmio.hh"

#include "base/logging.hh"

namespace capcheck::capchecker
{

void
CapCheckerMmio::storeCap(const cheri::Capability &cap)
{
    // A capability store is two bus beats on the capability
    // interconnect (128 bits + tag).
    _cycles += 2 * mmioAccessCycles;
    capWindow = cap;
}

void
CapCheckerMmio::writeReg(Addr offset, std::uint64_t value)
{
    _cycles += mmioAccessCycles;
    switch (offset) {
      case regTask:
        taskReg = value;
        break;
      case regObject:
        objectReg = value;
        break;
      case regCmd:
        executeCommand(value);
        break;
      case regCap:
        // Plain data writes into the capability window clear its tag —
        // the same anti-forgery rule as main memory.
        capWindow = capWindow.cleared();
        break;
      default:
        panic("CapCheckerMmio: write to bad offset 0x%llx",
              static_cast<unsigned long long>(offset));
    }
}

std::uint64_t
CapCheckerMmio::readReg(Addr offset)
{
    _cycles += mmioAccessCycles;
    if (offset != regStatus)
        panic("CapCheckerMmio: read from bad offset 0x%llx",
              static_cast<unsigned long long>(offset));

    std::uint64_t status = 0;
    if (checker.exceptionFlagSet())
        status |= statusExceptionFlag;
    if (checker.capTable().used() == checker.capTable().capacity())
        status |= statusTableFull;
    if (lastCmdOk)
        status |= statusLastCmdOk;
    return status;
}

void
CapCheckerMmio::executeCommand(std::uint64_t cmd)
{
    switch (cmd) {
      case cmdInstall: {
        if (!capWindow.tag()) {
            // The control logic verifies the tag (Section 5.3).
            lastCmdOk = false;
            return;
        }
        // Associative search for a free entry.
        _cycles += 2;
        const auto idx = checker.installCapability(
            static_cast<TaskId>(taskReg),
            static_cast<ObjectId>(objectReg), capWindow);
        lastCmdOk = idx.has_value();
        break;
      }
      case cmdEvictTask:
        _cycles += 2;
        checker.evictTask(static_cast<TaskId>(taskReg));
        lastCmdOk = true;
        break;
      case cmdClearException:
        checker.clearExceptionFlag();
        lastCmdOk = true;
        break;
      default:
        lastCmdOk = false;
        break;
    }
}

bool
CapCheckerMmio::installSequence(TaskId task, ObjectId obj,
                                const cheri::Capability &cap)
{
    storeCap(cap);
    writeReg(regTask, task);
    writeReg(regObject, obj);
    writeReg(regCmd, cmdInstall);
    return (readReg(regStatus) & statusLastCmdOk) != 0;
}

void
CapCheckerMmio::evictSequence(TaskId task)
{
    writeReg(regTask, task);
    writeReg(regCmd, cmdEvictTask);
}

} // namespace capcheck::capchecker
