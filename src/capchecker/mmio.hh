/**
 * @file
 * Register-level programming model of the CapChecker's capability MMIO
 * interface (the separate capability interconnect at the top of
 * Fig. 2). The CPU programs the checker by storing a capability into
 * the CAP window (a tagged, capability-width store — the only way a
 * valid capability can enter the repository) and then writing the task
 * and object indices and a command. Every access costs MMIO cycles;
 * the driver's install/evict costs in the timing model come from these
 * sequences.
 */

#ifndef CAPCHECK_CAPCHECKER_MMIO_HH
#define CAPCHECK_CAPCHECKER_MMIO_HH

#include "capchecker/capchecker.hh"

namespace capcheck::capchecker
{

class CapCheckerMmio
{
  public:
    /** Register offsets within the MMIO window. */
    enum RegOffset : Addr
    {
        regCap = 0x00,    ///< 16-byte capability window (tagged store)
        regTask = 0x10,   ///< target task id
        regObject = 0x18, ///< target object id
        regCmd = 0x20,    ///< command strobe
        regStatus = 0x28, ///< status (read)
    };

    enum Command : std::uint64_t
    {
        cmdInstall = 1,
        cmdEvictTask = 2,
        cmdClearException = 3,
    };

    /** Status register bits. */
    enum StatusBits : std::uint64_t
    {
        statusExceptionFlag = 1u << 0,
        statusTableFull = 1u << 1,
        statusLastCmdOk = 1u << 2,
    };

    /** Cycles per single MMIO register access over the dedicated
     *  capability interconnect (short point-to-point path). */
    static constexpr Cycles mmioAccessCycles = 2;

    explicit CapCheckerMmio(CapChecker &checker) : checker(checker) {}

    /**
     * Store a capability into the CAP window. Only tagged stores are
     * meaningful; an untagged store leaves the window invalid.
     */
    void storeCap(const cheri::Capability &cap);

    /** Plain 64-bit register write. */
    void writeReg(Addr offset, std::uint64_t value);

    /** Plain 64-bit register read. */
    std::uint64_t readReg(Addr offset);

    /** Cycles consumed by MMIO traffic so far. */
    Cycles cyclesUsed() const { return _cycles; }
    void resetCycles() { _cycles = 0; }

    /** @{ Convenience sequences (what the driver actually runs). */
    bool installSequence(TaskId task, ObjectId obj,
                         const cheri::Capability &cap);
    void evictSequence(TaskId task);
    /** @} */

  private:
    void executeCommand(std::uint64_t cmd);

    CapChecker &checker;
    Cycles _cycles = 0;

    cheri::Capability capWindow;
    std::uint64_t taskReg = 0;
    std::uint64_t objectReg = 0;
    bool lastCmdOk = false;
};

} // namespace capcheck::capchecker

#endif // CAPCHECK_CAPCHECKER_MMIO_HH
