#include "mem/tagged_memory.hh"

#include <cstring>

#include "base/bitfield.hh"
#include "base/invariant.hh"
#include "base/logging.hh"

namespace capcheck
{

TaggedMemory::TaggedMemory(std::uint64_t size_bytes)
    : data(size_bytes, 0), tags(divCeil(size_bytes, capGranule), false)
{
    if (size_bytes == 0 || size_bytes % capGranule != 0)
        fatal("TaggedMemory size must be a non-zero multiple of %llu",
              static_cast<unsigned long long>(capGranule));
}

void
TaggedMemory::rangeError(Addr addr, std::uint64_t len) const
{
    panic("TaggedMemory access out of range: 0x%llx+%llu",
          static_cast<unsigned long long>(addr),
          static_cast<unsigned long long>(len));
}

void
TaggedMemory::write(Addr addr, const void *src, std::uint64_t len)
{
    checkRange(addr, len);
    std::memcpy(data.data() + addr, src, len);
    clearTags(addr, len);
    if (paranoidChecks && len > 0) {
        // Postcondition of the tag discipline: a data write can never
        // leave a valid capability tag over the bytes it touched.
        const std::uint64_t first = addr / capGranule;
        const std::uint64_t last = (addr + len - 1) / capGranule;
        for (std::uint64_t g = first; g <= last; ++g)
            INVARIANT(!tags[g], "data write left granule %llu tagged",
                      static_cast<unsigned long long>(g));
    }
}

void
TaggedMemory::writeRawDma(Addr addr, const void *src, std::uint64_t len)
{
    INVARIANT(!dmaTagBarrier,
              "tag-preserving raw DMA write (0x%llx+%llu) while a "
              "tag-clearing checker is interposed",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(len));
    checkRange(addr, len);
    std::memcpy(data.data() + addr, src, len);
}

void
TaggedMemory::writeCap(Addr addr, const cheri::Capability &cap)
{
    if (addr % capGranule != 0)
        panic("capability store to unaligned address 0x%llx",
              static_cast<unsigned long long>(addr));
    checkRange(addr, capGranule);

    std::uint64_t pesbt;
    std::uint64_t cursor;
    cap.compress(pesbt, cursor);
    std::memcpy(data.data() + addr, &cursor, 8);
    std::memcpy(data.data() + addr + 8, &pesbt, 8);
    tags[addr / capGranule] = cap.tag();
}

cheri::Capability
TaggedMemory::readCap(Addr addr) const
{
    if (addr % capGranule != 0)
        panic("capability load from unaligned address 0x%llx",
              static_cast<unsigned long long>(addr));
    checkRange(addr, capGranule);

    std::uint64_t cursor;
    std::uint64_t pesbt;
    std::memcpy(&cursor, data.data() + addr, 8);
    std::memcpy(&pesbt, data.data() + addr + 8, 8);
    return cheri::Capability::fromCompressed(tags[addr / capGranule],
                                             pesbt, cursor);
}

bool
TaggedMemory::tagAt(Addr addr) const
{
    checkRange(addr, 1);
    return tags[addr / capGranule];
}

void
TaggedMemory::clearTags(Addr addr, std::uint64_t len)
{
    if (len == 0)
        return;
    checkRange(addr, len);
    const std::uint64_t first = addr / capGranule;
    const std::uint64_t last = (addr + len - 1) / capGranule;
    for (std::uint64_t g = first; g <= last; ++g)
        tags[g] = false;
}

std::uint64_t
TaggedMemory::countTags() const
{
    std::uint64_t count = 0;
    for (const bool tag : tags)
        count += tag;
    return count;
}

void
TaggedMemory::scrub(Addr addr, std::uint64_t len)
{
    checkRange(addr, len);
    std::memset(data.data() + addr, 0, len);
    clearTags(addr, len);
}

} // namespace capcheck
