/**
 * @file
 * Pipelined memory controller model: accepts at most one request per
 * cycle and returns each response a fixed latency later. Bandwidth is
 * therefore one beat per cycle — the paper's stated platform limit —
 * while latency is hidden for deeply pipelined masters.
 */

#ifndef CAPCHECK_MEM_MEM_CTRL_HH
#define CAPCHECK_MEM_MEM_CTRL_HH

#include <deque>

#include "base/probe.hh"
#include "base/stats.hh"
#include "mem/packet.hh"
#include "sim/clocked.hh"
#include "sim/port.hh"

namespace capcheck
{

class MemoryController : public SimObject, public TimingConsumer
{
  public:
    /** Default access latency in cycles (DRAM via AXI on the FPGA). */
    static constexpr Cycles defaultLatency = 30;

    MemoryController(EventQueue &eq, stats::StatGroup *parent_stats,
                     Cycles latency = defaultLatency,
                     std::string name = "memctrl");

    /**
     * Upstream-facing port: requests arrive through it and responses
     * leave through it a fixed latency later. Bind it to the mem-side
     * request port of the interconnect, check stage or router above.
     */
    ResponsePort &cpuSide() { return cpuSidePort; }

    /** TimingConsumer: accept one request per cycle. */
    bool tryAccept(const MemRequest &req) override;

    Cycles latency() const { return _latency; }

    std::uint64_t
    requestsServed() const
    {
        return static_cast<std::uint64_t>(served.value());
    }

    /** Fired when a request enters the controller pipeline. */
    probe::ProbePoint<MemRequest> &acceptProbe() { return _acceptProbe; }

    /** Fired when a response leaves toward the interconnect. */
    probe::ProbePoint<MemResponse> &respondProbe()
    {
        return _respondProbe;
    }

  private:
    class RespondEvent : public Event
    {
      public:
        RespondEvent(MemoryController &owner)
            : Event(Event::responsePrio), owner(owner)
        {
        }

        void process() override { owner.deliver(); }
        std::string description() const override { return "mem-respond"; }

        prof::SiteId
        profSite() const override
        {
            static const prof::SiteId site =
                prof::registerSite("mem", "memctrl.respond");
            return site;
        }

      private:
        MemoryController &owner;
    };

    void deliver();

    ResponsePort cpuSidePort;
    Cycles _latency;
    Cycles lastAcceptCycle = ~Cycles{0};

    /** In-flight responses, ordered by due cycle. */
    struct Inflight
    {
        Cycles due;
        MemResponse resp;
    };
    std::deque<Inflight> pipeline;
    RespondEvent respondEvent;

    stats::Scalar served;
    stats::Scalar readBeats;
    stats::Scalar writeBeats;

    probe::ProbePoint<MemRequest> _acceptProbe{"memctrl.accept"};
    probe::ProbePoint<MemResponse> _respondProbe{"memctrl.respond"};
};

} // namespace capcheck

#endif // CAPCHECK_MEM_MEM_CTRL_HH
