#include "mem/packet.hh"

#include <sstream>

namespace capcheck
{

const char *
memCmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::read:
        return "read";
      case MemCmd::write:
        return "write";
    }
    return "?";
}

std::string
MemRequest::toString() const
{
    std::ostringstream os;
    os << memCmdName(cmd) << " 0x" << std::hex << addr << std::dec << "+"
       << size << " port=" << srcPort << " task=" << task
       << " obj=" << object;
    return os.str();
}

} // namespace capcheck
