/**
 * @file
 * AXI-style shared interconnect. Matching the paper's prototype, the
 * interconnect admits one memory access per clock cycle; masters
 * contend through round-robin arbitration. Each master slot has a
 * single-entry request buffer (an AXI address channel that stalls until
 * the crossbar accepts the beat) exposed as a ResponsePort named
 * "accel_side<i>"; granted beats leave through the "mem_side"
 * RequestPort. Responses are routed back to the issuing master by the
 * source port id recorded when its beat was offered.
 */

#ifndef CAPCHECK_MEM_INTERCONNECT_HH
#define CAPCHECK_MEM_INTERCONNECT_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/probe.hh"
#include "base/stats.hh"
#include "mem/packet.hh"
#include "sim/clocked.hh"
#include "sim/port.hh"

namespace capcheck
{

class AxiInterconnect : public TickingObject, public ResponseHandler
{
  public:
    /**
     * @param num_masters master slots (accelerator ports).
     * @param max_burst beats a granted master may keep the bus for
     *        while it has back-to-back requests (AXI burst-style
     *        sticky arbitration). 1 = pure round-robin per beat.
     */
    AxiInterconnect(EventQueue &eq, stats::StatGroup *parent_stats,
                    unsigned num_masters, unsigned max_burst = 1,
                    std::string name = "xbar");

    unsigned numMasters() const { return masters.size(); }

    /**
     * Master-facing port of slot @p slot ("accel_side<slot>"); bind
     * each master's request port here. Slots bind per wave, so slots
     * without a live master may stay unbound.
     */
    ResponsePort &accelSide(unsigned slot);

    /**
     * Downstream-facing port; bind to the check stage, a channel
     * router or the memory controller.
     */
    RequestPort &memSide() { return memSidePort; }

    /**
     * Offer a request into master slot @p slot (the admission function
     * behind that slot's accel_side port).
     * @return false when that slot's buffer is full this cycle.
     */
    bool offer(unsigned slot, const MemRequest &req);

    /** True when master slot @p slot can take a request. */
    bool canOffer(unsigned slot) const;

    /** ResponseHandler: deliver a response back to its master. */
    void handleResponse(const MemResponse &resp) override;

    bool tick() override;
    const char *profKind() const override { return "xbar"; }

    /** Total beats granted. */
    std::uint64_t beatsGranted() const
    {
        return static_cast<std::uint64_t>(grants.value());
    }

    /**
     * Fired when a request enters a master slot (offer accepted) —
     * the start of this crossbar's arbitration wait. In a cascaded
     * tree every level fires its own offer/grant pair, which is what
     * lets the flight recorder attribute multi-hop xbar waits exactly.
     */
    probe::ProbePoint<MemRequest> &offerProbe() { return _offerProbe; }

    /** Fired when arbitration grants a request onto the bus. */
    probe::ProbePoint<MemRequest> &grantProbe() { return _grantProbe; }

    /**
     * Fired when a response is routed back to its master — the end of
     * the request's flight, whether it came from the memory controller
     * or as a denial from the check stage.
     */
    probe::ProbePoint<MemResponse> &respondProbe()
    {
        return _respondProbe;
    }

  private:
    struct MasterSlot
    {
        std::optional<MemRequest> pending;
        std::unique_ptr<ResponsePort> port;
    };

    /** Sentinel: no master currently owns a burst. */
    static constexpr unsigned noOwner = ~0u;

    void grantBeat(MasterSlot &slot);
    void resetBurst();

    RequestPort memSidePort;
    std::vector<MasterSlot> masters;

    /**
     * Source port id -> local slot, recorded at offer() time so
     * responses route correctly even when this crossbar's slot indices
     * differ from the masters' global port ids (multi-crossbar
     * topologies).
     */
    std::unordered_map<PortId, unsigned> portToSlot;

    unsigned rrNext = 0;
    unsigned maxBurst;
    unsigned burstLeft = 0;
    unsigned burstOwner = noOwner;

    /** @{ Conservation bookkeeping: every offered beat is either still
     *  pending in its slot or has been granted downstream. */
    std::uint64_t offeredBeats = 0;
    std::uint64_t grantedBeats = 0;
    /** @} */

    stats::Scalar grants;
    stats::Scalar stallCycles;

    probe::ProbePoint<MemRequest> _offerProbe{"xbar.offer"};
    probe::ProbePoint<MemRequest> _grantProbe{"xbar.grant"};
    probe::ProbePoint<MemResponse> _respondProbe{"xbar.respond"};
};

} // namespace capcheck

#endif // CAPCHECK_MEM_INTERCONNECT_HH
