/**
 * @file
 * AXI-style shared interconnect. Matching the paper's prototype, the
 * interconnect admits one memory access per clock cycle; masters
 * contend through round-robin arbitration. Each master slot has a
 * single-entry request buffer (an AXI address channel that stalls until
 * the crossbar accepts the beat). Responses are routed back to the
 * issuing master by port id.
 */

#ifndef CAPCHECK_MEM_INTERCONNECT_HH
#define CAPCHECK_MEM_INTERCONNECT_HH

#include <optional>
#include <vector>

#include "base/probe.hh"
#include "base/stats.hh"
#include "mem/packet.hh"
#include "sim/clocked.hh"

namespace capcheck
{

class AxiInterconnect : public TickingObject, public ResponseHandler
{
  public:
    /**
     * @param num_masters master slots (accelerator ports).
     * @param downstream where granted requests go (CapChecker or the
     *        memory controller).
     * @param max_burst beats a granted master may keep the bus for
     *        while it has back-to-back requests (AXI burst-style
     *        sticky arbitration). 1 = pure round-robin per beat.
     */
    AxiInterconnect(EventQueue &eq, stats::StatGroup *parent_stats,
                    unsigned num_masters, TimingConsumer &downstream,
                    unsigned max_burst = 1);

    unsigned numMasters() const { return masters.size(); }

    /**
     * Offer a request into master slot @p port.
     * @return false when that slot's buffer is full this cycle.
     */
    bool offer(PortId port, const MemRequest &req);

    /** True when master slot @p port can take a request. */
    bool canOffer(PortId port) const;

    /** Register the response handler for a master slot. */
    void setResponseHandler(PortId port, ResponseHandler *handler);

    /** ResponseHandler: deliver a response back to its master. */
    void handleResponse(const MemResponse &resp) override;

    bool tick() override;

    /** Total beats granted. */
    std::uint64_t beatsGranted() const
    {
        return static_cast<std::uint64_t>(grants.value());
    }

    /** Fired when arbitration grants a request onto the bus. */
    probe::ProbePoint<MemRequest> &grantProbe() { return _grantProbe; }

    /**
     * Fired when a response is routed back to its master — the end of
     * the request's flight, whether it came from the memory controller
     * or as a denial from the check stage.
     */
    probe::ProbePoint<MemResponse> &respondProbe()
    {
        return _respondProbe;
    }

  private:
    struct MasterSlot
    {
        std::optional<MemRequest> pending;
        ResponseHandler *handler = nullptr;
    };

    /** Sentinel: no master currently owns a burst. */
    static constexpr unsigned noOwner = ~0u;

    void grantBeat(MasterSlot &slot);
    void resetBurst();

    TimingConsumer &downstream;
    std::vector<MasterSlot> masters;
    unsigned rrNext = 0;
    unsigned maxBurst;
    unsigned burstLeft = 0;
    unsigned burstOwner = noOwner;

    /** @{ Conservation bookkeeping: every offered beat is either still
     *  pending in its slot or has been granted downstream. */
    std::uint64_t offeredBeats = 0;
    std::uint64_t grantedBeats = 0;
    /** @} */

    stats::Scalar grants;
    stats::Scalar stallCycles;

    probe::ProbePoint<MemRequest> _grantProbe{"xbar.grant"};
    probe::ProbePoint<MemResponse> _respondProbe{"xbar.respond"};
};

} // namespace capcheck

#endif // CAPCHECK_MEM_INTERCONNECT_HH
