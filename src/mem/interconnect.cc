#include "mem/interconnect.hh"

#include "base/invariant.hh"
#include "base/logging.hh"
#include "obs/prof.hh"

namespace capcheck
{

AxiInterconnect::AxiInterconnect(EventQueue &eq,
                                 stats::StatGroup *parent_stats,
                                 unsigned num_masters,
                                 unsigned max_burst, std::string name)
    : TickingObject(eq, std::move(name), parent_stats,
                    Event::arbitratePrio),
      memSidePort(*this, "mem_side",
                  static_cast<ResponseHandler &>(*this)),
      masters(num_masters), maxBurst(max_burst ? max_burst : 1),
      grants(stats, "grants", "requests granted onto the bus"),
      stallCycles(stats, "stallCycles",
                  "cycles the winning request could not move downstream")
{
    if (num_masters == 0)
        fatal("AxiInterconnect needs at least one master");
    for (unsigned i = 0; i < num_masters; ++i) {
        masters[i].port = std::make_unique<ResponsePort>(
            *this, "accel_side" + std::to_string(i),
            [this, i](const MemRequest &req) { return offer(i, req); },
            [this, i] { return canOffer(i); });
    }
}

ResponsePort &
AxiInterconnect::accelSide(unsigned slot)
{
    return *masters.at(slot).port;
}

bool
AxiInterconnect::canOffer(unsigned slot) const
{
    return !masters.at(slot).pending.has_value();
}

bool
AxiInterconnect::offer(unsigned slot, const MemRequest &req)
{
    MasterSlot &ms = masters.at(slot);
    if (ms.pending)
        return false;
    ms.pending = req;
    portToSlot[req.srcPort] = slot;
    ++offeredBeats;
    _offerProbe.notify(req);
    activate(1);
    return true;
}

void
AxiInterconnect::handleResponse(const MemResponse &resp)
{
    const auto it = portToSlot.find(resp.srcPort);
    if (it == portToSlot.end())
        panic("xbar: response for source port %u that never offered "
              "a beat here",
              resp.srcPort);
    _respondProbe.notify(resp);
    masters.at(it->second).port->sendResponse(resp);
}

void
AxiInterconnect::grantBeat(MasterSlot &slot)
{
    ++grants;
    ++grantedBeats;
    _grantProbe.notify(*slot.pending);
    slot.pending.reset();
    // The slot is free again: wake the master in case it is waiting to
    // issue its next beat instead of polling every cycle. The reference
    // players poll (their handleRetry is a no-op), so this is free for
    // them; the "player.retry" fast kernel relies on it.
    slot.port->sendRetry();
}

void
AxiInterconnect::resetBurst()
{
    burstLeft = 0;
    burstOwner = noOwner;
}

bool
AxiInterconnect::tick()
{
    PROF_SCOPE("xbar", "arbitrate");
    // A burst can only continue while its owner still holds a
    // back-to-back beat. If the owner went idle (or the beat it was
    // stalled on was retracted), the leftover burst budget must not
    // survive: drop it and return the bus to round-robin, instead of
    // re-entering the burst path with a stale owner forever.
    if (burstLeft > 0) {
        INVARIANT(burstOwner < masters.size(),
                  "burst budget of %u beats with no valid owner",
                  burstLeft);
        if (!masters[burstOwner].pending)
            resetBurst();
    }

    if (burstLeft > 0) {
        // Burst-sticky arbitration: the owner keeps the bus while it
        // has back-to-back beats and burst budget left.
        MasterSlot &slot = masters[burstOwner];
        if (memSidePort.trySend(*slot.pending)) {
            grantBeat(slot);
            --burstLeft;
            if (burstLeft == 0)
                resetBurst();
        } else {
            ++stallCycles;
        }
    } else {
        // Round-robin: scan from rrNext for the first waiting master.
        for (unsigned i = 0; i < masters.size(); ++i) {
            const unsigned port = (rrNext + i) % masters.size();
            MasterSlot &slot = masters[port];
            if (!slot.pending)
                continue;
            if (memSidePort.trySend(*slot.pending)) {
                grantBeat(slot);
                rrNext = (port + 1) % masters.size();
                if (maxBurst > 1) {
                    burstOwner = port;
                    burstLeft = maxBurst - 1;
                }
            } else {
                ++stallCycles;
            }
            break; // one beat per cycle, granted or stalled
        }
    }

    // Keep ticking while any master still holds a request.
    unsigned still_pending = 0;
    for (const MasterSlot &slot : masters)
        still_pending += slot.pending.has_value();
    PARANOID_INVARIANT(
        offeredBeats == grantedBeats + still_pending,
        "slot/grant conservation: offered=%llu granted=%llu pending=%u",
        static_cast<unsigned long long>(offeredBeats),
        static_cast<unsigned long long>(grantedBeats), still_pending);
    PARANOID_INVARIANT(burstLeft < maxBurst,
                       "burst budget %u exceeds max burst %u", burstLeft,
                       maxBurst);
    return still_pending > 0;
}

} // namespace capcheck
