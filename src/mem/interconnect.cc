#include "mem/interconnect.hh"

#include "base/logging.hh"

namespace capcheck
{

AxiInterconnect::AxiInterconnect(EventQueue &eq,
                                 stats::StatGroup *parent_stats,
                                 unsigned num_masters,
                                 TimingConsumer &downstream,
                                 unsigned max_burst)
    : TickingObject(eq, "xbar", parent_stats, Event::arbitratePrio),
      downstream(downstream), masters(num_masters),
      maxBurst(max_burst ? max_burst : 1),
      grants(stats, "grants", "requests granted onto the bus"),
      stallCycles(stats, "stallCycles",
                  "cycles the winning request could not move downstream")
{
    if (num_masters == 0)
        fatal("AxiInterconnect needs at least one master");
}

bool
AxiInterconnect::canOffer(PortId port) const
{
    return !masters.at(port).pending.has_value();
}

bool
AxiInterconnect::offer(PortId port, const MemRequest &req)
{
    MasterSlot &slot = masters.at(port);
    if (slot.pending)
        return false;
    slot.pending = req;
    activate(1);
    return true;
}

void
AxiInterconnect::setResponseHandler(PortId port, ResponseHandler *handler)
{
    masters.at(port).handler = handler;
}

void
AxiInterconnect::handleResponse(const MemResponse &resp)
{
    MasterSlot &slot = masters.at(resp.srcPort);
    if (!slot.handler)
        panic("xbar: response for port %u with no handler", resp.srcPort);
    slot.handler->handleResponse(resp);
}

bool
AxiInterconnect::tick()
{
    // Burst-sticky arbitration: a master holding a burst keeps the bus
    // while it has back-to-back beats and burst budget left.
    if (burstLeft > 0 && masters[burstOwner].pending) {
        MasterSlot &slot = masters[burstOwner];
        if (downstream.tryAccept(*slot.pending)) {
            ++grants;
            --burstLeft;
            _grantProbe.notify(*slot.pending);
            slot.pending.reset();
        } else {
            ++stallCycles;
        }
    } else {
        burstLeft = 0;
        bool any_pending = false;
        // Round-robin: scan from rrNext for the first waiting master.
        for (unsigned i = 0; i < masters.size(); ++i) {
            const unsigned port = (rrNext + i) % masters.size();
            MasterSlot &slot = masters[port];
            if (!slot.pending)
                continue;
            any_pending = true;
            if (downstream.tryAccept(*slot.pending)) {
                ++grants;
                _grantProbe.notify(*slot.pending);
                slot.pending.reset();
                rrNext = (port + 1) % masters.size();
                if (maxBurst > 1) {
                    burstOwner = port;
                    burstLeft = maxBurst - 1;
                }
            } else {
                ++stallCycles;
            }
            break; // one beat per cycle, granted or stalled
        }
        if (!any_pending)
            return false;
    }
    // Keep ticking while any master still holds a request.
    for (const MasterSlot &slot : masters) {
        if (slot.pending)
            return true;
    }
    return false;
}

} // namespace capcheck
