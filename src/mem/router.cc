#include "mem/router.hh"

#include "base/logging.hh"

namespace capcheck
{

AddrRouter::AddrRouter(EventQueue &eq, stats::StatGroup *parent_stats,
                       unsigned num_channels,
                       std::uint64_t interleave_bytes, std::string name)
    : SimObject(eq, std::move(name), parent_stats),
      cpuSidePort(*this, "cpu_side",
                  static_cast<TimingConsumer &>(*this)),
      interleave(interleave_bytes ? interleave_bytes
                                  : defaultInterleave)
{
    if (num_channels == 0)
        fatal("AddrRouter needs at least one channel");
    for (unsigned i = 0; i < num_channels; ++i) {
        channels.push_back(std::make_unique<RequestPort>(
            *this, "mem_side" + std::to_string(i),
            static_cast<ResponseHandler &>(*this)));
        beatsPerChannel.push_back(std::make_unique<stats::Scalar>(
            stats, "beats" + std::to_string(i),
            "beats routed to channel " + std::to_string(i)));
    }
}

RequestPort &
AddrRouter::memSide(unsigned channel)
{
    return *channels.at(channel);
}

bool
AddrRouter::tryAccept(const MemRequest &req)
{
    const unsigned channel = channelFor(req.addr);
    if (!channels[channel]->trySend(req))
        return false;
    ++*beatsPerChannel[channel];
    return true;
}

void
AddrRouter::handleResponse(const MemResponse &resp)
{
    cpuSidePort.sendResponse(resp);
}

std::uint64_t
AddrRouter::routedBeats(unsigned channel) const
{
    return static_cast<std::uint64_t>(
        beatsPerChannel.at(channel)->value());
}

} // namespace capcheck
