/**
 * @file
 * First-fit region allocator over the shared heap. Used by the trusted
 * driver to allocate accelerator data buffers (the paper's buffers are
 * malloc()ed from shared memory). Alignment is chosen so the buffer's
 * CHERI capability is always exactly representable, and optional guard
 * space can be inserted between allocations (Section 5.2.3 discusses
 * guard regions as a Coarse-mode safeguard).
 */

#ifndef CAPCHECK_MEM_ALLOCATOR_HH
#define CAPCHECK_MEM_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <optional>

#include "base/types.hh"

namespace capcheck
{

class RegionAllocator
{
  public:
    /**
     * Manage [base, base + size).
     * @param guard_bytes pad inserted after every allocation.
     */
    RegionAllocator(Addr base, std::uint64_t size,
                    std::uint64_t guard_bytes = 0);

    /**
     * Allocate @p size bytes. Alignment defaults to the CHERI-exact
     * alignment for the size (never below 16 so buffers never share a
     * capability tag granule).
     * @return the address, or nullopt when no space is left.
     */
    std::optional<Addr> allocate(std::uint64_t size,
                                 std::uint64_t align = 0);

    /** Free a previous allocation by address. */
    void free(Addr addr);

    /** Size of the allocation at @p addr (0 when unknown). */
    std::uint64_t sizeOf(Addr addr) const;

    std::uint64_t bytesAllocated() const { return allocated; }
    std::uint64_t bytesTotal() const { return size; }
    std::size_t liveAllocations() const { return live.size(); }

  private:
    Addr base;
    std::uint64_t size;
    std::uint64_t guardBytes;
    std::uint64_t allocated = 0;

    /** Free spans, keyed by start address -> length. */
    std::map<Addr, std::uint64_t> freeSpans;
    /** Live allocations: address -> (user size, reserved span start/len). */
    struct Alloc
    {
        std::uint64_t userSize;
        Addr spanStart;
        std::uint64_t spanLen;
    };
    std::map<Addr, Alloc> live;

    void insertFree(Addr start, std::uint64_t len);
};

} // namespace capcheck

#endif // CAPCHECK_MEM_ALLOCATOR_HH
