#include "mem/allocator.hh"

#include <algorithm>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "cheri/compressed.hh"

namespace capcheck
{

RegionAllocator::RegionAllocator(Addr base, std::uint64_t size,
                                 std::uint64_t guard_bytes)
    : base(base), size(size), guardBytes(guard_bytes)
{
    if (size == 0)
        fatal("RegionAllocator: empty region");
    freeSpans[base] = size;
}

void
RegionAllocator::insertFree(Addr start, std::uint64_t len)
{
    if (len == 0)
        return;
    auto [it, inserted] = freeSpans.emplace(start, len);
    if (!inserted)
        panic("RegionAllocator: double free at 0x%llx",
              static_cast<unsigned long long>(start));

    // Coalesce with successor.
    auto next = std::next(it);
    if (next != freeSpans.end() && it->first + it->second == next->first) {
        it->second += next->second;
        freeSpans.erase(next);
    }
    // Coalesce with predecessor.
    if (it != freeSpans.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            freeSpans.erase(it);
        }
    }
}

std::optional<Addr>
RegionAllocator::allocate(std::uint64_t user_size, std::uint64_t align)
{
    if (user_size == 0)
        return std::nullopt;
    if (align == 0) {
        // Exact-capability alignment, but never share a tag granule.
        align = std::max<std::uint64_t>(
            cheri::ccRequiredAlignment(user_size), 16);
    }
    if (!isPowerOf2(align))
        fatal("RegionAllocator: alignment must be a power of two");

    for (auto it = freeSpans.begin(); it != freeSpans.end(); ++it) {
        const Addr span_start = it->first;
        const std::uint64_t span_len = it->second;
        const Addr aligned = roundUp(span_start, align);
        const std::uint64_t need =
            (aligned - span_start) + user_size + guardBytes;
        if (need > span_len)
            continue;

        freeSpans.erase(it);
        // Return the leading alignment slack to the free list.
        insertFree(span_start, aligned - span_start);
        const std::uint64_t reserved = user_size + guardBytes;
        insertFree(aligned + reserved, span_len -
                   (aligned - span_start) - reserved);

        live[aligned] = Alloc{user_size, aligned, reserved};
        allocated += user_size;
        return aligned;
    }
    return std::nullopt;
}

void
RegionAllocator::free(Addr addr)
{
    const auto it = live.find(addr);
    if (it == live.end())
        panic("RegionAllocator: freeing unknown address 0x%llx",
              static_cast<unsigned long long>(addr));
    allocated -= it->second.userSize;
    insertFree(it->second.spanStart, it->second.spanLen);
    live.erase(it);
}

std::uint64_t
RegionAllocator::sizeOf(Addr addr) const
{
    const auto it = live.find(addr);
    return it == live.end() ? 0 : it->second.userSize;
}

} // namespace capcheck
