#include "mem/mem_ctrl.hh"

#include "base/invariant.hh"
#include "base/logging.hh"
#include "obs/prof.hh"

namespace capcheck
{

MemoryController::MemoryController(EventQueue &eq,
                                   stats::StatGroup *parent_stats,
                                   Cycles latency, std::string name)
    : SimObject(eq, std::move(name), parent_stats),
      cpuSidePort(*this, "cpu_side",
                  static_cast<TimingConsumer &>(*this)),
      _latency(latency), respondEvent(*this),
      served(stats, "served", "requests served"),
      readBeats(stats, "readBeats", "read beats"),
      writeBeats(stats, "writeBeats", "write beats")
{
    if (latency == 0)
        fatal("MemoryController latency must be >= 1");
}

bool
MemoryController::tryAccept(const MemRequest &req)
{
    // One accept per cycle models the single DRAM channel.
    if (lastAcceptCycle == curCycle())
        return false;
    lastAcceptCycle = curCycle();

    ++served;
    if (req.cmd == MemCmd::read)
        ++readBeats;
    else
        ++writeBeats;
    _acceptProbe.notify(req);

    MemResponse resp;
    resp.id = req.id;
    resp.srcPort = req.srcPort;
    resp.ok = true;
    PARANOID_INVARIANT(pipeline.empty() ||
                           pipeline.back().due <= curCycle() + _latency,
                       "memory pipeline due times not monotonic");
    pipeline.push_back(Inflight{curCycle() + _latency, resp});
    if (!respondEvent.scheduled())
        eq.schedule(&respondEvent, pipeline.front().due);
    return true;
}

void
MemoryController::deliver()
{
    PROF_SCOPE("mem", "memctrl.deliver");
    while (!pipeline.empty() && pipeline.front().due <= curCycle()) {
        _respondProbe.notify(pipeline.front().resp);
        cpuSidePort.sendResponse(pipeline.front().resp);
        pipeline.pop_front();
    }
    if (!pipeline.empty())
        eq.schedule(&respondEvent, pipeline.front().due);
}

} // namespace capcheck
