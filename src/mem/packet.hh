/**
 * @file
 * Memory request/response types carried across the simulated AXI
 * interconnect, including the provenance metadata (task and object IDs)
 * that the CapChecker's Fine mode consumes.
 */

#ifndef CAPCHECK_MEM_PACKET_HH
#define CAPCHECK_MEM_PACKET_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace capcheck
{

/** Memory command. */
enum class MemCmd
{
    read,
    write,
};

const char *memCmdName(MemCmd cmd);

/**
 * A single beat on the interconnect. The paper's platform admits one
 * memory access per clock cycle, so requests are not split into bursts
 * here; @c size is the beat's byte count (<= 64).
 */
struct MemRequest
{
    MemCmd cmd = MemCmd::read;
    Addr addr = 0;
    std::uint32_t size = 0;

    /** Master port that issued the request (interconnect provenance). */
    PortId srcPort = 0;
    /** Accelerator task the request belongs to. */
    TaskId task = invalidTaskId;
    /**
     * Object the access intends to touch. In Fine mode this arrives as
     * hardware interface metadata; in Coarse mode it is recovered from
     * the top bits of the address.
     */
    ObjectId object = invalidObjectId;

    /** Unique id for response matching. */
    std::uint64_t id = 0;

    std::string toString() const;
};

/** Response delivered back to the issuing master. */
struct MemResponse
{
    std::uint64_t id = 0;
    PortId srcPort = 0;
    bool ok = true; ///< false when a protection check rejected the access
};

/**
 * Downstream interface: components that accept timed requests
 * (CapChecker, interconnect, memory controller).
 */
class TimingConsumer
{
  public:
    virtual ~TimingConsumer() = default;

    /**
     * Offer a request this cycle.
     * @return false when the consumer is busy; the caller retries later.
     */
    virtual bool tryAccept(const MemRequest &req) = 0;
};

/** Upstream interface: components that receive responses. */
class ResponseHandler
{
  public:
    virtual ~ResponseHandler() = default;

    virtual void handleResponse(const MemResponse &resp) = 0;

    /**
     * A downstream slot that refused (or may have refused) a request
     * earlier has freed up this cycle. Purely advisory — a master that
     * polls every cycle (the reference trace player) can ignore it; the
     * "player.retry" fast kernel sleeps between issues and uses this to
     * wake. Spurious calls must be harmless.
     */
    virtual void handleRetry() {}
};

} // namespace capcheck

#endif // CAPCHECK_MEM_PACKET_HH
