/**
 * @file
 * Address-interleaved channel router: a combinational demux that
 * forwards each request to one of N downstream memory channels by its
 * address, and merges the channels' responses back upstream. It adds
 * no cycles — the beat moves through in the same stack frame — so a
 * single-channel router is timing-identical to a straight wire, and a
 * multi-channel one models the bandwidth of parallel DRAM controllers
 * behind one check stage.
 */

#ifndef CAPCHECK_MEM_ROUTER_HH
#define CAPCHECK_MEM_ROUTER_HH

#include <memory>
#include <vector>

#include "base/stats.hh"
#include "mem/packet.hh"
#include "sim/clocked.hh"
#include "sim/port.hh"

namespace capcheck
{

class AddrRouter : public SimObject, public TimingConsumer,
                   public ResponseHandler
{
  public:
    /** Default interleave granule: one cache-line-sized beat. */
    static constexpr std::uint64_t defaultInterleave = 64;

    AddrRouter(EventQueue &eq, stats::StatGroup *parent_stats,
               unsigned num_channels,
               std::uint64_t interleave_bytes = defaultInterleave,
               std::string name = "router");

    /** Upstream-facing port; bind to a check stage or interconnect. */
    ResponsePort &cpuSide() { return cpuSidePort; }

    /** Downstream-facing port of channel @p channel ("mem_side<i>"). */
    RequestPort &memSide(unsigned channel);

    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels.size());
    }

    std::uint64_t interleaveBytes() const { return interleave; }

    /** Channel an address routes to (granule round-robin). */
    unsigned channelFor(Addr addr) const
    {
        return static_cast<unsigned>((addr / interleave) %
                                     channels.size());
    }

    /** TimingConsumer: demux the request to its channel, same cycle. */
    bool tryAccept(const MemRequest &req) override;

    /** ResponseHandler: merge channel responses back upstream. */
    void handleResponse(const MemResponse &resp) override;

    std::uint64_t routedBeats(unsigned channel) const;

  private:
    ResponsePort cpuSidePort;
    std::vector<std::unique_ptr<RequestPort>> channels;
    std::uint64_t interleave;
    std::vector<std::unique_ptr<stats::Scalar>> beatsPerChannel;
};

} // namespace capcheck

#endif // CAPCHECK_MEM_ROUTER_HH
