/**
 * @file
 * Byte-addressable shared main memory with CHERI capability tags: one
 * out-of-band tag bit per 16-byte granule (the "shadow section" of
 * Section 5.2.1). Tag discipline is enforced here rather than trusted to
 * callers: any data write clears the tags of every granule it touches;
 * only the dedicated capability-store path can set a tag, and only when
 * storing an aligned, valid capability.
 */

#ifndef CAPCHECK_MEM_TAGGED_MEMORY_HH
#define CAPCHECK_MEM_TAGGED_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/types.hh"
#include "cheri/capability.hh"

namespace capcheck
{

class TaggedMemory
{
  public:
    /** Bytes covered by one capability tag. */
    static constexpr std::uint64_t capGranule = 16;

    explicit TaggedMemory(std::uint64_t size_bytes);

    std::uint64_t size() const { return data.size(); }

    /** @{ Data access. Writes clear every overlapping granule tag.
     *  read() is inline: it sits on the trace-generation and CPU-model
     *  hot paths (tens of millions of calls per sweep), where the
     *  cross-TU call cost dominated the memcpy. */
    void write(Addr addr, const void *src, std::uint64_t len);

    void
    read(Addr addr, void *dst, std::uint64_t len) const
    {
        checkRange(addr, len);
        std::memcpy(dst, data.data() + addr, len);
    }

    /**
     * Tag-oblivious DMA write: data bytes change but existing granule
     * tags are left untouched. This models a naive accelerator
     * integration whose DMA path bypasses the tag discipline — the
     * enabling condition for the Fig. 2 capability-forging attack.
     * Only the CapChecker's interposed path uses tag-clearing writes.
     */
    void writeRawDma(Addr addr, const void *src, std::uint64_t len);

    template <typename T>
    void
    writeValue(Addr addr, T value)
    {
        write(addr, &value, sizeof(T));
    }

    template <typename T>
    T
    readValue(Addr addr) const
    {
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }
    /** @} */

    /**
     * Store a capability at a 16-byte aligned address. The granule tag
     * is set only if @p cap is tagged; storing an untagged capability
     * writes its bytes and clears the tag.
     */
    void writeCap(Addr addr, const cheri::Capability &cap);

    /**
     * Load a capability from a 16-byte aligned address. The result is
     * tagged only if the granule tag is set.
     */
    cheri::Capability readCap(Addr addr) const;

    /** Tag of the granule containing @p addr. */
    bool tagAt(Addr addr) const;

    /** Clear the tags of all granules overlapping [addr, addr+len). */
    void clearTags(Addr addr, std::uint64_t len);

    /** Count of set tags over the whole memory (for audits/tests). */
    std::uint64_t countTags() const;

    /** Zero a region (and clear its tags) — driver buffer scrubbing. */
    void scrub(Addr addr, std::uint64_t len);

    /**
     * Arm the DMA tag barrier: with a tag-clearing checker (the
     * CapChecker) interposed on the accelerator path, the raw
     * tag-preserving DMA path cannot exist in the modelled hardware.
     * Once armed, writeRawDma() is an invariant violation — the
     * machine-checked form of the paper's anti-forgery property that
     * no accelerator-originated write carries a valid capability tag
     * into memory.
     */
    void setDmaTagBarrier(bool armed) { dmaTagBarrier = armed; }
    bool dmaTagBarrierArmed() const { return dmaTagBarrier; }

  private:
    void
    checkRange(Addr addr, std::uint64_t len) const
    {
        if (addr + len > data.size() || addr + len < addr)
            rangeError(addr, len);
    }
    [[noreturn]] void rangeError(Addr addr, std::uint64_t len) const;

    std::vector<std::uint8_t> data;
    std::vector<bool> tags;
    bool dmaTagBarrier = false;
};

} // namespace capcheck

#endif // CAPCHECK_MEM_TAGGED_MEMORY_HH
