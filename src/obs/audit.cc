#include "obs/audit.hh"

#include <fstream>
#include <sstream>

#include "base/json.hh"
#include "base/logging.hh"
#include "mem/packet.hh"

namespace capcheck::obs
{

namespace
{

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

} // namespace

void
AuditLog::record(Cycles cycle, const capchecker::ExceptionRecord &rec,
                 capchecker::Provenance mode)
{
    // Hand-formatted: JsonWriter pretty-prints, but JSONL needs one
    // compact object per line.
    std::ostringstream os;
    os << "{\"cycle\":" << cycle << ",\"task\":" << rec.task
       << ",\"object\":" << rec.object << ",\"cmd\":\""
       << memCmdName(rec.cmd) << "\",\"addr\":\"" << hex(rec.addr)
       << "\",\"reason\":\"" << json::escape(rec.reason) << "\"";
    if (rec.capValid) {
        os << ",\"capBase\":\"" << hex(rec.capBase)
           << "\",\"capLength\":" << rec.capLength << ",\"capPerms\":\""
           << hex(rec.capPerms) << "\"";
    } else {
        os << ",\"capBase\":null,\"capLength\":null,\"capPerms\":null";
    }
    os << ",\"provenance\":\"" << capchecker::provenanceName(mode)
       << "\"}";
    lines.push_back(os.str());
}

void
AuditLog::write(std::ostream &os) const
{
    for (const std::string &line : lines)
        os << line << "\n";
}

bool
AuditLog::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("audit log: cannot open '%s' for writing", path.c_str());
        return false;
    }
    write(os);
    return os.good();
}

} // namespace capcheck::obs
