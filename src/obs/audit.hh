/**
 * @file
 * Security audit log: every CapChecker ExceptionRecord becomes one
 * line of JSONL (one compact JSON object per line), recording when
 * (simulated cycle), who (task), what (object, address, command), why
 * (reason, the matched capability's bounds and permissions) and under
 * which provenance mode the violation was caught. JSONL keeps the log
 * greppable and streamable into any log pipeline.
 */

#ifndef CAPCHECK_OBS_AUDIT_HH
#define CAPCHECK_OBS_AUDIT_HH

#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"
#include "capchecker/capchecker.hh"

namespace capcheck::obs
{

class AuditLog
{
  public:
    /** Append one record, stamped with simulated @p cycle. */
    void record(Cycles cycle, const capchecker::ExceptionRecord &rec,
                capchecker::Provenance mode);

    std::size_t size() const { return lines.size(); }

    /** The rendered JSONL lines, in record order (no newlines). */
    const std::vector<std::string> &records() const { return lines; }

    void write(std::ostream &os) const;

    /** write() into @p path. @return false on I/O failure (warns). */
    bool writeFile(const std::string &path) const;

  private:
    std::vector<std::string> lines;
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_AUDIT_HH
