#include "obs/prof.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "base/json.hh"

namespace capcheck::prof
{

namespace
{

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Process-global site registry; append-only, mutex-guarded. */
struct SiteRegistry {
    std::mutex mutex;
    std::vector<SiteInfo> sites;
    std::unordered_map<std::string, SiteId> byKey;
};

SiteRegistry &
registry()
{
    static SiteRegistry reg;
    return reg;
}

} // namespace

#ifndef CAPCHECK_PROF_OFF
namespace detail
{
thread_local RunProfile *tlsProfile = nullptr;
} // namespace detail
#endif

SiteId
registerSite(const std::string &domain, const std::string &name)
{
    SiteRegistry &reg = registry();
    const std::string key = domain + "\x1f" + name;
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.byKey.find(key);
    if (it != reg.byKey.end())
        return it->second;
    const SiteId id = static_cast<SiteId>(reg.sites.size());
    reg.sites.push_back(SiteInfo{domain, name});
    reg.byKey.emplace(key, id);
    return id;
}

std::vector<SiteInfo>
siteTable()
{
    SiteRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.sites;
}

void
RunProfile::ensureRoot()
{
    if (trie.empty())
        trie.push_back(TrieNode{});
}

std::uint32_t
RunProfile::trieChild(std::uint32_t parent, SiteId site)
{
    ensureRoot();
    for (const std::uint32_t child : trie[parent].children) {
        if (trie[child].site == site)
            return child;
    }
    const auto node = static_cast<std::uint32_t>(trie.size());
    TrieNode fresh;
    fresh.parent = parent;
    fresh.site = site;
    trie.push_back(std::move(fresh));
    trie[parent].children.push_back(node);
    return node;
}

void
RunProfile::enter(SiteId site)
{
    if (perSite.size() <= site)
        perSite.resize(site + 1);
    PerSite &totals = perSite[site];
    ++totals.calls;
    ++totals.active;
    const std::uint32_t parent = stack.empty() ? 0 : stack.back().node;
    Frame frame;
    frame.site = site;
    frame.node = trieChild(parent, site);
    frame.startNanos = nowNanos();
    stack.push_back(frame);
}

void
RunProfile::exit()
{
    const Frame frame = stack.back();
    stack.pop_back();
    const std::uint64_t now = nowNanos();
    const std::uint64_t elapsed =
        now >= frame.startNanos ? now - frame.startNanos : 0;
    const std::uint64_t self =
        elapsed >= frame.childNanos ? elapsed - frame.childNanos : 0;
    PerSite &totals = perSite[frame.site];
    totals.selfNanos += self;
    --totals.active;
    // Recursion guard: only outermost activations contribute to the
    // site total, so recursive scopes never exceed wall time.
    if (totals.active == 0)
        totals.totalNanos += elapsed;
    trie[frame.node].selfNanos += self;
    if (!stack.empty())
        stack.back().childNanos += elapsed;
}

void
RunProfile::merge(const RunProfile &other)
{
    wall += other.wall;
    for (SiteId site = 0; site < other.perSite.size(); ++site) {
        const PerSite &src = other.perSite[site];
        if (src.calls == 0)
            continue;
        if (perSite.size() <= site)
            perSite.resize(site + 1);
        perSite[site].selfNanos += src.selfNanos;
        perSite[site].totalNanos += src.totalNanos;
        perSite[site].calls += src.calls;
    }
    // Replay the other trie path by path so folded stacks merge too.
    if (other.trie.empty())
        return;
    ensureRoot();
    // Recursive lambda over (theirNode, ourNode).
    const auto walk = [&](const auto &self, std::uint32_t theirs,
                          std::uint32_t ours) -> void {
        for (const std::uint32_t child : other.trie[theirs].children) {
            const std::uint32_t mine =
                trieChild(ours, other.trie[child].site);
            trie[mine].selfNanos += other.trie[child].selfNanos;
            self(self, child, mine);
        }
    };
    walk(walk, 0, 0);
}

std::vector<RunProfile::SiteTotals>
RunProfile::siteTotals() const
{
    const std::vector<SiteInfo> infos = siteTable();
    std::vector<SiteTotals> out;
    for (SiteId site = 0; site < perSite.size(); ++site) {
        const PerSite &totals = perSite[site];
        if (totals.calls == 0)
            continue;
        SiteTotals row;
        row.site = site;
        if (site < infos.size()) {
            row.domain = infos[site].domain;
            row.name = infos[site].name;
        }
        row.selfNanos = totals.selfNanos;
        row.totalNanos = totals.totalNanos;
        row.calls = totals.calls;
        out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end(),
              [](const SiteTotals &a, const SiteTotals &b) {
                  if (a.domain != b.domain)
                      return a.domain < b.domain;
                  return a.name < b.name;
              });
    return out;
}

std::vector<RunProfile::DomainTotals>
RunProfile::domainTotals() const
{
    std::map<std::string, DomainTotals> byDomain;
    std::uint64_t selfSum = 0;
    for (const SiteTotals &row : siteTotals()) {
        DomainTotals &dom = byDomain[row.domain];
        dom.domain = row.domain;
        dom.selfNanos += row.selfNanos;
        dom.totalNanos += row.totalNanos;
        dom.calls += row.calls;
        selfSum += row.selfNanos;
    }
    std::vector<DomainTotals> out;
    for (auto &entry : byDomain)
        out.push_back(std::move(entry.second));
    // Close the books: "other" is the session time not inside any
    // scope, so domain self times sum to wallNanos exactly.
    DomainTotals other;
    other.domain = "other";
    other.selfNanos = wall >= selfSum ? wall - selfSum : 0;
    other.totalNanos = other.selfNanos;
    out.push_back(std::move(other));
    return out;
}

std::string
RunProfile::json(const std::string &label,
                 const std::string &kernel) const
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("capcheck.prof.v1");
    w.key("label").value(label);
    w.key("kernel").value(kernel);
    w.key("wallNanos").value(wall);
    w.key("domains").beginArray();
    for (const DomainTotals &dom : domainTotals()) {
        w.beginObject();
        w.key("domain").value(dom.domain);
        w.key("selfNanos").value(dom.selfNanos);
        w.key("totalNanos").value(dom.totalNanos);
        w.key("calls").value(dom.calls);
        const double share =
            wall > 0 ? static_cast<double>(dom.selfNanos) /
                           static_cast<double>(wall)
                     : 0.0;
        w.key("share").value(share);
        w.endObject();
    }
    w.endArray();
    w.key("sites").beginArray();
    for (const SiteTotals &row : siteTotals()) {
        w.beginObject();
        w.key("domain").value(row.domain);
        w.key("name").value(row.name);
        w.key("selfNanos").value(row.selfNanos);
        w.key("totalNanos").value(row.totalNanos);
        w.key("calls").value(row.calls);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

std::string
RunProfile::foldedText() const
{
    const std::vector<SiteInfo> infos = siteTable();
    const auto frameName = [&](SiteId site) -> std::string {
        if (site < infos.size())
            return infos[site].domain + "." + infos[site].name;
        return "site#" + std::to_string(site);
    };

    std::vector<std::string> lines;
    std::uint64_t selfSum = 0;
    if (!trie.empty()) {
        // Depth-first over the trie, carrying the folded prefix.
        std::vector<std::pair<std::uint32_t, std::string>> work;
        work.emplace_back(0, std::string());
        while (!work.empty()) {
            const auto [node, prefix] = work.back();
            work.pop_back();
            for (const std::uint32_t child : trie[node].children) {
                const std::string path =
                    prefix.empty()
                        ? frameName(trie[child].site)
                        : prefix + ";" + frameName(trie[child].site);
                if (trie[child].selfNanos > 0) {
                    lines.push_back(
                        path + " " +
                        std::to_string(trie[child].selfNanos));
                    selfSum += trie[child].selfNanos;
                }
                work.emplace_back(child, path);
            }
        }
    }
    std::sort(lines.begin(), lines.end());
    const std::uint64_t leftover = wall >= selfSum ? wall - selfSum : 0;
    if (leftover > 0)
        lines.push_back("other " + std::to_string(leftover));
    std::string out;
    for (const std::string &line : lines) {
        out += line;
        out += "\n";
    }
    return out;
}

ProfileSession::ProfileSession(RunProfile &profile)
    : prof(profile), prev(installCurrent(&profile)),
      startNanos(nowNanos())
{
}

ProfileSession::~ProfileSession()
{
    const std::uint64_t now = nowNanos();
    prof.addWallNanos(now >= startNanos ? now - startNanos : 0);
    installCurrent(prev);
}

} // namespace capcheck::prof
