/**
 * @file
 * Options selecting which observability outputs one simulation run
 * produces. All outputs are keyed by simulated cycle count, so they
 * are byte-identical regardless of host threading or wall-clock.
 */

#ifndef CAPCHECK_OBS_OPTIONS_HH
#define CAPCHECK_OBS_OPTIONS_HH

#include <string>

#include "base/types.hh"

namespace capcheck::obs
{

struct ObsOptions
{
    /** Chrome trace-event JSON timeline ("" = off). */
    std::string traceFile;

    /** Stats time-series JSON ("" = off; needs sampleInterval > 0). */
    std::string samplesFile;

    /** Cycles between StatGroup snapshots (0 = sampling off). */
    Cycles sampleInterval = 0;

    /** JSONL security audit log ("" = off). */
    std::string auditFile;

    bool
    any() const
    {
        return !traceFile.empty() || !auditFile.empty() ||
               (!samplesFile.empty() && sampleInterval > 0);
    }
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_OPTIONS_HH
