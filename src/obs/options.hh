/**
 * @file
 * Options selecting which observability outputs one simulation run
 * produces. All outputs are keyed by simulated cycle count, so they
 * are byte-identical regardless of host threading or wall-clock.
 */

#ifndef CAPCHECK_OBS_OPTIONS_HH
#define CAPCHECK_OBS_OPTIONS_HH

#include <string>

#include "base/types.hh"

namespace capcheck::obs
{

struct ObsOptions
{
    /** Chrome trace-event JSON timeline ("" = off). */
    std::string traceFile;

    /** Stats time-series JSON ("" = off; needs sampleInterval > 0). */
    std::string samplesFile;

    /** Cycles between StatGroup snapshots (0 = sampling off). */
    Cycles sampleInterval = 0;

    /** JSONL security audit log ("" = off). */
    std::string auditFile;

    /** Flight-recorder JSON: top-N slowest DMA requests with per-hop
     *  breakdowns plus flight totals ("" = off). */
    std::string flightFile;

    /** Latency-attribution JSON: per-hop and end-to-end log2
     *  histograms with p50/p95/p99, per-component cycle attribution
     *  and queue-occupancy stats ("" = off). */
    std::string latencyFile;

    /** Host-time profile JSON (run-<hash>.prof.json; "" = off).
     *  Unlike every other artefact, the profile measures *host*
     *  wall-clock, so it is excluded from any() and from the
     *  byte-identity contract — enabling it never changes simulated
     *  behaviour or the other artefacts. */
    std::string profileFile;

    /** Folded-stacks file for flamegraph tooling ("" = off). */
    std::string foldedFile;

    /** Slowest flights kept for the flight-recorder table. */
    unsigned topN = 10;

    /** Human-stable label for this run (e.g. the RunRequest label),
     *  embedded in flight/latency artefacts so tooling can key on it
     *  instead of on config hashes. */
    std::string runLabel;

    bool
    flightRecording() const
    {
        return !flightFile.empty() || !latencyFile.empty();
    }

    bool
    profiling() const
    {
        return !profileFile.empty() || !foldedFile.empty();
    }

    /** True when any *simulated-time* artefact is requested; the
     *  host-time profile deliberately does not count (it must not
     *  instantiate a RunObserver or perturb the simulation). */
    bool
    any() const
    {
        return !traceFile.empty() || !auditFile.empty() ||
               flightRecording() ||
               (!samplesFile.empty() && sampleInterval > 0);
    }
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_OPTIONS_HH
