#include "obs/chrome_trace.hh"

#include <fstream>

#include "base/json.hh"
#include "base/logging.hh"

namespace capcheck::obs
{

unsigned
ChromeTrace::addTrack(const std::string &name)
{
    tracks.push_back(name);
    return static_cast<unsigned>(tracks.size() - 1);
}

void
ChromeTrace::duration(unsigned track, const std::string &name,
                      const std::string &category, Cycles start,
                      Cycles dur, const std::string &args_json)
{
    events.push_back(
        Event{'X', track, start, dur, name, category, args_json});
}

void
ChromeTrace::instant(unsigned track, const std::string &name,
                     const std::string &category, Cycles ts,
                     const std::string &args_json)
{
    events.push_back(Event{'i', track, ts, 0, name, category, args_json});
}

void
ChromeTrace::counter(unsigned track, const std::string &name, Cycles ts,
                     const std::string &series_json)
{
    events.push_back(Event{'C', track, ts, 0, name, "", series_json});
}

void
ChromeTrace::write(std::ostream &os) const
{
    // The array-of-events form, one event per line: compact, diffable,
    // and loadable by both chrome://tracing and Perfetto. The viewers
    // interpret "ts"/"dur" as microseconds; we emit simulated cycles.
    os << "[\n";
    bool first = true;
    const auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << tid << ",\"args\":{\"name\":\""
           << json::escape(tracks[tid]) << "\"}}";
    }

    for (const Event &ev : events) {
        sep();
        os << "{\"name\":\"" << json::escape(ev.name) << "\",\"ph\":\""
           << ev.phase << "\"";
        if (!ev.category.empty())
            os << ",\"cat\":\"" << json::escape(ev.category) << "\"";
        os << ",\"pid\":1,\"tid\":" << ev.track << ",\"ts\":" << ev.ts;
        if (ev.phase == 'X')
            os << ",\"dur\":" << ev.dur;
        if (ev.phase == 'i')
            os << ",\"s\":\"t\"";
        if (!ev.args.empty())
            os << ",\"args\":" << ev.args;
        os << "}";
    }
    os << "\n]\n";
}

bool
ChromeTrace::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("chrome trace: cannot open '%s' for writing", path.c_str());
        return false;
    }
    write(os);
    return os.good();
}

} // namespace capcheck::obs
