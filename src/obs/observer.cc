#include "obs/observer.hh"

#include <fstream>
#include <sstream>

#include "accel/trace_player.hh"
#include "base/json.hh"
#include "base/stats.hh"
#include "capchecker/capchecker.hh"
#include "driver/driver.hh"
#include "mem/interconnect.hh"
#include "mem/mem_ctrl.hh"
#include "mem/packet.hh"
#include "protect/check_stage.hh"
#include "sim/eventq.hh"

namespace capcheck::obs
{

namespace
{

/** Sampling stride for the high-frequency beat/grant counters. */
constexpr std::uint64_t counterStride = 256;

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

} // namespace

RunObserver::RunObserver(const ObsOptions &opts, EventQueue &eq,
                         const stats::StatGroup &stat_root)
    : opts(opts), eq(eq)
{
    if (!opts.samplesFile.empty() && opts.sampleInterval > 0) {
        sampler =
            std::make_unique<StatsSampler>(stat_root, opts.sampleInterval);
        sampler->attach(eq);
    }
    if (opts.flightRecording())
        flights = std::make_unique<FlightRecorder>(eq, opts.topN,
                                                   opts.runLabel);
}

unsigned
RunObserver::track(const std::string &label)
{
    const auto it = trackIds.find(label);
    if (it != trackIds.end())
        return it->second;
    const unsigned id = chromeTrace.addTrack(label);
    trackIds.emplace(label, id);
    return id;
}

void
RunObserver::attachChecker(capchecker::CapChecker &checker,
                           const std::string &label)
{
    lastChecker = &checker;
    const capchecker::Provenance mode = checker.provenance();

    checker.exceptionProbe().attach(
        [this, label, mode](const capchecker::ExceptionRecord &rec) {
            if (auditing())
                auditLog.record(eq.curCycle(), rec, mode);
            if (tracing()) {
                std::ostringstream args;
                args << "{\"task\":" << rec.task
                     << ",\"object\":" << rec.object << ",\"addr\":\""
                     << hex(rec.addr) << "\",\"reason\":\""
                     << json::escape(rec.reason) << "\"}";
                chromeTrace.instant(track(label), "violation",
                                    "security", eq.curCycle(),
                                    args.str());
            }
        });

    if (recording()) {
        checker.cacheHitProbe().attach(
            [this](const capchecker::CapCacheEvent &) {
                flights->onCacheHit();
            });
        checker.cacheMissProbe().attach(
            [this](const capchecker::CapCacheEvent &) {
                flights->onCacheMiss();
            });
    }

    if (!tracing())
        return;

    checker.cacheHitProbe().attach(
        [this, label](const capchecker::CapCacheEvent &) {
            ++cacheHits;
            std::ostringstream series;
            series << "{\"hits\":" << cacheHits
                   << ",\"misses\":" << cacheMisses << "}";
            chromeTrace.counter(track(label), "capCache", eq.curCycle(),
                                series.str());
        });
    checker.cacheMissProbe().attach(
        [this, label](const capchecker::CapCacheEvent &) {
            ++cacheMisses;
            std::ostringstream series;
            series << "{\"hits\":" << cacheHits
                   << ",\"misses\":" << cacheMisses << "}";
            chromeTrace.counter(track(label), "capCache", eq.curCycle(),
                                series.str());
        });
    checker.evictProbe().attach(
        [this, label,
         &checker](const capchecker::CapEvictEvent &ev) {
            std::ostringstream series;
            series << "{\"entries\":" << checker.entriesUsed()
                   << ",\"freed\":" << ev.entriesFreed << "}";
            chromeTrace.counter(track(label), "capTable", eq.curCycle(),
                                series.str());
        });
}

void
RunObserver::attachCheckStage(protect::CheckStage &stage,
                              const std::string &label)
{
    if (recording())
        stage.timingProbe().attach(
            [this](const protect::CheckTimingEvent &ev) {
                flights->onCheck(*ev.req, ev.allowed, ev.start, ev.end);
            });
    if (!tracing())
        return;
    stage.timingProbe().attach(
        [this, label](const protect::CheckTimingEvent &ev) {
            std::ostringstream args;
            args << "{\"task\":" << ev.req->task << ",\"addr\":\""
                 << hex(ev.req->addr) << "\",\"allowed\":"
                 << (ev.allowed ? "true" : "false") << "}";
            const Cycles dur = ev.end > ev.start ? ev.end - ev.start : 1;
            chromeTrace.duration(track(label), "check", "check",
                                 ev.start, dur, args.str());
        });
}

void
RunObserver::attachMemory(MemoryController &mem)
{
    if (recording())
        mem.acceptProbe().attach([this](const MemRequest &req) {
            flights->onMemAccept(req);
        });
    if (!tracing())
        return;
    mem.respondProbe().attach([this](const MemResponse &) {
        ++memBeats;
        // Per-beat counter events would dominate the trace; sample
        // the cumulative count instead.
        if (memBeats == 1 || memBeats % counterStride == 0) {
            std::ostringstream series;
            series << "{\"beats\":" << memBeats << "}";
            chromeTrace.counter(track("Memory"), "memBeats",
                                eq.curCycle(), series.str());
        }
    });
}

void
RunObserver::attachXbar(AxiInterconnect &xbar)
{
    if (recording()) {
        xbar.offerProbe().attach([this](const MemRequest &req) {
            flights->onOffer(req);
        });
        xbar.grantProbe().attach([this](const MemRequest &req) {
            flights->onGrant(req);
        });
        xbar.respondProbe().attach([this](const MemResponse &resp) {
            flights->onRespond(resp);
        });
    }
    if (!tracing())
        return;
    xbar.grantProbe().attach([this](const MemRequest &) {
        ++xbarGrants;
        if (xbarGrants == 1 || xbarGrants % counterStride == 0) {
            std::ostringstream series;
            series << "{\"grants\":" << xbarGrants << "}";
            chromeTrace.counter(track("Memory"), "xbarGrants",
                                eq.curCycle(), series.str());
        }
    });
}

void
RunObserver::attachPlayer(accel::TracePlayer &player)
{
    if (recording())
        player.issueProbe().attach([this](const MemRequest &req) {
            flights->onIssue(req);
        });
    if (!tracing())
        return;
    // Reserve the track now so track order follows instance creation
    // order, not first-start order.
    player.startProbe().attach(
        [this](const accel::TaskLifecycleEvent &ev) {
            openTasks[ev.task] = OpenTask{track(*ev.name), ev.cycle};
        });
    player.finishProbe().attach(
        [this](const accel::TaskLifecycleEvent &ev) {
            const auto it = openTasks.find(ev.task);
            if (it == openTasks.end())
                return;
            std::ostringstream args;
            args << "{\"task\":" << ev.task << ",\"failed\":"
                 << (ev.failed ? "true" : "false") << "}";
            const Cycles start = it->second.start;
            const Cycles dur = ev.cycle > start ? ev.cycle - start : 1;
            chromeTrace.duration(it->second.track,
                                 "task " + std::to_string(ev.task),
                                 "task", start, dur, args.str());
            if (ev.failed)
                chromeTrace.instant(it->second.track, "abort",
                                    "security", ev.cycle,
                                    "{\"task\":" +
                                        std::to_string(ev.task) + "}");
            openTasks.erase(it);
        });
    track(player.name());
}

void
RunObserver::attachDriver(driver::Driver &drv)
{
    if (!tracing())
        return;
    drv.installProbe().attach(
        [this](const driver::CapInstallEvent &ev) {
            std::ostringstream args;
            args << "{\"task\":" << ev.task << ",\"object\":" << ev.object
                 << ",\"base\":\"" << hex(ev.base)
                 << "\",\"size\":" << ev.size << "}";
            chromeTrace.instant(track("Driver"), "capInstall", "driver",
                                eq.curCycle(), args.str());
            if (lastChecker) {
                std::ostringstream series;
                series << "{\"entries\":" << lastChecker->entriesUsed()
                       << ",\"freed\":0}";
                chromeTrace.counter(track("CapChecker"), "capTable",
                                    eq.curCycle(), series.str());
            }
        });
    drv.revokeProbe().attach([this](const driver::CapRevokeEvent &ev) {
        std::ostringstream args;
        args << "{\"task\":" << ev.task << ",\"buffers\":" << ev.buffers
             << ",\"hadException\":"
             << (ev.hadException ? "true" : "false") << "}";
        chromeTrace.instant(track("Driver"), "capRevoke", "driver",
                            eq.curCycle(), args.str());
    });
}

void
RunObserver::finalize(Cycles end_cycle)
{
    if (sampler) {
        sampler->finalize(end_cycle);
        sampler->writeFile(opts.samplesFile);
    }
    if (tracing())
        chromeTrace.writeFile(opts.traceFile);
    if (auditing())
        auditLog.writeFile(opts.auditFile);
    if (recording()) {
        if (!opts.flightFile.empty())
            flights->writeFlightsFile(opts.flightFile);
        if (!opts.latencyFile.empty())
            flights->writeLatencyFile(opts.latencyFile);
    }
}

void
RunObserver::writeEmptyOutputs(const ObsOptions &opts)
{
    if (!opts.traceFile.empty())
        ChromeTrace{}.writeFile(opts.traceFile);
    if (!opts.samplesFile.empty() && opts.sampleInterval > 0) {
        // A CPU-only run has no stat tree to sample; emit the shape
        // downstream tooling expects with an empty series.
        std::ofstream os(opts.samplesFile);
        if (os)
            os << "{\n  \"interval\": " << opts.sampleInterval
               << ",\n  \"samples\": []\n}\n";
    }
    if (!opts.auditFile.empty())
        std::ofstream{opts.auditFile};
    if (!opts.flightFile.empty())
        FlightRecorder::writeEmptyFlightsFile(opts.flightFile, opts.topN,
                                              opts.runLabel);
    if (!opts.latencyFile.empty())
        FlightRecorder::writeEmptyLatencyFile(opts.latencyFile,
                                              opts.runLabel);
}

} // namespace capcheck::obs
