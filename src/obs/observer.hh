/**
 * @file
 * RunObserver: the bridge between component probe points and the
 * observability sinks. One observer serves one simulation run; it
 * attaches listeners to the probes of whatever components the system
 * wires up, translates probe payloads into Chrome-trace events,
 * audit-log records and stat samples, and writes the configured
 * output files at finalize(). With no observer attached the probes
 * cost a single branch, so untraced runs are unchanged.
 *
 * Every timestamp comes from the simulated EventQueue, so all outputs
 * are byte-identical regardless of --jobs.
 */

#ifndef CAPCHECK_OBS_OBSERVER_HH
#define CAPCHECK_OBS_OBSERVER_HH

#include <map>
#include <memory>
#include <string>

#include "base/types.hh"
#include "obs/audit.hh"
#include "obs/chrome_trace.hh"
#include "obs/flight.hh"
#include "obs/options.hh"
#include "obs/sampler.hh"

namespace capcheck
{
class EventQueue;
class MemoryController;
class AxiInterconnect;
namespace stats
{
class StatGroup;
}
namespace capchecker
{
class CapChecker;
}
namespace protect
{
class CheckStage;
}
namespace accel
{
class TracePlayer;
}
namespace driver
{
class Driver;
}
} // namespace capcheck

namespace capcheck::obs
{

class RunObserver
{
  public:
    RunObserver(const ObsOptions &opts, EventQueue &eq,
                const stats::StatGroup &stat_root);

    RunObserver(const RunObserver &) = delete;
    RunObserver &operator=(const RunObserver &) = delete;

    /**
     * @{ Attach to a component's probe points. The observer must
     * outlive the component (the component's probe points hold the
     * listener closures, so they drop them first on teardown).
     * @p label names the component's trace track.
     */
    void attachChecker(capchecker::CapChecker &checker,
                       const std::string &label = "CapChecker");
    void attachCheckStage(protect::CheckStage &stage,
                          const std::string &label = "CapChecker");
    void attachMemory(MemoryController &mem);
    void attachXbar(AxiInterconnect &xbar);
    void attachPlayer(accel::TracePlayer &player);
    void attachDriver(driver::Driver &drv);
    /** @} */

    /**
     * Take the final stat sample at @p end_cycle and write every
     * configured output file. Must be called before the EventQueue
     * is destroyed (the sampler detaches from its cycle probe).
     */
    void finalize(Cycles end_cycle);

    const ChromeTrace &trace() const { return chromeTrace; }
    const AuditLog &audit() const { return auditLog; }

    /** The flight recorder, or nullptr when flight recording is off. */
    const FlightRecorder *flightRecorder() const { return flights.get(); }

    /**
     * Emit valid-but-empty outputs for runs that never build an
     * EventQueue (CPU-only configs), so downstream tooling can rely
     * on the files existing whenever observability was requested.
     */
    static void writeEmptyOutputs(const ObsOptions &opts);

  private:
    /** Track id for @p label, creating the track on first use. */
    unsigned track(const std::string &label);

    bool tracing() const { return !opts.traceFile.empty(); }
    bool auditing() const { return !opts.auditFile.empty(); }
    bool recording() const { return flights != nullptr; }

    ObsOptions opts;
    EventQueue &eq;

    ChromeTrace chromeTrace;
    std::unique_ptr<StatsSampler> sampler;
    AuditLog auditLog;
    std::unique_ptr<FlightRecorder> flights;

    std::map<std::string, unsigned> trackIds;

    /** Open task intervals: task id -> (track, start cycle). */
    struct OpenTask
    {
        unsigned track;
        Cycles start;
    };
    std::map<TaskId, OpenTask> openTasks;

    /** Most recently attached checker (for table-occupancy counters). */
    capchecker::CapChecker *lastChecker = nullptr;

    /** Cumulative counters behind the counter-track events. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t memBeats = 0;
    std::uint64_t xbarGrants = 0;
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_OBSERVER_HH
