/**
 * @file
 * Serving-layer metrics: a thread-safe registry of named counters,
 * gauges and histograms for the capcheckd daemon and its clients —
 * the RPC-layer sibling of the flight recorder's per-run stat trees.
 *
 * Counters are monotonic (requests admitted, bytes framed), gauges
 * are set/adjusted levels (queue depth, clients connected) and
 * histograms reuse stats::Histogram's log2 bucket geometry with
 * interpolated p50/p95/p99, so daemon-side latency spans are gated
 * with exactly the machinery the simulated-cycle latencies use.
 *
 * A MetricsSnapshot is a point-in-time copy of the whole registry in
 * registration order. It serializes deterministically: the JSON
 * encoding round-trips byte-identically (encode -> parse -> re-encode
 * yields the same bytes), which is what lets the extended "stats"
 * wire reply carry the registry without breaking the service layer's
 * byte-stability contracts. The same snapshot renders to Prometheus
 * text exposition format for --metrics-out scraping, and to a
 * capstat-compatible service-latency document so `capstat diff` can
 * gate daemon-side p95 like it gates simulated latencies.
 */

#ifndef CAPCHECK_OBS_METRICS_HH
#define CAPCHECK_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/stats.hh"

namespace capcheck::json
{
class JsonWriter;
class JsonValue;
} // namespace capcheck::json

namespace capcheck::obs
{

/** Prometheus exposition-format escaping for HELP text: backslash
 *  and newline become \\ and \n. */
std::string prometheusEscapeHelp(const std::string &s);

/** Prometheus exposition-format escaping for label values:
 *  backslash, double-quote and newline become \\, \" and \n. */
std::string prometheusEscapeLabel(const std::string &s);

/** Point-in-time copy of a MetricsRegistry, in registration order. */
struct MetricsSnapshot
{
    struct Counter
    {
        std::string name;
        std::string help;
        std::uint64_t value = 0;
    };

    struct Gauge
    {
        std::string name;
        std::string help;
        std::int64_t value = 0;
    };

    /** One non-empty log2 bucket (stats::Histogram geometry). */
    struct Bucket
    {
        std::uint32_t index = 0;
        std::uint64_t count = 0;
    };

    struct Histo
    {
        std::string name;
        std::string help;
        std::uint64_t samples = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        double p50 = 0;
        double p95 = 0;
        double p99 = 0;
        /** Sparse, ascending by index; empty buckets omitted. */
        std::vector<Bucket> buckets;

        double mean() const
        {
            return samples ? static_cast<double>(sum) /
                                 static_cast<double>(samples)
                           : 0;
        }
    };

    std::vector<Counter> counters;
    std::vector<Gauge> gauges;
    std::vector<Histo> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty();
    }

    /** @{ Lookup by registered name; nullptr / 0 when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histo *findHisto(const std::string &name) const;
    std::uint64_t counterValue(const std::string &name) const;
    std::int64_t gaugeValue(const std::string &name) const;
    /** @} */

    /** Write as a JSON object in value position. Deterministic, and
     *  byte-stable under parse -> fromJson -> writeJson. */
    void writeJson(json::JsonWriter &w) const;

    /** writeJson as a complete document. */
    std::string toJsonText() const;

    /** Parse what writeJson produced; nullopt + @p error on shape
     *  problems. */
    static std::optional<MetricsSnapshot>
    fromJson(const json::JsonValue &v, std::string *error = nullptr);

    /**
     * Prometheus text exposition: counters and gauges as single
     * samples, histograms with cumulative le-labelled buckets plus
     * _sum/_count. Metric names are prefixed "capcheck_" with dots
     * mapped to underscores. HELP text and label values are escaped
     * per the exposition format (prometheusEscapeHelp /
     * prometheusEscapeLabel). With non-empty @p info_labels, a
     * capcheck_info gauge carrying them as labels is emitted first —
     * the standard way to expose build/instance metadata, and the
     * one place arbitrary strings reach label-value position.
     */
    std::string prometheusText(
        const std::vector<std::pair<std::string, std::string>>
            &info_labels = {}) const;

    /**
     * A capstat-compatible service-latency document: one run labelled
     * @p label whose "flights" tree holds every histogram registered
     * under "span." (admit/queue/execute/render/stream/endToEnd) with
     * samples/sum/mean/min/max/p50/p95/p99 leaves — so
     * `capstat report` and `capstat diff` (default metrics
     * endToEnd.p50/p95/p99) consume daemon-side service latencies
     * exactly like simulated-cycle latency artefacts.
     */
    std::string serviceLatencyJson(const std::string &label) const;
};

/**
 * Thread-safe get-or-create registry. Instruments are created once
 * (by name) and returned by reference; the reference stays valid for
 * the registry's lifetime, so hot paths hold a reference and never
 * search. Counter/Gauge updates are lock-free atomics; histogram
 * observation takes a per-histogram mutex (stats::Histogram itself is
 * not thread-safe).
 */
class MetricsRegistry
{
  public:
    class Counter
    {
      public:
        void
        inc(std::uint64_t delta = 1)
        {
            val.fetch_add(delta, std::memory_order_relaxed);
        }

        std::uint64_t
        value() const
        {
            return val.load(std::memory_order_relaxed);
        }

      private:
        friend class MetricsRegistry;
        Counter(std::string n, std::string h)
            : name(std::move(n)), help(std::move(h))
        {
        }
        std::string name;
        std::string help;
        std::atomic<std::uint64_t> val{0};
    };

    class Gauge
    {
      public:
        void
        set(std::int64_t v)
        {
            val.store(v, std::memory_order_relaxed);
        }

        void
        add(std::int64_t delta)
        {
            val.fetch_add(delta, std::memory_order_relaxed);
        }

        void
        sub(std::int64_t delta)
        {
            val.fetch_sub(delta, std::memory_order_relaxed);
        }

        std::int64_t
        value() const
        {
            return val.load(std::memory_order_relaxed);
        }

      private:
        friend class MetricsRegistry;
        Gauge(std::string n, std::string h)
            : name(std::move(n)), help(std::move(h))
        {
        }
        std::string name;
        std::string help;
        std::atomic<std::int64_t> val{0};
    };

    class Histo
    {
      public:
        void
        observe(std::uint64_t v)
        {
            std::scoped_lock lock(mtx);
            hist.sample(v);
        }

        MetricsSnapshot::Histo snapshot() const;

      private:
        friend class MetricsRegistry;
        Histo(stats::StatGroup &group, std::string n, std::string h)
            : name(n), help(std::move(h)),
              hist(group, std::move(n), name)
        {
        }
        std::string name;
        std::string help;
        mutable std::mutex mtx;
        stats::Histogram hist;
    };

    MetricsRegistry() : histRoot("metrics") {}

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** @{ Get-or-create by name (the help of the first caller
     *  sticks). The returned reference never moves. */
    Counter &counter(const std::string &name,
                     const std::string &help = std::string());
    Gauge &gauge(const std::string &name,
                 const std::string &help = std::string());
    Histo &histogram(const std::string &name,
                     const std::string &help = std::string());
    /** @} */

    /** Copy every instrument, in registration order per kind. */
    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mtx; ///< guards the vectors, not the values
    stats::StatGroup histRoot;
    std::vector<std::unique_ptr<Counter>> counters;
    std::vector<std::unique_ptr<Gauge>> gauges;
    std::vector<std::unique_ptr<Histo>> histograms;
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_METRICS_HH
