#include "obs/sampler.hh"

#include <fstream>
#include <sstream>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "sim/eventq.hh"

namespace capcheck::obs
{

StatsSampler::StatsSampler(const stats::StatGroup &root, Cycles interval)
    : root(root), interval(interval), nextSample(interval)
{
    if (interval == 0)
        fatal("stats sampler: interval must be > 0");
}

StatsSampler::~StatsSampler()
{
    if (attachedTo)
        attachedTo->cycleProbe().detach(listener);
}

void
StatsSampler::attach(EventQueue &eq)
{
    if (attachedTo)
        fatal("stats sampler: already attached");
    attachedTo = &eq;
    listener = eq.cycleProbe().attach(
        [this](const Cycles &cycle) { onCycle(cycle); });
}

void
StatsSampler::onCycle(Cycles cycle)
{
    // Simulated time can jump multiple intervals in one event; take a
    // single snapshot labelled with the cycle actually reached.
    if (cycle < nextSample)
        return;
    sampleNow(cycle);
    nextSample = (cycle / interval + 1) * interval;
}

void
StatsSampler::sampleNow(Cycles cycle)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    root.dumpJson(w);
    samples.push_back(Sample{cycle, os.str()});
}

void
StatsSampler::finalize(Cycles end_cycle)
{
    if (samples.empty() || samples.back().cycle != end_cycle)
        sampleNow(end_cycle);
    if (attachedTo) {
        attachedTo->cycleProbe().detach(listener);
        attachedTo = nullptr;
        listener = probe::invalidListener;
    }
}

void
StatsSampler::write(std::ostream &os) const
{
    json::JsonWriter w(os);
    w.beginObject();
    w.key("interval").value(std::uint64_t{interval});
    w.key("samples").beginArray();
    for (const Sample &sample : samples) {
        w.beginObject();
        w.key("cycle").value(std::uint64_t{sample.cycle});
        w.key("stats").rawValue(sample.statsJson);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

bool
StatsSampler::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("stats sampler: cannot open '%s' for writing",
             path.c_str());
        return false;
    }
    write(os);
    return os.good();
}

} // namespace capcheck::obs
