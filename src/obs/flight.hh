/**
 * @file
 * Request flight recorder: every DMA beat gets a flight ID when its
 * accelerator issues it, per-hop timestamps are recorded as it
 * traverses xbar arbitration -> check stage (cache hit / miss walk) ->
 * memory controller -> response, and the hops are aggregated into
 * log2-bucketed latency histograms (p50/p95/p99), per-component cycle
 * attribution, queue-occupancy stats and a bounded table of the
 * slowest flights. The per-hop attribution of every completed flight
 * must sum exactly to its end-to-end latency — enforced by an
 * INVARIANT, so a missed or re-ordered probe aborts loudly instead of
 * producing subtly wrong cost breakdowns.
 *
 * All timestamps come from the simulated EventQueue, so both artefact
 * files (flights JSON, latency JSON) are byte-identical at any --jobs.
 */

#ifndef CAPCHECK_OBS_FLIGHT_HH
#define CAPCHECK_OBS_FLIGHT_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "mem/packet.hh"

namespace capcheck
{
class EventQueue;
}

namespace capcheck::obs
{

/** One DMA request's per-hop timeline, keyed by (srcPort, id). */
struct FlightRecord
{
    /** Issue-order flight ID (deterministic: one event queue). */
    std::uint64_t flight = 0;

    TaskId task = invalidTaskId;
    PortId port = 0;
    std::uint64_t reqId = 0;
    MemCmd cmd = MemCmd::read;
    Addr addr = 0;
    std::uint32_t size = 0;

    /** @{ Hop timestamps (simulated cycles). */
    Cycles issue = 0;      ///< left the accelerator into its xbar slot
    Cycles grant = 0;      ///< won the *last* arbitration it entered
    Cycles checkStart = 0; ///< accepted by the check stage
    Cycles checkEnd = 0;   ///< check verdict due (incl. miss walk)
    Cycles memAccept = 0;  ///< entered the memory controller
    Cycles respond = 0;    ///< response delivered back to the master
    /** @} */

    /** One crossbar traversal: slot entry (offer) to arbitration win. */
    struct XbarHop
    {
        Cycles offer = 0;
        Cycles grant = 0;
        bool granted = false;
    };

    /**
     * Per-level arbitration hops in path order, one per crossbar the
     * beat crossed. Cascaded trees push several; the flat paper shape
     * exactly one, keeping its artefacts byte-identical.
     */
    std::vector<XbarHop> xbarHops;

    bool sawGrant = false;
    bool sawCheck = false;
    bool sawMem = false;
    /** Counted in the check-stage occupancy gauge (bookkeeping). */
    bool inCheckQueue = false;

    bool denied = false;

    enum class CacheOutcome : std::uint8_t
    {
        none, ///< no capability cache in the path
        hit,
        miss,
    };
    CacheOutcome cache = CacheOutcome::none;

    /** @{ Per-hop cycle attribution of a completed flight. The hops
     *  partition the issue->respond timeline exactly, at any tree
     *  depth: pre-check offers chain contiguously from the issue
     *  (each level's offer lands in the previous level's grant frame),
     *  the check window is explicit, drain runs from the verdict to
     *  the next observed boundary (the first post-check crossbar
     *  offer, else memory acceptance / the response), and every
     *  in-crossbar wait is an (offer, grant) pair. */
    Cycles hopXbar() const
    {
        if (xbarHops.empty())
            return grant - issue;
        Cycles total = 0;
        for (const XbarHop &hop : xbarHops)
            total += hop.grant - hop.offer;
        return total;
    }
    Cycles hopCheck() const { return checkEnd - checkStart; }
    Cycles hopDrain() const
    {
        Cycles next = (denied || !sawMem) ? respond : memAccept;
        for (const XbarHop &hop : xbarHops) {
            if (hop.offer >= checkEnd) {
                next = hop.offer;
                break;
            }
        }
        return next - checkEnd;
    }
    Cycles hopMem() const { return sawMem ? respond - memAccept : 0; }
    Cycles endToEnd() const { return respond - issue; }
    /** @} */
};

class FlightRecorder
{
  public:
    /**
     * @param eq the simulation clock all timestamps come from.
     * @param top_n slowest flights kept for the flight table.
     * @param run_label label embedded in both artefacts.
     */
    FlightRecorder(EventQueue &eq, unsigned top_n,
                   std::string run_label);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** @{ Probe entry points, called by RunObserver listeners. */
    void onIssue(const MemRequest &req);
    void onOffer(const MemRequest &req);
    void onGrant(const MemRequest &req);
    void onCheck(const MemRequest &req, bool allowed, Cycles start,
                 Cycles end);
    void onCacheHit();
    void onCacheMiss();
    void onMemAccept(const MemRequest &req);
    void onRespond(const MemResponse &resp);
    /** @} */

    /** @{ Artefact writers (deterministic byte-for-byte). */
    void writeFlightsFile(const std::string &path) const;
    void writeLatencyFile(const std::string &path) const;
    /** @} */

    /** @{ Valid-but-empty artefacts for runs with no timed platform. */
    static void writeEmptyFlightsFile(const std::string &path,
                                      unsigned top_n,
                                      const std::string &run_label);
    static void writeEmptyLatencyFile(const std::string &path,
                                      const std::string &run_label);
    /** @} */

    /** The aggregate stat tree (root group "flights"). */
    const stats::StatGroup &statsRoot() const { return root; }

    std::uint64_t issuedFlights() const
    {
        return static_cast<std::uint64_t>(issued.value());
    }
    std::uint64_t completedFlights() const
    {
        return static_cast<std::uint64_t>(completed.value());
    }

    /** Completed slowest flights, slowest first (<= topN entries). */
    std::vector<FlightRecord> slowestFlights() const;

  private:
    using Key = std::pair<PortId, std::uint64_t>;

    void complete(FlightRecord &rec);

    EventQueue &eq;
    unsigned topN;
    std::string runLabel;

    std::uint64_t nextFlight = 0;
    std::map<Key, FlightRecord> open;

    /** Outcome of the capability-cache access inside the current
     *  synchronous check, consumed by the next onCheck(). */
    FlightRecord::CacheOutcome pendingCache =
        FlightRecord::CacheOutcome::none;

    /** @{ Live queue depths (occupancy sampled on every entry). */
    unsigned xbarWaiting = 0;
    unsigned checkOccupied = 0;
    /** @} */

    /** Unsorted pool of the slowest flights seen so far. */
    std::vector<FlightRecord> slowest;

    stats::StatGroup root{"flights"};
    stats::Scalar issued{root, "issued", "DMA flights issued"};
    stats::Scalar completed{root, "completed",
                            "flights with a delivered response"};
    stats::Scalar denied{root, "denied",
                         "flights denied by the protection check"};
    stats::Scalar cacheHits{root, "cacheHits",
                            "flights served by a cap-cache hit"};
    stats::Scalar cacheMisses{root, "cacheMisses",
                              "flights that walked the in-memory "
                              "capability table"};
    stats::Histogram endToEnd{root, "endToEnd",
                              "issue-to-response latency (cycles)"};

    stats::StatGroup hopsGroup{"hops", &root};
    stats::Histogram hopXbar{hopsGroup, "xbarWait",
                             "cycles waiting for xbar arbitration"};
    stats::Histogram hopCheck{hopsGroup, "check",
                              "cycles in the check stage (incl. "
                              "cap-cache miss walks)"};
    stats::Histogram hopDrain{hopsGroup, "drain",
                              "cycles between check verdict and "
                              "leaving the stage"};
    stats::Histogram hopMem{hopsGroup, "mem",
                            "cycles in the memory controller"};

    stats::StatGroup attributionGroup{"attribution", &root};
    stats::Scalar cyclesXbar{attributionGroup, "xbarWaitCycles",
                             "total cycles attributed to arbitration"};
    stats::Scalar cyclesCheck{attributionGroup, "checkCycles",
                              "total cycles attributed to checking"};
    stats::Scalar cyclesDrain{attributionGroup, "drainCycles",
                              "total cycles attributed to post-check "
                              "draining"};
    stats::Scalar cyclesMem{attributionGroup, "memCycles",
                            "total cycles attributed to memory"};
    stats::Scalar cyclesTotal{attributionGroup, "endToEndCycles",
                              "total end-to-end cycles (equals the "
                              "sum of the four hop totals)"};

    stats::StatGroup queueGroup{"queues", &root};
    stats::Histogram xbarOccupancy{queueGroup, "xbarOccupancy",
                                   "waiting requests across xbar "
                                   "master slots at each issue"};
    stats::Histogram checkOccupancy{queueGroup, "checkOccupancy",
                                    "requests inside the check stage "
                                    "at each acceptance"};
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_FLIGHT_HH
