/**
 * @file
 * Per-request server-side lifecycle spans for capcheckd — the RPC
 * analogue of the flight recorder's per-hop attribution. Every
 * admitted request gets six monotone timestamps on one steady clock
 * (received -> admitted -> dequeued -> executed -> rendered ->
 * streamed); the five segments between them are defined as adjacent
 * differences, so by construction they telescope: the INVARIANT in
 * checkInvariant() enforces stamp monotonicity and that the segment
 * sum equals end-to-end service time exactly, the same conservation
 * law FlightRecorder enforces on simulated hops.
 *
 * Spans are keyed by a traceId: client-generated when the submit
 * frame carries one, otherwise synthesized by the daemon; the
 * per-request id appends "#<index>" so one batch trace fans out into
 * addressable request traces.
 *
 * ServerLog is the structured JSONL sink (--log-json): one event
 * object per admission, rejection, completion and slow request, each
 * carrying the traceId so log lines join against client-side
 * artefacts.
 */

#ifndef CAPCHECK_OBS_SPAN_HH
#define CAPCHECK_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

namespace capcheck::obs
{

/** Monotonic nanosecond clock anchored at construction. */
class SpanClock
{
  public:
    SpanClock() : epoch(std::chrono::steady_clock::now()) {}

    std::int64_t
    nowNanos() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - epoch)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point epoch;
};

/** One request's lifecycle stamps, in SpanClock nanoseconds. */
struct RequestSpan
{
    std::string traceId;
    std::uint64_t batch = 0;
    std::uint64_t index = 0;
    /** Request content hash, 16 hex digits. */
    std::string hash;
    /** "executed" / "cached" / "failed". */
    std::string status;

    /** @{ Stage timestamps. Cache hits and coalesced waiters stamp
     *  dequeued == executed at answer time, so their queue segment
     *  absorbs the wait and every segment stays non-negative. */
    std::int64_t received = 0;
    std::int64_t admitted = 0;
    std::int64_t dequeued = 0;
    std::int64_t executed = 0;
    std::int64_t rendered = 0;
    std::int64_t streamed = 0;
    /** @} */

    /** @{ Segment attribution: adjacent stamp differences. */
    std::int64_t admitNanos() const { return admitted - received; }
    std::int64_t queueNanos() const { return dequeued - admitted; }
    std::int64_t executeNanos() const { return executed - dequeued; }
    std::int64_t renderNanos() const { return rendered - executed; }
    std::int64_t streamNanos() const { return streamed - rendered; }
    std::int64_t endToEndNanos() const { return streamed - received; }
    /** @} */

    /**
     * INVARIANT: stamps are monotone non-decreasing and the five
     * segments sum exactly to end-to-end service time. Called on
     * every completed span, in every build.
     */
    void checkInvariant() const;
};

/**
 * Structured JSONL server log. Thread-safe; each call appends one
 * single-line JSON object with a wall-clock millisecond timestamp
 * ("tMillis"), an "event" discriminator and the traceId.
 */
class ServerLog
{
  public:
    explicit ServerLog(const std::string &path);

    /** False when the log file could not be opened. */
    bool ok() const { return isOpen; }

    void admit(std::uint64_t client, std::uint64_t batch,
               const std::string &trace_id, std::uint64_t requests,
               std::uint64_t fresh, std::uint64_t cached,
               std::uint64_t coalesced);

    void reject(std::uint64_t client, std::uint64_t batch,
                const std::string &trace_id, const std::string &code,
                const std::string &reason, std::uint64_t requests);

    void complete(const RequestSpan &span);

    /** A completion whose end-to-end time crossed the slow-request
     *  threshold; logged in addition to the complete event. */
    void slow(const RequestSpan &span, std::uint64_t threshold_millis);

  private:
    std::int64_t wallMillis() const;
    void writeLine(const std::string &line);

    std::mutex mtx;
    std::ofstream os;
    bool isOpen = false;
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_SPAN_HH
