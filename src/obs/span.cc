#include "obs/span.hh"

#include <sstream>

#include "base/invariant.hh"
#include "base/json.hh"

namespace capcheck::obs
{

void
RequestSpan::checkInvariant() const
{
    INVARIANT(received <= admitted && admitted <= dequeued &&
                  dequeued <= executed && executed <= rendered &&
                  rendered <= streamed,
              "span %s: stage timestamps not monotone "
              "(%lld/%lld/%lld/%lld/%lld/%lld)",
              traceId.c_str(), static_cast<long long>(received),
              static_cast<long long>(admitted),
              static_cast<long long>(dequeued),
              static_cast<long long>(executed),
              static_cast<long long>(rendered),
              static_cast<long long>(streamed));
    const std::int64_t sum = admitNanos() + queueNanos() +
                             executeNanos() + renderNanos() +
                             streamNanos();
    INVARIANT(sum == endToEndNanos(),
              "span %s: segments sum to %lld ns but end-to-end is "
              "%lld ns",
              traceId.c_str(), static_cast<long long>(sum),
              static_cast<long long>(endToEndNanos()));
}

ServerLog::ServerLog(const std::string &path)
    : os(path, std::ios::app)
{
    isOpen = static_cast<bool>(os);
}

std::int64_t
ServerLog::wallMillis() const
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

void
ServerLog::writeLine(const std::string &line)
{
    std::scoped_lock lock(mtx);
    if (!isOpen)
        return;
    os << line << "\n";
    os.flush();
}

// Hand-formatted: JsonWriter pretty-prints, but JSONL needs one
// compact object per line (same convention as AuditLog).

void
ServerLog::admit(std::uint64_t client, std::uint64_t batch,
                 const std::string &trace_id, std::uint64_t requests,
                 std::uint64_t fresh, std::uint64_t cached,
                 std::uint64_t coalesced)
{
    std::ostringstream ss;
    ss << "{\"event\":\"admit\",\"tMillis\":" << wallMillis()
       << ",\"client\":" << client << ",\"batch\":" << batch
       << ",\"traceId\":\"" << json::escape(trace_id)
       << "\",\"requests\":" << requests << ",\"fresh\":" << fresh
       << ",\"cached\":" << cached << ",\"coalesced\":" << coalesced
       << "}";
    writeLine(ss.str());
}

void
ServerLog::reject(std::uint64_t client, std::uint64_t batch,
                  const std::string &trace_id, const std::string &code,
                  const std::string &reason, std::uint64_t requests)
{
    std::ostringstream ss;
    ss << "{\"event\":\"reject\",\"tMillis\":" << wallMillis()
       << ",\"client\":" << client << ",\"batch\":" << batch
       << ",\"traceId\":\"" << json::escape(trace_id)
       << "\",\"code\":\"" << json::escape(code) << "\",\"reason\":\""
       << json::escape(reason) << "\",\"requests\":" << requests
       << "}";
    writeLine(ss.str());
}

void
ServerLog::complete(const RequestSpan &span)
{
    std::ostringstream ss;
    ss << "{\"event\":\"complete\",\"tMillis\":" << wallMillis()
       << ",\"traceId\":\"" << json::escape(span.traceId)
       << "\",\"batch\":" << span.batch
       << ",\"index\":" << span.index << ",\"hash\":\"" << span.hash
       << "\",\"status\":\"" << span.status
       << "\",\"admitNanos\":" << span.admitNanos()
       << ",\"queueNanos\":" << span.queueNanos()
       << ",\"executeNanos\":" << span.executeNanos()
       << ",\"renderNanos\":" << span.renderNanos()
       << ",\"streamNanos\":" << span.streamNanos()
       << ",\"endToEndNanos\":" << span.endToEndNanos() << "}";
    writeLine(ss.str());
}

void
ServerLog::slow(const RequestSpan &span,
                std::uint64_t threshold_millis)
{
    std::ostringstream ss;
    ss << "{\"event\":\"slow\",\"tMillis\":" << wallMillis()
       << ",\"traceId\":\"" << json::escape(span.traceId)
       << "\",\"batch\":" << span.batch
       << ",\"index\":" << span.index << ",\"hash\":\"" << span.hash
       << "\",\"status\":\"" << span.status
       << "\",\"endToEndNanos\":" << span.endToEndNanos()
       << ",\"thresholdMillis\":" << threshold_millis << "}";
    writeLine(ss.str());
}

} // namespace capcheck::obs
