#include "obs/metrics.hh"

#include <cstring>
#include <sstream>

#include "base/json.hh"
#include "base/json_value.hh"

namespace capcheck::obs
{

namespace
{

/** "requests.cacheHitsMem" -> "capcheck_requests_cacheHitsMem". */
std::string
prometheusName(const std::string &name)
{
    std::string out = "capcheck_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    return out;
}

std::uint64_t
u64Member(const json::JsonValue &v, const char *key)
{
    const json::JsonValue *f = v.get(key);
    return f && f->isNumber()
               ? static_cast<std::uint64_t>(f->asNumber())
               : 0;
}

double
dblMember(const json::JsonValue &v, const char *key)
{
    const json::JsonValue *f = v.get(key);
    return f && f->isNumber() ? f->asNumber() : 0;
}

std::string
strMember(const json::JsonValue &v, const char *key)
{
    const json::JsonValue *f = v.get(key);
    return f && f->isString() ? f->asString() : std::string();
}

void
writeHistoLeaf(json::JsonWriter &w, const MetricsSnapshot::Histo &h)
{
    w.beginObject();
    w.key("samples").value(std::uint64_t{h.samples});
    w.key("sum").value(std::uint64_t{h.sum});
    w.key("mean").value(h.mean());
    w.key("min").value(std::uint64_t{h.min});
    w.key("max").value(std::uint64_t{h.max});
    w.key("p50").value(h.p50);
    w.key("p95").value(h.p95);
    w.key("p99").value(h.p99);
    w.endObject();
}

} // namespace

const MetricsSnapshot::Counter *
MetricsSnapshot::findCounter(const std::string &name) const
{
    for (const Counter &c : counters) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

const MetricsSnapshot::Gauge *
MetricsSnapshot::findGauge(const std::string &name) const
{
    for (const Gauge &g : gauges) {
        if (g.name == name)
            return &g;
    }
    return nullptr;
}

const MetricsSnapshot::Histo *
MetricsSnapshot::findHisto(const std::string &name) const
{
    for (const Histo &h : histograms) {
        if (h.name == name)
            return &h;
    }
    return nullptr;
}

std::uint64_t
MetricsSnapshot::counterValue(const std::string &name) const
{
    const Counter *c = findCounter(name);
    return c ? c->value : 0;
}

std::int64_t
MetricsSnapshot::gaugeValue(const std::string &name) const
{
    const Gauge *g = findGauge(name);
    return g ? g->value : 0;
}

void
MetricsSnapshot::writeJson(json::JsonWriter &w) const
{
    w.beginObject();
    w.key("counters").beginArray();
    for (const Counter &c : counters) {
        w.beginObject();
        w.key("name").value(c.name);
        w.key("help").value(c.help);
        w.key("value").value(std::uint64_t{c.value});
        w.endObject();
    }
    w.endArray();
    w.key("gauges").beginArray();
    for (const Gauge &g : gauges) {
        w.beginObject();
        w.key("name").value(g.name);
        w.key("help").value(g.help);
        w.key("value").value(std::int64_t{g.value});
        w.endObject();
    }
    w.endArray();
    w.key("histograms").beginArray();
    for (const Histo &h : histograms) {
        w.beginObject();
        w.key("name").value(h.name);
        w.key("help").value(h.help);
        w.key("samples").value(std::uint64_t{h.samples});
        w.key("sum").value(std::uint64_t{h.sum});
        w.key("min").value(std::uint64_t{h.min});
        w.key("max").value(std::uint64_t{h.max});
        w.key("p50").value(h.p50);
        w.key("p95").value(h.p95);
        w.key("p99").value(h.p99);
        w.key("buckets").beginArray();
        for (const Bucket &b : h.buckets) {
            w.beginObject();
            w.key("bucket").value(std::uint64_t{b.index});
            w.key("count").value(std::uint64_t{b.count});
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
MetricsSnapshot::toJsonText() const
{
    std::ostringstream os;
    json::JsonWriter w(os);
    writeJson(w);
    return os.str();
}

std::optional<MetricsSnapshot>
MetricsSnapshot::fromJson(const json::JsonValue &v, std::string *error)
{
    const auto fail = [&](const char *what) {
        if (error)
            *error = what;
        return std::optional<MetricsSnapshot>();
    };
    if (!v.isObject())
        return fail("metrics: not an object");

    MetricsSnapshot snap;
    const json::JsonValue *counters = v.get("counters");
    const json::JsonValue *gauges = v.get("gauges");
    const json::JsonValue *histograms = v.get("histograms");
    if (!counters || !counters->isArray() || !gauges ||
        !gauges->isArray() || !histograms || !histograms->isArray())
        return fail("metrics: missing counters/gauges/histograms");

    for (const json::JsonValue &e : counters->elements()) {
        if (!e.isObject())
            return fail("metrics: counter entry not an object");
        Counter c;
        c.name = strMember(e, "name");
        c.help = strMember(e, "help");
        c.value = u64Member(e, "value");
        snap.counters.push_back(std::move(c));
    }
    for (const json::JsonValue &e : gauges->elements()) {
        if (!e.isObject())
            return fail("metrics: gauge entry not an object");
        Gauge g;
        g.name = strMember(e, "name");
        g.help = strMember(e, "help");
        const json::JsonValue *val = e.get("value");
        g.value = val && val->isNumber()
                      ? static_cast<std::int64_t>(val->asNumber())
                      : 0;
        snap.gauges.push_back(std::move(g));
    }
    for (const json::JsonValue &e : histograms->elements()) {
        if (!e.isObject())
            return fail("metrics: histogram entry not an object");
        Histo h;
        h.name = strMember(e, "name");
        h.help = strMember(e, "help");
        h.samples = u64Member(e, "samples");
        h.sum = u64Member(e, "sum");
        h.min = u64Member(e, "min");
        h.max = u64Member(e, "max");
        h.p50 = dblMember(e, "p50");
        h.p95 = dblMember(e, "p95");
        h.p99 = dblMember(e, "p99");
        if (const json::JsonValue *buckets = e.get("buckets");
            buckets && buckets->isArray()) {
            for (const json::JsonValue &b : buckets->elements()) {
                Bucket bucket;
                bucket.index = static_cast<std::uint32_t>(
                    u64Member(b, "bucket"));
                bucket.count = u64Member(b, "count");
                h.buckets.push_back(bucket);
            }
        }
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

std::string
prometheusEscapeHelp(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
prometheusEscapeLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
MetricsSnapshot::prometheusText(
    const std::vector<std::pair<std::string, std::string>>
        &info_labels) const
{
    std::ostringstream os;
    if (!info_labels.empty()) {
        os << "# HELP capcheck_info build and instance metadata\n";
        os << "# TYPE capcheck_info gauge\n";
        os << "capcheck_info{";
        bool first = true;
        for (const auto &[key, value] : info_labels) {
            if (!first)
                os << ",";
            first = false;
            os << prometheusName(key).substr(
                      std::strlen("capcheck_"))
               << "=\"" << prometheusEscapeLabel(value) << "\"";
        }
        os << "} 1\n";
    }
    for (const Counter &c : counters) {
        const std::string name = prometheusName(c.name);
        if (!c.help.empty()) {
            os << "# HELP " << name << " "
               << prometheusEscapeHelp(c.help) << "\n";
        }
        os << "# TYPE " << name << " counter\n";
        os << name << " " << c.value << "\n";
    }
    for (const Gauge &g : gauges) {
        const std::string name = prometheusName(g.name);
        if (!g.help.empty()) {
            os << "# HELP " << name << " "
               << prometheusEscapeHelp(g.help) << "\n";
        }
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << g.value << "\n";
    }
    for (const Histo &h : histograms) {
        const std::string name = prometheusName(h.name);
        if (!h.help.empty()) {
            os << "# HELP " << name << " "
               << prometheusEscapeHelp(h.help) << "\n";
        }
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (const Bucket &b : h.buckets) {
            cumulative += b.count;
            // Samples are integers, so the inclusive upper bound of
            // log2 bucket b is bucketHigh(b) - 1.
            os << name << "_bucket{le=\""
               << stats::Histogram::bucketHigh(b.index) - 1 << "\"} "
               << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << h.samples << "\n";
        os << name << "_sum " << h.sum << "\n";
        os << name << "_count " << h.samples << "\n";
    }
    return os.str();
}

std::string
MetricsSnapshot::serviceLatencyJson(const std::string &label) const
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("label").value(label);
    w.key("flights").beginObject();
    constexpr const char prefix[] = "span.";
    constexpr std::size_t prefixLen = sizeof(prefix) - 1;
    for (const Histo &h : histograms) {
        if (h.name.rfind(prefix, 0) != 0)
            continue;
        w.key(h.name.substr(prefixLen));
        writeHistoLeaf(w, h);
    }
    w.endObject();
    w.endObject();
    os << "\n";
    return os.str();
}

MetricsSnapshot::Histo
MetricsRegistry::Histo::snapshot() const
{
    std::scoped_lock lock(mtx);
    MetricsSnapshot::Histo out;
    out.name = name;
    out.help = help;
    out.samples = hist.samples();
    out.sum = hist.sum();
    out.min = hist.minSeen();
    out.max = hist.maxSeen();
    out.p50 = hist.p50();
    out.p95 = hist.p95();
    out.p99 = hist.p99();
    const std::vector<std::uint64_t> &buckets = hist.bucketCounts();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] > 0) {
            out.buckets.push_back(
                {static_cast<std::uint32_t>(b), buckets[b]});
        }
    }
    return out;
}

MetricsRegistry::Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    std::scoped_lock lock(mtx);
    for (const auto &c : counters) {
        if (c->name == name)
            return *c;
    }
    counters.emplace_back(new Counter(name, help));
    return *counters.back();
}

MetricsRegistry::Gauge &
MetricsRegistry::gauge(const std::string &name,
                       const std::string &help)
{
    std::scoped_lock lock(mtx);
    for (const auto &g : gauges) {
        if (g->name == name)
            return *g;
    }
    gauges.emplace_back(new Gauge(name, help));
    return *gauges.back();
}

MetricsRegistry::Histo &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help)
{
    std::scoped_lock lock(mtx);
    for (const auto &h : histograms) {
        if (h->name == name)
            return *h;
    }
    histograms.emplace_back(new Histo(histRoot, name, help));
    return *histograms.back();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::scoped_lock lock(mtx);
    MetricsSnapshot snap;
    snap.counters.reserve(counters.size());
    for (const auto &c : counters)
        snap.counters.push_back({c->name, c->help, c->value()});
    snap.gauges.reserve(gauges.size());
    for (const auto &g : gauges)
        snap.gauges.push_back({g->name, g->help, g->value()});
    snap.histograms.reserve(histograms.size());
    for (const auto &h : histograms)
        snap.histograms.push_back(h->snapshot());
    return snap;
}

} // namespace capcheck::obs
