/**
 * @file
 * capprof: a low-overhead host-time self-profiler for the simulator.
 *
 * The obs stack attributes *simulated* time (ProbePoints, flights,
 * spans); this module attributes *host* wall-clock, so the "profile
 * the core, then add fast kernels" loop has an instrument. Scopes are
 * declared with PROF_SCOPE(domain, name) and cost one thread-local
 * load plus a predictable branch when profiling is disabled — the
 * steady_clock is only read while a ProfileSession is active on the
 * current thread. Configuring with -DCAPCHECK_PROF=OFF compiles the
 * scopes out entirely (current() becomes constexpr nullptr, so the
 * dispatch wrappers dead-code-eliminate).
 *
 * Attribution model: every scope site is registered once per process
 * under a (domain, name) key. A RunProfile accumulates per-site
 * {selfNanos, totalNanos, calls} — self excludes enclosed scopes,
 * total is wall time of outermost activations only (recursion safe) —
 * plus a call-stack trie for Brendan Gregg folded-stacks output.
 * Profiles are strictly single-threaded accumulation buffers: one per
 * worker/run, merged at run end, so --jobs N never contends on shared
 * counters. The rendered JSON closes the books exactly: an "other"
 * domain is defined as wallNanos minus the sum of all site self
 * times, so domain self-times always sum to the session wall-clock.
 */

#ifndef CAPCHECK_OBS_PROF_HH
#define CAPCHECK_OBS_PROF_HH

#include <cstdint>
#include <string>
#include <vector>

namespace capcheck::prof
{

/** Index of a registered (domain, name) scope site; process-global. */
using SiteId = std::uint32_t;

constexpr SiteId invalidSite = 0xffffffffu;

/**
 * Register (or look up) the site for @p domain / @p name. Thread-safe
 * and idempotent: the same pair always returns the same id. Sites are
 * tiny and live for the process, so callers cache the id in a static.
 */
SiteId registerSite(const std::string &domain, const std::string &name);

struct SiteInfo {
    std::string domain;
    std::string name;
};

/** Snapshot of the global site table, indexed by SiteId. */
std::vector<SiteInfo> siteTable();

/** True when the profiler is compiled in (CAPCHECK_PROF=ON). */
constexpr bool
compiledIn()
{
#ifdef CAPCHECK_PROF_OFF
    return false;
#else
    return true;
#endif
}

/**
 * One run's (or one thread's) accumulation buffer. NOT thread-safe:
 * exactly one thread may feed it at a time (enforced by construction —
 * the ProfileSession installs it as that thread's current profile).
 * Merging buffers from several threads at run end is cheap and safe
 * once their sessions have closed.
 */
class RunProfile
{
  public:
    struct SiteTotals {
        SiteId site = invalidSite;
        std::string domain;
        std::string name;
        std::uint64_t selfNanos = 0;
        std::uint64_t totalNanos = 0;
        std::uint64_t calls = 0;
    };

    struct DomainTotals {
        std::string domain;
        std::uint64_t selfNanos = 0;
        std::uint64_t totalNanos = 0;
        std::uint64_t calls = 0;
    };

    RunProfile() = default;

    /** Scope entry/exit; called by ScopeTimer only. */
    void enter(SiteId site);
    void exit();

    /** Host nanoseconds spent inside ProfileSession windows. */
    std::uint64_t wallNanos() const { return wall; }

    /** Add @p nanos of session window time (ProfileSession dtor). */
    void addWallNanos(std::uint64_t nanos) { wall += nanos; }

    /** Fold @p other's sites, stacks and wall time into this buffer. */
    void merge(const RunProfile &other);

    /** Per-site totals, sorted by (domain, name); zero-call sites are
     *  dropped so the report shape is independent of registration
     *  order elsewhere in the process. */
    std::vector<SiteTotals> siteTotals() const;

    /**
     * Per-domain totals, sorted by domain name, with a synthetic
     * "other" domain appended last holding wallNanos minus the summed
     * site self times — so self times sum to wallNanos exactly.
     */
    std::vector<DomainTotals> domainTotals() const;

    /**
     * Deterministic-shape profile document (fixed key order, sorted
     * domains/sites): {schema, label, kernel, wallNanos, domains:[
     * {domain, selfNanos, totalNanos, calls, share}...], sites:[...]}.
     * share is selfNanos/wallNanos.
     */
    std::string json(const std::string &label,
                     const std::string &kernel) const;

    /**
     * Brendan Gregg folded stacks ("d.a;d.b selfNanos" lines, sorted),
     * with a trailing "other" line for unattributed session time —
     * ready for flamegraph.pl / speedscope.
     */
    std::string foldedText() const;

  private:
    struct PerSite {
        std::uint64_t selfNanos = 0;
        std::uint64_t totalNanos = 0;
        std::uint64_t calls = 0;
        std::uint32_t active = 0;
    };

    struct Frame {
        SiteId site = invalidSite;
        std::uint32_t node = 0;
        std::uint64_t childNanos = 0;
        std::uint64_t startNanos = 0;
    };

    /** Call-stack trie node; node 0 is the root sentinel. */
    struct TrieNode {
        std::uint32_t parent = 0;
        SiteId site = invalidSite;
        std::uint64_t selfNanos = 0;
        std::vector<std::uint32_t> children;
    };

    std::uint32_t trieChild(std::uint32_t parent, SiteId site);
    void ensureRoot();

    std::vector<PerSite> perSite;
    std::vector<Frame> stack;
    std::vector<TrieNode> trie;
    std::uint64_t wall = 0;
};

#ifdef CAPCHECK_PROF_OFF

constexpr RunProfile *current() { return nullptr; }
inline RunProfile *installCurrent(RunProfile *) { return nullptr; }

#else

namespace detail
{
extern thread_local RunProfile *tlsProfile;
} // namespace detail

/** The profile receiving this thread's scopes, or nullptr. */
inline RunProfile *current() { return detail::tlsProfile; }

/** Install @p profile as this thread's sink; returns the previous. */
inline RunProfile *
installCurrent(RunProfile *profile)
{
    RunProfile *prev = detail::tlsProfile;
    detail::tlsProfile = profile;
    return prev;
}

#endif

/**
 * RAII scope: attributes the enclosed host time to @p site on the
 * current thread's profile. Free when no profile is installed.
 */
class ScopeTimer
{
  public:
    explicit ScopeTimer(SiteId site) : prof(current())
    {
        if (prof)
            prof->enter(site);
    }

    ~ScopeTimer()
    {
        if (prof)
            prof->exit();
    }

    ScopeTimer(const ScopeTimer &) = delete;
    ScopeTimer &operator=(const ScopeTimer &) = delete;

  private:
    RunProfile *prof;
};

/**
 * RAII window: installs @p profile as the current thread's sink and
 * accumulates the window's duration into its wallNanos. Nestable
 * (restores the previous sink) and re-openable: a run's profile may
 * collect several windows (execute, render, cache publish).
 */
class ProfileSession
{
  public:
    explicit ProfileSession(RunProfile &profile);
    ~ProfileSession();

    ProfileSession(const ProfileSession &) = delete;
    ProfileSession &operator=(const ProfileSession &) = delete;

  private:
    RunProfile &prof;
    RunProfile *prev;
    std::uint64_t startNanos;
};

} // namespace capcheck::prof

/**
 * Declare a profiling scope covering the rest of the enclosing block.
 * The site is registered once (thread-safe magic static); the timer
 * is a TLS load + branch when no session is active, and nothing at
 * all under -DCAPCHECK_PROF=OFF.
 */
#ifdef CAPCHECK_PROF_OFF
#define PROF_SCOPE(domain, name) ((void)0)
#else
#define CAPCHECK_PROF_CONCAT2(a, b) a##b
#define CAPCHECK_PROF_CONCAT(a, b) CAPCHECK_PROF_CONCAT2(a, b)
#define PROF_SCOPE(domain, name)                                        \
    static const ::capcheck::prof::SiteId CAPCHECK_PROF_CONCAT(         \
        profSite_, __LINE__) =                                          \
        ::capcheck::prof::registerSite(domain, name);                   \
    const ::capcheck::prof::ScopeTimer CAPCHECK_PROF_CONCAT(            \
        profScope_, __LINE__)(CAPCHECK_PROF_CONCAT(profSite_, __LINE__))
#endif

#endif // CAPCHECK_OBS_PROF_HH
