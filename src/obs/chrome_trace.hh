/**
 * @file
 * Chrome trace-event timeline builder. Collects duration ("X"),
 * instant ("i") and counter ("C") events in simulated-cycle time and
 * serializes them as the JSON array-of-events form that
 * chrome://tracing and Perfetto load directly. One "thread" per
 * simulated track (accelerator instance, CapChecker, driver, memory);
 * timestamps are cycles, so a trace produced on any host thread count
 * is byte-identical.
 */

#ifndef CAPCHECK_OBS_CHROME_TRACE_HH
#define CAPCHECK_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"

namespace capcheck::obs
{

class ChromeTrace
{
  public:
    /**
     * Register a named track (a Chrome "thread").
     * @return the track id for subsequent events.
     */
    unsigned addTrack(const std::string &name);

    std::size_t numTracks() const { return tracks.size(); }
    std::size_t numEvents() const { return events.size(); }

    /**
     * A complete ("X") event spanning [start, start + dur] cycles.
     * @p args_json, when non-empty, must be a rendered JSON object.
     */
    void duration(unsigned track, const std::string &name,
                  const std::string &category, Cycles start, Cycles dur,
                  const std::string &args_json = "");

    /** An instant ("i") event at @p ts, thread scope. */
    void instant(unsigned track, const std::string &name,
                 const std::string &category, Cycles ts,
                 const std::string &args_json = "");

    /**
     * A counter ("C") event: @p series_json is the rendered JSON
     * object of series-name -> value, e.g. {"hits": 3, "misses": 1}.
     */
    void counter(unsigned track, const std::string &name, Cycles ts,
                 const std::string &series_json);

    /**
     * Serialize as a JSON array of events: track-name metadata first,
     * then every event in emission order (simulation order, hence
     * deterministic). One event per line.
     */
    void write(std::ostream &os) const;

    /** write() into @p path. @return false on I/O failure (warns). */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        char phase;
        unsigned track;
        Cycles ts;
        Cycles dur;
        std::string name;
        std::string category;
        /** Pre-rendered JSON object for "args" ("" = omitted). */
        std::string args;
    };

    std::vector<std::string> tracks;
    std::vector<Event> events;
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_CHROME_TRACE_HH
