#include "obs/flight.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "base/invariant.hh"
#include "base/json.hh"
#include "base/logging.hh"
#include "sim/eventq.hh"

namespace capcheck::obs
{

namespace
{

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

const char *
cacheOutcomeName(FlightRecord::CacheOutcome outcome)
{
    switch (outcome) {
      case FlightRecord::CacheOutcome::none: return "none";
      case FlightRecord::CacheOutcome::hit: return "hit";
      case FlightRecord::CacheOutcome::miss: return "miss";
    }
    return "?";
}

/** Slowest first; ties resolved by issue order for determinism. */
bool
slowerThan(const FlightRecord &a, const FlightRecord &b)
{
    if (a.endToEnd() != b.endToEnd())
        return a.endToEnd() > b.endToEnd();
    return a.flight < b.flight;
}

void
writeFlightJson(json::JsonWriter &w, const FlightRecord &rec)
{
    w.beginObject();
    w.key("flight").value(rec.flight);
    w.key("task").value(std::uint64_t{rec.task});
    w.key("port").value(std::uint64_t{rec.port});
    w.key("id").value(rec.reqId);
    w.key("cmd").value(memCmdName(rec.cmd));
    w.key("addr").value(hex(rec.addr));
    w.key("size").value(std::uint64_t{rec.size});
    w.key("denied").value(rec.denied);
    w.key("cache").value(cacheOutcomeName(rec.cache));
    w.key("issue").value(rec.issue);
    w.key("grant").value(rec.grant);
    // Per-level arbitration pairs, only for multi-hop trees: the flat
    // paper shapes keep their artefact bytes unchanged.
    if (rec.xbarHops.size() > 1) {
        w.key("xbarHops").beginArray();
        for (const FlightRecord::XbarHop &hop : rec.xbarHops) {
            w.beginObject();
            w.key("offer").value(hop.offer);
            w.key("grant").value(hop.grant);
            w.endObject();
        }
        w.endArray();
    }
    w.key("checkStart").value(rec.checkStart);
    w.key("checkEnd").value(rec.checkEnd);
    w.key("memAccept").value(rec.sawMem ? rec.memAccept : 0);
    w.key("respond").value(rec.respond);
    w.key("hops").beginObject();
    w.key("xbarWait").value(rec.hopXbar());
    w.key("check").value(rec.hopCheck());
    w.key("drain").value(rec.hopDrain());
    w.key("mem").value(rec.hopMem());
    w.endObject();
    w.key("endToEnd").value(rec.endToEnd());
    w.endObject();
}

} // namespace

FlightRecorder::FlightRecorder(EventQueue &eq, unsigned top_n,
                               std::string run_label)
    : eq(eq), topN(top_n), runLabel(std::move(run_label))
{
}

void
FlightRecorder::onIssue(const MemRequest &req)
{
    FlightRecord rec;
    rec.flight = nextFlight++;
    rec.task = req.task;
    rec.port = req.srcPort;
    rec.reqId = req.id;
    rec.cmd = req.cmd;
    rec.addr = req.addr;
    rec.size = req.size;
    rec.issue = eq.curCycle();
    ++issued;

    ++xbarWaiting;
    xbarOccupancy.sample(xbarWaiting);

    const Key key{req.srcPort, req.id};
    INVARIANT(open.find(key) == open.end(),
              "flight (port %u, id %llu) issued while still in flight",
              req.srcPort, static_cast<unsigned long long>(req.id));
    open.emplace(key, rec);
}

void
FlightRecorder::onOffer(const MemRequest &req)
{
    const auto it = open.find(Key{req.srcPort, req.id});
    if (it == open.end())
        return;
    FlightRecord &rec = it->second;
    // Re-entering arbitration at a deeper crossbar level; the first
    // level already rode the onIssue() increment (same cycle).
    if (!rec.xbarHops.empty())
        ++xbarWaiting;
    rec.xbarHops.push_back(
        FlightRecord::XbarHop{eq.curCycle(), 0, false});
}

void
FlightRecorder::onGrant(const MemRequest &req)
{
    const auto it = open.find(Key{req.srcPort, req.id});
    if (it == open.end())
        return; // a master the recorder is not watching
    FlightRecord &rec = it->second;
    rec.grant = eq.curCycle();
    rec.sawGrant = true;

    // Close the oldest open hop: offers and grants both complete in
    // path order, so the first ungranted hop is the level this grant
    // belongs to. Without an offer probe attached (harnesses driving
    // the recorder directly) synthesize the slot-entry boundary.
    bool closed = false;
    for (FlightRecord::XbarHop &hop : rec.xbarHops) {
        if (!hop.granted) {
            hop.grant = rec.grant;
            hop.granted = true;
            closed = true;
            break;
        }
    }
    if (!closed) {
        Cycles entry = rec.issue;
        if (!rec.xbarHops.empty()) {
            const FlightRecord::XbarHop &prev = rec.xbarHops.back();
            entry = (rec.sawCheck && rec.checkEnd >= prev.grant)
                        ? rec.checkEnd
                        : prev.grant;
        }
        rec.xbarHops.push_back(
            FlightRecord::XbarHop{entry, rec.grant, true});
    }

    if (xbarWaiting > 0)
        --xbarWaiting;

    // The stage accepts in the same frame as the final pre-check grant
    // (its timing probe fires first, same cycle) — that grant, and
    // only that grant, enters the beat into the stage occupancy. A
    // pass-through check (zero-latency, already at the memory
    // controller) never occupies the stage; everything else does until
    // its verdict leaves (memory acceptance or a denial response).
    if (!rec.sawMem && rec.sawCheck &&
        rec.checkStart == eq.curCycle() && !rec.inCheckQueue) {
        rec.inCheckQueue = true;
        ++checkOccupied;
        checkOccupancy.sample(checkOccupied);
    }
}

void
FlightRecorder::onCheck(const MemRequest &req, bool allowed,
                        Cycles start, Cycles end)
{
    const auto it = open.find(Key{req.srcPort, req.id});
    if (it == open.end()) {
        pendingCache = FlightRecord::CacheOutcome::none;
        return;
    }
    FlightRecord &rec = it->second;
    // The stage may re-offer the same beat when its zero-latency
    // pass-through path stalls on the memory controller; the last
    // (accepted) attempt wins.
    rec.checkStart = start;
    rec.checkEnd = end;
    rec.sawCheck = true;
    rec.denied = !allowed;
    rec.cache = pendingCache;
    pendingCache = FlightRecord::CacheOutcome::none;

    // In a cascade the accepting grant may already have fired this
    // cycle (a deeper level granted in the same cycle as its parent);
    // enter the stage occupancy here in that case — onGrant handles
    // the common order (timing probe first, then the grant probe).
    if (!rec.inCheckQueue && !rec.sawMem && rec.sawGrant &&
        rec.grant == eq.curCycle()) {
        rec.inCheckQueue = true;
        ++checkOccupied;
        checkOccupancy.sample(checkOccupied);
    }
}

void
FlightRecorder::onCacheHit()
{
    pendingCache = FlightRecord::CacheOutcome::hit;
}

void
FlightRecorder::onCacheMiss()
{
    pendingCache = FlightRecord::CacheOutcome::miss;
}

void
FlightRecorder::onMemAccept(const MemRequest &req)
{
    const auto it = open.find(Key{req.srcPort, req.id});
    if (it == open.end())
        return;
    FlightRecord &rec = it->second;
    rec.memAccept = eq.curCycle();
    rec.sawMem = true;
    if (rec.inCheckQueue) {
        rec.inCheckQueue = false;
        if (checkOccupied > 0)
            --checkOccupied;
    }
}

void
FlightRecorder::onRespond(const MemResponse &resp)
{
    const auto it = open.find(Key{resp.srcPort, resp.id});
    if (it == open.end())
        return;
    FlightRecord &rec = it->second;
    rec.respond = eq.curCycle();
    rec.denied |= !resp.ok;
    if (rec.inCheckQueue) {
        rec.inCheckQueue = false;
        if (checkOccupied > 0)
            --checkOccupied;
    }
    complete(rec);
    open.erase(it);
}

void
FlightRecorder::complete(FlightRecord &rec)
{
    INVARIANT(rec.sawGrant && rec.sawCheck,
              "flight %llu (port %u, id %llu) completed without "
              "traversing arbitration and the check stage",
              static_cast<unsigned long long>(rec.flight), rec.port,
              static_cast<unsigned long long>(rec.reqId));

    // Multi-level sanity: every crossbar the beat entered must have
    // granted it, and the first slot entry is the issue itself.
    for (const FlightRecord::XbarHop &hop : rec.xbarHops) {
        INVARIANT(hop.granted,
                  "flight %llu completed with an open xbar hop "
                  "(offered at cycle %llu, never granted)",
                  static_cast<unsigned long long>(rec.flight),
                  static_cast<unsigned long long>(hop.offer));
    }
    INVARIANT(rec.xbarHops.empty() ||
                  rec.xbarHops.front().offer == rec.issue,
              "flight %llu: first xbar offer (cycle %llu) is not the "
              "issue cycle (%llu)",
              static_cast<unsigned long long>(rec.flight),
              static_cast<unsigned long long>(
                  rec.xbarHops.front().offer),
              static_cast<unsigned long long>(rec.issue));

    // The paper's latency claims live and die on this attribution:
    // every end-to-end cycle must be charged to exactly one hop.
    const Cycles hop_sum = rec.hopXbar() + rec.hopCheck() +
                           rec.hopDrain() + rec.hopMem();
    INVARIANT(hop_sum == rec.endToEnd(),
              "flight %llu: per-hop attribution (%llu cycles) does "
              "not equal end-to-end latency (%llu cycles)",
              static_cast<unsigned long long>(rec.flight),
              static_cast<unsigned long long>(hop_sum),
              static_cast<unsigned long long>(rec.endToEnd()));

    ++completed;
    if (rec.denied)
        ++denied;
    if (rec.cache == FlightRecord::CacheOutcome::hit)
        ++cacheHits;
    else if (rec.cache == FlightRecord::CacheOutcome::miss)
        ++cacheMisses;

    endToEnd.sample(rec.endToEnd());
    hopXbar.sample(rec.hopXbar());
    hopCheck.sample(rec.hopCheck());
    hopDrain.sample(rec.hopDrain());
    hopMem.sample(rec.hopMem());

    cyclesXbar += static_cast<double>(rec.hopXbar());
    cyclesCheck += static_cast<double>(rec.hopCheck());
    cyclesDrain += static_cast<double>(rec.hopDrain());
    cyclesMem += static_cast<double>(rec.hopMem());
    cyclesTotal += static_cast<double>(rec.endToEnd());

    if (topN == 0)
        return;
    if (slowest.size() < topN) {
        slowest.push_back(rec);
        return;
    }
    auto weakest = std::min_element(
        slowest.begin(), slowest.end(),
        [](const FlightRecord &a, const FlightRecord &b) {
            return slowerThan(b, a); // least slow first
        });
    if (slowerThan(rec, *weakest))
        *weakest = rec;
}

std::vector<FlightRecord>
FlightRecorder::slowestFlights() const
{
    std::vector<FlightRecord> sorted = slowest;
    std::sort(sorted.begin(), sorted.end(), slowerThan);
    return sorted;
}

void
FlightRecorder::writeFlightsFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write flight file '%s'", path.c_str());
        return;
    }
    json::JsonWriter w(os);
    w.beginObject();
    w.key("label").value(runLabel);
    w.key("topN").value(std::uint64_t{topN});
    w.key("issued").value(issuedFlights());
    w.key("completed").value(completedFlights());
    w.key("denied").value(
        static_cast<std::uint64_t>(denied.value()));
    w.key("flights").beginArray();
    for (const FlightRecord &rec : slowestFlights())
        writeFlightJson(w, rec);
    w.endArray();
    w.endObject();
    os << "\n";
}

void
FlightRecorder::writeLatencyFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write latency file '%s'", path.c_str());
        return;
    }
    json::JsonWriter w(os);
    w.beginObject();
    w.key("label").value(runLabel);
    w.key("flights");
    root.dumpJson(w);
    w.endObject();
    os << "\n";
}

void
FlightRecorder::writeEmptyFlightsFile(const std::string &path,
                                      unsigned top_n,
                                      const std::string &run_label)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write flight file '%s'", path.c_str());
        return;
    }
    json::JsonWriter w(os);
    w.beginObject();
    w.key("label").value(run_label);
    w.key("topN").value(std::uint64_t{top_n});
    w.key("issued").value(std::uint64_t{0});
    w.key("completed").value(std::uint64_t{0});
    w.key("denied").value(std::uint64_t{0});
    w.key("flights").beginArray();
    w.endArray();
    w.endObject();
    os << "\n";
}

void
FlightRecorder::writeEmptyLatencyFile(const std::string &path,
                                      const std::string &run_label)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write latency file '%s'", path.c_str());
        return;
    }
    json::JsonWriter w(os);
    w.beginObject();
    w.key("label").value(run_label);
    w.key("flights").beginObject();
    w.endObject();
    w.endObject();
    os << "\n";
}

} // namespace capcheck::obs
