/**
 * @file
 * Periodic StatGroup sampler. Attached to an EventQueue's cycle probe,
 * it snapshots a stat tree every N simulated cycles into an in-memory
 * time series and serializes the series as JSON. Because sampling is
 * driven purely by simulated time, the output is byte-identical for
 * any host thread count.
 */

#ifndef CAPCHECK_OBS_SAMPLER_HH
#define CAPCHECK_OBS_SAMPLER_HH

#include <ostream>
#include <string>
#include <vector>

#include "base/probe.hh"
#include "base/types.hh"

namespace capcheck
{
class EventQueue;
namespace stats
{
class StatGroup;
} // namespace stats
} // namespace capcheck

namespace capcheck::obs
{

class StatsSampler
{
  public:
    /**
     * @param root the stat tree to snapshot.
     * @param interval cycles between samples (must be > 0).
     */
    StatsSampler(const stats::StatGroup &root, Cycles interval);
    ~StatsSampler();

    StatsSampler(const StatsSampler &) = delete;
    StatsSampler &operator=(const StatsSampler &) = delete;

    /**
     * Listen on @p eq's cycle probe; a snapshot is taken the first
     * time simulated time reaches or passes each interval boundary.
     */
    void attach(EventQueue &eq);

    /** Snapshot immediately, labelled with @p cycle. */
    void sampleNow(Cycles cycle);

    /**
     * Take the end-of-run snapshot (skipped when the last sample
     * already has this label) and stop listening.
     */
    void finalize(Cycles end_cycle);

    std::size_t numSamples() const { return samples.size(); }

    /**
     * Serialize as {"interval": N, "samples": [{"cycle": c,
     * "stats": {...}}, ...]}.
     */
    void write(std::ostream &os) const;

    /** write() into @p path. @return false on I/O failure (warns). */
    bool writeFile(const std::string &path) const;

  private:
    void onCycle(Cycles cycle);

    struct Sample
    {
        Cycles cycle;
        /** Rendered dumpJson() object for the tree at that cycle. */
        std::string statsJson;
    };

    const stats::StatGroup &root;
    Cycles interval;
    Cycles nextSample;
    std::vector<Sample> samples;

    EventQueue *attachedTo = nullptr;
    probe::ListenerHandle listener = probe::invalidListener;
};

} // namespace capcheck::obs

#endif // CAPCHECK_OBS_SAMPLER_HH
