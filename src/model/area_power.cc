#include "model/area_power.hh"

#include <algorithm>
#include <cmath>

namespace capcheck::model
{

std::uint64_t
AreaPowerModel::capCheckerLuts(unsigned table_entries)
{
    // Anchors: 256 entries ~ 30 k LUTs (decoder + associative table);
    // a CFU-class repository of a couple of entries < 100 LUTs. Tiny
    // configurations skip the associative CAM entirely (fixed-index
    // registers), so they sit on a much cheaper curve.
    if (table_entries <= 2)
        return 40 + static_cast<std::uint64_t>(table_entries) * 25;
    return 40 + static_cast<std::uint64_t>(table_entries) * 117;
}

std::uint64_t
AreaPowerModel::cpuLuts(bool cheri)
{
    // Flute RV64 softcore with FPU; the CHERI extension adds the
    // capability pipeline and tag plumbing (~20 %).
    return cheri ? 54000 : 45000;
}

std::uint64_t
AreaPowerModel::microcontrollerLuts()
{
    // A CFU-Playground-class system: small RV32 core, bus fabric, and
    // one custom functional unit.
    return 10000;
}

std::uint64_t
AreaPowerModel::accelLuts(const workloads::KernelSpec &spec,
                          unsigned instances)
{
    // HLS datapath area grows sub-linearly with unroll (wide lanes
    // share control), plus burst/control logic per buffer port and a
    // fixed per-instance harness.
    const double lanes = std::sqrt(static_cast<double>(
        spec.timing.ilp));
    const std::uint64_t per_instance =
        6000 + static_cast<std::uint64_t>(2200.0 * lanes) +
        700ull * spec.buffers.size();
    return per_instance * instances;
}

double
AreaPowerModel::staticPowerW(std::uint64_t luts)
{
    return 0.6 + static_cast<double>(luts) * 2.5e-6;
}

double
AreaPowerModel::dynamicPowerW(std::uint64_t luts, double activity)
{
    const double a = std::clamp(activity, 0.0, 1.0);
    return static_cast<double>(luts) * 9.0e-6 * a;
}

double
AreaPowerModel::capCheckerPowerW(unsigned table_entries,
                                 double activity)
{
    // The capability table is SRAM-like: low static draw and only the
    // looked-up entry toggles per beat.
    const auto luts = static_cast<double>(capCheckerLuts(table_entries));
    const double a = std::clamp(activity, 0.0, 1.0);
    return luts * 1.0e-6 + luts * 2.2e-6 * a;
}

} // namespace capcheck::model
