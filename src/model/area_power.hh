/**
 * @file
 * Analytic FPGA resource and power model, calibrated to the paper's
 * published anchors (Section 6.3): a 256-entry CapChecker occupies
 * ~30 k LUTs; a CFU-class CapChecker fits in under 100 LUTs next to a
 * ~10 k LUT microcontroller system; adding the CapChecker costs ~15 %
 * area and a small, benchmark-dependent amount of power. We cannot
 * rerun Vivado P&R, so Fig. 8's area/power series are regenerated from
 * this model (the substitution is recorded in DESIGN.md).
 */

#ifndef CAPCHECK_MODEL_AREA_POWER_HH
#define CAPCHECK_MODEL_AREA_POWER_HH

#include <cstdint>

#include "workloads/buffer_spec.hh"

namespace capcheck::model
{

struct AreaPowerModel
{
    /** LUTs of the CapChecker as a function of table entries. */
    static std::uint64_t capCheckerLuts(unsigned table_entries);

    /** LUTs of the CPU core (Flute, with or without CHERI). */
    static std::uint64_t cpuLuts(bool cheri);

    /**
     * LUTs of a TinyML-class microcontroller system (core + CFU
     * harness, Section 6.3's ~10k LUT anchor).
     */
    static std::uint64_t microcontrollerLuts();

    /**
     * LUTs of one accelerator pool: scales with datapath parallelism
     * and buffer count (HLS control/burst logic), times instances.
     */
    static std::uint64_t accelLuts(const workloads::KernelSpec &spec,
                                   unsigned instances);

    /** Static power (W) for a given LUT count. */
    static double staticPowerW(std::uint64_t luts);

    /**
     * Dynamic power (W): proportional to resources times switching
     * activity (busy beats per cycle, in [0, 1]).
     */
    static double dynamicPowerW(std::uint64_t luts, double activity);

    /** Total power. */
    static double
    totalPowerW(std::uint64_t luts, double activity)
    {
        return staticPowerW(luts) + dynamicPowerW(luts, activity);
    }

    /** Power drawn by the CapChecker itself (SRAM-like table). */
    static double capCheckerPowerW(unsigned table_entries,
                                   double activity);
};

} // namespace capcheck::model

#endif // CAPCHECK_MODEL_AREA_POWER_HH
