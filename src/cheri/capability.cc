#include "cheri/capability.hh"

#include <sstream>

#include "base/logging.hh"

namespace capcheck::cheri
{

const char *
capFaultName(CapFault fault)
{
    switch (fault) {
      case CapFault::none:
        return "none";
      case CapFault::tagViolation:
        return "tag violation";
      case CapFault::sealViolation:
        return "seal violation";
      case CapFault::permitLoadViolation:
        return "permit-load violation";
      case CapFault::permitStoreViolation:
        return "permit-store violation";
      case CapFault::permitExecuteViolation:
        return "permit-execute violation";
      case CapFault::permitLoadCapViolation:
        return "permit-load-cap violation";
      case CapFault::permitStoreCapViolation:
        return "permit-store-cap violation";
      case CapFault::boundsViolation:
        return "bounds violation";
      case CapFault::representabilityViolation:
        return "representability violation";
    }
    return "unknown fault";
}

std::uint32_t
requiredPerms(AccessKind kind)
{
    switch (kind) {
      case AccessKind::load:
        return permLoad;
      case AccessKind::store:
        return permStore;
      case AccessKind::execute:
        return permExecute;
      case AccessKind::loadCap:
        return permLoad | permLoadCap;
      case AccessKind::storeCap:
        return permStore | permStoreCap;
    }
    return 0;
}

Capability
Capability::root()
{
    Capability cap;
    cap._tag = true;
    cap._perms = permAll;
    cap._otype = otypeUnsealed;
    cap._base = 0;
    cap._top = u128(1) << 64;
    cap._addr = 0;
    return cap;
}

Capability
Capability::fromCompressed(bool tag, std::uint64_t pesbt_raw,
                           std::uint64_t cursor)
{
    Pesbt pesbt{pesbt_raw};
    const CcBounds bounds = ccDecode(pesbt, cursor);

    Capability cap;
    cap._tag = tag;
    cap._perms = pesbt.perms();
    cap._otype = pesbt.otype();
    cap._base = bounds.base;
    cap._top = bounds.top;
    cap._addr = cursor;
    return cap;
}

bool
Capability::isNull() const
{
    return !_tag && _perms == 0 && _base == 0 && _top == 0 && _addr == 0;
}

bool
Capability::hasPerms(std::uint32_t mask) const
{
    return (_perms & mask) == mask;
}

bool
Capability::inBounds(Addr addr, std::uint64_t size) const
{
    const u128 lo = addr;
    const u128 hi = lo + size;
    return lo >= _base && hi <= _top;
}

CapFault
Capability::checkAccess(AccessKind kind, Addr addr,
                        std::uint64_t size) const
{
    if (!_tag)
        return CapFault::tagViolation;
    if (sealed())
        return CapFault::sealViolation;

    const std::uint32_t need = requiredPerms(kind);
    if ((_perms & need) != need) {
        switch (kind) {
          case AccessKind::load:
            return CapFault::permitLoadViolation;
          case AccessKind::store:
            return CapFault::permitStoreViolation;
          case AccessKind::execute:
            return CapFault::permitExecuteViolation;
          case AccessKind::loadCap:
            return (_perms & permLoad)
                       ? CapFault::permitLoadCapViolation
                       : CapFault::permitLoadViolation;
          case AccessKind::storeCap:
            return (_perms & permStore)
                       ? CapFault::permitStoreCapViolation
                       : CapFault::permitStoreViolation;
        }
    }
    if (!inBounds(addr, size))
        return CapFault::boundsViolation;
    return CapFault::none;
}

Capability
Capability::setBounds(Addr new_base, std::uint64_t length,
                      bool exact) const
{
    Capability cap = *this;
    const u128 new_top = u128(new_base) + length;

    // Monotonicity: the requested region must nest within the source.
    if (!_tag || sealed() || u128(new_base) < _base || new_top > _top) {
        cap._tag = false;
    }

    // A request overflowing past 2^64 can never nest (no source top
    // exceeds 2^64, so the tag is already cleared above); clamp so the
    // encoder still produces bounds for the untagged result instead of
    // rejecting the out-of-range top.
    const u128 two64 = u128(1) << 64;
    const u128 enc_top = new_top > two64 ? two64 : new_top;
    const CcEncodeResult enc = ccEncode(new_base, enc_top);
    if (exact && !enc.exact)
        cap._tag = false;

    const CcBounds rounded = ccDecode(enc.pesbt, new_base);
    // Outward rounding must still nest inside the source bounds.
    if (cap._tag && (rounded.base < _base || rounded.top > _top))
        cap._tag = false;

    cap._base = rounded.base;
    cap._top = rounded.top;
    cap._addr = new_base;
    return cap;
}

Capability
Capability::andPerms(std::uint32_t mask) const
{
    Capability cap = *this;
    if (sealed())
        cap._tag = false;
    cap._perms &= mask;
    return cap;
}

Capability
Capability::setAddr(Addr new_addr) const
{
    Capability cap = *this;
    cap._addr = new_addr;
    if (sealed())
        cap._tag = false;

    // The move must keep the compressed form decoding to the same
    // bounds; otherwise the result is untagged (CHERI representability).
    std::uint64_t pesbt_raw;
    std::uint64_t cursor;
    compress(pesbt_raw, cursor);
    if (!ccIsRepresentable(Pesbt{pesbt_raw}, cursor, new_addr))
        cap._tag = false;
    return cap;
}

Capability
Capability::incAddr(std::int64_t delta) const
{
    return setAddr(_addr + static_cast<std::uint64_t>(delta));
}

Capability
Capability::seal(const Capability &authority, std::uint32_t otype) const
{
    Capability cap = *this;
    if (!_tag || sealed() || !authority.tag() || authority.sealed() ||
        !authority.hasPerms(permSeal) ||
        !authority.inBounds(authority.addr(), 1) ||
        otype >= otypeUnsealed) {
        cap._tag = false;
    }
    cap._otype = otype;
    return cap;
}

Capability
Capability::unseal(const Capability &authority) const
{
    Capability cap = *this;
    if (!_tag || !sealed() || !authority.tag() || authority.sealed() ||
        !authority.hasPerms(permUnseal) ||
        authority.addr() != _otype) {
        cap._tag = false;
    }
    cap._otype = otypeUnsealed;
    return cap;
}

Capability
Capability::cleared() const
{
    Capability cap = *this;
    cap._tag = false;
    return cap;
}

void
Capability::compress(std::uint64_t &pesbt_raw, std::uint64_t &cursor) const
{
    CcEncodeResult enc = ccEncode(_base, _top);
    enc.pesbt.setPerms(_perms);
    enc.pesbt.setOtype(_otype);
    pesbt_raw = enc.pesbt.raw;
    cursor = _addr;
}

bool
Capability::subsetOf(const Capability &parent) const
{
    return u128(_base) >= u128(parent._base) && _top <= parent._top &&
           (_perms & ~parent._perms) == 0;
}

std::string
Capability::toString() const
{
    std::ostringstream os;
    os << (_tag ? "cap[v" : "cap[-") << " " << permsToString(_perms)
       << std::hex << " base=0x" << _base << " top=0x";
    if (_top >> 64)
        os << "1_";
    os << static_cast<std::uint64_t>(_top) << " addr=0x" << _addr;
    if (sealed())
        os << " otype=" << std::dec << _otype;
    os << "]";
    return os.str();
}

} // namespace capcheck::cheri
