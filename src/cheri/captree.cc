#include "cheri/captree.hh"

#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace capcheck::cheri
{

const char *
capNodeKindName(CapNodeKind kind)
{
    switch (kind) {
      case CapNodeKind::root:
        return "root";
      case CapNodeKind::cpuTask:
        return "cpu-task";
      case CapNodeKind::accelTask:
        return "accel-task";
      case CapNodeKind::buffer:
        return "buffer";
    }
    return "?";
}

CapTree::CapTree()
{
    Node root;
    root.live = true;
    root.kind = CapNodeKind::root;
    root.cap = Capability::root();
    root.label = "os-root";
    nodes.push_back(std::move(root));
    liveCount = 1;
}

void
CapTree::checkLive(CapNodeId node) const
{
    if (node >= nodes.size() || !nodes[node].live)
        panic("CapTree: dead or invalid node %u", node);
}

CapNodeId
CapTree::derive(CapNodeId parent, CapNodeKind kind, const Capability &cap,
                std::string label)
{
    checkLive(parent);
    const CapNodeKind pkind = nodes[parent].kind;

    switch (kind) {
      case CapNodeKind::root:
        fatal("CapTree: cannot derive a second root");
      case CapNodeKind::cpuTask:
        if (pkind != CapNodeKind::root && pkind != CapNodeKind::cpuTask)
            fatal("CapTree: CPU task must derive from root or CPU task");
        break;
      case CapNodeKind::accelTask:
        // Accelerator tasks are instantiated by CPU tasks (threat-model
        // assumption 2: no dynamic memory management on accelerators).
        if (pkind != CapNodeKind::cpuTask)
            fatal("CapTree: accelerator task must derive from a CPU task");
        break;
      case CapNodeKind::buffer:
        if (pkind != CapNodeKind::cpuTask &&
            pkind != CapNodeKind::accelTask) {
            fatal("CapTree: buffer must derive from a task");
        }
        break;
    }

    Node node;
    node.live = true;
    node.kind = kind;
    node.parent = parent;
    node.cap = cap;
    node.label = std::move(label);
    nodes.push_back(std::move(node));
    ++liveCount;
    return static_cast<CapNodeId>(nodes.size() - 1);
}

void
CapTree::remove(CapNodeId node)
{
    checkLive(node);
    if (node == rootNode())
        fatal("CapTree: cannot remove the root");
    if (!childrenOf(node).empty())
        fatal("CapTree: node %u still has children", node);
    nodes[node].live = false;
    --liveCount;
}

const Capability &
CapTree::capOf(CapNodeId node) const
{
    checkLive(node);
    return nodes[node].cap;
}

CapNodeKind
CapTree::kindOf(CapNodeId node) const
{
    checkLive(node);
    return nodes[node].kind;
}

CapNodeId
CapTree::parentOf(CapNodeId node) const
{
    checkLive(node);
    return nodes[node].parent;
}

const std::string &
CapTree::labelOf(CapNodeId node) const
{
    checkLive(node);
    return nodes[node].label;
}

std::vector<CapNodeId>
CapTree::childrenOf(CapNodeId node) const
{
    checkLive(node);
    std::vector<CapNodeId> out;
    for (CapNodeId i = 0; i < nodes.size(); ++i) {
        if (nodes[i].live && nodes[i].parent == node)
            out.push_back(i);
    }
    return out;
}

std::size_t
CapTree::size() const
{
    return liveCount;
}

std::vector<CapNodeId>
CapTree::audit() const
{
    std::vector<CapNodeId> bad;
    for (CapNodeId i = 1; i < nodes.size(); ++i) {
        const Node &node = nodes[i];
        if (!node.live)
            continue;
        const Node &parent = nodes[node.parent];
        if (!node.cap.tag() || !parent.live ||
            !node.cap.subsetOf(parent.cap)) {
            bad.push_back(i);
        }
    }
    return bad;
}

void
CapTree::renderNode(std::ostream &os, CapNodeId node,
                    unsigned depth) const
{
    os << std::string(depth * 2, ' ') << capNodeKindName(nodes[node].kind);
    if (!nodes[node].label.empty())
        os << " '" << nodes[node].label << "'";
    os << " " << nodes[node].cap.toString() << "\n";
    for (CapNodeId child : childrenOf(node))
        renderNode(os, child, depth + 1);
}

std::string
CapTree::toString() const
{
    std::ostringstream os;
    renderNode(os, rootNode(), 0);
    return os.str();
}

} // namespace capcheck::cheri
