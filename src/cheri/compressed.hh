/**
 * @file
 * CHERI-Concentrate style 128-bit capability compression for 64-bit
 * addresses (Woodruff et al., IEEE ToC 2019; layout per Fig. 3 of the
 * paper). A capability occupies two 64-bit words plus an out-of-band tag:
 *
 *   word 1 (metadata, "pesbt"):
 *     [63:48] perms (16)     [47:30] otype (18)     [29:27] reserved
 *     [26]    IE             [25:14] T (12)         [13:0]  B (14)
 *   word 0: 64-bit address (cursor)
 *
 * Bounds are stored floating-point style: mantissas B/T at scale 2^E.
 * When IE=1 the exponent's six bits live in T[2:0]:B[2:0] and the
 * mantissas lose their low three bits (alignment 2^(E+3)); when IE=0 the
 * exponent is zero and bounds are byte-exact for lengths < 4096. The top
 * two bits of T are reconstructed from B plus a length carry; base and
 * top are rebuilt relative to the address with the standard CC
 * multi-region correction terms.
 *
 * The encoder picks the smallest exponent whose decode covers the
 * requested bounds and verifies itself by decoding, so
 * decode(encode(b, t)) always yields [b', t'] with b' <= b and t' >= t,
 * exact whenever the requested bounds are representable.
 */

#ifndef CAPCHECK_CHERI_COMPRESSED_HH
#define CAPCHECK_CHERI_COMPRESSED_HH

#include <cstdint>

#include "base/types.hh"

namespace capcheck::cheri
{

/** Object type of an unsealed capability. */
inline constexpr std::uint32_t otypeUnsealed = 0x3ffff;

/** Field geometry of the 128-bit format. */
struct CcLayout
{
    static constexpr unsigned mantissaWidth = 14; ///< B field width
    static constexpr unsigned tFieldWidth = 12;   ///< stored T width
    static constexpr unsigned expWidth = 6;       ///< exponent bits
    static constexpr unsigned maxExp = 52;        ///< covers 2^66 spans
};

/** Decoded bounds: [base, top), top is a 65-bit quantity (<= 2^64). */
struct CcBounds
{
    Addr base = 0;
    u128 top = 0;

    bool
    operator==(const CcBounds &other) const
    {
        return base == other.base && top == other.top;
    }
};

/** The in-memory metadata word of a compressed capability. */
struct Pesbt
{
    std::uint64_t raw = 0;

    std::uint32_t perms() const;
    std::uint32_t otype() const;
    bool internalExp() const;
    std::uint32_t tField() const; ///< stored 12-bit T
    std::uint32_t bField() const; ///< stored 14-bit B

    void setPerms(std::uint32_t perms);
    void setOtype(std::uint32_t otype);
    void setBoundsFields(bool ie, std::uint32_t t, std::uint32_t b);
};

/**
 * Decode the bounds of a compressed capability relative to @p addr.
 * Pure function of (metadata, addr); the same metadata decodes to the
 * same bounds for every address inside the representable region.
 */
CcBounds ccDecode(Pesbt pesbt, Addr addr);

/** Result of an encoding attempt. */
struct CcEncodeResult
{
    Pesbt pesbt;
    bool exact = false; ///< decoded bounds equal the request exactly
};

/**
 * Encode bounds [base, top) into the metadata word, rounding outward to
 * the nearest representable bounds if necessary. @p top may be 2^64.
 * Permissions/otype in the result are zeroed; callers set them after.
 */
CcEncodeResult ccEncode(Addr base, u128 top);

/**
 * Alignment (in bytes) that CC requires to represent a region of
 * @p length bytes exactly: 1 for lengths < 4096, else 2^(E+3).
 * This determines the protection granularity reported in Table 1.
 */
std::uint64_t ccRequiredAlignment(std::uint64_t length);

/**
 * True when @p new_addr decodes to the same bounds as @p old_addr under
 * @p pesbt — i.e. the address move keeps the capability representable.
 */
bool ccIsRepresentable(Pesbt pesbt, Addr old_addr, Addr new_addr);

} // namespace capcheck::cheri

#endif // CAPCHECK_CHERI_COMPRESSED_HH
