#include "cheri/compressed.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace capcheck::cheri
{

namespace
{

constexpr unsigned mw = CcLayout::mantissaWidth; // 14
constexpr std::uint32_t mwMask = (1u << mw) - 1;

// Field positions inside the metadata word.
constexpr unsigned bShift = 0;   // B: [13:0]
constexpr unsigned tShift = 14;  // T: [25:14]
constexpr unsigned ieShift = 26; // IE: [26]
constexpr unsigned otypeShift = 30;  // otype: [47:30]
constexpr unsigned permsShift = 48;  // perms: [63:48]

/** ceil(log2(x)) over a 65+ bit quantity. */
unsigned
ceilLog2u128(u128 x)
{
    if (x <= 1)
        return 0;
    unsigned n = 0;
    u128 v = x - 1;
    while (v) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

std::uint32_t
Pesbt::perms() const
{
    return static_cast<std::uint32_t>(bits(raw, 63, permsShift));
}

std::uint32_t
Pesbt::otype() const
{
    return static_cast<std::uint32_t>(bits(raw, 47, otypeShift));
}

bool
Pesbt::internalExp() const
{
    return bits(raw, ieShift) != 0;
}

std::uint32_t
Pesbt::tField() const
{
    return static_cast<std::uint32_t>(bits(raw, 25, tShift));
}

std::uint32_t
Pesbt::bField() const
{
    return static_cast<std::uint32_t>(bits(raw, 13, bShift));
}

void
Pesbt::setPerms(std::uint32_t perms)
{
    raw = insertBits(raw, 63, permsShift, perms);
}

void
Pesbt::setOtype(std::uint32_t otype)
{
    raw = insertBits(raw, 47, otypeShift, otype);
}

void
Pesbt::setBoundsFields(bool ie, std::uint32_t t, std::uint32_t b)
{
    raw = insertBits(raw, ieShift, ieShift, ie ? 1 : 0);
    raw = insertBits(raw, 25, tShift, t);
    raw = insertBits(raw, 13, bShift, b);
}

CcBounds
ccDecode(Pesbt pesbt, Addr addr)
{
    unsigned exp = 0;
    std::uint32_t b14;
    std::uint32_t t_lo; // low 12 bits of T
    if (pesbt.internalExp()) {
        const std::uint32_t t_field = pesbt.tField();
        const std::uint32_t b_field = pesbt.bField();
        exp = ((t_field & 7) << 3) | (b_field & 7);
        if (exp > CcLayout::maxExp)
            exp = CcLayout::maxExp;
        t_lo = t_field & ~7u;
        b14 = b_field & ~7u;
    } else {
        t_lo = pesbt.tField();
        b14 = pesbt.bField();
    }

    // Reconstruct T[13:12] from B plus the length carry; with an internal
    // exponent the implied length MSB is set.
    const std::uint32_t l_carry = (t_lo < (b14 & 0xfffu)) ? 1 : 0;
    const std::uint32_t l_msb = pesbt.internalExp() ? 1 : 0;
    const std::uint32_t t14 =
        t_lo | ((((b14 >> 12) + l_carry + l_msb) & 3u) << 12);

    // Representable-region edge and per-field correction terms.
    const std::uint32_t a_mid =
        static_cast<std::uint32_t>((addr >> exp) & mwMask);
    const std::uint32_t r = (b14 - 0x1000u) & mwMask;
    const int a_hi = (a_mid < r) ? 1 : 0;
    const int cb = ((b14 < r) ? 1 : 0) - a_hi;
    const int ct = (((t14 & mwMask) < r) ? 1 : 0) - a_hi;

    const unsigned span_shift = exp + mw; // may reach 66
    u128 a_top = 0;
    if (span_shift < 64)
        a_top = addr >> span_shift;

    const u128 one = 1;
    u128 base128 = 0;
    u128 top128 = 0;
    if (span_shift >= 66) {
        // Degenerate: entire address space inside one mantissa granule.
        base128 = u128(b14) << exp;
        top128 = u128(t14) << exp;
    } else {
        const u128 region = one << span_shift;
        // Signed block index arithmetic, kept in 128 bits; a negative
        // index wraps (the final 64/65-bit masking folds it away).
        auto blocks = [&](int c) -> u128 {
            if (c >= 0)
                return a_top + static_cast<unsigned>(c);
            return a_top - static_cast<unsigned>(-c);
        };
        base128 = blocks(cb) * region + (u128(b14) << exp);
        top128 = blocks(ct) * region + (u128(t14) << exp);
    }

    // 65-bit top correction (keeps top within [base, base + 2^64]).
    const u128 two64 = one << 64;
    top128 &= (one << 65) - 1;
    base128 &= two64 - 1;
    if (exp < CcLayout::maxExp - 1) {
        const unsigned top_hi2 =
            static_cast<unsigned>((top128 >> 63) & 3);
        const unsigned base_hi =
            static_cast<unsigned>((base128 >> 63) & 1);
        if (static_cast<int>(top_hi2) - static_cast<int>(base_hi) > 1)
            top128 ^= two64;
    }
    if (top128 > two64)
        top128 &= two64 - 1; // fold impossible overshoot

    return CcBounds{static_cast<Addr>(base128), top128};
}

CcEncodeResult
ccEncode(Addr base, u128 top)
{
    const u128 one = 1;
    const u128 two64 = one << 64;
    if (top > two64)
        fatal("ccEncode: top beyond 2^64");
    if (u128(base) > top)
        fatal("ccEncode: base beyond top");

    const u128 length = top - base;

    // Exact, exponent-free encoding for small objects.
    if (length < (one << (mw - 2))) { // < 2^12
        Pesbt pesbt;
        pesbt.setBoundsFields(false,
                              static_cast<std::uint32_t>(top & 0xfffu),
                              static_cast<std::uint32_t>(base & mwMask));
        const CcBounds got = ccDecode(pesbt, base);
        if (got.base == base && got.top == top)
            return CcEncodeResult{pesbt, true};
        // Fall through to the internal-exponent path (possible when the
        // region straddles a 2^14 block such that the carry logic cannot
        // represent it exactly at E=0).
    }

    // Internal exponent: mantissas aligned to 2^(E+3). Search upward from
    // the smallest exponent that can span the length.
    unsigned exp_start = 0;
    if (length > 0) {
        const unsigned need = ceilLog2u128(length);
        exp_start = (need > (mw - 1)) ? (need - (mw - 1)) : 0;
        if (exp_start > 3)
            exp_start -= 3; // conservative underestimate; loop fixes up
        else
            exp_start = 0;
    }

    for (unsigned exp = exp_start; exp <= CcLayout::maxExp; ++exp) {
        const u128 align = one << (exp + 3);
        const Addr rbase =
            static_cast<Addr>(u128(base) & ~(align - 1));
        u128 rtop = (top + align - 1) & ~(align - 1);
        if (rtop > two64)
            rtop = two64;
        if (rtop - rbase > (one << (exp + mw)))
            continue; // rounded length does not fit this exponent

        const std::uint32_t b14 =
            static_cast<std::uint32_t>((rbase >> exp) & mwMask & ~7u);
        const std::uint32_t t_lo =
            static_cast<std::uint32_t>((rtop >> exp) & 0xfffu & ~7u);

        Pesbt pesbt;
        pesbt.setBoundsFields(true, t_lo | ((exp >> 3) & 7u),
                              b14 | (exp & 7u));
        const CcBounds got = ccDecode(pesbt, base);
        if (got.base == rbase && got.top == rtop && got.base <= base &&
            got.top >= top) {
            return CcEncodeResult{
                pesbt, got.base == base && got.top == top};
        }
    }

    panic("ccEncode: no representable encoding for [%llx, +%llx)",
          static_cast<unsigned long long>(base),
          static_cast<unsigned long long>(length));
}

std::uint64_t
ccRequiredAlignment(std::uint64_t length)
{
    if (length < (1ull << 12))
        return 1;
    // With an internal exponent the implied length MSB sits at mantissa
    // bit 12 and the low three mantissa bits hold E, so exponent E
    // represents lengths in [2^12, 2^13 - 2^3] * 2^E only. Find the
    // smallest E whose 2^(E+3)-rounded length stays inside that window
    // (the lower edge holds automatically for the smallest such E).
    for (unsigned exp = 0; exp <= CcLayout::maxExp; ++exp) {
        const u128 align = u128(1) << (exp + 3);
        const u128 rounded = (u128(length) + align - 1) & ~(align - 1);
        if (rounded <= (u128((1u << (mw - 1)) - 8u) << exp))
            return 1ull << (exp + 3);
    }
    return 1ull << (CcLayout::maxExp + 3);
}

bool
ccIsRepresentable(Pesbt pesbt, Addr old_addr, Addr new_addr)
{
    return ccDecode(pesbt, old_addr) == ccDecode(pesbt, new_addr);
}

} // namespace capcheck::cheri
