/**
 * @file
 * CHERI permission bits. The layout follows the 128-bit capability format
 * for 64-bit addresses (Fig. 3 of the paper / CHERI ISAv9): 12
 * architectural permissions plus 4 user-defined ones, 16 bits total.
 */

#ifndef CAPCHECK_CHERI_PERMS_HH
#define CAPCHECK_CHERI_PERMS_HH

#include <cstdint>
#include <string>

namespace capcheck::cheri
{

/** Architectural permission bits (one-hot values). */
enum Perm : std::uint32_t
{
    permGlobal = 1u << 0,        ///< may be stored via non-local caps
    permExecute = 1u << 1,       ///< may be used to fetch instructions
    permLoad = 1u << 2,          ///< may load data
    permStore = 1u << 3,         ///< may store data
    permLoadCap = 1u << 4,       ///< loads preserve capability tags
    permStoreCap = 1u << 5,      ///< stores may write tagged capabilities
    permStoreLocalCap = 1u << 6, ///< may store non-global capabilities
    permSeal = 1u << 7,          ///< may seal capabilities
    permInvoke = 1u << 8,        ///< may be used in CInvoke
    permUnseal = 1u << 9,        ///< may unseal capabilities
    permSetCid = 1u << 10,       ///< may set compartment ID
    permSysRegs = 1u << 11,      ///< may access system registers
};

/** Mask of all architectural permissions. */
inline constexpr std::uint32_t permAllArch = (1u << 12) - 1;

/** Mask of the 4 software-defined permissions (bits 12..15). */
inline constexpr std::uint32_t permAllUser = 0xfu << 12;

/** All permission bits representable in the 16-bit field. */
inline constexpr std::uint32_t permAll = permAllArch | permAllUser;

/** Permissions a data buffer capability for an accelerator would carry. */
inline constexpr std::uint32_t permDataRW =
    permGlobal | permLoad | permStore;

/** Read-only data permissions. */
inline constexpr std::uint32_t permDataRO = permGlobal | permLoad;

/** Write-only data permissions. */
inline constexpr std::uint32_t permDataWO = permGlobal | permStore;

/** Render a permission mask like "GRWE..." for diagnostics. */
std::string permsToString(std::uint32_t perms);

} // namespace capcheck::cheri

#endif // CAPCHECK_CHERI_PERMS_HH
