#include "cheri/perms.hh"

namespace capcheck::cheri
{

std::string
permsToString(std::uint32_t perms)
{
    struct Flag
    {
        std::uint32_t bit;
        char ch;
    };
    static constexpr Flag flags[] = {
        {permGlobal, 'G'},        {permExecute, 'X'},
        {permLoad, 'R'},          {permStore, 'W'},
        {permLoadCap, 'r'},       {permStoreCap, 'w'},
        {permStoreLocalCap, 'l'}, {permSeal, 's'},
        {permInvoke, 'i'},        {permUnseal, 'u'},
        {permSetCid, 'c'},        {permSysRegs, 'S'},
    };

    std::string out;
    for (const auto &flag : flags)
        out.push_back((perms & flag.bit) ? flag.ch : '-');
    for (int i = 0; i < 4; ++i)
        out.push_back((perms & (1u << (12 + i))) ? ('0' + i) : '-');
    return out;
}

} // namespace capcheck::cheri
