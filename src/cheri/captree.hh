/**
 * @file
 * Capability derivation tree (Fig. 4 of the paper). The tree records how
 * every live capability was derived — from the boot-time root down
 * through CPU tasks, accelerator tasks, and their data buffers — and can
 * audit that the whole system respects monotonicity: every node's rights
 * are a subset of its parent's.
 */

#ifndef CAPCHECK_CHERI_CAPTREE_HH
#define CAPCHECK_CHERI_CAPTREE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cheri/capability.hh"

namespace capcheck::cheri
{

/** What a tree node represents in the system of Fig. 4. */
enum class CapNodeKind
{
    root,      ///< OS boot capability
    cpuTask,   ///< a CPU process/thread/function
    accelTask, ///< dedicated use of an accelerator functional unit
    buffer,    ///< a data buffer
};

const char *capNodeKindName(CapNodeKind kind);

/** Handle to a node in a CapTree. */
using CapNodeId = std::uint32_t;

inline constexpr CapNodeId invalidCapNode = ~CapNodeId{0};

/**
 * An audit tree of capability derivations.
 */
class CapTree
{
  public:
    /** Create a tree whose root is the boot capability. */
    CapTree();

    /** The root node (always id 0). */
    CapNodeId rootNode() const { return 0; }

    /**
     * Record a derivation: @p cap was derived from @p parent.
     * @return the new node's id.
     * An accelerator task node may only be created under a CPU task, and
     * a buffer only under a CPU or accelerator task — matching the
     * paper's rule that pointers are always created by CPU tasks.
     */
    CapNodeId derive(CapNodeId parent, CapNodeKind kind,
                     const Capability &cap, std::string label = {});

    /** Remove a leaf node (revocation of that capability). */
    void remove(CapNodeId node);

    const Capability &capOf(CapNodeId node) const;
    CapNodeKind kindOf(CapNodeId node) const;
    CapNodeId parentOf(CapNodeId node) const;
    const std::string &labelOf(CapNodeId node) const;
    std::vector<CapNodeId> childrenOf(CapNodeId node) const;

    /** Number of live nodes. */
    std::size_t size() const;

    /**
     * Audit monotonicity: every live node's capability must be tagged
     * and a subset of its parent's.
     * @return ids of violating nodes (empty means the tree is sound).
     */
    std::vector<CapNodeId> audit() const;

    /** Render the tree as indented text for diagnostics/examples. */
    std::string toString() const;

  private:
    struct Node
    {
        bool live = false;
        CapNodeKind kind = CapNodeKind::root;
        CapNodeId parent = invalidCapNode;
        Capability cap;
        std::string label;
    };

    void checkLive(CapNodeId node) const;
    void renderNode(std::ostream &os, CapNodeId node,
                    unsigned depth) const;

    std::vector<Node> nodes;
    std::size_t liveCount = 0;
};

} // namespace capcheck::cheri

#endif // CAPCHECK_CHERI_CAPTREE_HH
