/**
 * @file
 * The architectural (unpacked) view of a CHERI capability and the
 * monotonic manipulation operations the CPU exposes. Rights can never be
 * increased: every derivation either narrows bounds/permissions or clears
 * the tag.
 */

#ifndef CAPCHECK_CHERI_CAPABILITY_HH
#define CAPCHECK_CHERI_CAPABILITY_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "cheri/compressed.hh"
#include "cheri/perms.hh"

namespace capcheck::cheri
{

/** Kinds of memory access a capability may authorize. */
enum class AccessKind
{
    load,
    store,
    execute,
    loadCap,
    storeCap,
};

/** Why a capability check failed (mirrors CHERI exception causes). */
enum class CapFault
{
    none,
    tagViolation,
    sealViolation,
    permitLoadViolation,
    permitStoreViolation,
    permitExecuteViolation,
    permitLoadCapViolation,
    permitStoreCapViolation,
    boundsViolation,
    representabilityViolation,
};

/** Human-readable fault name. */
const char *capFaultName(CapFault fault);

/** The permission required for an access kind, as a Perm mask. */
std::uint32_t requiredPerms(AccessKind kind);

/**
 * A 128-bit CHERI capability in unpacked (decoded) form, plus the
 * out-of-band tag. The compressed memory representation is produced by
 * compress() and recovered with Capability::fromCompressed().
 */
class Capability
{
  public:
    /** The canonical untagged null capability. */
    Capability() = default;

    /**
     * The almighty root capability covering the whole address space with
     * all permissions; created once at boot by the OS (Fig. 4's root).
     */
    static Capability root();

    /** Unpack a compressed capability loaded from tagged memory. */
    static Capability fromCompressed(bool tag, std::uint64_t pesbt,
                                     std::uint64_t cursor);

    bool tag() const { return _tag; }
    std::uint32_t perms() const { return _perms; }
    std::uint32_t otype() const { return _otype; }
    bool sealed() const { return _otype != otypeUnsealed; }
    Addr base() const { return _base; }
    u128 top() const { return _top; }
    u128 length() const { return _top - _base; }
    Addr addr() const { return _addr; }

    bool isNull() const;
    bool hasPerms(std::uint32_t mask) const;

    /** True when [addr, addr+size) lies inside the bounds. */
    bool inBounds(Addr addr, std::uint64_t size) const;

    /**
     * Full dereference check for an access of @p size bytes at @p addr.
     * @return CapFault::none when the access is authorized.
     */
    CapFault checkAccess(AccessKind kind, Addr addr,
                         std::uint64_t size) const;

    /**
     * Derive a capability with bounds [new_base, new_base + length).
     * Monotonic: requesting bounds outside the source's yields an
     * untagged result. Inexact requests round outward only within the
     * source bounds; with @p exact the result is untagged if rounding
     * would be needed.
     */
    Capability setBounds(Addr new_base, std::uint64_t length,
                         bool exact = false) const;

    /** Derive a capability with permissions masked by @p mask. */
    Capability andPerms(std::uint32_t mask) const;

    /**
     * Move the cursor. An unrepresentable move (one that would change
     * the decoded bounds of the compressed form) clears the tag.
     */
    Capability setAddr(Addr new_addr) const;

    /** Cursor arithmetic via setAddr. */
    Capability incAddr(std::int64_t delta) const;

    /** Seal with an object type (requires permSeal on @p authority). */
    Capability seal(const Capability &authority,
                    std::uint32_t otype) const;

    /** Unseal (requires permUnseal on @p authority, matching otype). */
    Capability unseal(const Capability &authority) const;

    /** Return a copy with the tag cleared. */
    Capability cleared() const;

    /** Compress into the two 64-bit memory words (metadata, cursor). */
    void compress(std::uint64_t &pesbt, std::uint64_t &cursor) const;

    /**
     * True if this capability's rights are a subset of @p parent's:
     * bounds nested, permissions included. Used by the capability-tree
     * audit and the monotonicity property tests.
     */
    bool subsetOf(const Capability &parent) const;

    std::string toString() const;

    bool operator==(const Capability &other) const = default;

  private:
    bool _tag = false;
    std::uint32_t _perms = 0;
    std::uint32_t _otype = otypeUnsealed;
    Addr _base = 0;
    u128 _top = 0;
    Addr _addr = 0;
};

} // namespace capcheck::cheri

#endif // CAPCHECK_CHERI_CAPABILITY_HH
