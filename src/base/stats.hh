/**
 * @file
 * A small gem5-flavoured statistics package. Components own a StatGroup;
 * scalar counters, averages, distributions and derived formulas register
 * themselves with the group and can be dumped as text.
 */

#ifndef CAPCHECK_BASE_STATS_HH
#define CAPCHECK_BASE_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace capcheck::json
{
class JsonWriter;
}

namespace capcheck::stats
{

class StatGroup;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Render the statistic's value(s) into @p os, one line per value. */
    virtual void dump(std::ostream &os) const = 0;

    /** Write the statistic's value(s) as JSON in value position. */
    virtual void dumpJson(json::JsonWriter &w) const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** Monotonic (well, arbitrary) scalar counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { _value += 1; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }

    void dump(std::ostream &os) const override;
    void dumpJson(json::JsonWriter &w) const override;
    void reset() override { _value = 0; }

  private:
    double _value = 0;
};

/** Fixed-bucket distribution over [min, max]. */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup &group, std::string name, std::string desc,
                 double min, double max, std::size_t num_buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t samples() const { return _samples; }
    double mean() const;
    double minSeen() const { return _minSeen; }
    double maxSeen() const { return _maxSeen; }

    void dump(std::ostream &os) const override;
    void dumpJson(json::JsonWriter &w) const override;
    void reset() override;

  private:
    double lo;
    double hi;
    double bucketWidth;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t _samples = 0;
    double sum = 0;
    double _minSeen = 0;
    double _maxSeen = 0;
};

/**
 * Log2-bucketed histogram over non-negative integer samples (cycle
 * counts). Bucket b holds values whose bit width is b, i.e. bucket 0
 * holds {0}, bucket 1 holds {1}, bucket b >= 2 holds [2^(b-1), 2^b).
 * Buckets grow on demand, so the histogram covers the full uint64
 * range without preconfiguration — the right shape for latencies whose
 * tail matters more than their mean. Quantiles are estimated by linear
 * interpolation within the containing bucket, which makes p50/p95/p99
 * deterministic functions of the sample multiset.
 */
class Histogram : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(std::uint64_t v, std::uint64_t count = 1);

    std::uint64_t samples() const { return _samples; }
    double mean() const;
    std::uint64_t minSeen() const { return _minSeen; }
    std::uint64_t maxSeen() const { return _maxSeen; }
    std::uint64_t sum() const { return _sum; }

    /**
     * Estimated value below which fraction @p p of samples fall
     * (0 < p <= 1). Exact for the bucket; linear within it.
     */
    double quantile(double p) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    const std::vector<std::uint64_t> &bucketCounts() const
    {
        return buckets;
    }

    /** @{ Inclusive-low / exclusive-high bounds of bucket @p b. */
    static std::uint64_t bucketLow(std::size_t b);
    static std::uint64_t bucketHigh(std::size_t b);
    /** @} */

    void dump(std::ostream &os) const override;
    void dumpJson(json::JsonWriter &w) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t _samples = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _minSeen = 0;
    std::uint64_t _maxSeen = 0;
};

/** Value computed on demand from other state (e.g. a ratio of scalars). */
class Formula : public StatBase
{
  public:
    Formula(StatGroup &group, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn ? fn() : 0; }

    void dump(std::ostream &os) const override;
    void dumpJson(json::JsonWriter &w) const override;
    void reset() override {}

  private:
    std::function<double()> fn;
};

/**
 * A named collection of statistics. Groups nest; dump() walks the tree.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Fully qualified dotted path from the root group. */
    std::string path() const;

    void addStat(StatBase *stat);
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    /**
     * Find a statistic by leaf name or dotted path. A path descends
     * child groups ("capchecker.cacheHits"); for convenience a leading
     * segment equal to this group's own name is skipped, so the fully
     * qualified "soc.capchecker.cacheHits" resolves from the "soc"
     * root too. Returns nullptr if any segment is absent.
     */
    const StatBase *find(const std::string &path) const;

    /** Direct child group named @p name; nullptr if absent. */
    const StatGroup *findChild(const std::string &name) const;

    /** Dump this group's stats and all children, prefixed with paths. */
    void dump(std::ostream &os) const;

    /**
     * Write the group as a JSON object in value position: one member
     * per stat ({"value": ..., "desc": ...} leaves) plus one nested
     * object per child group.
     */
    void dumpJson(json::JsonWriter &w) const;

    /** Recursively reset all stats. */
    void resetAll();

  private:
    std::string _name;
    StatGroup *parent;
    std::vector<StatBase *> statList;
    std::vector<StatGroup *> children;
};

} // namespace capcheck::stats

#endif // CAPCHECK_BASE_STATS_HH
