#include "base/json_value.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/json.hh"

namespace capcheck::json
{

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (_kind != Kind::object)
        return nullptr;
    for (const Member &m : _members) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const JsonValue *
JsonValue::at(const std::string &dotted_path) const
{
    const JsonValue *cur = this;
    std::size_t start = 0;
    while (cur) {
        const auto dot = dotted_path.find('.', start);
        const std::string key =
            dotted_path.substr(start, dot == std::string::npos
                                          ? std::string::npos
                                          : dot - start);
        cur = cur->get(key);
        if (dot == std::string::npos)
            return cur;
        start = dot + 1;
    }
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j._kind = Kind::boolean;
    j._bool = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue j;
    j._kind = Kind::number;
    j._number = v;
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j._kind = Kind::string;
    j._string = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> elems)
{
    JsonValue j;
    j._kind = Kind::array;
    j._elements = std::move(elems);
    return j;
}

JsonValue
JsonValue::makeObject(std::vector<Member> members)
{
    JsonValue j;
    j._kind = Kind::object;
    j._members = std::move(members);
    return j;
}

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text(text), error(error)
    {
    }

    std::optional<JsonValue>
    document()
    {
        skipWs();
        auto v = value();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos != text.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (error && error->empty()) {
            std::ostringstream os;
            os << why << " at byte " << pos;
            *error = os.str();
        }
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    std::optional<std::string>
    string()
    {
        if (pos >= text.size() || text[pos] != '"') {
            fail("expected string");
            return std::nullopt;
        }
        ++pos;
        std::string out;
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    fail("truncated \\u escape");
                    return std::nullopt;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape digit");
                        return std::nullopt;
                    }
                }
                // UTF-8 encode (no surrogate-pair recombination; the
                // writer never emits astral-plane escapes).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fail("unknown escape");
                return std::nullopt;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue>
    number()
    {
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+'))
            ++pos;
        const std::string tok = text.substr(start, pos - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0') {
            fail("bad number '" + tok + "'");
            return std::nullopt;
        }
        return JsonValue::makeNumber(v);
    }

    std::optional<JsonValue>
    value()
    {
        skipWs();
        if (pos >= text.size()) {
            fail("unexpected end of document");
            return std::nullopt;
        }
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            std::vector<JsonValue::Member> members;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return JsonValue::makeObject(std::move(members));
            }
            while (true) {
                skipWs();
                auto key = string();
                if (!key)
                    return std::nullopt;
                skipWs();
                if (pos >= text.size() || text[pos] != ':') {
                    fail("expected ':' after object key");
                    return std::nullopt;
                }
                ++pos;
                auto member = value();
                if (!member)
                    return std::nullopt;
                members.emplace_back(std::move(*key),
                                     std::move(*member));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    return JsonValue::makeObject(std::move(members));
                }
                fail("expected ',' or '}' in object");
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos;
            std::vector<JsonValue> elems;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return JsonValue::makeArray(std::move(elems));
            }
            while (true) {
                auto elem = value();
                if (!elem)
                    return std::nullopt;
                elems.push_back(std::move(*elem));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    return JsonValue::makeArray(std::move(elems));
                }
                fail("expected ',' or ']' in array");
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = string();
            if (!s)
                return std::nullopt;
            return JsonValue::makeString(std::move(*s));
        }
        if (literal("true"))
            return JsonValue::makeBool(true);
        if (literal("false"))
            return JsonValue::makeBool(false);
        if (literal("null"))
            return JsonValue::makeNull();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return number();
        fail(std::string("unexpected character '") + c + "'");
        return std::nullopt;
    }

    const std::string &text;
    std::string *error;
    std::size_t pos = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).document();
}

std::optional<JsonValue>
parseJsonFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::stringstream body;
    body << is.rdbuf();
    return parseJson(body.str(), error);
}

void
writeJsonValue(JsonWriter &w, const JsonValue &v)
{
    switch (v.kind()) {
      case JsonValue::Kind::null:
        w.nullValue();
        return;
      case JsonValue::Kind::boolean:
        w.value(v.asBool());
        return;
      case JsonValue::Kind::number: {
        const double d = v.asNumber();
        // Only the in-range integral doubles take the integer path;
        // the cast is undefined outside int64's range.
        if (d >= -9.0e18 && d <= 9.0e18 &&
            static_cast<double>(static_cast<std::int64_t>(d)) == d) {
            w.value(static_cast<std::int64_t>(d));
        } else {
            w.value(d);
        }
        return;
      }
      case JsonValue::Kind::string:
        w.value(v.asString());
        return;
      case JsonValue::Kind::array:
        w.beginArray();
        for (const JsonValue &elem : v.elements())
            writeJsonValue(w, elem);
        w.endArray();
        return;
      case JsonValue::Kind::object:
        w.beginObject();
        for (const JsonValue::Member &m : v.members()) {
            w.key(m.first);
            writeJsonValue(w, m.second);
        }
        w.endObject();
        return;
    }
}

std::string
jsonValueToText(const JsonValue &v, unsigned indent_width)
{
    std::ostringstream os;
    JsonWriter w(os, indent_width);
    writeJsonValue(w, v);
    return os.str();
}

} // namespace capcheck::json
