/**
 * @file
 * gem5-style typed probe points. A component exposes ProbePoint<T>
 * members at interesting micro-architectural moments (a check decided,
 * a task finished, a cycle advanced); observers attach listeners
 * without the component knowing who is watching. The design goal is
 * near-zero cost when nothing is attached: notify() is a single
 * empty-vector branch, and the payload expression is never evaluated
 * through std::function machinery on the fast path.
 *
 * Listeners fire in attach order and may be detached individually by
 * the handle attach() returned. Probe points are simulation-local (one
 * SocSystem per thread owns its components), so no locking is needed.
 */

#ifndef CAPCHECK_BASE_PROBE_HH
#define CAPCHECK_BASE_PROBE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace capcheck::probe
{

/** Handle identifying one attached listener (for detach()). */
using ListenerHandle = std::uint64_t;

/** Sentinel returned by helpers when nothing was attached. */
inline constexpr ListenerHandle invalidListener = 0;

/**
 * Type-erased base so diagnostics can enumerate a component's probe
 * points uniformly (name + listener count) without knowing T.
 */
class ProbePointBase
{
  public:
    explicit ProbePointBase(std::string name);
    virtual ~ProbePointBase();

    ProbePointBase(const ProbePointBase &) = delete;
    ProbePointBase &operator=(const ProbePointBase &) = delete;

    /**
     * Movable so components owning probe points stay movable;
     * listeners (and their handles) follow the point to its new home.
     */
    ProbePointBase(ProbePointBase &&) = default;
    ProbePointBase &operator=(ProbePointBase &&) = default;

    const std::string &name() const { return _name; }

    /** Number of currently attached listeners. */
    virtual std::size_t numListeners() const = 0;

  private:
    std::string _name;
};

/**
 * A typed probe point. The component calls notify(payload) at the
 * instrumented moment; every attached listener receives a const
 * reference to the payload. Payloads are borrowed for the duration of
 * the call only — listeners must copy what they keep.
 */
template <typename Arg>
class ProbePoint : public ProbePointBase
{
  public:
    using Callback = std::function<void(const Arg &)>;

    using ProbePointBase::ProbePointBase;

    /**
     * Attach @p cb; listeners fire in attach order.
     * @return a handle for detach().
     */
    ListenerHandle
    attach(Callback cb)
    {
        const ListenerHandle handle = nextHandle++;
        entries.push_back(Entry{handle, std::move(cb)});
        return handle;
    }

    /**
     * Detach the listener behind @p handle.
     * @return false when the handle is unknown (already detached).
     */
    bool
    detach(ListenerHandle handle)
    {
        for (auto it = entries.begin(); it != entries.end(); ++it) {
            if (it->handle == handle) {
                entries.erase(it);
                return true;
            }
        }
        return false;
    }

    /** Drop every listener. */
    void detachAll() { entries.clear(); }

    std::size_t numListeners() const override { return entries.size(); }

    /** True when at least one listener is attached. */
    bool connected() const { return !entries.empty(); }

    /**
     * Fire the probe. One branch when nothing is attached — cheap
     * enough for per-cycle and per-request call sites.
     */
    void
    notify(const Arg &arg) const
    {
        if (entries.empty())
            return;
        for (const Entry &entry : entries)
            entry.cb(arg);
    }

  private:
    struct Entry
    {
        ListenerHandle handle;
        Callback cb;
    };

    std::vector<Entry> entries;
    ListenerHandle nextHandle = 1;
};

} // namespace capcheck::probe

#endif // CAPCHECK_BASE_PROBE_HH
