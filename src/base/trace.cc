#include "base/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace capcheck::trace
{

namespace
{

std::vector<DebugFlag *> &
registry()
{
    static std::vector<DebugFlag *> flags;
    return flags;
}

} // namespace

DebugFlag::DebugFlag(const char *name) : _name(name)
{
    registry().push_back(this);
}

const std::vector<DebugFlag *> &
DebugFlag::all()
{
    return registry();
}

bool
DebugFlag::enableByName(const std::string &name)
{
    bool found = false;
    for (DebugFlag *flag : registry()) {
        if (name == "All" || name == flag->_name) {
            flag->enable();
            found = true;
        }
    }
    return found;
}

void
DebugFlag::listFlags(std::ostream &os)
{
    os << "registered debug flags:\n";
    for (const DebugFlag *flag : registry())
        os << "  " << flag->_name << "\n";
    os << "  All (enables every flag)\n";
}

void
DebugFlag::applyList(const std::string &list)
{
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (name == "?") {
            std::ostringstream os;
            listFlags(os);
            std::fputs(os.str().c_str(), stderr);
        } else if (!name.empty() && !enableByName(name)) {
            warn("unknown debug flag '%s'", name.c_str());
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

void
DebugFlag::applyEnvironment()
{
    const char *env = std::getenv("CAPCHECK_DEBUG");
    if (!env)
        return;
    applyList(env);
}

void
emit(const DebugFlag &flag, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", flag.name(), message.c_str());
}

} // namespace capcheck::trace

namespace capcheck::debug
{

trace::DebugFlag capchecker("CapChecker");
trace::DebugFlag driver("Driver");
trace::DebugFlag accel("Accel");
trace::DebugFlag mem("Mem");
trace::DebugFlag security("Security");

} // namespace capcheck::debug
