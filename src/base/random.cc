#include "base/random.hh"

#include <cmath>

namespace capcheck
{

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k) const
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace capcheck
