/**
 * @file
 * Minimal streaming JSON writer. The harness serializes run results
 * and sweep manifests with it, and the statistics package dumps
 * machine-readable stat trees through it. Output is deterministic:
 * keys appear in the order they are written and doubles are formatted
 * with a fixed round-trippable format, so two identical result sets
 * serialize to byte-identical documents regardless of thread count.
 */

#ifndef CAPCHECK_BASE_JSON_HH
#define CAPCHECK_BASE_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace capcheck::json
{

/** Escape @p s for use inside a JSON string literal (no quotes). */
std::string escape(const std::string &s);

/** Format a double the way the writer does (round-trippable, stable). */
std::string formatDouble(double v);

/**
 * Streaming writer with automatic commas and indentation. Usage:
 *
 *     JsonWriter w(os);
 *     w.beginObject();
 *     w.key("cycles").value(std::uint64_t{42});
 *     w.key("nested").beginArray();
 *     w.value("a").value("b");
 *     w.endArray();
 *     w.endObject();
 *
 * Structural misuse (e.g. a value without a key inside an object)
 * triggers fatal(); the writer is a serialization tool, not a parser.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, unsigned indent_width = 2);

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write the key of the next object member. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t{v}); }
    JsonWriter &value(int v) { return value(std::int64_t{v}); }
    JsonWriter &nullValue();

    /** Splice a pre-rendered JSON fragment in value position. */
    JsonWriter &rawValue(const std::string &fragment);

    /** Depth of currently open containers (0 once the doc is done). */
    unsigned depth() const { return _depth; }

  private:
    enum class Context : std::uint8_t { object, array };

    void beforeValue();
    void beforeContainer(Context ctx);
    void newlineIndent();
    void push(Context ctx);
    void pop(Context ctx);

    std::ostream &os;
    unsigned indentWidth;
    unsigned _depth = 0;
    /** One entry per open container. */
    std::string contexts;
    /** Member/element already written at each open level. */
    std::string hasMember;
    bool keyPending = false;
};

} // namespace capcheck::json

#endif // CAPCHECK_BASE_JSON_HH
