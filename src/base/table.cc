#include "base/table.hh"

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"

namespace capcheck
{

TextTable::TextTable(std::vector<std::string> header)
    : header(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header.size())
        panic("TextTable row arity %zu != header arity %zu", row.size(),
              header.size());
    body.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c]
               << std::string(width[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    print_row(header);
    os << "|";
    for (std::size_t c = 0; c < header.size(); ++c)
        os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : body)
        print_row(row);
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPercent(double ratio, int digits)
{
    return fmtDouble(ratio * 100.0, digits) + "%";
}

std::string
fmtSpeedup(double v, int digits)
{
    return fmtDouble(v, digits) + "x";
}

} // namespace capcheck
