/**
 * @file
 * Bit-manipulation helpers used by the capability codec and the
 * protection hardware models.
 */

#ifndef CAPCHECK_BASE_BITFIELD_HH
#define CAPCHECK_BASE_BITFIELD_HH

#include <bit>
#include <cstdint>

#include "base/types.hh"

namespace capcheck
{

/** Mask with the low @p n bits set (n may be 0..64). */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [first, last] (inclusive, first >= last) of @p val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned first, unsigned last)
{
    return (val >> last) & mask(first - last + 1);
}

/** Extract a single bit of @p val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned bit)
{
    return (val >> bit) & 1;
}

/**
 * Insert @p src into bits [first, last] of @p dst and return the result.
 */
constexpr std::uint64_t
insertBits(std::uint64_t dst, unsigned first, unsigned last,
           std::uint64_t src)
{
    const std::uint64_t m = mask(first - last + 1);
    return (dst & ~(m << last)) | ((src & m) << last);
}

/** Sign-extend the low @p n bits of @p val to 64 bits. */
constexpr std::int64_t
sext(std::uint64_t val, unsigned n)
{
    const unsigned shift = 64 - n;
    return static_cast<std::int64_t>(val << shift) >> shift;
}

/** True when @p val is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Round @p val up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t val, std::uint64_t align)
{
    return (val + align - 1) & ~(align - 1);
}

/** Round @p val down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundDown(std::uint64_t val, std::uint64_t align)
{
    return val & ~(align - 1);
}

/** Ceil(log2(val)) for val >= 1. */
constexpr unsigned
ceilLog2(std::uint64_t val)
{
    return val <= 1 ? 0
                    : 64 - static_cast<unsigned>(std::countl_zero(val - 1));
}

/** Floor(log2(val)) for val >= 1. */
constexpr unsigned
floorLog2(std::uint64_t val)
{
    return 63 - static_cast<unsigned>(std::countl_zero(val));
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace capcheck

#endif // CAPCHECK_BASE_BITFIELD_HH
