#include "base/stats.hh"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <limits>

#include "base/json.hh"
#include "base/logging.hh"

namespace capcheck::stats
{

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.addStat(this);
}

void
Scalar::dump(std::ostream &os) const
{
    os << _value;
}

void
Scalar::dumpJson(json::JsonWriter &w) const
{
    w.value(_value);
}

Distribution::Distribution(StatGroup &group, std::string name,
                           std::string desc, double min, double max,
                           std::size_t num_buckets)
    : StatBase(group, std::move(name), std::move(desc)),
      lo(min), hi(max),
      bucketWidth((max - min) / static_cast<double>(num_buckets)),
      buckets(num_buckets, 0)
{
    if (num_buckets == 0 || max <= min)
        panic("Distribution %s: bad bucket configuration", this->name());
    reset();
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (_samples == 0) {
        _minSeen = v;
        _maxSeen = v;
    } else {
        _minSeen = std::min(_minSeen, v);
        _maxSeen = std::max(_maxSeen, v);
    }
    _samples += count;
    sum += v * static_cast<double>(count);

    if (v < lo) {
        underflow += count;
    } else if (v >= hi) {
        overflow += count;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / bucketWidth);
        idx = std::min(idx, buckets.size() - 1);
        buckets[idx] += count;
    }
}

double
Distribution::mean() const
{
    return _samples ? sum / static_cast<double>(_samples) : 0;
}

void
Distribution::dump(std::ostream &os) const
{
    os << "samples=" << _samples << " mean=" << mean()
       << " min=" << _minSeen << " max=" << _maxSeen;
}

void
Distribution::dumpJson(json::JsonWriter &w) const
{
    w.beginObject();
    w.key("samples").value(_samples);
    w.key("mean").value(mean());
    w.key("min").value(_minSeen);
    w.key("max").value(_maxSeen);
    // Bucket geometry, so the document round-trips losslessly: bucket
    // i covers [lo + i*width, lo + (i+1)*width), with out-of-range
    // samples in the underflow/overflow counts.
    w.key("lo").value(lo);
    w.key("hi").value(hi);
    w.key("underflow").value(underflow);
    w.key("overflow").value(overflow);
    w.key("buckets").beginArray();
    for (const std::uint64_t b : buckets)
        w.value(b);
    w.endArray();
    w.endObject();
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    underflow = 0;
    overflow = 0;
    _samples = 0;
    sum = 0;
    _minSeen = 0;
    _maxSeen = 0;
}

void
Histogram::sample(std::uint64_t v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (_samples == 0) {
        _minSeen = v;
        _maxSeen = v;
    } else {
        _minSeen = std::min(_minSeen, v);
        _maxSeen = std::max(_maxSeen, v);
    }
    _samples += count;
    _sum += v * count;

    const std::size_t bucket = static_cast<std::size_t>(
        std::bit_width(v));
    if (bucket >= buckets.size())
        buckets.resize(bucket + 1, 0);
    buckets[bucket] += count;
}

double
Histogram::mean() const
{
    return _samples ? static_cast<double>(_sum) /
                          static_cast<double>(_samples)
                    : 0;
}

std::uint64_t
Histogram::bucketLow(std::size_t b)
{
    return b <= 1 ? (b == 0 ? 0 : 1) : std::uint64_t{1} << (b - 1);
}

std::uint64_t
Histogram::bucketHigh(std::size_t b)
{
    return b == 0 ? 1 : std::uint64_t{1} << b;
}

double
Histogram::quantile(double p) const
{
    if (_samples == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    // The p-quantile is the value of the ceil(p * N)-th sample (1-based)
    // in sorted order; interpolate linearly inside its bucket.
    const double target = p * static_cast<double>(_samples);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        const auto before = static_cast<double>(seen);
        seen += buckets[b];
        if (static_cast<double>(seen) < target)
            continue;
        // Clip the bucket's nominal range to the observed min/max so
        // single-bucket tails do not overshoot maxSeen.
        const double lo = std::max<double>(
            static_cast<double>(bucketLow(b)),
            static_cast<double>(_minSeen));
        const double hi = std::min<double>(
            static_cast<double>(bucketHigh(b)),
            static_cast<double>(_maxSeen) + 1);
        const double frac =
            (target - before) / static_cast<double>(buckets[b]);
        return lo + (hi - lo) * frac;
    }
    return static_cast<double>(_maxSeen);
}

void
Histogram::dump(std::ostream &os) const
{
    os << "samples=" << _samples << " mean=" << mean()
       << " min=" << _minSeen << " max=" << _maxSeen
       << " p50=" << p50() << " p95=" << p95() << " p99=" << p99();
}

void
Histogram::dumpJson(json::JsonWriter &w) const
{
    w.beginObject();
    w.key("samples").value(_samples);
    w.key("sum").value(_sum);
    w.key("mean").value(mean());
    w.key("min").value(_minSeen);
    w.key("max").value(_maxSeen);
    w.key("p50").value(p50());
    w.key("p95").value(p95());
    w.key("p99").value(p99());
    w.key("buckets").beginArray();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        w.beginObject();
        w.key("lo").value(bucketLow(b));
        w.key("hi").value(bucketHigh(b));
        w.key("count").value(buckets[b]);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
Histogram::reset()
{
    buckets.clear();
    _samples = 0;
    _sum = 0;
    _minSeen = 0;
    _maxSeen = 0;
}

Formula::Formula(StatGroup &group, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(group, std::move(name), std::move(desc)), fn(std::move(fn))
{
}

void
Formula::dump(std::ostream &os) const
{
    os << value();
}

void
Formula::dumpJson(json::JsonWriter &w) const
{
    w.value(value());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), parent(parent)
{
    if (parent)
        parent->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent)
        parent->removeChild(this);
}

std::string
StatGroup::path() const
{
    if (!parent || parent->path().empty())
        return _name;
    return parent->path() + "." + _name;
}

void
StatGroup::addStat(StatBase *stat)
{
    statList.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    std::erase(children, child);
}

const StatGroup *
StatGroup::findChild(const std::string &name) const
{
    for (const auto *child : children) {
        if (child->name() == name)
            return child;
    }
    return nullptr;
}

const StatBase *
StatGroup::find(const std::string &path) const
{
    const auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto *stat : statList) {
            if (stat->name() == path)
                return stat;
        }
        return nullptr;
    }

    const std::string head = path.substr(0, dot);
    const std::string rest = path.substr(dot + 1);
    if (const StatGroup *child = findChild(head))
        return child->find(rest);
    // Tolerate a fully qualified path starting at this group itself,
    // so root->find("soc.capchecker.cacheHits") works on root "soc".
    if (head == _name)
        return find(rest);
    return nullptr;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = path().empty() ? "" : path() + ".";
    for (const auto *stat : statList) {
        os << std::left << std::setw(48) << (prefix + stat->name()) << " ";
        stat->dump(os);
        os << "   # " << stat->desc() << "\n";
    }
    for (const auto *child : children)
        child->dump(os);
}

void
StatGroup::dumpJson(json::JsonWriter &w) const
{
    w.beginObject();
    for (const auto *stat : statList) {
        w.key(stat->name());
        stat->dumpJson(w);
    }
    for (const auto *child : children) {
        w.key(child->name());
        child->dumpJson(w);
    }
    w.endObject();
}

void
StatGroup::resetAll()
{
    for (auto *stat : statList)
        stat->reset();
    for (auto *child : children)
        child->resetAll();
}

} // namespace capcheck::stats
