#include "base/stats.hh"

#include <algorithm>
#include <iomanip>
#include <limits>

#include "base/json.hh"
#include "base/logging.hh"

namespace capcheck::stats
{

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.addStat(this);
}

void
Scalar::dump(std::ostream &os) const
{
    os << _value;
}

void
Scalar::dumpJson(json::JsonWriter &w) const
{
    w.value(_value);
}

Distribution::Distribution(StatGroup &group, std::string name,
                           std::string desc, double min, double max,
                           std::size_t num_buckets)
    : StatBase(group, std::move(name), std::move(desc)),
      lo(min), hi(max),
      bucketWidth((max - min) / static_cast<double>(num_buckets)),
      buckets(num_buckets, 0)
{
    if (num_buckets == 0 || max <= min)
        panic("Distribution %s: bad bucket configuration", this->name());
    reset();
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (_samples == 0) {
        _minSeen = v;
        _maxSeen = v;
    } else {
        _minSeen = std::min(_minSeen, v);
        _maxSeen = std::max(_maxSeen, v);
    }
    _samples += count;
    sum += v * static_cast<double>(count);

    if (v < lo) {
        underflow += count;
    } else if (v >= hi) {
        overflow += count;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / bucketWidth);
        idx = std::min(idx, buckets.size() - 1);
        buckets[idx] += count;
    }
}

double
Distribution::mean() const
{
    return _samples ? sum / static_cast<double>(_samples) : 0;
}

void
Distribution::dump(std::ostream &os) const
{
    os << "samples=" << _samples << " mean=" << mean()
       << " min=" << _minSeen << " max=" << _maxSeen;
}

void
Distribution::dumpJson(json::JsonWriter &w) const
{
    w.beginObject();
    w.key("samples").value(_samples);
    w.key("mean").value(mean());
    w.key("min").value(_minSeen);
    w.key("max").value(_maxSeen);
    w.key("underflow").value(underflow);
    w.key("overflow").value(overflow);
    w.key("buckets").beginArray();
    for (const std::uint64_t b : buckets)
        w.value(b);
    w.endArray();
    w.endObject();
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    underflow = 0;
    overflow = 0;
    _samples = 0;
    sum = 0;
    _minSeen = 0;
    _maxSeen = 0;
}

Formula::Formula(StatGroup &group, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(group, std::move(name), std::move(desc)), fn(std::move(fn))
{
}

void
Formula::dump(std::ostream &os) const
{
    os << value();
}

void
Formula::dumpJson(json::JsonWriter &w) const
{
    w.value(value());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), parent(parent)
{
    if (parent)
        parent->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent)
        parent->removeChild(this);
}

std::string
StatGroup::path() const
{
    if (!parent || parent->path().empty())
        return _name;
    return parent->path() + "." + _name;
}

void
StatGroup::addStat(StatBase *stat)
{
    statList.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    std::erase(children, child);
}

const StatBase *
StatGroup::find(const std::string &leaf) const
{
    for (const auto *stat : statList) {
        if (stat->name() == leaf)
            return stat;
    }
    return nullptr;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = path().empty() ? "" : path() + ".";
    for (const auto *stat : statList) {
        os << std::left << std::setw(48) << (prefix + stat->name()) << " ";
        stat->dump(os);
        os << "   # " << stat->desc() << "\n";
    }
    for (const auto *child : children)
        child->dump(os);
}

void
StatGroup::dumpJson(json::JsonWriter &w) const
{
    w.beginObject();
    for (const auto *stat : statList) {
        w.key(stat->name());
        stat->dumpJson(w);
    }
    for (const auto *child : children) {
        w.key(child->name());
        child->dumpJson(w);
    }
    w.endObject();
}

void
StatGroup::resetAll()
{
    for (auto *stat : statList)
        stat->reset();
    for (auto *child : children)
        child->resetAll();
}

} // namespace capcheck::stats
