/**
 * @file
 * Minimal JSON document model and recursive-descent parser — the read
 * side of base/json.hh's streaming writer. The harness and the
 * capstat tool load stats/latency/flight artefacts back with it.
 * Object members preserve document order (the writer emits them in a
 * deterministic order; diffing relies on stable iteration) and lookup
 * is linear, which is fine for stat-tree sized documents.
 */

#ifndef CAPCHECK_BASE_JSON_VALUE_HH
#define CAPCHECK_BASE_JSON_VALUE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace capcheck::json
{

class JsonValue
{
  public:
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::null; }
    bool isBool() const { return _kind == Kind::boolean; }
    bool isNumber() const { return _kind == Kind::number; }
    bool isString() const { return _kind == Kind::string; }
    bool isArray() const { return _kind == Kind::array; }
    bool isObject() const { return _kind == Kind::object; }

    bool asBool() const { return _bool; }
    double asNumber() const { return _number; }
    const std::string &asString() const { return _string; }
    const std::vector<JsonValue> &elements() const { return _elements; }
    const std::vector<Member> &members() const { return _members; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /**
     * Descend a dotted path of object keys ("flights.endToEnd.p99");
     * nullptr as soon as a segment is absent.
     */
    const JsonValue *at(const std::string &dotted_path) const;

    /** @{ Construction helpers for tests and tools. */
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> elems);
    static JsonValue makeObject(std::vector<Member> members);
    /** @} */

  private:
    Kind _kind = Kind::null;
    bool _bool = false;
    double _number = 0;
    std::string _string;
    std::vector<JsonValue> _elements;
    std::vector<Member> _members;
};

/**
 * Parse @p text as one JSON document. Returns std::nullopt on any
 * syntax error; when @p error is non-null it receives a one-line
 * description with the byte offset.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

/** parseJson over a file's contents; nullopt if unreadable/invalid. */
std::optional<JsonValue> parseJsonFile(const std::string &path,
                                       std::string *error = nullptr);

class JsonWriter;

/**
 * Serialize @p v through the streaming writer (in value position).
 * Numbers that are exactly representable as integers are written
 * without a fraction, so parse -> write -> parse is lossless and a
 * second write is byte-identical to the first.
 */
void writeJsonValue(JsonWriter &w, const JsonValue &v);

/** writeJsonValue into a string (a complete document). */
std::string jsonValueToText(const JsonValue &v,
                            unsigned indent_width = 2);

} // namespace capcheck::json

#endif // CAPCHECK_BASE_JSON_VALUE_HH
