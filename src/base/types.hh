/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef CAPCHECK_BASE_TYPES_HH
#define CAPCHECK_BASE_TYPES_HH

#include <cstdint>

namespace capcheck
{

/** A physical (or, here, flat shared) memory address. */
using Addr = std::uint64_t;

/** A duration or timestamp measured in clock cycles. */
using Cycles = std::uint64_t;

/** 128-bit unsigned integer, used for 65-bit capability tops. */
using u128 = unsigned __int128;

/** Identifier of a computing task, CPU- or accelerator-hosted. */
using TaskId = std::uint32_t;

/** Identifier of an object (buffer) within a task. */
using ObjectId = std::uint32_t;

/** Identifier of a hardware master port on the interconnect. */
using PortId = std::uint32_t;

/** Sentinel for "no task". */
inline constexpr TaskId invalidTaskId = ~TaskId{0};

/** Sentinel for "no object". */
inline constexpr ObjectId invalidObjectId = ~ObjectId{0};

} // namespace capcheck

#endif // CAPCHECK_BASE_TYPES_HH
