#include "base/probe.hh"

namespace capcheck::probe
{

ProbePointBase::ProbePointBase(std::string name) : _name(std::move(name))
{
}

ProbePointBase::~ProbePointBase() = default;

} // namespace capcheck::probe
