/**
 * @file
 * gem5-style debug tracing. Components print through DPRINTF-like
 * macros gated on named debug flags; flags are enabled
 * programmatically or through the CAPCHECK_DEBUG environment variable
 * (comma-separated list, e.g. CAPCHECK_DEBUG=CapChecker,Driver).
 * Unknown names warn; CAPCHECK_DEBUG=? lists every registered flag.
 * Disabled flags cost one branch.
 */

#ifndef CAPCHECK_BASE_TRACE_HH
#define CAPCHECK_BASE_TRACE_HH

#include <ostream>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace capcheck::trace
{

/** A named debug flag; define one per subsystem at namespace scope. */
class DebugFlag
{
  public:
    explicit DebugFlag(const char *name);

    bool enabled() const { return _enabled; }
    const char *name() const { return _name; }

    void
    enable(bool on = true)
    {
        _enabled = on;
    }

    /** All registered flags. */
    static const std::vector<DebugFlag *> &all();

    /** Enable a flag by name (or "All"). @return false if unknown. */
    static bool enableByName(const std::string &name);

    /** Print every registered flag, one per line. */
    static void listFlags(std::ostream &os);

    /**
     * Apply a comma-separated flag list ("CapChecker,Driver", "All").
     * Unknown names warn; a "?" entry lists the registered flags on
     * stderr instead of enabling anything.
     */
    static void applyList(const std::string &list);

    /** applyList() on the CAPCHECK_DEBUG environment variable. */
    static void applyEnvironment();

  private:
    const char *_name;
    bool _enabled = false;
};

/** Emit one trace line: "<flag>: <message>". */
void emit(const DebugFlag &flag, const std::string &message);

} // namespace capcheck::trace

/**
 * Print when @p flag is enabled. printf-style.
 * Usage: CAPCHECK_DPRINTF(debug::capchecker, "denied %s", ...);
 */
#define CAPCHECK_DPRINTF(flag, ...)                                       \
    do {                                                                  \
        if ((flag).enabled()) {                                          \
            ::capcheck::trace::emit(                                     \
                (flag),                                                  \
                ::capcheck::detail::formatString(__VA_ARGS__));          \
        }                                                                 \
    } while (0)

namespace capcheck::debug
{

/** @{ Debug flags for the simulator's subsystems. */
extern trace::DebugFlag capchecker;
extern trace::DebugFlag driver;
extern trace::DebugFlag accel;
extern trace::DebugFlag mem;
extern trace::DebugFlag security;
/** @} */

} // namespace capcheck::debug

#endif // CAPCHECK_BASE_TRACE_HH
