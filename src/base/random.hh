/**
 * @file
 * Deterministic pseudo-random number generation. All stochastic behaviour
 * in the simulator (workload data, mixed-system sampling, attack fuzzing)
 * flows from explicitly seeded generators so every run is reproducible.
 */

#ifndef CAPCHECK_BASE_RANDOM_HH
#define CAPCHECK_BASE_RANDOM_HH

#include <array>
#include <cstdint>

namespace capcheck
{

/**
 * SplitMix64: tiny generator used to seed Xoshiro and for cheap hashing.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** 1.0 (Blackman & Vigna). High-quality, fast, deterministic.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound) without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t rotl(std::uint64_t x, int k) const;

    std::array<std::uint64_t, 4> s;
};

} // namespace capcheck

#endif // CAPCHECK_BASE_RANDOM_HH
