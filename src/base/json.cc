#include "base/json.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace capcheck::json
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        return "null";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shortest representation that round-trips.
    for (const int precision : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                13, 14, 15, 16}) {
        char probe[64];
        std::snprintf(probe, sizeof(probe), "%.*g", precision, v);
        double back = 0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

JsonWriter::JsonWriter(std::ostream &os, unsigned indent_width)
    : os(os), indentWidth(indent_width)
{
}

void
JsonWriter::newlineIndent()
{
    os << '\n';
    for (unsigned i = 0; i < _depth * indentWidth; ++i)
        os << ' ';
}

void
JsonWriter::push(Context ctx)
{
    contexts += ctx == Context::object ? 'o' : 'a';
    hasMember += '0';
    ++_depth;
}

void
JsonWriter::pop(Context ctx)
{
    if (_depth == 0)
        fatal("JsonWriter: close with no open container");
    const char want = ctx == Context::object ? 'o' : 'a';
    if (contexts.back() != want)
        fatal("JsonWriter: mismatched container close");
    const bool had = hasMember.back() == '1';
    contexts.pop_back();
    hasMember.pop_back();
    --_depth;
    if (had)
        newlineIndent();
}

void
JsonWriter::beforeValue()
{
    if (_depth == 0)
        return; // top-level value
    if (contexts.back() == 'o') {
        if (!keyPending)
            fatal("JsonWriter: object member written without a key");
        keyPending = false;
        return;
    }
    if (hasMember.back() == '1')
        os << ',';
    hasMember.back() = '1';
    newlineIndent();
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (_depth == 0 || contexts.back() != 'o')
        fatal("JsonWriter: key() outside an object");
    if (keyPending)
        fatal("JsonWriter: two keys in a row ('%s')", name.c_str());
    if (hasMember.back() == '1')
        os << ',';
    hasMember.back() = '1';
    newlineIndent();
    os << '"' << escape(name) << "\": ";
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os << '{';
    push(Context::object);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    pop(Context::object);
    os << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os << '[';
    push(Context::array);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    pop(Context::array);
    os << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    os << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    os << formatDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    beforeValue();
    os << "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &fragment)
{
    beforeValue();
    os << fragment;
    return *this;
}

} // namespace capcheck::json
