/**
 * @file
 * gem5-style status and error reporting: panic/fatal for errors,
 * warn/inform for status. panic() signals an internal simulator bug and
 * aborts; fatal() signals a user/configuration error and exits cleanly.
 */

#ifndef CAPCHECK_BASE_LOGGING_HH
#define CAPCHECK_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace capcheck
{

/** Thrown by panic()/fatal() so tests can assert on error paths. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what) : std::runtime_error(what) {}
};

namespace detail
{

void logMessage(const char *prefix, const std::string &msg);

[[noreturn]] void raiseError(const char *prefix, const std::string &msg);

template <typename... Args>
std::string
formatString(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        int n = std::snprintf(nullptr, 0, fmt, args...);
        if (n < 0)
            return std::string(fmt);
        std::string out(static_cast<size_t>(n), '\0');
        std::snprintf(out.data(), out.size() + 1, fmt, args...);
        return out;
    }
}

} // namespace detail

/**
 * Report an internal invariant violation (a simulator bug) and raise
 * SimError. printf-style formatting.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    detail::raiseError("panic", detail::formatString(fmt, args...));
}

/**
 * Report an unrecoverable user or configuration error and raise SimError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    detail::raiseError("fatal", detail::formatString(fmt, args...));
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    detail::logMessage("warn", detail::formatString(fmt, args...));
}

/** Report ordinary status. */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    detail::logMessage("info", detail::formatString(fmt, args...));
}

/** Panic unless the given invariant holds. */
#define CAPCHECK_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond))                                                        \
            ::capcheck::panic("assertion failed: %s", #cond);               \
    } while (0)

} // namespace capcheck

#endif // CAPCHECK_BASE_LOGGING_HH
