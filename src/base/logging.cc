#include "base/logging.hh"

#include <cstdio>

namespace capcheck
{
namespace detail
{

void
logMessage(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

void
raiseError(const char *prefix, const std::string &msg)
{
    logMessage(prefix, msg);
    throw SimError(std::string(prefix) + ": " + msg);
}

} // namespace detail
} // namespace capcheck
