/**
 * @file
 * Plain-text table formatting for the benchmark harnesses, so each bench
 * binary can print rows shaped like the paper's tables and figures.
 */

#ifndef CAPCHECK_BASE_TABLE_HH
#define CAPCHECK_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace capcheck
{

/** Accumulates rows of strings and pretty-prints an aligned table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    std::size_t rows() const { return body.size(); }

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with @p digits significant decimal places. */
std::string fmtDouble(double v, int digits = 2);

/** Format a ratio as a percentage string, e.g. 0.014 -> "1.40%". */
std::string fmtPercent(double ratio, int digits = 2);

/** Format a speedup, e.g. 2041.3 -> "2041.30x". */
std::string fmtSpeedup(double v, int digits = 2);

} // namespace capcheck

#endif // CAPCHECK_BASE_TABLE_HH
