/**
 * @file
 * Machine-checked runtime invariants. Two tiers:
 *
 *  - INVARIANT(cond, ...): cheap always-on checks, compiled into every
 *    build type. Use for properties whose evaluation is O(1) and whose
 *    violation means the simulator state is corrupt (time monotonicity,
 *    a denied request at the memory boundary). Raises SimError via
 *    panic() with the source location and the failed condition.
 *
 *  - PARANOID_INVARIANT(cond, ...): deep checks enabled by the
 *    CAPCHECK_PARANOID CMake option (conservation sums, LRU-stamp
 *    scans). The condition always compiles — so paranoid checks cannot
 *    bit-rot — but is only evaluated when paranoia is on; the dead
 *    branch folds away in optimized builds.
 *
 * Both macros take an optional printf-style message after the
 * condition; the format string must be a literal.
 */

#ifndef CAPCHECK_BASE_INVARIANT_HH
#define CAPCHECK_BASE_INVARIANT_HH

#include "base/logging.hh"

namespace capcheck
{

/** True in builds configured with -DCAPCHECK_PARANOID=ON. */
#ifdef CAPCHECK_PARANOID
inline constexpr bool paranoidChecks = true;
#else
inline constexpr bool paranoidChecks = false;
#endif

namespace detail
{

[[noreturn]] inline void
invariantFailure(const char *file, int line, const char *cond,
                 const std::string &msg)
{
    panic("INVARIANT violated at %s:%d: %s%s%s", file, line, cond,
          msg.empty() ? "" : " — ", msg.c_str());
}

} // namespace detail

#define INVARIANT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) [[unlikely]] {                                         \
            ::capcheck::detail::invariantFailure(                           \
                __FILE__, __LINE__, #cond,                                  \
                ::capcheck::detail::formatString("" __VA_ARGS__));          \
        }                                                                   \
    } while (0)

#define PARANOID_INVARIANT(cond, ...)                                       \
    do {                                                                    \
        if (::capcheck::paranoidChecks)                                     \
            INVARIANT(cond, __VA_ARGS__);                                   \
    } while (0)

} // namespace capcheck

#endif // CAPCHECK_BASE_INVARIANT_HH
