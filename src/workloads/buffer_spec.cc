#include "workloads/buffer_spec.hh"

#include <algorithm>

#include "base/logging.hh"

namespace capcheck::workloads
{

std::uint64_t
KernelSpec::totalBytes() const
{
    std::uint64_t total = 0;
    for (const BufferDef &buf : buffers)
        total += buf.size;
    return total;
}

std::uint64_t
KernelSpec::minBufferBytes() const
{
    std::uint64_t out = ~std::uint64_t{0};
    for (const BufferDef &buf : buffers)
        out = std::min(out, buf.size);
    return buffers.empty() ? 0 : out;
}

std::uint64_t
KernelSpec::maxBufferBytes() const
{
    std::uint64_t out = 0;
    for (const BufferDef &buf : buffers)
        out = std::max(out, buf.size);
    return out;
}

void
KernelSpec::noSuchBuffer(ObjectId obj) const
{
    panic("kernel %s has no buffer %u", name.c_str(), obj);
}

Table2Row
makeTable2Row(const KernelSpec &spec, unsigned num_instances)
{
    Table2Row row;
    row.benchmark = spec.name;
    row.bufferCount =
        static_cast<std::uint32_t>(spec.buffers.size()) * num_instances;
    row.minBytes = spec.minBufferBytes();
    row.maxBytes = spec.maxBufferBytes();
    return row;
}

} // namespace capcheck::workloads
