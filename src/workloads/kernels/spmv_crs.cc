/**
 * @file
 * MachSuite "spmv_crs": sparse matrix-vector multiply in compressed
 * row storage. 494 rows, 833 non-zeros (double precision), matching
 * Table 2's buffer sizes. The column-index gather on the dense vector
 * is data-dependent, so the vector is accessed beat-by-beat.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned numRows = 494;
constexpr unsigned numNonzeros = 833;

class SpmvCrsKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "spmv_crs",
            {
                {"val", numNonzeros * 8, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"cols", numNonzeros * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"rowptr", (numRows + 1) * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"vec", numRows * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"out", numRows * 4, BufferAccess::writeOnly,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/16, /*maxOutstanding=*/4,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        vals.resize(numNonzeros);
        cols_h.resize(numNonzeros);
        rowptr_h.resize(numRows + 1);
        vec_h.resize(numRows);

        // Distribute non-zeros over rows: one guaranteed per row, the
        // rest at random.
        std::vector<unsigned> per_row(numRows, 1);
        for (unsigned k = numRows; k < numNonzeros; ++k)
            ++per_row[rng.nextBounded(numRows)];

        unsigned nz = 0;
        for (unsigned r = 0; r < numRows; ++r) {
            rowptr_h[r] = static_cast<std::int32_t>(nz);
            for (unsigned k = 0; k < per_row[r]; ++k) {
                vals[nz] = rng.nextDouble() * 2 - 1;
                cols_h[nz] = static_cast<std::int32_t>(
                    rng.nextBounded(numRows));
                ++nz;
            }
        }
        rowptr_h[numRows] = static_cast<std::int32_t>(nz);

        for (unsigned i = 0; i < numRows; ++i)
            vec_h[i] = static_cast<float>(rng.nextDouble() * 2 - 1);

        for (unsigned i = 0; i < numNonzeros; ++i) {
            mem.st<double>(val, i, vals[i]);
            mem.st<std::int32_t>(cols, i, cols_h[i]);
        }
        for (unsigned i = 0; i <= numRows; ++i)
            mem.st<std::int32_t>(rowptr, i, rowptr_h[i]);
        for (unsigned i = 0; i < numRows; ++i) {
            mem.st<float>(vec, i, vec_h[i]);
            mem.st<float>(out, i, 0.0f);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        for (unsigned r = 0; r < numRows; ++r) {
            const auto begin = mem.ld<std::int32_t>(rowptr, r);
            const auto end = mem.ld<std::int32_t>(rowptr, r + 1);
            double acc = 0;
            for (std::int32_t k = begin; k < end; ++k) {
                const auto col = mem.ld<std::int32_t>(cols, k);
                acc += mem.ld<double>(val, k) * mem.ld<float>(vec, col);
                mem.computeFp(2);
            }
            mem.st<float>(out, r, static_cast<float>(acc));
            mem.computeInt(2 + (end - begin));
        }
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        for (unsigned r = 0; r < numRows; ++r) {
            double acc = 0;
            for (std::int32_t k = rowptr_h[r]; k < rowptr_h[r + 1]; ++k)
                acc += vals[k] * vec_h[cols_h[k]];
            const float got = mem.ld<float>(out, r);
            if (std::fabs(got - static_cast<float>(acc)) >
                1e-5f + 1e-5f * std::fabs(acc))
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId val = 0;
    static constexpr ObjectId cols = 1;
    static constexpr ObjectId rowptr = 2;
    static constexpr ObjectId vec = 3;
    static constexpr ObjectId out = 4;

    std::vector<double> vals;
    std::vector<std::int32_t> cols_h;
    std::vector<std::int32_t> rowptr_h;
    std::vector<float> vec_h;
};

} // namespace

std::unique_ptr<Kernel>
makeSpmvCrs()
{
    return std::make_unique<SpmvCrsKernel>();
}

} // namespace capcheck::workloads::kernels
