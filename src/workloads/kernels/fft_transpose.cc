/**
 * @file
 * MachSuite "fft_transpose": 512-point FFT that stages the signal into
 * accelerator-local memory with a transposing (bit-reversal) permute,
 * computes all butterflies on-chip with twiddles generated in the
 * datapath, and streams the spectrum back. Two 2048-byte float buffers
 * per instance (Table 2).
 */

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned fftSize = 512;
constexpr unsigned logSize = 9;

unsigned
bitReverse(unsigned v, unsigned bits)
{
    unsigned out = 0;
    for (unsigned i = 0; i < bits; ++i)
        out |= ((v >> i) & 1u) << (bits - 1 - i);
    return out;
}

/** In-place iterative radix-2 FFT on local arrays (natural order in,
 *  natural order out via the initial bit-reversal permute). */
void
localFft(std::vector<float> &re, std::vector<float> &im)
{
    for (unsigned i = 0; i < fftSize; ++i) {
        const unsigned j = bitReverse(i, logSize);
        if (j > i) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    for (unsigned len = 2; len <= fftSize; len <<= 1) {
        const double angle = -2.0 * std::numbers::pi / len;
        for (unsigned blk = 0; blk < fftSize; blk += len) {
            for (unsigned k = 0; k < len / 2; ++k) {
                const float wr =
                    static_cast<float>(std::cos(angle * k));
                const float wi =
                    static_cast<float>(std::sin(angle * k));
                const unsigned a = blk + k;
                const unsigned b = blk + k + len / 2;
                const float tr = re[b] * wr - im[b] * wi;
                const float ti = re[b] * wi + im[b] * wr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
            }
        }
    }
}

class FftTransposeKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "fft_transpose",
            {
                {"real", fftSize * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"img", fftSize * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/64, /*maxOutstanding=*/8,
                        /*startupCycles=*/24},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        inReal.resize(fftSize);
        inImg.resize(fftSize);
        for (unsigned i = 0; i < fftSize; ++i) {
            inReal[i] = static_cast<float>(rng.nextDouble() * 2 - 1);
            inImg[i] = static_cast<float>(rng.nextDouble() * 2 - 1);
            mem.st<float>(real, i, inReal[i]);
            mem.st<float>(img, i, inImg[i]);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        // Stage into local BRAM (the transposing load).
        std::vector<float> re(fftSize);
        std::vector<float> im(fftSize);
        for (unsigned i = 0; i < fftSize; ++i) {
            re[i] = mem.ld<float>(real, i);
            im[i] = mem.ld<float>(img, i);
        }
        mem.computeInt(fftSize); // permute address generation

        localFft(re, im);
        // n/2 log n butterflies, 10 flops each, plus twiddle generation.
        mem.computeFp(fftSize / 2 * logSize * 10 + fftSize * 4);

        for (unsigned i = 0; i < fftSize; ++i) {
            mem.st<float>(real, i, re[i]);
            mem.st<float>(img, i, im[i]);
        }
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        std::vector<float> ref_r = inReal;
        std::vector<float> ref_i = inImg;
        localFft(ref_r, ref_i);

        for (unsigned i = 0; i < fftSize; ++i) {
            if (mem.ld<float>(real, i) != ref_r[i] ||
                mem.ld<float>(img, i) != ref_i[i])
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId real = 0;
    static constexpr ObjectId img = 1;

    std::vector<float> inReal;
    std::vector<float> inImg;
};

} // namespace

std::unique_ptr<Kernel>
makeFftTranspose()
{
    return std::make_unique<FftTransposeKernel>();
}

} // namespace capcheck::workloads::kernels
