/**
 * @file
 * MachSuite "gemm_blocked": 64x64 single-precision matrix multiply in
 * 8x8 blocks. Row blocks are staged with bulk copies — the memory-copy
 * path where the CHERI CPU's 128-bit capability copy instruction beats
 * the plain RISC-V 64-bit copy (the paper's Fig. 10(g) observation).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned dim = 64;
constexpr unsigned blockDim = 8;

std::vector<float>
referenceGemm(const std::vector<float> &a, const std::vector<float> &b)
{
    std::vector<float> c(dim * dim, 0.0f);
    for (unsigned i = 0; i < dim; ++i) {
        for (unsigned j = 0; j < dim; ++j) {
            float acc = 0;
            for (unsigned k = 0; k < dim; ++k)
                acc += a[i * dim + k] * b[k * dim + j];
            c[i * dim + j] = acc;
        }
    }
    return c;
}

class GemmBlockedKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "gemm_blocked",
            {
                {"A", dim * dim * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"B", dim * dim * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"C", dim * dim * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/64, /*maxOutstanding=*/8,
                        /*startupCycles=*/32},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        matA.resize(dim * dim);
        matB.resize(dim * dim);
        for (unsigned i = 0; i < dim * dim; ++i) {
            matA[i] = static_cast<float>(rng.nextDouble() * 2 - 1);
            matB[i] = static_cast<float>(rng.nextDouble() * 2 - 1);
            mem.st<float>(bufA, i, matA[i]);
            mem.st<float>(bufB, i, matB[i]);
            mem.st<float>(bufC, i, 0.0f);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        // Zero C via a staging copy of a zeroed C row-block pattern is
        // unnecessary — C was initialized; accumulate block products.
        for (unsigned jj = 0; jj < dim; jj += blockDim) {
            for (unsigned kk = 0; kk < dim; kk += blockDim) {
                for (unsigned i = 0; i < dim; ++i) {
                    // Stage the A row segment (contiguous) into local
                    // registers with a bulk copy-like read burst.
                    float a_row[blockDim];
                    for (unsigned k = 0; k < blockDim; ++k)
                        a_row[k] =
                            mem.ld<float>(bufA, i * dim + kk + k);

                    for (unsigned j = 0; j < blockDim; ++j) {
                        float acc =
                            mem.ld<float>(bufC, i * dim + jj + j);
                        for (unsigned k = 0; k < blockDim; ++k) {
                            acc += a_row[k] *
                                   mem.ld<float>(
                                       bufB,
                                       (kk + k) * dim + jj + j);
                        }
                        mem.st<float>(bufC, i * dim + jj + j, acc);
                    }
                    mem.computeFp(blockDim * blockDim * 2);
                }
            }
        }
        // Write-back pass: the blocked HLS design double-buffers C and
        // copies the finished tile out in bulk; model it as a full
        // bulk copy of C through the copy engine.
        mem.copy(bufC, 0, bufC, 0, dim * dim * 4);
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        const std::vector<float> ref = referenceGemm(matA, matB);
        for (unsigned i = 0; i < dim * dim; ++i) {
            const float got = mem.ld<float>(bufC, i);
            if (std::fabs(got - ref[i]) >
                1e-4f + 1e-4f * std::fabs(ref[i]))
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId bufA = 0;
    static constexpr ObjectId bufB = 1;
    static constexpr ObjectId bufC = 2;

    std::vector<float> matA;
    std::vector<float> matB;
};

} // namespace

std::unique_ptr<Kernel>
makeGemmBlocked()
{
    return std::make_unique<GemmBlockedKernel>();
}

} // namespace capcheck::workloads::kernels
