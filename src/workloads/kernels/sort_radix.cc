/**
 * @file
 * MachSuite "sort_radix": LSD radix sort of 2048 32-bit unsigned keys,
 * 4 bits per pass, with a 16-entry bucket histogram and ping-pong
 * buffers.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned numElems = 2048;
constexpr unsigned radixBits = 4;
constexpr unsigned numBuckets = 1u << radixBits;
constexpr unsigned numPasses = 32 / radixBits;

class SortRadixKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "sort_radix",
            {
                {"a", numElems * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"b", numElems * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"bucket", numBuckets * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"sum", 16, BufferAccess::readWrite,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/8, /*maxOutstanding=*/8,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        input.resize(numElems);
        for (unsigned i = 0; i < numElems; ++i) {
            input[i] = static_cast<std::uint32_t>(rng.next());
            mem.st<std::uint32_t>(a, i, input[i]);
        }
        for (unsigned i = 0; i < numBuckets; ++i)
            mem.st<std::uint32_t>(bucket, i, 0);
        for (unsigned i = 0; i < 4; ++i)
            mem.st<std::uint32_t>(sum, i, 0);
    }

    void
    run(MemoryAccessor &mem) override
    {
        ObjectId src = a;
        ObjectId dst = b;
        for (unsigned pass = 0; pass < numPasses; ++pass) {
            const unsigned shift = pass * radixBits;

            // Histogram.
            for (unsigned i = 0; i < numBuckets; ++i)
                mem.st<std::uint32_t>(bucket, i, 0);
            for (unsigned i = 0; i < numElems; ++i) {
                const auto key = mem.ld<std::uint32_t>(src, i);
                const unsigned d = (key >> shift) & (numBuckets - 1);
                mem.st<std::uint32_t>(
                    bucket, d, mem.ld<std::uint32_t>(bucket, d) + 1);
                mem.computeInt(3);
            }
            mem.barrier();

            // Exclusive prefix sum over buckets.
            std::uint32_t running = 0;
            for (unsigned i = 0; i < numBuckets; ++i) {
                const auto count = mem.ld<std::uint32_t>(bucket, i);
                mem.st<std::uint32_t>(bucket, i, running);
                running += count;
                mem.computeInt(2);
            }
            mem.st<std::uint32_t>(sum, 0, running);
            mem.barrier();

            // Scatter.
            for (unsigned i = 0; i < numElems; ++i) {
                const auto key = mem.ld<std::uint32_t>(src, i);
                const unsigned d = (key >> shift) & (numBuckets - 1);
                const auto pos = mem.ld<std::uint32_t>(bucket, d);
                mem.st<std::uint32_t>(bucket, d, pos + 1);
                mem.st<std::uint32_t>(dst, pos, key);
                mem.computeInt(4);
            }
            mem.barrier();
            std::swap(src, dst);
        }
        // numPasses is even, so the sorted data ends in 'a'.
    }

    bool
    check(MemoryAccessor &mem) override
    {
        std::vector<std::uint32_t> ref = input;
        std::sort(ref.begin(), ref.end());
        for (unsigned i = 0; i < numElems; ++i) {
            if (mem.ld<std::uint32_t>(a, i) != ref[i])
                return false;
        }
        // The last pass's total must equal the element count.
        return mem.ld<std::uint32_t>(sum, 0) == numElems;
    }

  private:
    static constexpr ObjectId a = 0;
    static constexpr ObjectId b = 1;
    static constexpr ObjectId bucket = 2;
    static constexpr ObjectId sum = 3;

    std::vector<std::uint32_t> input;
};

} // namespace

std::unique_ptr<Kernel>
makeSortRadix()
{
    return std::make_unique<SortRadixKernel>();
}

} // namespace capcheck::workloads::kernels
