/**
 * @file
 * MachSuite "gemm_ncubed": naive triple-loop 64x64 single-precision
 * matrix multiply, C = A * B. Three 16 KiB buffers per instance.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned dim = 64;

std::vector<float>
referenceGemm(const std::vector<float> &a, const std::vector<float> &b)
{
    std::vector<float> c(dim * dim, 0.0f);
    for (unsigned i = 0; i < dim; ++i) {
        for (unsigned j = 0; j < dim; ++j) {
            float acc = 0;
            for (unsigned k = 0; k < dim; ++k)
                acc += a[i * dim + k] * b[k * dim + j];
            c[i * dim + j] = acc;
        }
    }
    return c;
}

class GemmNcubedKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "gemm_ncubed",
            {
                {"A", dim * dim * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"B", dim * dim * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"C", dim * dim * 4, BufferAccess::writeOnly,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/64, /*maxOutstanding=*/8,
                        /*startupCycles=*/32},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        matA.resize(dim * dim);
        matB.resize(dim * dim);
        for (unsigned i = 0; i < dim * dim; ++i) {
            matA[i] = static_cast<float>(rng.nextDouble() * 2 - 1);
            matB[i] = static_cast<float>(rng.nextDouble() * 2 - 1);
            mem.st<float>(bufA, i, matA[i]);
            mem.st<float>(bufB, i, matB[i]);
            mem.st<float>(bufC, i, 0.0f);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        for (unsigned i = 0; i < dim; ++i) {
            for (unsigned j = 0; j < dim; ++j) {
                float acc = 0;
                for (unsigned k = 0; k < dim; ++k) {
                    acc += mem.ld<float>(bufA, i * dim + k) *
                           mem.ld<float>(bufB, k * dim + j);
                }
                mem.computeFp(2 * dim);
                mem.st<float>(bufC, i * dim + j, acc);
            }
        }
    }

    bool
    check(MemoryAccessor &mem) override
    {
        const std::vector<float> ref = referenceGemm(matA, matB);
        for (unsigned i = 0; i < dim * dim; ++i) {
            const float got = mem.ld<float>(bufC, i);
            if (std::fabs(got - ref[i]) >
                1e-4f + 1e-4f * std::fabs(ref[i]))
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId bufA = 0;
    static constexpr ObjectId bufB = 1;
    static constexpr ObjectId bufC = 2;

    std::vector<float> matA;
    std::vector<float> matB;
};

} // namespace

std::unique_ptr<Kernel>
makeGemmNcubed()
{
    return std::make_unique<GemmNcubedKernel>();
}

} // namespace capcheck::workloads::kernels
