/**
 * @file
 * Internal factory declarations for the individual MachSuite kernels.
 */

#ifndef CAPCHECK_WORKLOADS_KERNELS_KERNELS_HH
#define CAPCHECK_WORKLOADS_KERNELS_KERNELS_HH

#include <memory>

#include "workloads/kernel.hh"

namespace capcheck::workloads::kernels
{

std::unique_ptr<Kernel> makeAes();
std::unique_ptr<Kernel> makeBackprop();
std::unique_ptr<Kernel> makeBfsBulk();
std::unique_ptr<Kernel> makeBfsQueue();
std::unique_ptr<Kernel> makeFftStrided();
std::unique_ptr<Kernel> makeFftTranspose();
std::unique_ptr<Kernel> makeGemmBlocked();
std::unique_ptr<Kernel> makeGemmNcubed();
std::unique_ptr<Kernel> makeKmp();
std::unique_ptr<Kernel> makeMdGrid();
std::unique_ptr<Kernel> makeMdKnn();
std::unique_ptr<Kernel> makeNw();
std::unique_ptr<Kernel> makeSortMerge();
std::unique_ptr<Kernel> makeSortRadix();
std::unique_ptr<Kernel> makeSpmvCrs();
std::unique_ptr<Kernel> makeSpmvEllpack();
std::unique_ptr<Kernel> makeStencil2d();
std::unique_ptr<Kernel> makeStencil3d();
std::unique_ptr<Kernel> makeViterbi();

} // namespace capcheck::workloads::kernels

#endif // CAPCHECK_WORKLOADS_KERNELS_KERNELS_HH
