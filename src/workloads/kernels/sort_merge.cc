/**
 * @file
 * MachSuite "sort_merge": bottom-up merge sort of 2048 32-bit integers
 * using a temporary buffer, with bulk copy-back passes.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned numElems = 2048;

class SortMergeKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "sort_merge",
            {
                {"a", numElems * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"temp", numElems * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/8, /*maxOutstanding=*/8,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        input.resize(numElems);
        for (unsigned i = 0; i < numElems; ++i) {
            input[i] = static_cast<std::int32_t>(rng.next());
            mem.st<std::int32_t>(a, i, input[i]);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        for (unsigned width = 1; width < numElems; width *= 2) {
            for (unsigned lo = 0; lo < numElems; lo += 2 * width) {
                const unsigned mid = std::min(lo + width, numElems);
                const unsigned hi = std::min(lo + 2 * width, numElems);

                unsigned i = lo;
                unsigned j = mid;
                for (unsigned k = lo; k < hi; ++k) {
                    if (i < mid &&
                        (j >= hi || mem.ld<std::int32_t>(a, i) <=
                                        mem.ld<std::int32_t>(a, j))) {
                        mem.st<std::int32_t>(
                            temp, k, mem.ld<std::int32_t>(a, i++));
                    } else {
                        mem.st<std::int32_t>(
                            temp, k, mem.ld<std::int32_t>(a, j++));
                    }
                    mem.computeInt(4);
                }
            }
            // Bulk copy the merged pass back (wide-copy path on CHERI).
            mem.copy(a, 0, temp, 0, numElems * 4);
            mem.barrier(); // next pass depends on this one
        }
    }

    bool
    check(MemoryAccessor &mem) override
    {
        std::vector<std::int32_t> ref = input;
        std::sort(ref.begin(), ref.end());
        for (unsigned i = 0; i < numElems; ++i) {
            if (mem.ld<std::int32_t>(a, i) != ref[i])
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId a = 0;
    static constexpr ObjectId temp = 1;

    std::vector<std::int32_t> input;
};

} // namespace

std::unique_ptr<Kernel>
makeSortMerge()
{
    return std::make_unique<SortMergeKernel>();
}

} // namespace capcheck::workloads::kernels
