/**
 * @file
 * MachSuite "bfs_bulk": breadth-first search by whole-graph sweeps per
 * horizon. The graph is irregular, so the accelerator issues one DMA
 * beat per element (external placement) with dependent addressing —
 * this is one of the memory-bound benchmarks of Section 6.1.
 */

#include <cstdint>
#include <vector>

#include "workloads/kernels/graph_util.hh"
#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned numNodes = 4096;
constexpr unsigned maxLevels = 10;

class BfsBulkKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "bfs_bulk",
            {
                {"edge_begin", numNodes * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"edge_end", numNodes * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"edges", numNodes * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"level", numNodes, BufferAccess::readWrite,
                 BufferPlacement::external},
                {"level_counts", maxLevels * 4, BufferAccess::writeOnly,
                 BufferPlacement::external},
            },
            AccelTiming{/*ilp=*/4, /*maxOutstanding=*/1,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        graph = makeRandomTree(numNodes, rng);
        for (unsigned n = 0; n < numNodes; ++n) {
            mem.st<std::int32_t>(edgeBegin, n, graph.edgeBegin[n]);
            mem.st<std::int32_t>(edgeEnd, n, graph.edgeEnd[n]);
            mem.st<std::int8_t>(level, n, n == 0 ? 0 : -1);
        }
        for (unsigned e = 0; e < graph.edges.size(); ++e)
            mem.st<std::int32_t>(edges, e, graph.edges[e]);
        for (unsigned h = 0; h < maxLevels; ++h)
            mem.st<std::int32_t>(levelCounts, h, 0);
    }

    void
    run(MemoryAccessor &mem) override
    {
        for (unsigned horizon = 0; horizon + 1 < maxLevels; ++horizon) {
            std::int32_t count = 0;
            for (unsigned node = 0; node < numNodes; ++node) {
                if (mem.ld<std::int8_t>(level, node) !=
                    static_cast<std::int8_t>(horizon))
                    continue;

                const auto begin = mem.ld<std::int32_t>(edgeBegin, node);
                const auto end = mem.ld<std::int32_t>(edgeEnd, node);
                for (std::int32_t e = begin; e < end; ++e) {
                    const auto dst = mem.ld<std::int32_t>(edges, e);
                    // Dependent load-then-store on the frontier.
                    mem.barrier();
                    if (mem.ld<std::int8_t>(level, dst) == -1) {
                        mem.st<std::int8_t>(
                            level, dst,
                            static_cast<std::int8_t>(horizon + 1));
                        ++count;
                    }
                }
                mem.computeInt(2 + (end - begin));
            }
            mem.st<std::int32_t>(levelCounts, horizon + 1, count);
            mem.barrier();
            if (count == 0)
                break;
        }
    }

    bool
    check(MemoryAccessor &mem) override
    {
        std::vector<std::int32_t> ref_counts;
        const std::vector<std::int8_t> ref =
            referenceBfsLevels(graph, numNodes, maxLevels, &ref_counts);

        for (unsigned n = 0; n < numNodes; ++n) {
            if (mem.ld<std::int8_t>(level, n) != ref[n])
                return false;
        }
        for (unsigned h = 1; h < maxLevels; ++h) {
            if (mem.ld<std::int32_t>(levelCounts, h) != ref_counts[h] &&
                ref_counts[h] != 0)
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId edgeBegin = 0;
    static constexpr ObjectId edgeEnd = 1;
    static constexpr ObjectId edges = 2;
    static constexpr ObjectId level = 3;
    static constexpr ObjectId levelCounts = 4;

    CsrGraph graph;
};

} // namespace

std::unique_ptr<Kernel>
makeBfsBulk()
{
    return std::make_unique<BfsBulkKernel>();
}

} // namespace capcheck::workloads::kernels
