/**
 * @file
 * MachSuite "md_knn": Lennard-Jones forces from a precomputed
 * k-nearest-neighbour list (256 atoms, 16 neighbours). The neighbour
 * list drives a data-dependent gather, so positions and the list are
 * accessed beat-by-beat with little pipelining — the benchmark the
 * paper singles out for its short run and relatively large CapChecker
 * overhead.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned numAtoms = 256;
constexpr unsigned numNeighbors = 16;
/**
 * Atoms processed per task invocation. The buffers are provisioned for
 * the full 256-atom system (Table 2 sizes) but one accelerator call
 * advances a 16-atom slice — which is why md_knn has the shortest
 * absolute run and the largest *relative* CapChecker overhead in the
 * paper's Fig. 8 (fixed capability-installation cost over few cycles).
 */
constexpr unsigned activeAtoms = 16;

class MdKnnKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "md_knn",
            {
                {"pos_x", numAtoms * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"pos_y", numAtoms * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"pos_z", numAtoms * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"frc_x", numAtoms * 8, BufferAccess::writeOnly,
                 BufferPlacement::external},
                {"frc_y", numAtoms * 8, BufferAccess::writeOnly,
                 BufferPlacement::external},
                {"frc_z", numAtoms * 8, BufferAccess::writeOnly,
                 BufferPlacement::external},
                {"nl", numAtoms * numNeighbors * 4,
                 BufferAccess::readOnly, BufferPlacement::external},
            },
            AccelTiming{/*ilp=*/16, /*maxOutstanding=*/4,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        px.resize(numAtoms);
        py.resize(numAtoms);
        pz.resize(numAtoms);
        nlist.resize(numAtoms * numNeighbors);

        for (unsigned i = 0; i < numAtoms; ++i) {
            px[i] = static_cast<float>(rng.nextDouble() * 4);
            py[i] = static_cast<float>(rng.nextDouble() * 4);
            pz[i] = static_cast<float>(rng.nextDouble() * 4);
            mem.st<float>(posX, i, px[i]);
            mem.st<float>(posY, i, py[i]);
            mem.st<float>(posZ, i, pz[i]);
            mem.st<double>(frcX, i, 0.0);
            mem.st<double>(frcY, i, 0.0);
            mem.st<double>(frcZ, i, 0.0);
        }
        // Random (not geometric) neighbour lists, as in MachSuite's
        // provided input: what matters is the gather pattern.
        for (unsigned i = 0; i < numAtoms; ++i) {
            for (unsigned k = 0; k < numNeighbors; ++k) {
                std::int32_t j;
                do {
                    j = static_cast<std::int32_t>(
                        rng.nextBounded(numAtoms));
                } while (j == static_cast<std::int32_t>(i));
                nlist[i * numNeighbors + k] = j;
            }
        }
        for (unsigned i = 0; i < nlist.size(); ++i)
            mem.st<std::int32_t>(nl, i, nlist[i]);
    }

    static void
    force(float xi, float yi, float zi, float xj, float yj, float zj,
          double &fx, double &fy, double &fz)
    {
        const double dx = xi - xj;
        const double dy = yi - yj;
        const double dz = zi - zj;
        const double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 <= 0)
            return;
        const double r2inv = 1.0 / r2;
        const double r6inv = r2inv * r2inv * r2inv;
        const double pot = r6inv * (1.5 * r6inv - 2.0);
        const double f = r2inv * pot;
        fx += f * dx;
        fy += f * dy;
        fz += f * dz;
    }

    void
    run(MemoryAccessor &mem) override
    {
        for (unsigned i = 0; i < activeAtoms; ++i) {
            const float xi = mem.ld<float>(posX, i);
            const float yi = mem.ld<float>(posY, i);
            const float zi = mem.ld<float>(posZ, i);
            double fx = 0, fy = 0, fz = 0;

            for (unsigned k = 0; k < numNeighbors; ++k) {
                const auto j = mem.ld<std::int32_t>(
                    nl, i * numNeighbors + k);
                force(xi, yi, zi, mem.ld<float>(posX, j),
                      mem.ld<float>(posY, j), mem.ld<float>(posZ, j),
                      fx, fy, fz);
                mem.computeFp(18);
            }
            mem.st<double>(frcX, i, fx);
            mem.st<double>(frcY, i, fy);
            mem.st<double>(frcZ, i, fz);
            mem.computeInt(numNeighbors);
            mem.barrier(); // next atom's gather depends on this result
        }
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        auto close = [](double a, double b) {
            return std::fabs(a - b) <= 1e-9 + 1e-9 * std::fabs(b);
        };
        for (unsigned i = 0; i < numAtoms; ++i) {
            double fx = 0, fy = 0, fz = 0;
            if (i < activeAtoms) {
                for (unsigned k = 0; k < numNeighbors; ++k) {
                    const std::int32_t j = nlist[i * numNeighbors + k];
                    force(px[i], py[i], pz[i], px[j], py[j], pz[j], fx,
                          fy, fz);
                }
            }
            // Inactive atoms' forces must remain untouched (zero).
            if (!close(mem.ld<double>(frcX, i), fx) ||
                !close(mem.ld<double>(frcY, i), fy) ||
                !close(mem.ld<double>(frcZ, i), fz))
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId posX = 0;
    static constexpr ObjectId posY = 1;
    static constexpr ObjectId posZ = 2;
    static constexpr ObjectId frcX = 3;
    static constexpr ObjectId frcY = 4;
    static constexpr ObjectId frcZ = 5;
    static constexpr ObjectId nl = 6;

    std::vector<float> px;
    std::vector<float> py;
    std::vector<float> pz;
    std::vector<std::int32_t> nlist;
};

} // namespace

std::unique_ptr<Kernel>
makeMdKnn()
{
    return std::make_unique<MdKnnKernel>();
}

} // namespace capcheck::workloads::kernels
