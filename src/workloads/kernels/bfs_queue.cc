/**
 * @file
 * MachSuite "bfs_queue": breadth-first search with a work queue. The
 * queue itself is an accelerator-internal (BRAM) structure — a "stack
 * object" in the paper's CWE analysis — while the graph stays in
 * shared memory and is accessed beat-by-beat.
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "workloads/kernels/graph_util.hh"
#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned numNodes = 4096;
constexpr unsigned maxLevels = 10;

class BfsQueueKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "bfs_queue",
            {
                {"edge_begin", numNodes * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"edge_end", numNodes * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"edges", numNodes * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"level", numNodes, BufferAccess::readWrite,
                 BufferPlacement::external},
                {"level_counts", maxLevels * 4, BufferAccess::writeOnly,
                 BufferPlacement::external},
            },
            AccelTiming{/*ilp=*/4, /*maxOutstanding=*/1,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        graph = makeRandomTree(numNodes, rng);
        for (unsigned n = 0; n < numNodes; ++n) {
            mem.st<std::int32_t>(edgeBegin, n, graph.edgeBegin[n]);
            mem.st<std::int32_t>(edgeEnd, n, graph.edgeEnd[n]);
            mem.st<std::int8_t>(level, n, n == 0 ? 0 : -1);
        }
        for (unsigned e = 0; e < graph.edges.size(); ++e)
            mem.st<std::int32_t>(edges, e, graph.edges[e]);
        for (unsigned h = 0; h < maxLevels; ++h)
            mem.st<std::int32_t>(levelCounts, h, 0);
    }

    void
    run(MemoryAccessor &mem) override
    {
        // The queue lives in accelerator-local BRAM: no DMA traffic.
        std::deque<std::int32_t> queue;
        std::vector<std::int32_t> counts(maxLevels, 0);
        queue.push_back(0);
        counts[0] = 1;

        while (!queue.empty()) {
            const std::int32_t node = queue.front();
            queue.pop_front();

            const auto lvl = mem.ld<std::int8_t>(level, node);
            if (lvl + 1 >= static_cast<int>(maxLevels))
                continue;

            const auto begin = mem.ld<std::int32_t>(edgeBegin, node);
            const auto end = mem.ld<std::int32_t>(edgeEnd, node);
            mem.barrier(); // edge range gates the inner loop
            for (std::int32_t e = begin; e < end; ++e) {
                const auto dst = mem.ld<std::int32_t>(edges, e);
                mem.barrier();
                if (mem.ld<std::int8_t>(level, dst) == -1) {
                    mem.st<std::int8_t>(
                        level, dst, static_cast<std::int8_t>(lvl + 1));
                    ++counts[static_cast<unsigned>(lvl) + 1];
                    queue.push_back(dst);
                }
            }
            mem.computeInt(4 + (end - begin));
        }

        for (unsigned h = 0; h < maxLevels; ++h)
            mem.st<std::int32_t>(levelCounts, h, counts[h]);
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        std::vector<std::int32_t> ref_counts;
        const std::vector<std::int8_t> ref =
            referenceBfsLevels(graph, numNodes, maxLevels, &ref_counts);

        for (unsigned n = 0; n < numNodes; ++n) {
            if (mem.ld<std::int8_t>(level, n) != ref[n])
                return false;
        }
        // The queue variant records the root in level_counts[0].
        if (mem.ld<std::int32_t>(levelCounts, 0) != 1)
            return false;
        for (unsigned h = 1; h < maxLevels; ++h) {
            if (mem.ld<std::int32_t>(levelCounts, h) != ref_counts[h])
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId edgeBegin = 0;
    static constexpr ObjectId edgeEnd = 1;
    static constexpr ObjectId edges = 2;
    static constexpr ObjectId level = 3;
    static constexpr ObjectId levelCounts = 4;

    CsrGraph graph;
};

} // namespace

std::unique_ptr<Kernel>
makeBfsQueue()
{
    return std::make_unique<BfsQueueKernel>();
}

} // namespace capcheck::workloads::kernels
