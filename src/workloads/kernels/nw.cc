/**
 * @file
 * MachSuite "nw": Needleman-Wunsch global sequence alignment of two
 * 128-symbol sequences — integer dynamic programming over a 129x129
 * score matrix plus pointer-based traceback.
 */

#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned seqLen = 128;
constexpr unsigned dpDim = seqLen + 1;
constexpr std::int32_t matchScore = 1;
constexpr std::int32_t mismatchScore = -1;
constexpr std::int32_t gapScore = -1;
constexpr std::int32_t gapSymbol = -1;

enum TraceDir : std::int8_t
{
    traceDiag = 0,
    traceUp = 1,
    traceLeft = 2,
};

struct NwResult
{
    std::vector<std::int32_t> score; // dpDim * dpDim
    std::vector<std::int8_t> trace;  // dpDim * dpDim
    std::vector<std::int32_t> alignedA;
    std::vector<std::int32_t> alignedB;
};

/** Pure reference alignment. */
NwResult
referenceAlign(const std::vector<std::int32_t> &a,
               const std::vector<std::int32_t> &b)
{
    NwResult r;
    r.score.assign(dpDim * dpDim, 0);
    r.trace.assign(dpDim * dpDim, traceDiag);

    for (unsigned i = 0; i <= seqLen; ++i) {
        r.score[i * dpDim] = static_cast<std::int32_t>(i) * gapScore;
        r.score[i] = static_cast<std::int32_t>(i) * gapScore;
        if (i) {
            r.trace[i * dpDim] = traceUp;
            r.trace[i] = traceLeft;
        }
    }
    for (unsigned i = 1; i <= seqLen; ++i) {
        for (unsigned j = 1; j <= seqLen; ++j) {
            const std::int32_t diag =
                r.score[(i - 1) * dpDim + (j - 1)] +
                (a[i - 1] == b[j - 1] ? matchScore : mismatchScore);
            const std::int32_t up =
                r.score[(i - 1) * dpDim + j] + gapScore;
            const std::int32_t left =
                r.score[i * dpDim + (j - 1)] + gapScore;

            std::int32_t best = diag;
            std::int8_t dir = traceDiag;
            if (up > best) {
                best = up;
                dir = traceUp;
            }
            if (left > best) {
                best = left;
                dir = traceLeft;
            }
            r.score[i * dpDim + j] = best;
            r.trace[i * dpDim + j] = dir;
        }
    }

    // Traceback (front-filled, gap-padded to 2*seqLen entries).
    std::vector<std::int32_t> ra;
    std::vector<std::int32_t> rb;
    unsigned i = seqLen;
    unsigned j = seqLen;
    while (i > 0 || j > 0) {
        const std::int8_t dir = r.trace[i * dpDim + j];
        if (i > 0 && j > 0 && dir == traceDiag) {
            ra.push_back(a[--i]);
            rb.push_back(b[--j]);
        } else if (i > 0 && dir == traceUp) {
            ra.push_back(a[--i]);
            rb.push_back(gapSymbol);
        } else {
            ra.push_back(gapSymbol);
            rb.push_back(b[--j]);
        }
    }
    r.alignedA.assign(ra.rbegin(), ra.rend());
    r.alignedB.assign(rb.rbegin(), rb.rend());
    return r;
}

class NwKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "nw",
            {
                {"seqA", seqLen * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"seqB", seqLen * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"M", dpDim * dpDim * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"ptr", dpDim * dpDim, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"alignedA", (2 * seqLen + 1) * 4,
                 BufferAccess::writeOnly, BufferPlacement::streamed},
                {"alignedB", (2 * seqLen + 1) * 4,
                 BufferAccess::writeOnly, BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/16, /*maxOutstanding=*/8,
                        /*startupCycles=*/24},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        seqa.resize(seqLen);
        seqb.resize(seqLen);
        for (unsigned i = 0; i < seqLen; ++i) {
            seqa[i] = static_cast<std::int32_t>(rng.nextBounded(4));
            seqb[i] = static_cast<std::int32_t>(rng.nextBounded(4));
            mem.st<std::int32_t>(seqA, i, seqa[i]);
            mem.st<std::int32_t>(seqB, i, seqb[i]);
        }
        for (unsigned i = 0; i < dpDim * dpDim; ++i) {
            mem.st<std::int32_t>(scoreM, i, 0);
            mem.st<std::int8_t>(ptrM, i, traceDiag);
        }
        for (unsigned i = 0; i < 2 * seqLen + 1; ++i) {
            mem.st<std::int32_t>(alignedA, i, 0);
            mem.st<std::int32_t>(alignedB, i, 0);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        // Border initialization.
        for (unsigned i = 0; i <= seqLen; ++i) {
            mem.st<std::int32_t>(scoreM, i * dpDim,
                                 static_cast<std::int32_t>(i) *
                                     gapScore);
            mem.st<std::int32_t>(scoreM, i,
                                 static_cast<std::int32_t>(i) *
                                     gapScore);
            if (i) {
                mem.st<std::int8_t>(ptrM, i * dpDim, traceUp);
                mem.st<std::int8_t>(ptrM, i, traceLeft);
            }
        }
        mem.computeInt(dpDim * 2);

        // DP fill.
        for (unsigned i = 1; i <= seqLen; ++i) {
            const auto ai = mem.ld<std::int32_t>(seqA, i - 1);
            for (unsigned j = 1; j <= seqLen; ++j) {
                const auto bj = mem.ld<std::int32_t>(seqB, j - 1);
                const auto diag =
                    mem.ld<std::int32_t>(scoreM,
                                         (i - 1) * dpDim + (j - 1)) +
                    (ai == bj ? matchScore : mismatchScore);
                const auto up =
                    mem.ld<std::int32_t>(scoreM, (i - 1) * dpDim + j) +
                    gapScore;
                const auto left =
                    mem.ld<std::int32_t>(scoreM, i * dpDim + (j - 1)) +
                    gapScore;

                std::int32_t best = diag;
                std::int8_t dir = traceDiag;
                if (up > best) {
                    best = up;
                    dir = traceUp;
                }
                if (left > best) {
                    best = left;
                    dir = traceLeft;
                }
                mem.st<std::int32_t>(scoreM, i * dpDim + j, best);
                mem.st<std::int8_t>(ptrM, i * dpDim + j, dir);
                mem.computeInt(8);
            }
            mem.barrier(); // row dependence
        }

        // Traceback.
        std::vector<std::int32_t> ra;
        std::vector<std::int32_t> rb;
        unsigned i = seqLen;
        unsigned j = seqLen;
        while (i > 0 || j > 0) {
            const auto dir = mem.ld<std::int8_t>(ptrM, i * dpDim + j);
            mem.barrier(); // pointer chase
            if (i > 0 && j > 0 && dir == traceDiag) {
                ra.push_back(mem.ld<std::int32_t>(seqA, --i));
                rb.push_back(mem.ld<std::int32_t>(seqB, --j));
            } else if (i > 0 && dir == traceUp) {
                ra.push_back(mem.ld<std::int32_t>(seqA, --i));
                rb.push_back(gapSymbol);
            } else {
                ra.push_back(gapSymbol);
                rb.push_back(mem.ld<std::int32_t>(seqB, --j));
            }
            mem.computeInt(4);
        }
        mem.st<std::int32_t>(alignedA, 0,
                             static_cast<std::int32_t>(ra.size()));
        mem.st<std::int32_t>(alignedB, 0,
                             static_cast<std::int32_t>(rb.size()));
        for (unsigned k = 0; k < ra.size(); ++k) {
            mem.st<std::int32_t>(alignedA, 1 + k,
                                 ra[ra.size() - 1 - k]);
            mem.st<std::int32_t>(alignedB, 1 + k,
                                 rb[rb.size() - 1 - k]);
        }
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        const NwResult ref = referenceAlign(seqa, seqb);

        // Final score must match.
        if (mem.ld<std::int32_t>(scoreM, seqLen * dpDim + seqLen) !=
            ref.score[seqLen * dpDim + seqLen])
            return false;
        // Full matrices must match.
        for (unsigned i = 0; i < dpDim * dpDim; ++i) {
            if (mem.ld<std::int32_t>(scoreM, i) != ref.score[i])
                return false;
        }
        // Aligned sequences must match the reference traceback.
        const auto len_a =
            static_cast<unsigned>(mem.ld<std::int32_t>(alignedA, 0));
        if (len_a != ref.alignedA.size())
            return false;
        for (unsigned k = 0; k < len_a; ++k) {
            if (mem.ld<std::int32_t>(alignedA, 1 + k) !=
                    ref.alignedA[k] ||
                mem.ld<std::int32_t>(alignedB, 1 + k) !=
                    ref.alignedB[k])
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId seqA = 0;
    static constexpr ObjectId seqB = 1;
    static constexpr ObjectId scoreM = 2;
    static constexpr ObjectId ptrM = 3;
    static constexpr ObjectId alignedA = 4;
    static constexpr ObjectId alignedB = 5;

    std::vector<std::int32_t> seqa;
    std::vector<std::int32_t> seqb;
};

} // namespace

std::unique_ptr<Kernel>
makeNw()
{
    return std::make_unique<NwKernel>();
}

} // namespace capcheck::workloads::kernels
