/**
 * @file
 * MachSuite "spmv_ellpack": sparse matrix-vector multiply in ELLPACK
 * format — 494 rows, a fixed 10 entries per row (padded with zeros),
 * regular access pattern amenable to streaming.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned numRows = 494;
constexpr unsigned entriesPerRow = 10;

class SpmvEllpackKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "spmv_ellpack",
            {
                {"nzval", numRows * entriesPerRow * 4,
                 BufferAccess::readOnly, BufferPlacement::streamed},
                {"cols", numRows * entriesPerRow * 4,
                 BufferAccess::readOnly, BufferPlacement::streamed},
                {"vec", numRows * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"out", numRows * 4, BufferAccess::writeOnly,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/16, /*maxOutstanding=*/4,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        nzval_h.resize(numRows * entriesPerRow);
        cols_h.resize(numRows * entriesPerRow);
        vec_h.resize(numRows);

        for (unsigned r = 0; r < numRows; ++r) {
            // A random number of real entries per row; rest padded.
            const unsigned real =
                1 + static_cast<unsigned>(
                        rng.nextBounded(entriesPerRow));
            for (unsigned k = 0; k < entriesPerRow; ++k) {
                const unsigned i = r * entriesPerRow + k;
                if (k < real) {
                    nzval_h[i] = static_cast<float>(
                        rng.nextDouble() * 2 - 1);
                    cols_h[i] = static_cast<std::int32_t>(
                        rng.nextBounded(numRows));
                } else {
                    nzval_h[i] = 0.0f;
                    cols_h[i] = 0;
                }
            }
        }
        for (unsigned i = 0; i < numRows; ++i)
            vec_h[i] = static_cast<float>(rng.nextDouble() * 2 - 1);

        for (unsigned i = 0; i < numRows * entriesPerRow; ++i) {
            mem.st<float>(nzval, i, nzval_h[i]);
            mem.st<std::int32_t>(cols, i, cols_h[i]);
        }
        for (unsigned i = 0; i < numRows; ++i) {
            mem.st<float>(vec, i, vec_h[i]);
            mem.st<float>(out, i, 0.0f);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        for (unsigned r = 0; r < numRows; ++r) {
            float acc = 0;
            for (unsigned k = 0; k < entriesPerRow; ++k) {
                const unsigned i = r * entriesPerRow + k;
                const auto col = mem.ld<std::int32_t>(cols, i);
                acc += mem.ld<float>(nzval, i) *
                       mem.ld<float>(vec, col);
                mem.computeFp(2);
            }
            mem.st<float>(out, r, acc);
            mem.computeInt(entriesPerRow);
        }
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        for (unsigned r = 0; r < numRows; ++r) {
            float acc = 0;
            for (unsigned k = 0; k < entriesPerRow; ++k) {
                const unsigned i = r * entriesPerRow + k;
                acc += nzval_h[i] * vec_h[cols_h[i]];
            }
            const float got = mem.ld<float>(out, r);
            if (std::fabs(got - acc) > 1e-5f + 1e-5f * std::fabs(acc))
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId nzval = 0;
    static constexpr ObjectId cols = 1;
    static constexpr ObjectId vec = 2;
    static constexpr ObjectId out = 3;

    std::vector<float> nzval_h;
    std::vector<std::int32_t> cols_h;
    std::vector<float> vec_h;
};

} // namespace

std::unique_ptr<Kernel>
makeSpmvEllpack()
{
    return std::make_unique<SpmvEllpackKernel>();
}

} // namespace capcheck::workloads::kernels
