/**
 * @file
 * MachSuite "aes": iterated AES-256 ECB encryption of a small message.
 * The accelerator's single 128-byte context buffer holds the 32-byte
 * key followed by six 16-byte data blocks, matching Table 2's one
 * 128-byte buffer per instance. Each block is re-encrypted for several
 * passes (an iterated-cipher workload), keeping the datapath busy
 * relative to the tiny footprint.
 *
 * The cipher primitives live in aes_core.hh and are validated against
 * the FIPS-197 known-answer vectors by the test suite.
 */

#include <array>
#include <cstdint>

#include "workloads/kernels/aes_core.hh"
#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

using aes::Block;
using aes::blockBytes;
using aes::Key;
using aes::keyBytes;
using aes::rounds;
using aes::Schedule;

constexpr unsigned numBlocks = 6;
/** Chained re-encryption passes (iterated-cipher workload). */
constexpr unsigned numPasses = 8;

class AesKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "aes",
            {
                {"ctx", 128, BufferAccess::readWrite,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/16, /*maxOutstanding=*/8,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        for (unsigned i = 0; i < keyBytes; ++i) {
            key[i] = static_cast<std::uint8_t>(rng.next());
            mem.st<std::uint8_t>(ctx, i, key[i]);
        }
        for (unsigned b = 0; b < numBlocks; ++b) {
            for (unsigned i = 0; i < blockBytes; ++i) {
                plaintext[b][i] = static_cast<std::uint8_t>(rng.next());
                mem.st<std::uint8_t>(ctx, keyBytes + b * blockBytes + i,
                                     plaintext[b][i]);
            }
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        Key k;
        for (unsigned i = 0; i < keyBytes; ++i)
            k[i] = mem.ld<std::uint8_t>(ctx, i);

        const Schedule w = aes::expandKey(k);
        mem.computeInt(4 * (rounds + 1) * 8); // key schedule datapath

        for (unsigned b = 0; b < numBlocks; ++b) {
            Block block;
            for (unsigned i = 0; i < blockBytes; ++i)
                block[i] = mem.ld<std::uint8_t>(
                    ctx, keyBytes + b * blockBytes + i);

            for (unsigned pass = 0; pass < numPasses; ++pass) {
                block = aes::encryptBlock(block, w);
                // ~70 logic ops per round on a byte-sliced datapath.
                mem.computeInt(rounds * 70);
            }

            for (unsigned i = 0; i < blockBytes; ++i)
                mem.st<std::uint8_t>(ctx, keyBytes + b * blockBytes + i,
                                     block[i]);
        }
    }

    bool
    check(MemoryAccessor &mem) override
    {
        const Schedule w = aes::expandKey(key);
        for (unsigned b = 0; b < numBlocks; ++b) {
            Block expect = plaintext[b];
            for (unsigned pass = 0; pass < numPasses; ++pass)
                expect = aes::encryptBlock(expect, w);
            for (unsigned i = 0; i < blockBytes; ++i) {
                if (mem.ld<std::uint8_t>(
                        ctx, keyBytes + b * blockBytes + i) != expect[i])
                    return false;
            }
        }
        return true;
    }

  private:
    static constexpr ObjectId ctx = 0;

    Key key{};
    std::array<Block, numBlocks> plaintext{};
};

} // namespace

std::unique_ptr<Kernel>
makeAes()
{
    return std::make_unique<AesKernel>();
}

} // namespace capcheck::workloads::kernels
