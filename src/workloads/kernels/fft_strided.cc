/**
 * @file
 * MachSuite "fft_strided": 512-point radix-2 complex FFT with strided
 * butterfly passes and precomputed twiddle tables (output is in
 * bit-reversed order, as in the original benchmark). The input is first
 * staged into the work buffers so the original signal is preserved.
 */

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned fftSize = 512;

/** Pure reference of the same strided algorithm. */
void
referenceFft(std::vector<double> &real, std::vector<double> &img,
             const std::vector<double> &real_twid,
             const std::vector<double> &img_twid)
{
    unsigned log = 0;
    for (unsigned span = fftSize >> 1; span; span >>= 1, ++log) {
        for (unsigned odd = span; odd < fftSize; ++odd) {
            odd |= span;
            const unsigned even = odd ^ span;

            double temp = real[even] + real[odd];
            real[odd] = real[even] - real[odd];
            real[even] = temp;

            temp = img[even] + img[odd];
            img[odd] = img[even] - img[odd];
            img[even] = temp;

            const unsigned rootindex = (even << log) & (fftSize - 1);
            if (rootindex) {
                temp = real_twid[rootindex] * real[odd] -
                       img_twid[rootindex] * img[odd];
                img[odd] = real_twid[rootindex] * img[odd] +
                           img_twid[rootindex] * real[odd];
                real[odd] = temp;
            }
        }
    }
}

class FftStridedKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "fft_strided",
            {
                {"real", fftSize * 8, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"img", fftSize * 8, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"real_twid", fftSize * 8, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"img_twid", fftSize * 8, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"work_r", fftSize * 8, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"work_i", fftSize * 8, BufferAccess::readWrite,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/32, /*maxOutstanding=*/8,
                        /*startupCycles=*/24},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        inReal.resize(fftSize);
        inImg.resize(fftSize);
        twidReal.assign(fftSize, 0);
        twidImg.assign(fftSize, 0);

        for (unsigned i = 0; i < fftSize; ++i) {
            inReal[i] = rng.nextDouble() * 2 - 1;
            inImg[i] = rng.nextDouble() * 2 - 1;
            mem.st<double>(real, i, inReal[i]);
            mem.st<double>(img, i, inImg[i]);
        }
        for (unsigned i = 0; i < fftSize / 2; ++i) {
            const double angle =
                -2.0 * std::numbers::pi * i / fftSize;
            twidReal[i] = std::cos(angle);
            twidImg[i] = std::sin(angle);
        }
        for (unsigned i = 0; i < fftSize; ++i) {
            mem.st<double>(realTwid, i, twidReal[i]);
            mem.st<double>(imgTwid, i, twidImg[i]);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        // Preserve the input signal in the work buffers.
        mem.copy(workR, 0, real, 0, fftSize * 8);
        mem.copy(workI, 0, img, 0, fftSize * 8);

        unsigned log = 0;
        for (unsigned span = fftSize >> 1; span; span >>= 1, ++log) {
            for (unsigned odd = span; odd < fftSize; ++odd) {
                odd |= span;
                const unsigned even = odd ^ span;

                double re = mem.ld<double>(real, even);
                double ro = mem.ld<double>(real, odd);
                double ie = mem.ld<double>(img, even);
                double io = mem.ld<double>(img, odd);

                double temp = re + ro;
                ro = re - ro;
                re = temp;
                temp = ie + io;
                io = ie - io;
                ie = temp;
                mem.computeFp(4);

                const unsigned rootindex = (even << log) & (fftSize - 1);
                if (rootindex) {
                    const double tr = mem.ld<double>(realTwid, rootindex);
                    const double ti = mem.ld<double>(imgTwid, rootindex);
                    temp = tr * ro - ti * io;
                    io = tr * io + ti * ro;
                    ro = temp;
                    mem.computeFp(6);
                }
                mem.computeInt(4);

                mem.st<double>(real, even, re);
                mem.st<double>(real, odd, ro);
                mem.st<double>(img, even, ie);
                mem.st<double>(img, odd, io);
            }
            mem.barrier(); // next span depends on this pass
        }
    }

    bool
    check(MemoryAccessor &mem) override
    {
        std::vector<double> ref_r = inReal;
        std::vector<double> ref_i = inImg;
        referenceFft(ref_r, ref_i, twidReal, twidImg);

        auto close = [](double a, double b) {
            return std::fabs(a - b) <= 1e-9 + 1e-9 * std::fabs(b);
        };
        for (unsigned i = 0; i < fftSize; ++i) {
            if (!close(mem.ld<double>(real, i), ref_r[i]) ||
                !close(mem.ld<double>(img, i), ref_i[i]))
                return false;
            // The staged copy must hold the untouched input.
            if (mem.ld<double>(workR, i) != inReal[i] ||
                mem.ld<double>(workI, i) != inImg[i])
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId real = 0;
    static constexpr ObjectId img = 1;
    static constexpr ObjectId realTwid = 2;
    static constexpr ObjectId imgTwid = 3;
    static constexpr ObjectId workR = 4;
    static constexpr ObjectId workI = 5;

    std::vector<double> inReal;
    std::vector<double> inImg;
    std::vector<double> twidReal;
    std::vector<double> twidImg;
};

} // namespace

std::unique_ptr<Kernel>
makeFftStrided()
{
    return std::make_unique<FftStridedKernel>();
}

} // namespace capcheck::workloads::kernels
