/**
 * @file
 * MachSuite "stencil2d": 3x3 convolution over a 128x64 integer grid.
 * The grids exceed what the generated datapath buffers locally, so
 * every element access is an individual DMA beat — one of the paper's
 * memory-bound benchmarks.
 */

#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned rows = 128;
constexpr unsigned cols = 64;
constexpr unsigned filterDim = 3;

class Stencil2dKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "stencil2d",
            {
                {"orig", rows * cols * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"sol", rows * cols * 4, BufferAccess::writeOnly,
                 BufferPlacement::external},
                {"filter", filterDim * filterDim * 4,
                 BufferAccess::readOnly, BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/8, /*maxOutstanding=*/1,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        grid.resize(rows * cols);
        filt.resize(filterDim * filterDim);
        for (unsigned i = 0; i < grid.size(); ++i) {
            grid[i] = static_cast<std::int32_t>(rng.nextBounded(256));
            mem.st<std::int32_t>(orig, i, grid[i]);
            mem.st<std::int32_t>(sol, i, 0);
        }
        for (unsigned i = 0; i < filt.size(); ++i) {
            filt[i] =
                static_cast<std::int32_t>(rng.nextRange(-4, 4));
            mem.st<std::int32_t>(filter, i, filt[i]);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        // Filter coefficients live in registers after one pass.
        std::int32_t f[filterDim * filterDim];
        for (unsigned i = 0; i < filterDim * filterDim; ++i)
            f[i] = mem.ld<std::int32_t>(filter, i);

        for (unsigned r = 0; r + filterDim <= rows; ++r) {
            for (unsigned c = 0; c + filterDim <= cols; ++c) {
                std::int32_t acc = 0;
                for (unsigned fr = 0; fr < filterDim; ++fr) {
                    for (unsigned fc = 0; fc < filterDim; ++fc) {
                        acc += f[fr * filterDim + fc] *
                               mem.ld<std::int32_t>(
                                   orig, (r + fr) * cols + (c + fc));
                    }
                }
                mem.st<std::int32_t>(sol, r * cols + c, acc);
                mem.computeInt(filterDim * filterDim * 2);
            }
        }
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        for (unsigned r = 0; r + filterDim <= rows; ++r) {
            for (unsigned c = 0; c + filterDim <= cols; ++c) {
                std::int32_t acc = 0;
                for (unsigned fr = 0; fr < filterDim; ++fr) {
                    for (unsigned fc = 0; fc < filterDim; ++fc) {
                        acc += filt[fr * filterDim + fc] *
                               grid[(r + fr) * cols + (c + fc)];
                    }
                }
                if (mem.ld<std::int32_t>(sol, r * cols + c) != acc)
                    return false;
            }
        }
        // Untouched border must remain zero.
        for (unsigned c = cols - filterDim + 1; c < cols; ++c) {
            if (mem.ld<std::int32_t>(sol, c) != 0)
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId orig = 0;
    static constexpr ObjectId sol = 1;
    static constexpr ObjectId filter = 2;

    std::vector<std::int32_t> grid;
    std::vector<std::int32_t> filt;
};

} // namespace

std::unique_ptr<Kernel>
makeStencil2d()
{
    return std::make_unique<Stencil2dKernel>();
}

} // namespace capcheck::workloads::kernels
