/**
 * @file
 * MachSuite "backprop": one epoch of online SGD training of a
 * two-layer perceptron (16 -> 163 -> 8 with sigmoid activations).
 * Buffer sizes match Table 2 (min 12 B meta, max 10432 B weights).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned nIn = 16;
constexpr unsigned nHid = 163;
constexpr unsigned nOut = 8;
constexpr unsigned nSamples = 32;
constexpr float learningRate = 0.01f;

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

struct Model
{
    std::vector<float> w1; // nIn x nHid
    std::vector<float> w2; // nHid x nOut
    std::vector<float> b1; // nHid
    std::vector<float> b2; // nOut
};

/**
 * Pure reference for one training epoch; check() replays this on saved
 * inputs and compares against the accelerator's result.
 */
void
referenceEpoch(Model &m, const std::vector<float> &xs,
               const std::vector<float> &ts)
{
    std::vector<float> hid(nHid);
    std::vector<float> out(nOut);
    std::vector<float> dout(nOut);
    std::vector<float> dhid(nHid);

    for (unsigned s = 0; s < nSamples; ++s) {
        const float *x = &xs[s * nIn];
        const float *t = &ts[s * nOut];

        for (unsigned j = 0; j < nHid; ++j) {
            float acc = m.b1[j];
            for (unsigned i = 0; i < nIn; ++i)
                acc += x[i] * m.w1[i * nHid + j];
            hid[j] = sigmoid(acc);
        }
        for (unsigned k = 0; k < nOut; ++k) {
            float acc = m.b2[k];
            for (unsigned j = 0; j < nHid; ++j)
                acc += hid[j] * m.w2[j * nOut + k];
            out[k] = sigmoid(acc);
        }

        for (unsigned k = 0; k < nOut; ++k)
            dout[k] = (out[k] - t[k]) * out[k] * (1.0f - out[k]);
        for (unsigned j = 0; j < nHid; ++j) {
            float acc = 0;
            for (unsigned k = 0; k < nOut; ++k)
                acc += dout[k] * m.w2[j * nOut + k];
            dhid[j] = acc * hid[j] * (1.0f - hid[j]);
        }

        for (unsigned j = 0; j < nHid; ++j) {
            for (unsigned k = 0; k < nOut; ++k)
                m.w2[j * nOut + k] -= learningRate * dout[k] * hid[j];
        }
        for (unsigned k = 0; k < nOut; ++k)
            m.b2[k] -= learningRate * dout[k];
        for (unsigned i = 0; i < nIn; ++i) {
            for (unsigned j = 0; j < nHid; ++j)
                m.w1[i * nHid + j] -= learningRate * dhid[j] * x[i];
        }
        for (unsigned j = 0; j < nHid; ++j)
            m.b1[j] -= learningRate * dhid[j];
    }
}

class BackpropKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "backprop",
            {
                {"meta", 12, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"w1", nIn * nHid * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"w2", nHid * nOut * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"b1", nHid * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"b2", nOut * 4, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"x", nSamples * nIn * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"t", nSamples * nOut * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/128, /*maxOutstanding=*/8,
                        /*startupCycles=*/32},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        auto uniform = [&rng] {
            return static_cast<float>(rng.nextDouble()) - 0.5f;
        };

        model.w1.resize(nIn * nHid);
        model.w2.resize(nHid * nOut);
        model.b1.resize(nHid);
        model.b2.resize(nOut);
        inputs.resize(nSamples * nIn);
        targets.resize(nSamples * nOut);

        mem.st<std::int32_t>(meta, 0, nIn);
        mem.st<std::int32_t>(meta, 1, nHid);
        mem.st<std::int32_t>(meta, 2, nOut);

        for (unsigned i = 0; i < model.w1.size(); ++i)
            mem.st<float>(w1, i, model.w1[i] = uniform());
        for (unsigned i = 0; i < model.w2.size(); ++i)
            mem.st<float>(w2, i, model.w2[i] = uniform());
        for (unsigned i = 0; i < nHid; ++i)
            mem.st<float>(b1, i, model.b1[i] = uniform());
        for (unsigned i = 0; i < nOut; ++i)
            mem.st<float>(b2, i, model.b2[i] = uniform());
        for (unsigned i = 0; i < inputs.size(); ++i)
            mem.st<float>(x, i, inputs[i] = uniform());
        for (unsigned i = 0; i < targets.size(); ++i)
            mem.st<float>(t, i, targets[i] = uniform() > 0 ? 1.f : 0.f);
    }

    void
    run(MemoryAccessor &mem) override
    {
        std::vector<float> hid(nHid);
        std::vector<float> out(nOut);
        std::vector<float> dout(nOut);
        std::vector<float> dhid(nHid);

        for (unsigned s = 0; s < nSamples; ++s) {
            // Forward: input -> hidden.
            for (unsigned j = 0; j < nHid; ++j) {
                float acc = mem.ld<float>(b1, j);
                for (unsigned i = 0; i < nIn; ++i) {
                    acc += mem.ld<float>(x, s * nIn + i) *
                           mem.ld<float>(w1, i * nHid + j);
                }
                hid[j] = sigmoid(acc);
            }
            mem.computeFp(nHid * (2 * nIn + 4));

            // Forward: hidden -> output.
            for (unsigned k = 0; k < nOut; ++k) {
                float acc = mem.ld<float>(b2, k);
                for (unsigned j = 0; j < nHid; ++j)
                    acc += hid[j] * mem.ld<float>(w2, j * nOut + k);
                out[k] = sigmoid(acc);
            }
            mem.computeFp(nOut * (2 * nHid + 4));

            // Output deltas.
            for (unsigned k = 0; k < nOut; ++k) {
                dout[k] = (out[k] - mem.ld<float>(t, s * nOut + k)) *
                          out[k] * (1.0f - out[k]);
            }
            mem.computeFp(nOut * 4);

            // Hidden deltas.
            for (unsigned j = 0; j < nHid; ++j) {
                float acc = 0;
                for (unsigned k = 0; k < nOut; ++k)
                    acc += dout[k] * mem.ld<float>(w2, j * nOut + k);
                dhid[j] = acc * hid[j] * (1.0f - hid[j]);
            }
            mem.computeFp(nHid * (2 * nOut + 3));

            // SGD updates.
            for (unsigned j = 0; j < nHid; ++j) {
                for (unsigned k = 0; k < nOut; ++k) {
                    const float w = mem.ld<float>(w2, j * nOut + k);
                    mem.st<float>(w2, j * nOut + k,
                                  w - learningRate * dout[k] * hid[j]);
                }
            }
            mem.computeFp(nHid * nOut * 3);
            for (unsigned k = 0; k < nOut; ++k) {
                mem.st<float>(b2, k, mem.ld<float>(b2, k) -
                                         learningRate * dout[k]);
            }
            for (unsigned i = 0; i < nIn; ++i) {
                const float xi = mem.ld<float>(x, s * nIn + i);
                for (unsigned j = 0; j < nHid; ++j) {
                    const float w = mem.ld<float>(w1, i * nHid + j);
                    mem.st<float>(w1, i * nHid + j,
                                  w - learningRate * dhid[j] * xi);
                }
            }
            mem.computeFp(nIn * nHid * 3);
            for (unsigned j = 0; j < nHid; ++j) {
                mem.st<float>(b1, j, mem.ld<float>(b1, j) -
                                         learningRate * dhid[j]);
            }
            mem.computeFp((nHid + nOut) * 2);
            mem.barrier(); // samples are processed sequentially
        }
    }

    bool
    check(MemoryAccessor &mem) override
    {
        Model ref = model;
        referenceEpoch(ref, inputs, targets);

        auto close = [](float a, float b) {
            return std::fabs(a - b) <= 1e-3f + 1e-3f * std::fabs(b);
        };
        for (unsigned i = 0; i < ref.w1.size(); ++i) {
            if (!close(mem.ld<float>(w1, i), ref.w1[i]))
                return false;
        }
        for (unsigned i = 0; i < ref.w2.size(); ++i) {
            if (!close(mem.ld<float>(w2, i), ref.w2[i]))
                return false;
        }
        for (unsigned i = 0; i < nHid; ++i) {
            if (!close(mem.ld<float>(b1, i), ref.b1[i]))
                return false;
        }
        for (unsigned i = 0; i < nOut; ++i) {
            if (!close(mem.ld<float>(b2, i), ref.b2[i]))
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId meta = 0;
    static constexpr ObjectId w1 = 1;
    static constexpr ObjectId w2 = 2;
    static constexpr ObjectId b1 = 3;
    static constexpr ObjectId b2 = 4;
    static constexpr ObjectId x = 5;
    static constexpr ObjectId t = 6;

    Model model;
    std::vector<float> inputs;
    std::vector<float> targets;
};

} // namespace

std::unique_ptr<Kernel>
makeBackprop()
{
    return std::make_unique<BackpropKernel>();
}

} // namespace capcheck::workloads::kernels
