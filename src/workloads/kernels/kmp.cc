/**
 * @file
 * MachSuite "kmp": Knuth-Morris-Pratt substring search of a 4-byte
 * pattern over a ~64 KiB text. The text is too large for on-chip BRAM
 * and is scanned beat-by-beat (external placement); the pattern and
 * failure table are tiny and streamed.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned patternLen = 4;
constexpr unsigned textLen = 64824;

std::vector<std::int32_t>
buildFailureTable(const std::vector<std::uint8_t> &pat)
{
    std::vector<std::int32_t> next(pat.size(), 0);
    std::int32_t k = 0;
    for (unsigned q = 1; q < pat.size(); ++q) {
        while (k > 0 && pat[k] != pat[q])
            k = next[k - 1];
        if (pat[k] == pat[q])
            ++k;
        next[q] = k;
    }
    return next;
}

std::int32_t
referenceMatches(const std::vector<std::uint8_t> &pat,
                 const std::vector<std::uint8_t> &text)
{
    const std::vector<std::int32_t> next = buildFailureTable(pat);
    std::int32_t matches = 0;
    std::int32_t q = 0;
    for (unsigned i = 0; i < text.size(); ++i) {
        while (q > 0 && pat[q] != text[i])
            q = next[q - 1];
        if (pat[q] == text[i])
            ++q;
        if (q == static_cast<std::int32_t>(pat.size())) {
            ++matches;
            q = next[q - 1];
        }
    }
    return matches;
}

class KmpKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "kmp",
            {
                {"pattern", patternLen, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"text", textLen, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"kmp_next", 64, BufferAccess::readWrite,
                 BufferPlacement::streamed},
                {"n_matches", 4, BufferAccess::writeOnly,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/8, /*maxOutstanding=*/8,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        pat.resize(patternLen);
        text.resize(textLen);
        // Small alphabet so matches actually occur.
        for (unsigned i = 0; i < patternLen; ++i) {
            pat[i] = static_cast<std::uint8_t>('a' + rng.nextBounded(4));
            mem.st<std::uint8_t>(pattern, i, pat[i]);
        }
        for (unsigned i = 0; i < textLen; ++i) {
            text[i] = static_cast<std::uint8_t>('a' + rng.nextBounded(4));
            mem.st<std::uint8_t>(textBuf, i, text[i]);
        }
        mem.st<std::int32_t>(nMatches, 0, 0);
    }

    void
    run(MemoryAccessor &mem) override
    {
        // Build the failure table on-chip, spill it for inspection.
        std::vector<std::uint8_t> p(patternLen);
        for (unsigned i = 0; i < patternLen; ++i)
            p[i] = mem.ld<std::uint8_t>(pattern, i);
        const std::vector<std::int32_t> next = buildFailureTable(p);
        for (unsigned i = 0; i < patternLen; ++i)
            mem.st<std::int32_t>(kmpNext, i, next[i]);
        mem.computeInt(patternLen * 4);

        std::int32_t matches = 0;
        std::int32_t q = 0;
        for (unsigned i = 0; i < textLen; ++i) {
            const auto c = mem.ld<std::uint8_t>(textBuf, i);
            while (q > 0 && p[q] != c) {
                q = next[q - 1];
                mem.computeInt(2);
            }
            if (p[q] == c)
                ++q;
            if (q == static_cast<std::int32_t>(patternLen)) {
                ++matches;
                q = next[q - 1];
            }
            mem.computeInt(3);
        }
        mem.st<std::int32_t>(nMatches, 0, matches);
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        return mem.ld<std::int32_t>(nMatches, 0) ==
               referenceMatches(pat, text);
    }

  private:
    static constexpr ObjectId pattern = 0;
    static constexpr ObjectId textBuf = 1;
    static constexpr ObjectId kmpNext = 2;
    static constexpr ObjectId nMatches = 3;

    std::vector<std::uint8_t> pat;
    std::vector<std::uint8_t> text;
};

} // namespace

std::unique_ptr<Kernel>
makeKmp()
{
    return std::make_unique<KmpKernel>();
}

} // namespace capcheck::workloads::kernels
