/**
 * @file
 * MachSuite "viterbi": most-likely hidden state path of a 64-state,
 * 32-symbol HMM over 128 observations, in negative-log-likelihood
 * space (min-sum recursion), single precision.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned numStates = 64;
constexpr unsigned numSymbols = 32;
constexpr unsigned numObs = 128;

struct Hmm
{
    std::vector<float> init;     // numStates (negative log prob)
    std::vector<float> trans;    // numStates x numStates
    std::vector<float> emission; // numStates x numSymbols
};

/** Pure reference Viterbi decode. */
std::vector<std::int32_t>
referenceDecode(const Hmm &hmm, const std::vector<std::int32_t> &obs)
{
    std::vector<float> llike(numObs * numStates);
    std::vector<std::int8_t> from(numObs * numStates, 0);

    for (unsigned s = 0; s < numStates; ++s)
        llike[s] = hmm.init[s] +
                   hmm.emission[s * numSymbols +
                                static_cast<unsigned>(obs[0])];

    for (unsigned t = 1; t < numObs; ++t) {
        for (unsigned curr = 0; curr < numStates; ++curr) {
            float best = 3.4e38f;
            std::int8_t best_prev = 0;
            for (unsigned prev = 0; prev < numStates; ++prev) {
                const float cand =
                    llike[(t - 1) * numStates + prev] +
                    hmm.trans[prev * numStates + curr];
                if (cand < best) {
                    best = cand;
                    best_prev = static_cast<std::int8_t>(prev);
                }
            }
            llike[t * numStates + curr] =
                best + hmm.emission[curr * numSymbols +
                                    static_cast<unsigned>(obs[t])];
            from[t * numStates + curr] = best_prev;
        }
    }

    std::vector<std::int32_t> path(numObs);
    unsigned best_state = 0;
    for (unsigned s = 1; s < numStates; ++s) {
        if (llike[(numObs - 1) * numStates + s] <
            llike[(numObs - 1) * numStates + best_state])
            best_state = s;
    }
    path[numObs - 1] = static_cast<std::int32_t>(best_state);
    for (unsigned t = numObs - 1; t > 0; --t) {
        best_state = static_cast<unsigned>(
            from[t * numStates + best_state]);
        path[t - 1] = static_cast<std::int32_t>(best_state);
    }
    return path;
}

class ViterbiKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "viterbi",
            {
                {"trans", numStates * numStates * 4,
                 BufferAccess::readOnly, BufferPlacement::streamed},
                {"emission", numStates * numSymbols * 4,
                 BufferAccess::readOnly, BufferPlacement::streamed},
                {"init", numStates * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"obs", numObs * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"path", numObs * 4, BufferAccess::writeOnly,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/128, /*maxOutstanding=*/8,
                        /*startupCycles=*/32},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        hmm.init.resize(numStates);
        hmm.trans.resize(numStates * numStates);
        hmm.emission.resize(numStates * numSymbols);
        obs_h.resize(numObs);

        // Negative-log-space probabilities: random positive costs.
        for (unsigned i = 0; i < hmm.init.size(); ++i)
            hmm.init[i] = static_cast<float>(rng.nextDouble() * 8);
        for (unsigned i = 0; i < hmm.trans.size(); ++i)
            hmm.trans[i] = static_cast<float>(rng.nextDouble() * 8);
        for (unsigned i = 0; i < hmm.emission.size(); ++i)
            hmm.emission[i] = static_cast<float>(rng.nextDouble() * 8);
        for (unsigned i = 0; i < numObs; ++i)
            obs_h[i] = static_cast<std::int32_t>(
                rng.nextBounded(numSymbols));

        for (unsigned i = 0; i < hmm.trans.size(); ++i)
            mem.st<float>(trans, i, hmm.trans[i]);
        for (unsigned i = 0; i < hmm.emission.size(); ++i)
            mem.st<float>(emission, i, hmm.emission[i]);
        for (unsigned i = 0; i < numStates; ++i)
            mem.st<float>(initB, i, hmm.init[i]);
        for (unsigned i = 0; i < numObs; ++i) {
            mem.st<std::int32_t>(obs, i, obs_h[i]);
            mem.st<std::int32_t>(path, i, 0);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        // llike/from live in accelerator-local BRAM.
        std::vector<float> llike(numObs * numStates);
        std::vector<std::int8_t> from(numObs * numStates, 0);

        const auto o0 = static_cast<unsigned>(
            mem.ld<std::int32_t>(obs, 0));
        for (unsigned s = 0; s < numStates; ++s) {
            llike[s] = mem.ld<float>(initB, s) +
                       mem.ld<float>(emission, s * numSymbols + o0);
        }
        mem.computeFp(numStates);

        for (unsigned t = 1; t < numObs; ++t) {
            const auto ot = static_cast<unsigned>(
                mem.ld<std::int32_t>(obs, t));
            for (unsigned curr = 0; curr < numStates; ++curr) {
                float best = 3.4e38f;
                std::int8_t best_prev = 0;
                for (unsigned prev = 0; prev < numStates; ++prev) {
                    const float cand =
                        llike[(t - 1) * numStates + prev] +
                        mem.ld<float>(trans,
                                      prev * numStates + curr);
                    if (cand < best) {
                        best = cand;
                        best_prev = static_cast<std::int8_t>(prev);
                    }
                }
                llike[t * numStates + curr] =
                    best + mem.ld<float>(emission,
                                         curr * numSymbols + ot);
                from[t * numStates + curr] = best_prev;
            }
            mem.computeFp(numStates * numStates * 2);
            mem.barrier(); // time recursion
        }

        unsigned best_state = 0;
        for (unsigned s = 1; s < numStates; ++s) {
            if (llike[(numObs - 1) * numStates + s] <
                llike[(numObs - 1) * numStates + best_state])
                best_state = s;
        }
        mem.computeFp(numStates);

        mem.st<std::int32_t>(path, numObs - 1,
                             static_cast<std::int32_t>(best_state));
        for (unsigned t = numObs - 1; t > 0; --t) {
            best_state = static_cast<unsigned>(
                from[t * numStates + best_state]);
            mem.st<std::int32_t>(path, t - 1,
                                 static_cast<std::int32_t>(best_state));
        }
        mem.computeInt(numObs);
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        const std::vector<std::int32_t> ref =
            referenceDecode(hmm, obs_h);
        for (unsigned t = 0; t < numObs; ++t) {
            if (mem.ld<std::int32_t>(path, t) != ref[t])
                return false;
        }
        return true;
    }

  private:
    static constexpr ObjectId trans = 0;
    static constexpr ObjectId emission = 1;
    static constexpr ObjectId initB = 2;
    static constexpr ObjectId obs = 3;
    static constexpr ObjectId path = 4;

    Hmm hmm;
    std::vector<std::int32_t> obs_h;
};

} // namespace

std::unique_ptr<Kernel>
makeViterbi()
{
    return std::make_unique<ViterbiKernel>();
}

} // namespace capcheck::workloads::kernels
