/**
 * @file
 * MachSuite "md_grid": Lennard-Jones force computation over a 4x4x4
 * spatial grid of cells, each holding up to 5 particles; forces come
 * from particles in the 27 neighbouring cells. Positions/forces are
 * streamed to BRAM; the datapath is FP-heavy.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned gridDim = 4;
constexpr unsigned numCells = gridDim * gridDim * gridDim; // 64
constexpr unsigned cellCapacity = 5;
constexpr unsigned maxPoints = numCells * cellCapacity; // 320

struct Vec3
{
    double x = 0;
    double y = 0;
    double z = 0;
};

/** LJ force contribution of j on i (truncated, unit parameters). */
Vec3
ljForce(const Vec3 &pi, const Vec3 &pj)
{
    const double dx = pi.x - pj.x;
    const double dy = pi.y - pj.y;
    const double dz = pi.z - pj.z;
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 <= 0 || r2 > 1.0)
        return {};
    const double r2inv = 1.0 / r2;
    const double r6inv = r2inv * r2inv * r2inv;
    const double potential = r6inv * (1.5 * r6inv - 2.0);
    const double force = r2inv * potential;
    return {dx * force, dy * force, dz * force};
}

class MdGridKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "md_grid",
            {
                {"n_points", numCells * 4, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"pos_x", maxPoints * 8, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"pos_y", maxPoints * 8, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"pos_z", maxPoints * 8, BufferAccess::readOnly,
                 BufferPlacement::streamed},
                {"frc_x", maxPoints * 8, BufferAccess::writeOnly,
                 BufferPlacement::streamed},
                {"frc_y", maxPoints * 8, BufferAccess::writeOnly,
                 BufferPlacement::streamed},
                {"frc_z", maxPoints * 8, BufferAccess::writeOnly,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/32, /*maxOutstanding=*/8,
                        /*startupCycles=*/24},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        counts.resize(numCells);
        pos.assign(maxPoints, {});

        for (unsigned c = 0; c < numCells; ++c) {
            counts[c] = 2 + static_cast<std::int32_t>(
                                rng.nextBounded(cellCapacity - 1));
            mem.st<std::int32_t>(nPoints, c, counts[c]);

            const unsigned cx = c % gridDim;
            const unsigned cy = (c / gridDim) % gridDim;
            const unsigned cz = c / (gridDim * gridDim);
            for (std::int32_t p = 0; p < counts[c]; ++p) {
                Vec3 &v = pos[c * cellCapacity + p];
                v.x = cx + rng.nextDouble();
                v.y = cy + rng.nextDouble();
                v.z = cz + rng.nextDouble();
            }
        }
        for (unsigned i = 0; i < maxPoints; ++i) {
            mem.st<double>(posX, i, pos[i].x);
            mem.st<double>(posY, i, pos[i].y);
            mem.st<double>(posZ, i, pos[i].z);
            mem.st<double>(frcX, i, 0.0);
            mem.st<double>(frcY, i, 0.0);
            mem.st<double>(frcZ, i, 0.0);
        }
    }

    void
    run(MemoryAccessor &mem) override
    {
        for (unsigned c = 0; c < numCells; ++c) {
            const unsigned cx = c % gridDim;
            const unsigned cy = (c / gridDim) % gridDim;
            const unsigned cz = c / (gridDim * gridDim);
            const auto ni = mem.ld<std::int32_t>(nPoints, c);

            for (std::int32_t i = 0; i < ni; ++i) {
                const unsigned pi_idx = c * cellCapacity + i;
                const Vec3 pi{mem.ld<double>(posX, pi_idx),
                              mem.ld<double>(posY, pi_idx),
                              mem.ld<double>(posZ, pi_idx)};
                Vec3 acc;

                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            const int nx = static_cast<int>(cx) + dx;
                            const int ny = static_cast<int>(cy) + dy;
                            const int nz = static_cast<int>(cz) + dz;
                            if (nx < 0 ||
                                nx >= static_cast<int>(gridDim) ||
                                ny < 0 ||
                                ny >= static_cast<int>(gridDim) ||
                                nz < 0 ||
                                nz >= static_cast<int>(gridDim))
                                continue;
                            const unsigned nc = static_cast<unsigned>(
                                nx + ny * gridDim +
                                nz * gridDim * gridDim);
                            const auto nj =
                                mem.ld<std::int32_t>(nPoints, nc);
                            for (std::int32_t j = 0; j < nj; ++j) {
                                const unsigned pj_idx =
                                    nc * cellCapacity +
                                    static_cast<unsigned>(j);
                                if (pj_idx == pi_idx)
                                    continue;
                                const Vec3 pj{
                                    mem.ld<double>(posX, pj_idx),
                                    mem.ld<double>(posY, pj_idx),
                                    mem.ld<double>(posZ, pj_idx)};
                                const Vec3 f = ljForce(pi, pj);
                                acc.x += f.x;
                                acc.y += f.y;
                                acc.z += f.z;
                                mem.computeFp(20);
                            }
                        }
                    }
                }
                mem.st<double>(frcX, pi_idx, acc.x);
                mem.st<double>(frcY, pi_idx, acc.y);
                mem.st<double>(frcZ, pi_idx, acc.z);
                mem.computeInt(27 * 4);
            }
        }
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        // Reference: brute-force over all cell pairs.
        auto close = [](double a, double b) {
            return std::fabs(a - b) <= 1e-9 + 1e-9 * std::fabs(b);
        };
        for (unsigned c = 0; c < numCells; ++c) {
            const unsigned cx = c % gridDim;
            const unsigned cy = (c / gridDim) % gridDim;
            const unsigned cz = c / (gridDim * gridDim);
            for (std::int32_t i = 0; i < counts[c]; ++i) {
                const unsigned pi_idx =
                    c * cellCapacity + static_cast<unsigned>(i);
                Vec3 acc;
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            const int nx = static_cast<int>(cx) + dx;
                            const int ny = static_cast<int>(cy) + dy;
                            const int nz = static_cast<int>(cz) + dz;
                            if (nx < 0 ||
                                nx >= static_cast<int>(gridDim) ||
                                ny < 0 ||
                                ny >= static_cast<int>(gridDim) ||
                                nz < 0 ||
                                nz >= static_cast<int>(gridDim))
                                continue;
                            const unsigned nc = static_cast<unsigned>(
                                nx + ny * gridDim +
                                nz * gridDim * gridDim);
                            for (std::int32_t j = 0; j < counts[nc];
                                 ++j) {
                                const unsigned pj_idx =
                                    nc * cellCapacity +
                                    static_cast<unsigned>(j);
                                if (pj_idx == pi_idx)
                                    continue;
                                const Vec3 f = ljForce(
                                    pos[pi_idx], pos[pj_idx]);
                                acc.x += f.x;
                                acc.y += f.y;
                                acc.z += f.z;
                            }
                        }
                    }
                }
                if (!close(mem.ld<double>(frcX, pi_idx), acc.x) ||
                    !close(mem.ld<double>(frcY, pi_idx), acc.y) ||
                    !close(mem.ld<double>(frcZ, pi_idx), acc.z))
                    return false;
            }
        }
        return true;
    }

  private:
    static constexpr ObjectId nPoints = 0;
    static constexpr ObjectId posX = 1;
    static constexpr ObjectId posY = 2;
    static constexpr ObjectId posZ = 3;
    static constexpr ObjectId frcX = 4;
    static constexpr ObjectId frcY = 5;
    static constexpr ObjectId frcZ = 6;

    std::vector<std::int32_t> counts;
    std::vector<Vec3> pos;
};

} // namespace

std::unique_ptr<Kernel>
makeMdGrid()
{
    return std::make_unique<MdGridKernel>();
}

} // namespace capcheck::workloads::kernels
