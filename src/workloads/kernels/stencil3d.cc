/**
 * @file
 * MachSuite "stencil3d": 7-point von-Neumann stencil over a 32x32x16
 * integer volume with boundary copy-through, weighted by two
 * coefficients (the 8-byte "C" buffer of Table 2).
 */

#include <cstdint>
#include <vector>

#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads::kernels
{
namespace
{

constexpr unsigned dimX = 32;
constexpr unsigned dimY = 32;
constexpr unsigned dimZ = 16;

unsigned
idx(unsigned x, unsigned y, unsigned z)
{
    return (z * dimY + y) * dimX + x;
}

class Stencil3dKernel : public Kernel
{
  public:
    const KernelSpec &
    spec() const override
    {
        static const KernelSpec kSpec{
            "stencil3d",
            {
                {"orig", dimX * dimY * dimZ * 4, BufferAccess::readOnly,
                 BufferPlacement::external},
                {"sol", dimX * dimY * dimZ * 4, BufferAccess::writeOnly,
                 BufferPlacement::external},
                {"C", 8, BufferAccess::readOnly,
                 BufferPlacement::streamed},
            },
            AccelTiming{/*ilp=*/8, /*maxOutstanding=*/1,
                        /*startupCycles=*/16},
        };
        return kSpec;
    }

    void
    init(MemoryAccessor &mem, Rng &rng) override
    {
        vol.resize(dimX * dimY * dimZ);
        for (unsigned i = 0; i < vol.size(); ++i) {
            vol[i] = static_cast<std::int32_t>(rng.nextBounded(100));
            mem.st<std::int32_t>(orig, i, vol[i]);
            mem.st<std::int32_t>(sol, i, 0);
        }
        c0 = 2;
        c1 = -1;
        mem.st<std::int32_t>(coeff, 0, c0);
        mem.st<std::int32_t>(coeff, 1, c1);
    }

    static std::int32_t
    stencilAt(const std::vector<std::int32_t> &v, unsigned x, unsigned y,
              unsigned z, std::int32_t c0, std::int32_t c1)
    {
        const std::int32_t sum = v[idx(x, y, z - 1)] +
                                 v[idx(x, y, z + 1)] +
                                 v[idx(x, y - 1, z)] +
                                 v[idx(x, y + 1, z)] +
                                 v[idx(x - 1, y, z)] +
                                 v[idx(x + 1, y, z)];
        return c0 * v[idx(x, y, z)] + c1 * sum;
    }

    void
    run(MemoryAccessor &mem) override
    {
        const auto k0 = mem.ld<std::int32_t>(coeff, 0);
        const auto k1 = mem.ld<std::int32_t>(coeff, 1);

        // Boundary copy-through.
        for (unsigned z = 0; z < dimZ; ++z) {
            for (unsigned y = 0; y < dimY; ++y) {
                for (unsigned x = 0; x < dimX; ++x) {
                    const bool boundary =
                        x == 0 || x == dimX - 1 || y == 0 ||
                        y == dimY - 1 || z == 0 || z == dimZ - 1;
                    if (boundary) {
                        mem.st<std::int32_t>(
                            sol, idx(x, y, z),
                            mem.ld<std::int32_t>(orig, idx(x, y, z)));
                    }
                }
            }
        }
        mem.barrier();

        // Interior stencil.
        for (unsigned z = 1; z + 1 < dimZ; ++z) {
            for (unsigned y = 1; y + 1 < dimY; ++y) {
                for (unsigned x = 1; x + 1 < dimX; ++x) {
                    std::int32_t sum = 0;
                    sum += mem.ld<std::int32_t>(orig, idx(x, y, z - 1));
                    sum += mem.ld<std::int32_t>(orig, idx(x, y, z + 1));
                    sum += mem.ld<std::int32_t>(orig, idx(x, y - 1, z));
                    sum += mem.ld<std::int32_t>(orig, idx(x, y + 1, z));
                    sum += mem.ld<std::int32_t>(orig, idx(x - 1, y, z));
                    sum += mem.ld<std::int32_t>(orig, idx(x + 1, y, z));
                    const std::int32_t center =
                        mem.ld<std::int32_t>(orig, idx(x, y, z));
                    mem.st<std::int32_t>(sol, idx(x, y, z),
                                         k0 * center + k1 * sum);
                    mem.computeInt(9);
                }
            }
        }
        mem.barrier();
    }

    bool
    check(MemoryAccessor &mem) override
    {
        for (unsigned z = 0; z < dimZ; ++z) {
            for (unsigned y = 0; y < dimY; ++y) {
                for (unsigned x = 0; x < dimX; ++x) {
                    const bool boundary =
                        x == 0 || x == dimX - 1 || y == 0 ||
                        y == dimY - 1 || z == 0 || z == dimZ - 1;
                    const std::int32_t expect =
                        boundary ? vol[idx(x, y, z)]
                                 : stencilAt(vol, x, y, z, c0, c1);
                    if (mem.ld<std::int32_t>(sol, idx(x, y, z)) !=
                        expect)
                        return false;
                }
            }
        }
        return true;
    }

  private:
    static constexpr ObjectId orig = 0;
    static constexpr ObjectId sol = 1;
    static constexpr ObjectId coeff = 2;

    std::vector<std::int32_t> vol;
    std::int32_t c0 = 0;
    std::int32_t c1 = 0;
};

} // namespace

std::unique_ptr<Kernel>
makeStencil3d()
{
    return std::make_unique<Stencil3dKernel>();
}

} // namespace capcheck::workloads::kernels
