/**
 * @file
 * Shared random-graph generation for the BFS kernels: a random
 * arborescence (every node reachable from node 0) stored in CSR form,
 * so both BFS variants traverse identical structure.
 */

#ifndef CAPCHECK_WORKLOADS_KERNELS_GRAPH_UTIL_HH
#define CAPCHECK_WORKLOADS_KERNELS_GRAPH_UTIL_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"

namespace capcheck::workloads::kernels
{

struct CsrGraph
{
    std::vector<std::int32_t> edgeBegin; // per node
    std::vector<std::int32_t> edgeEnd;   // per node
    std::vector<std::int32_t> edges;     // child node ids
};

/** Build a random tree over @p num_nodes nodes rooted at node 0. */
inline CsrGraph
makeRandomTree(unsigned num_nodes, Rng &rng)
{
    std::vector<std::vector<std::int32_t>> children(num_nodes);
    for (unsigned node = 1; node < num_nodes; ++node) {
        const auto parent =
            static_cast<unsigned>(rng.nextBounded(node));
        children[parent].push_back(static_cast<std::int32_t>(node));
    }

    CsrGraph graph;
    graph.edgeBegin.resize(num_nodes);
    graph.edgeEnd.resize(num_nodes);
    for (unsigned node = 0; node < num_nodes; ++node) {
        graph.edgeBegin[node] =
            static_cast<std::int32_t>(graph.edges.size());
        for (const std::int32_t child : children[node])
            graph.edges.push_back(child);
        graph.edgeEnd[node] =
            static_cast<std::int32_t>(graph.edges.size());
    }
    // Pad the edge array to exactly num_nodes entries so the buffer is
    // fully sized regardless of tree shape.
    graph.edges.resize(num_nodes, 0);
    return graph;
}

/** Reference BFS levels, bounded to @p max_levels horizons. */
inline std::vector<std::int8_t>
referenceBfsLevels(const CsrGraph &graph, unsigned num_nodes,
                   unsigned max_levels,
                   std::vector<std::int32_t> *level_counts = nullptr)
{
    std::vector<std::int8_t> level(num_nodes, -1);
    level[0] = 0;
    if (level_counts)
        level_counts->assign(max_levels, 0);

    for (unsigned horizon = 0; horizon + 1 < max_levels; ++horizon) {
        std::int32_t count = 0;
        for (unsigned node = 0; node < num_nodes; ++node) {
            if (level[node] != static_cast<std::int8_t>(horizon))
                continue;
            for (std::int32_t e = graph.edgeBegin[node];
                 e < graph.edgeEnd[node]; ++e) {
                const std::int32_t dst = graph.edges[e];
                if (level[dst] == -1) {
                    level[dst] = static_cast<std::int8_t>(horizon + 1);
                    ++count;
                }
            }
        }
        if (level_counts)
            (*level_counts)[horizon + 1] = count;
        if (count == 0)
            break;
    }
    return level;
}

} // namespace capcheck::workloads::kernels

#endif // CAPCHECK_WORKLOADS_KERNELS_GRAPH_UTIL_HH
