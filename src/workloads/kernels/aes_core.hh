/**
 * @file
 * AES-256 cipher primitives shared by the aes kernel and its tests
 * (which validate the implementation against the FIPS-197 known-answer
 * vectors). Pure functions over fixed-size arrays; no I/O.
 */

#ifndef CAPCHECK_WORKLOADS_KERNELS_AES_CORE_HH
#define CAPCHECK_WORKLOADS_KERNELS_AES_CORE_HH

#include <array>
#include <cstdint>

namespace capcheck::workloads::kernels::aes
{

constexpr unsigned keyBytes = 32;
constexpr unsigned blockBytes = 16;
constexpr unsigned rounds = 14; // AES-256

using Block = std::array<std::uint8_t, blockBytes>;
using Key = std::array<std::uint8_t, keyBytes>;
using Schedule = std::array<std::uint8_t, 16 * (rounds + 1)>;

/** The AES S-box. */
extern const std::uint8_t sbox[256];

/** GF(2^8) doubling. */
std::uint8_t xtime(std::uint8_t x);

/** AES-256 key expansion (FIPS-197 section 5.2). */
Schedule expandKey(const Key &key);

/** Encrypt one block (FIPS-197 section 5.1). */
Block encryptBlock(Block block, const Schedule &schedule);

} // namespace capcheck::workloads::kernels::aes

#endif // CAPCHECK_WORKLOADS_KERNELS_AES_CORE_HH
