/**
 * @file
 * Untimed functional accessor: buffers are plain host byte arrays.
 * Used for kernel unit testing and anywhere functional behaviour is
 * needed without a simulated system underneath.
 */

#ifndef CAPCHECK_WORKLOADS_HOST_ACCESSOR_HH
#define CAPCHECK_WORKLOADS_HOST_ACCESSOR_HH

#include <cstring>
#include <vector>

#include "base/logging.hh"
#include "workloads/accessor.hh"
#include "workloads/buffer_spec.hh"

namespace capcheck::workloads
{

class HostAccessor : public MemoryAccessor
{
  public:
    /** Allocate zeroed host buffers matching @p spec. */
    explicit HostAccessor(const KernelSpec &spec)
    {
        for (const BufferDef &buf : spec.buffers)
            buffers.emplace_back(buf.size, 0);
    }

    void
    load(ObjectId obj, std::uint64_t off, void *dst,
         std::uint32_t size) override
    {
        checkRange(obj, off, size);
        std::memcpy(dst, buffers[obj].data() + off, size);
    }

    void
    store(ObjectId obj, std::uint64_t off, const void *src,
          std::uint32_t size) override
    {
        checkRange(obj, off, size);
        std::memcpy(buffers[obj].data() + off, src, size);
    }

    void computeInt(std::uint64_t) override {}
    void computeFp(std::uint64_t) override {}

    /** Direct access for tests. */
    const std::vector<std::uint8_t> &bufferData(ObjectId obj) const
    {
        return buffers.at(obj);
    }

  private:
    void
    checkRange(ObjectId obj, std::uint64_t off, std::uint32_t size) const
    {
        if (obj >= buffers.size() || off + size > buffers[obj].size())
            panic("host access out of range: obj=%u off=%llu size=%u",
                  obj, static_cast<unsigned long long>(off), size);
    }

    std::vector<std::vector<std::uint8_t>> buffers;
};

} // namespace capcheck::workloads

#endif // CAPCHECK_WORKLOADS_HOST_ACCESSOR_HH
