/**
 * @file
 * Static description of a kernel's buffers and accelerator datapath:
 * what the trusted driver needs to allocate (Table 2 of the paper) and
 * what the accelerator timing model needs to replay (Section 6.1's
 * "diverse accelerator behaviors").
 */

#ifndef CAPCHECK_WORKLOADS_BUFFER_SPEC_HH
#define CAPCHECK_WORKLOADS_BUFFER_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace capcheck::workloads
{

/** How a buffer is accessed by the accelerator. */
enum class BufferAccess
{
    readOnly,
    writeOnly,
    readWrite,
};

/**
 * Where a buffer lives from the accelerator datapath's view: HLS either
 * streams an array into on-chip BRAM (one DMA pass in, one out) or
 * issues an individual DMA beat per element access (m_axi-style).
 */
enum class BufferPlacement
{
    streamed,
    external,
};

struct BufferDef
{
    std::string name;
    std::uint64_t size = 0;
    BufferAccess access = BufferAccess::readWrite;
    BufferPlacement placement = BufferPlacement::streamed;
};

/** Accelerator datapath timing parameters (set per benchmark). */
struct AccelTiming
{
    /**
     * Datapath parallelism: operations retired per cycle once the
     * pipeline is full (HLS unroll x pipelining).
     */
    std::uint32_t ilp = 8;

    /**
     * Outstanding DMA requests the datapath sustains on external
     * buffers. 1 models dependent (pointer-chasing) access patterns,
     * larger values model independent pipelined address generation.
     */
    std::uint32_t maxOutstanding = 8;

    /** Pipeline fill cost charged once per task. */
    std::uint32_t startupCycles = 16;
};

/**
 * A kernel's static footprint: its buffers plus datapath parameters.
 */
struct KernelSpec
{
    std::string name;
    std::vector<BufferDef> buffers;
    AccelTiming timing;

    std::uint64_t totalBytes() const;
    std::uint64_t minBufferBytes() const;
    std::uint64_t maxBufferBytes() const;

    /** Inline: hit once per replayed trace operation. */
    const BufferDef &
    buffer(ObjectId obj) const
    {
        if (obj >= buffers.size())
            noSuchBuffer(obj);
        return buffers[obj];
    }

  private:
    [[noreturn]] void noSuchBuffer(ObjectId obj) const;
};

/**
 * One row of the paper's Table 2 for a benchmark run with
 * @p num_instances accelerator instances (buffer counts aggregate over
 * instances; sizes do not).
 */
struct Table2Row
{
    std::string benchmark;
    std::uint32_t bufferCount = 0;
    std::uint64_t minBytes = 0;
    std::uint64_t maxBytes = 0;
};

Table2Row makeTable2Row(const KernelSpec &spec, unsigned num_instances);

} // namespace capcheck::workloads

#endif // CAPCHECK_WORKLOADS_BUFFER_SPEC_HH
