#include "workloads/accessor.hh"

#include <algorithm>

namespace capcheck::workloads
{

void
MemoryAccessor::copy(ObjectId dst_obj, std::uint64_t dst_off,
                     ObjectId src_obj, std::uint64_t src_off,
                     std::uint64_t len)
{
    // Default: element-wise via 8-byte words; envelopes override to
    // model wide-copy instructions.
    std::uint64_t done = 0;
    while (done < len) {
        const std::uint32_t chunk =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                8, len - done));
        std::uint8_t tmp[8];
        load(src_obj, src_off + done, tmp, chunk);
        store(dst_obj, dst_off + done, tmp, chunk);
        done += chunk;
    }
}

} // namespace capcheck::workloads
