/**
 * @file
 * The MemoryAccessor interface: every MachSuite kernel is written once
 * against this interface and executed under different "envelopes" —
 * the CPU cost model, the accelerator trace recorder, or an untimed
 * host accessor. Accesses name a buffer object plus a byte offset; the
 * envelope maps that to a shared-memory address, applies protection
 * checks, performs the functional access, and accounts time.
 */

#ifndef CAPCHECK_WORKLOADS_ACCESSOR_HH
#define CAPCHECK_WORKLOADS_ACCESSOR_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "base/types.hh"

namespace capcheck::workloads
{

class MemoryAccessor
{
  public:
    virtual ~MemoryAccessor() = default;

    /** @{ Raw byte access at @p off inside buffer @p obj. */
    virtual void load(ObjectId obj, std::uint64_t off, void *dst,
                      std::uint32_t size) = 0;
    virtual void store(ObjectId obj, std::uint64_t off, const void *src,
                       std::uint32_t size) = 0;
    /** @} */

    /**
     * Bulk copy between buffers. On a CHERI CPU this runs at capability
     * width (16 B per iteration) instead of 8 B — the effect the paper
     * credits for gemm_blocked running faster on the CHERI CPU.
     */
    virtual void copy(ObjectId dst_obj, std::uint64_t dst_off,
                      ObjectId src_obj, std::uint64_t src_off,
                      std::uint64_t len);

    /** Account @p n integer/logic operations of datapath work. */
    virtual void computeInt(std::uint64_t n) = 0;

    /** Account @p n floating-point operations. */
    virtual void computeFp(std::uint64_t n) = 0;

    /**
     * A sequential dependence point: on an accelerator, all outstanding
     * memory responses must land before work continues (loop-carried
     * dependence). The CPU model is already sequential.
     */
    virtual void barrier() {}

    /** @{ Typed element helpers: index in units of T. */
    template <typename T>
    T
    ld(ObjectId obj, std::uint64_t index)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        load(obj, index * sizeof(T), &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    st(ObjectId obj, std::uint64_t index, T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        store(obj, index * sizeof(T), &value, sizeof(T));
    }
    /** @} */
};

} // namespace capcheck::workloads

#endif // CAPCHECK_WORKLOADS_ACCESSOR_HH
