/**
 * @file
 * Kernel base class and registry for the 19 MachSuite benchmarks
 * (Reagen et al., IISWC 2014) used in the paper's evaluation. Each
 * kernel provides input generation, the algorithm itself (written
 * against MemoryAccessor so one implementation serves both the CPU
 * model and the accelerator model), and an output check against an
 * independently computed reference.
 */

#ifndef CAPCHECK_WORKLOADS_KERNEL_HH
#define CAPCHECK_WORKLOADS_KERNEL_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "workloads/accessor.hh"
#include "workloads/buffer_spec.hh"

namespace capcheck::workloads
{

class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Static footprint and datapath parameters. */
    virtual const KernelSpec &spec() const = 0;

    /**
     * Generate input data into the buffers. Runs on the host/CPU side
     * (buffers are initialized by the application before the task
     * starts, per Fig. 6).
     */
    virtual void init(MemoryAccessor &mem, Rng &rng) = 0;

    /** Execute the algorithm. */
    virtual void run(MemoryAccessor &mem) = 0;

    /**
     * Validate the outputs against a reference computed from the saved
     * inputs. @return true when the result is correct.
     */
    virtual bool check(MemoryAccessor &mem) = 0;
};

/** Factory signature for kernels. */
using KernelFactory = std::function<std::unique_ptr<Kernel>()>;

/** All benchmark names, in the paper's Table 2 order. */
const std::vector<std::string> &allKernelNames();

/** Create a kernel by benchmark name; fatal() on unknown names. */
std::unique_ptr<Kernel> createKernel(const std::string &name);

/** Static spec lookup without instantiating the kernel. */
const KernelSpec &kernelSpec(const std::string &name);

} // namespace capcheck::workloads

#endif // CAPCHECK_WORKLOADS_KERNEL_HH
