#include "workloads/kernel.hh"

#include <map>
#include <mutex>

#include "base/logging.hh"
#include "workloads/kernels/kernels.hh"

namespace capcheck::workloads
{

namespace
{

const std::map<std::string, KernelFactory> &
registry()
{
    using namespace kernels;
    static const std::map<std::string, KernelFactory> factories = {
        {"aes", makeAes},
        {"backprop", makeBackprop},
        {"bfs_bulk", makeBfsBulk},
        {"bfs_queue", makeBfsQueue},
        {"fft_strided", makeFftStrided},
        {"fft_transpose", makeFftTranspose},
        {"gemm_blocked", makeGemmBlocked},
        {"gemm_ncubed", makeGemmNcubed},
        {"kmp", makeKmp},
        {"md_grid", makeMdGrid},
        {"md_knn", makeMdKnn},
        {"nw", makeNw},
        {"sort_merge", makeSortMerge},
        {"sort_radix", makeSortRadix},
        {"spmv_crs", makeSpmvCrs},
        {"spmv_ellpack", makeSpmvEllpack},
        {"stencil2d", makeStencil2d},
        {"stencil3d", makeStencil3d},
        {"viterbi", makeViterbi},
    };
    return factories;
}

} // namespace

const std::vector<std::string> &
allKernelNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &[name, factory] : registry())
            out.push_back(name);
        return out;
    }();
    return names;
}

std::unique_ptr<Kernel>
createKernel(const std::string &name)
{
    const auto it = registry().find(name);
    if (it == registry().end())
        fatal("unknown benchmark kernel '%s'", name.c_str());
    return it->second();
}

const KernelSpec &
kernelSpec(const std::string &name)
{
    // Concurrent SweepRunner workers all resolve specs through this
    // cache; map nodes are stable, so the lock only guards the
    // lookup/insert, not the returned reference.
    static std::mutex cache_mtx;
    static std::map<std::string, KernelSpec> cache;
    std::scoped_lock lock(cache_mtx);
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, createKernel(name)->spec()).first;
    return it->second;
}

} // namespace capcheck::workloads
