/**
 * @file
 * The trusted software driver of Fig. 6. It owns the allocation /
 * execution / deallocation flow for accelerator tasks: claiming a
 * functional unit, allocating data buffers from shared memory, deriving
 * per-buffer CHERI capabilities on the CPU (recorded in the capability
 * tree), installing them into the CapChecker over the capability MMIO,
 * programming the accelerator's control registers, and on completion
 * evicting capabilities, scrubbing buffers after an exception, and
 * releasing the functional unit.
 *
 * The same driver drives the comparison baselines: with an IOMMU it
 * maps buffer pages; with an IOPMP it programs regions; with no
 * protection it only sets pointers.
 */

#ifndef CAPCHECK_DRIVER_DRIVER_HH
#define CAPCHECK_DRIVER_DRIVER_HH

#include <optional>
#include <vector>

#include "accel/accelerator.hh"
#include "base/probe.hh"
#include "capchecker/capchecker.hh"
#include "capchecker/mmio.hh"
#include "cheri/captree.hh"
#include "cpu/cpu_model.hh" // BufferMapping
#include "mem/allocator.hh"
#include "mem/tagged_memory.hh"
#include "protect/iommu.hh"
#include "protect/iopmp.hh"

namespace capcheck::driver
{

/** Cycle costs of driver actions not covered by the MMIO model. */
struct DriverCostParams
{
    Cycles mallocCall = 40;       ///< allocator bookkeeping on the CPU
    Cycles freeCall = 20;
    Cycles controlRegWrite = 3;   ///< one MMIO write to the accelerator
    Cycles capDerive = 12;        ///< CSetBounds+CAndPerm on a CHERI CPU
    Cycles pointerSetup = 2;      ///< plain pointer arithmetic otherwise
    Cycles iommuMapPerPage = 25;  ///< page-table entry + bookkeeping
    Cycles iommuUnmapPerPage = 15;
    Cycles iopmpRegionSetup = 8;
    Cycles scrubPerWord = 1;      ///< clearing leaked data on exception
};

/** Payload of the capability-install probe (one per buffer). */
struct CapInstallEvent
{
    TaskId task;
    ObjectId object;
    Addr base;
    std::uint64_t size;
    /** Driver cycles consumed so far on this allocation. */
    Cycles driverCycles;
};

/** Payload of the capability-revoke probe (one per task teardown). */
struct CapRevokeEvent
{
    TaskId task;
    unsigned buffers;
    bool hadException;
    /** Driver cycles the teardown consumed. */
    Cycles driverCycles;
};

/** A live accelerator task, as the driver tracks it. */
struct TaskHandle
{
    TaskId task = invalidTaskId;
    accel::Accelerator *accel = nullptr;
    unsigned instance = 0;
    std::vector<BufferMapping> buffers;
    /** Accelerator-visible base addresses (Coarse mode folds obj ids). */
    std::vector<Addr> accelBases;
    cheri::CapNodeId taskNode = cheri::invalidCapNode;
    std::vector<cheri::CapNodeId> bufferNodes;
    Cycles allocCycles = 0;
};

class Driver
{
  public:
    /**
     * @param cheri_cpu whether capabilities are derived (ccpu configs).
     * @param checker CapChecker to program, or nullptr.
     * @param iommu IOMMU to map, or nullptr.
     * @param iopmp IOPMP to program, or nullptr.
     */
    Driver(TaggedMemory &mem, RegionAllocator &heap,
           cheri::CapTree &tree, bool cheri_cpu,
           capchecker::CapChecker *checker = nullptr,
           protect::Iommu *iommu = nullptr,
           protect::Iopmp *iopmp = nullptr,
           const DriverCostParams &costs = DriverCostParams{});

    /**
     * Fig. 6 (1): allocate an accelerator task.
     * @param cpu_task_node the requesting CPU task in the capability
     *        tree (its authority bounds the buffer capabilities).
     * @return the handle, or nullopt when no functional unit is free
     *         or memory/table space is exhausted.
     */
    std::optional<TaskHandle> allocateTask(accel::Accelerator &accel,
                                           TaskId task,
                                           cheri::CapNodeId cpu_task_node);

    /**
     * Fig. 6 (2): deallocate. With @p had_exception the buffers are
     * scrubbed before the memory is returned.
     * @return driver cycles consumed.
     */
    Cycles deallocateTask(TaskHandle &handle, bool had_exception);

    /** Total driver cycles consumed since construction. */
    Cycles cyclesUsed() const { return _cycles; }

    cheri::CapTree &capTree() { return tree; }
    const DriverCostParams &costs() const { return params; }

    /** @{ Probe points for capability lifecycle observation. */
    probe::ProbePoint<CapInstallEvent> &installProbe()
    {
        return _installProbe;
    }
    probe::ProbePoint<CapRevokeEvent> &revokeProbe()
    {
        return _revokeProbe;
    }
    /** @} */

  private:
    std::uint32_t permsFor(workloads::BufferAccess access) const;

    TaggedMemory &mem;
    RegionAllocator &heap;
    cheri::CapTree &tree;
    bool cheriCpu;
    capchecker::CapChecker *checker;
    std::optional<capchecker::CapCheckerMmio> mmio;
    protect::Iommu *iommu;
    protect::Iopmp *iopmp;
    DriverCostParams params;
    Cycles _cycles = 0;

    probe::ProbePoint<CapInstallEvent> _installProbe{
        "driver.capInstall"};
    probe::ProbePoint<CapRevokeEvent> _revokeProbe{"driver.capRevoke"};
};

} // namespace capcheck::driver

#endif // CAPCHECK_DRIVER_DRIVER_HH
