#include "driver/driver.hh"

#include "base/logging.hh"
#include "base/trace.hh"

namespace capcheck::driver
{

Driver::Driver(TaggedMemory &mem, RegionAllocator &heap,
               cheri::CapTree &tree, bool cheri_cpu,
               capchecker::CapChecker *checker, protect::Iommu *iommu,
               protect::Iopmp *iopmp, const DriverCostParams &costs)
    : mem(mem), heap(heap), tree(tree), cheriCpu(cheri_cpu),
      checker(checker), iommu(iommu), iopmp(iopmp), params(costs)
{
    if (checker)
        mmio.emplace(*checker);
    if (checker && !cheri_cpu)
        fatal("a CapChecker requires a CHERI CPU to source capabilities");
}

std::uint32_t
Driver::permsFor(workloads::BufferAccess access) const
{
    switch (access) {
      case workloads::BufferAccess::readOnly:
        return cheri::permDataRO;
      case workloads::BufferAccess::writeOnly:
        return cheri::permDataWO;
      case workloads::BufferAccess::readWrite:
        return cheri::permDataRW;
    }
    return 0;
}

std::optional<TaskHandle>
Driver::allocateTask(accel::Accelerator &accel, TaskId task,
                     cheri::CapNodeId cpu_task_node)
{
    Cycles cycles = 0;

    // Step 1: find a free suitable functional unit.
    const auto instance = accel.claimInstance(task);
    cycles += 4 + accel.numInstances(); // FU scan
    if (!instance)
        return std::nullopt;

    TaskHandle handle;
    handle.task = task;
    handle.accel = &accel;
    handle.instance = *instance;

    // The accelerator task is a child of the requesting CPU task in
    // the capability tree (Fig. 4). Copy the authority: growing the
    // tree below invalidates references into it.
    const cheri::Capability authority = tree.capOf(cpu_task_node);
    if (cheriCpu) {
        handle.taskNode =
            tree.derive(cpu_task_node, cheri::CapNodeKind::accelTask,
                        authority.andPerms(cheri::permDataRW),
                        accel.name() + "#" + std::to_string(task));
        cycles += params.capDerive;
    }

    // Step 2: allocate buffers and derive their capabilities.
    const workloads::KernelSpec &spec = accel.spec();
    accel::Accelerator::InstanceRegs &regs = accel.regs(*instance);

    for (ObjectId obj = 0; obj < spec.buffers.size(); ++obj) {
        const workloads::BufferDef &def = spec.buffers[obj];
        const auto base = heap.allocate(def.size);
        cycles += params.mallocCall;
        if (!base) {
            // Roll back partial allocation.
            for (const BufferMapping &buf : handle.buffers)
                heap.free(buf.base);
            accel.releaseInstance(*instance);
            _cycles += cycles;
            return std::nullopt;
        }

        BufferMapping mapping;
        mapping.base = *base;
        mapping.size = def.size;

        if (cheriCpu) {
            mapping.cap = authority.setBounds(*base, def.size)
                              .andPerms(permsFor(def.access));
            if (!mapping.cap.tag())
                panic("driver: buffer capability not representable");
            handle.bufferNodes.push_back(
                tree.derive(handle.taskNode, cheri::CapNodeKind::buffer,
                            mapping.cap, def.name));
            cycles += params.capDerive;
        } else {
            cycles += params.pointerSetup;
        }

        // Install protection state.
        if (checker) {
            if (!mmio->installSequence(task, obj, mapping.cap)) {
                // Capability table full: the driver would stall; the
                // caller handles this by deallocating another task.
                for (const BufferMapping &buf : handle.buffers)
                    heap.free(buf.base);
                heap.free(*base);
                checker->evictTask(task);
                if (cheriCpu) {
                    for (auto node : handle.bufferNodes)
                        tree.remove(node);
                    tree.remove(handle.taskNode);
                }
                accel.releaseInstance(*instance);
                _cycles += cycles + mmio->cyclesUsed();
                mmio->resetCycles();
                return std::nullopt;
            }
        }
        if (iommu) {
            const unsigned pages =
                iommu->mapRange(task, *base, def.size,
                                def.access !=
                                    workloads::BufferAccess::readOnly);
            cycles += pages * params.iommuMapPerPage;
        }
        if (iopmp) {
            protect::Iopmp::Region region;
            region.task = task;
            region.base = *base;
            region.size = def.size;
            region.allowRead =
                def.access != workloads::BufferAccess::writeOnly;
            region.allowWrite =
                def.access != workloads::BufferAccess::readOnly;
            iopmp->addRegion(region);
            cycles += params.iopmpRegionSetup;
        }

        // Program the instance's base-pointer control register
        // (inst.add_ptr() in Fig. 6), folding the object id into the
        // address in Coarse mode.
        const Addr accel_base =
            checker ? checker->accelAddress(obj, *base) : *base;
        regs.objBase[obj] = accel_base;
        handle.accelBases.push_back(accel_base);
        cycles += params.controlRegWrite;

        _installProbe.notify(
            CapInstallEvent{task, obj, *base, def.size, cycles});
        handle.buffers.push_back(mapping);
    }

    // Start strobe.
    regs.started = true;
    cycles += params.controlRegWrite;

    CAPCHECK_DPRINTF(debug::driver,
                     "alloc task %u on %s#%u: %zu buffers, %llu cycles",
                     task, accel.name().c_str(), *instance,
                     handle.buffers.size(),
                     static_cast<unsigned long long>(cycles +
                                                     (mmio ? mmio->cyclesUsed()
                                                           : 0)));

    if (mmio) {
        cycles += mmio->cyclesUsed();
        mmio->resetCycles();
    }
    handle.allocCycles = cycles;
    _cycles += cycles;
    return handle;
}

Cycles
Driver::deallocateTask(TaskHandle &handle, bool had_exception)
{
    Cycles cycles = 0;

    // Evict capabilities first so no further DMA can be granted.
    if (checker) {
        mmio->evictSequence(handle.task);
        cycles += mmio->cyclesUsed() +
                  checker->evictCycles() * handle.buffers.size();
        mmio->resetCycles();
    }
    if (iommu) {
        std::uint64_t pages = 0;
        for (const BufferMapping &buf : handle.buffers)
            pages += (buf.size + protect::Iommu::pageSize - 1) /
                     protect::Iommu::pageSize;
        iommu->unmapTask(handle.task);
        cycles += pages * params.iommuUnmapPerPage;
    }
    if (iopmp)
        iopmp->removeTaskRegions(handle.task);

    // On an exception all buffer data is cleared before release
    // (Fig. 6 (2)) so nothing leaks to the next allocation.
    for (const BufferMapping &buf : handle.buffers) {
        if (had_exception) {
            mem.scrub(buf.base, buf.size);
            cycles += (buf.size / 8) * params.scrubPerWord;
        }
        heap.free(buf.base);
        cycles += params.freeCall;
    }

    // Drop the capability-tree nodes (revocation).
    if (cheriCpu) {
        for (const cheri::CapNodeId node : handle.bufferNodes)
            tree.remove(node);
        tree.remove(handle.taskNode);
    }

    // Release the functional unit; control registers are cleared.
    handle.accel->releaseInstance(handle.instance);
    cycles += params.controlRegWrite;

    CAPCHECK_DPRINTF(debug::driver, "dealloc task %u%s", handle.task,
                     had_exception ? " (exception: buffers scrubbed)"
                                   : "");
    _revokeProbe.notify(CapRevokeEvent{
        handle.task, static_cast<unsigned>(handle.buffers.size()),
        had_exception, cycles});
    handle.buffers.clear();
    handle.bufferNodes.clear();
    _cycles += cycles;
    return cycles;
}

} // namespace capcheck::driver
