/**
 * @file
 * Set-associative L1 data cache model for the scalar CPU (the
 * CHERI-Flute softcore class of machine). Functional data stays in
 * TaggedMemory; this model only tracks hit/miss behaviour for the cost
 * model. LRU replacement within a set.
 */

#ifndef CAPCHECK_CPU_CACHE_MODEL_HH
#define CAPCHECK_CPU_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace capcheck
{

class CacheModel
{
  public:
    /**
     * @param size_bytes total capacity (power of two).
     * @param line_bytes line size (power of two).
     * @param ways associativity (>= 1).
     */
    CacheModel(std::uint64_t size_bytes = 16 * 1024,
               std::uint64_t line_bytes = 64, unsigned ways = 2);

    /**
     * Access the line containing @p addr.
     * @return true on hit; a miss fills the line (LRU victim).
     *
     * Inline: every simulated CPU load/store lands here, and the
     * cross-TU call cost rivalled the way scan itself.
     */
    bool
    access(Addr addr)
    {
        const std::uint64_t line = addr >> offsetBits;
        const std::uint64_t set = line % numSets;
        Way *const begin = &ways[set * numWays];
        ++useClock;

        Way *victim = begin;
        for (Way *way = begin; way != begin + numWays; ++way) {
            if (way->tag == line + 1) {
                way->lastUse = useClock;
                ++_hits;
                return true;
            }
            if (way->lastUse < victim->lastUse ||
                (way->tag == 0 && victim->tag != 0))
                victim = way;
        }

        victim->tag = line + 1;
        victim->lastUse = useClock;
        ++_misses;
        return false;
    }

    /** Invalidate everything (context/task switch). */
    void flush();

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t lineBytes() const { return lineSize; }
    unsigned associativity() const { return numWays; }

  private:
    struct Way
    {
        std::uint64_t tag = 0; ///< line number + 1 (0 = invalid)
        std::uint64_t lastUse = 0;
    };

    std::uint64_t lineSize;
    unsigned offsetBits;
    unsigned numWays;
    std::uint64_t numSets;
    std::vector<Way> ways; ///< sets x ways, row-major
    std::uint64_t useClock = 0;

    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace capcheck

#endif // CAPCHECK_CPU_CACHE_MODEL_HH
