#include "cpu/cpu_model.hh"

#include "base/logging.hh"

namespace capcheck
{

CpuAccessor::CpuAccessor(TaggedMemory &mem,
                         std::vector<BufferMapping> buffers,
                         bool cheri_enabled, const CpuCostParams &params)
    : mem(mem), buffers(std::move(buffers)), cheri(cheri_enabled),
      params(params)
{
}

Addr
CpuAccessor::resolve(ObjectId obj, std::uint64_t off, std::uint32_t size,
                     bool is_store)
{
    if (obj >= buffers.size())
        panic("cpu access to unknown object %u", obj);
    const BufferMapping &buf = buffers[obj];
    if (off + size > buf.size)
        panic("cpu access out of buffer: obj=%u off=%llu size=%u", obj,
              static_cast<unsigned long long>(off), size);

    const Addr addr = buf.base + off;
    if (cheri) {
        // A CHERI CPU checks the pointer's capability on every
        // dereference; benign kernels never fault here.
        const cheri::CapFault fault = buf.cap.checkAccess(
            is_store ? cheri::AccessKind::store : cheri::AccessKind::load,
            addr, size);
        if (fault != cheri::CapFault::none)
            panic("unexpected CPU capability fault: %s",
                  cheri::capFaultName(fault));
    }
    return addr;
}

void
CpuAccessor::chargeAccess(Addr addr, bool is_store)
{
    if (cache.access(addr)) {
        _cycles += is_store ? params.storeHit : params.loadHit;
    } else {
        _cycles += params.missPenalty;
        ++missCount;
        if (cheri && params.cheriTagMissInterval &&
            missCount % params.cheriTagMissInterval == 0) {
            _cycles += 1; // tag fetch alongside the line fill
        }
    }
}

void
CpuAccessor::load(ObjectId obj, std::uint64_t off, void *dst,
                  std::uint32_t size)
{
    const Addr addr = resolve(obj, off, size, false);
    mem.read(addr, dst, size);
    chargeAccess(addr, false);
    ++_loads;
}

void
CpuAccessor::store(ObjectId obj, std::uint64_t off, const void *src,
                   std::uint32_t size)
{
    const Addr addr = resolve(obj, off, size, true);
    mem.write(addr, src, size);
    chargeAccess(addr, true);
    ++_stores;
}

void
CpuAccessor::copy(ObjectId dst_obj, std::uint64_t dst_off,
                  ObjectId src_obj, std::uint64_t src_off,
                  std::uint64_t len)
{
    // Functional move.
    std::vector<std::uint8_t> tmp(len);
    const Addr src = resolve(src_obj, src_off, 0, false);
    const Addr dst = resolve(dst_obj, dst_off, 0, true);
    if (src_off + len > buffers[src_obj].size ||
        dst_off + len > buffers[dst_obj].size)
        panic("cpu copy out of buffer");
    mem.read(src, tmp.data(), len);
    mem.write(dst, tmp.data(), len);

    // Timing: word-by-word copy loop at capability width under CHERI
    // (the CLC/CSC pair moves 16 bytes; plain RV64 moves 8).
    const std::uint64_t word = cheri ? 16 : 8;
    const std::uint64_t iters = (len + word - 1) / word;
    _cycles += iters * params.copyPerWord;
    // Cache effects: touch each source/destination line once.
    for (std::uint64_t b = 0; b < len; b += cache.lineBytes()) {
        chargeAccess(src + b, false);
        chargeAccess(dst + b, true);
    }
    _loads += iters;
    _stores += iters;
}

void
CpuAccessor::computeInt(std::uint64_t n)
{
    _cycles += n * params.intOp;
}

void
CpuAccessor::computeFp(std::uint64_t n)
{
    _cycles += n * params.fpOp;
}

void
CpuAccessor::chargeTaskSetup()
{
    if (cheri)
        _cycles += buffers.size() * params.cheriCapSetup;
    else
        _cycles += buffers.size() * 2; // plain pointer setup
}

} // namespace capcheck
