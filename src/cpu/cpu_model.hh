/**
 * @file
 * Scalar in-order CPU cost model (Flute-class softcore). The CPU is the
 * only bus master while it runs a kernel, so its cycle count is an
 * analytic function of the access/op stream — no event simulation
 * needed. With CHERI enabled the model additionally
 *  - performs a full capability check on every access (the functional
 *    guarantee of a CHERI CPU),
 *  - charges a tag-fetch penalty on a fraction of cache misses, and
 *  - runs bulk copies at capability width (16 B) instead of 8 B, which
 *    is why gemm_blocked runs *faster* under CHERI (Fig. 10(g)).
 */

#ifndef CAPCHECK_CPU_CPU_MODEL_HH
#define CAPCHECK_CPU_CPU_MODEL_HH

#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "cheri/capability.hh"
#include "cpu/cache_model.hh"
#include "mem/tagged_memory.hh"
#include "workloads/accessor.hh"
#include "workloads/buffer_spec.hh"

namespace capcheck
{

/** Per-operation cycle costs of the scalar core. */
struct CpuCostParams
{
    Cycles intOp = 1;
    Cycles fpOp = 15;        ///< non-pipelined scalar FPU
    Cycles loadHit = 1;
    Cycles storeHit = 1;
    Cycles missPenalty = 30; ///< DRAM round trip
    Cycles copyPerWord = 3;  ///< load+store of one copy word
    /** CHERI: extra tag-fetch cycles charged every N-th miss. */
    unsigned cheriTagMissInterval = 2;
    /** CHERI: capability derivation cost per buffer at task setup. */
    Cycles cheriCapSetup = 12;
};

/** A buffer's location in shared memory. */
struct BufferMapping
{
    Addr base = 0;
    std::uint64_t size = 0;
    cheri::Capability cap; ///< CPU-held capability for the buffer
};

/**
 * MemoryAccessor envelope that executes a kernel functionally against
 * TaggedMemory while accumulating CPU cycles.
 */
class CpuAccessor : public workloads::MemoryAccessor
{
  public:
    /**
     * @param cheri_enabled model a CHERI CPU (ccpu) vs plain RISC-V.
     */
    CpuAccessor(TaggedMemory &mem, std::vector<BufferMapping> buffers,
                bool cheri_enabled,
                const CpuCostParams &params = CpuCostParams{});

    void load(ObjectId obj, std::uint64_t off, void *dst,
              std::uint32_t size) override;
    void store(ObjectId obj, std::uint64_t off, const void *src,
               std::uint32_t size) override;
    void copy(ObjectId dst_obj, std::uint64_t dst_off, ObjectId src_obj,
              std::uint64_t src_off, std::uint64_t len) override;
    void computeInt(std::uint64_t n) override;
    void computeFp(std::uint64_t n) override;

    /** Charge task-entry costs (capability setup under CHERI). */
    void chargeTaskSetup();

    Cycles cycles() const { return _cycles; }
    std::uint64_t loads() const { return _loads; }
    std::uint64_t stores() const { return _stores; }
    std::uint64_t cacheMisses() const { return cache.misses(); }
    bool cheriEnabled() const { return cheri; }
    const CpuCostParams &costParams() const { return params; }

    /** Flush the cache (between sequential tasks on the same core). */
    void flushCache() { cache.flush(); }

  private:
    Addr resolve(ObjectId obj, std::uint64_t off, std::uint32_t size,
                 bool is_store);
    void chargeAccess(Addr addr, bool is_store);

    TaggedMemory &mem;
    std::vector<BufferMapping> buffers;
    bool cheri;
    CpuCostParams params;
    CacheModel cache;

    Cycles _cycles = 0;
    std::uint64_t _loads = 0;
    std::uint64_t _stores = 0;
    std::uint64_t missCount = 0;
};

} // namespace capcheck

#endif // CAPCHECK_CPU_CPU_MODEL_HH
