#include "cpu/cache_model.hh"

#include <algorithm>

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace capcheck
{

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint64_t line_bytes,
                       unsigned ways)
    : lineSize(line_bytes), offsetBits(floorLog2(line_bytes)),
      numWays(ways),
      numSets(ways ? size_bytes / line_bytes / ways : 0),
      ways(numSets * ways)
{
    if (!isPowerOf2(size_bytes) || !isPowerOf2(line_bytes) || ways == 0 ||
        numSets == 0 || !isPowerOf2(numSets))
        fatal("CacheModel: bad geometry %llu/%llu/%u",
              static_cast<unsigned long long>(size_bytes),
              static_cast<unsigned long long>(line_bytes), ways);
}

void
CacheModel::flush()
{
    std::fill(ways.begin(), ways.end(), Way{});
    useClock = 0;
}

} // namespace capcheck
