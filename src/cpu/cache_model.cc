#include "cpu/cache_model.hh"

#include <algorithm>

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace capcheck
{

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint64_t line_bytes,
                       unsigned ways)
    : lineSize(line_bytes), offsetBits(floorLog2(line_bytes)),
      numWays(ways),
      numSets(ways ? size_bytes / line_bytes / ways : 0),
      ways(numSets * ways)
{
    if (!isPowerOf2(size_bytes) || !isPowerOf2(line_bytes) || ways == 0 ||
        numSets == 0 || !isPowerOf2(numSets))
        fatal("CacheModel: bad geometry %llu/%llu/%u",
              static_cast<unsigned long long>(size_bytes),
              static_cast<unsigned long long>(line_bytes), ways);
}

bool
CacheModel::access(Addr addr)
{
    const std::uint64_t line = addr >> offsetBits;
    const std::uint64_t set = line % numSets;
    Way *const begin = &ways[set * numWays];
    ++useClock;

    Way *victim = begin;
    for (Way *way = begin; way != begin + numWays; ++way) {
        if (way->tag == line + 1) {
            way->lastUse = useClock;
            ++_hits;
            return true;
        }
        if (way->lastUse < victim->lastUse ||
            (way->tag == 0 && victim->tag != 0))
            victim = way;
    }

    victim->tag = line + 1;
    victim->lastUse = useClock;
    ++_misses;
    return false;
}

void
CacheModel::flush()
{
    std::fill(ways.begin(), ways.end(), Way{});
    useClock = 0;
}

} // namespace capcheck
