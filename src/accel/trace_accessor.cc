#include "accel/trace_accessor.hh"

#include "base/logging.hh"

namespace capcheck::accel
{

TraceAccessor::TraceAccessor(TaggedMemory &mem,
                             const workloads::KernelSpec &spec,
                             std::vector<BufferMapping> buffers)
    : mem(mem), spec(spec), buffers(std::move(buffers))
{
    if (this->buffers.size() != spec.buffers.size())
        fatal("TraceAccessor: mapping count mismatch for %s",
              spec.name.c_str());
}

Addr
TraceAccessor::resolve(ObjectId obj, std::uint64_t off,
                       std::uint32_t size)
{
    if (obj >= buffers.size())
        panic("accel access to unknown object %u", obj);
    if (off + size > buffers[obj].size)
        panic("accel access out of buffer: %s obj=%u off=%llu size=%u",
              spec.name.c_str(), obj,
              static_cast<unsigned long long>(off), size);
    return buffers[obj].base + off;
}

void
TraceAccessor::flushDelay()
{
    if (pendingOps == 0)
        return;
    const std::uint64_t ilp = spec.timing.ilp;
    trace.ops.push_back(TraceOp::delay((pendingOps + ilp - 1) / ilp));
    pendingOps = 0;
}

void
TraceAccessor::recordAccess(MemCmd cmd, ObjectId obj, std::uint64_t off,
                            std::uint32_t size)
{
    if (spec.buffer(obj).placement != workloads::BufferPlacement::external)
        return; // BRAM-resident: no DMA beat
    flushDelay();
    trace.ops.push_back(TraceOp::access(cmd, obj, off, size));
}

void
TraceAccessor::load(ObjectId obj, std::uint64_t off, void *dst,
                    std::uint32_t size)
{
    mem.read(resolve(obj, off, size), dst, size);
    recordAccess(MemCmd::read, obj, off, size);
}

void
TraceAccessor::store(ObjectId obj, std::uint64_t off, const void *src,
                     std::uint32_t size)
{
    mem.write(resolve(obj, off, size), src, size);
    recordAccess(MemCmd::write, obj, off, size);
}

void
TraceAccessor::copy(ObjectId dst_obj, std::uint64_t dst_off,
                    ObjectId src_obj, std::uint64_t src_off,
                    std::uint64_t len)
{
    // Functional move.
    std::vector<std::uint8_t> tmp(len);
    mem.read(resolve(src_obj, src_off, 0), tmp.data(), len);
    if (src_off + len > buffers[src_obj].size ||
        dst_off + len > buffers[dst_obj].size)
        panic("accel copy out of buffer");
    mem.write(resolve(dst_obj, dst_off, 0), tmp.data(), len);

    // Timing: BRAM-to-BRAM moves are a wide on-chip copy; external
    // endpoints cost one beat per 8 bytes.
    using workloads::BufferPlacement;
    const bool src_ext = spec.buffer(src_obj).placement ==
                         BufferPlacement::external;
    const bool dst_ext = spec.buffer(dst_obj).placement ==
                         BufferPlacement::external;
    for (std::uint64_t b = 0; b < len; b += 8) {
        const auto size =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                8, len - b));
        if (src_ext)
            recordAccess(MemCmd::read, src_obj, src_off + b, size);
        if (dst_ext)
            recordAccess(MemCmd::write, dst_obj, dst_off + b, size);
    }
    if (!src_ext && !dst_ext)
        pendingOps += len / 16 + 1; // wide local copy
}

void
TraceAccessor::computeInt(std::uint64_t n)
{
    pendingOps += n;
}

void
TraceAccessor::computeFp(std::uint64_t n)
{
    pendingOps += n;
}

void
TraceAccessor::barrier()
{
    flushDelay();
    if (!trace.ops.empty() &&
        trace.ops.back().kind == TraceOp::Kind::barrier)
        return; // coalesce
    trace.ops.push_back(TraceOp::barrier());
}

InstanceTrace
TraceAccessor::take()
{
    flushDelay();
    return std::move(trace);
}

} // namespace capcheck::accel
