/**
 * @file
 * An accelerator functional-unit pool: one hardware accelerator block
 * per benchmark, exposing several identical instances (eight in the
 * paper's evaluation), each usable by an independent task. The driver
 * claims a free instance (stalling when all are busy, Fig. 6 step 1)
 * and programs its control registers — buffer base pointers and the
 * start strobe — over MMIO.
 */

#ifndef CAPCHECK_ACCEL_ACCELERATOR_HH
#define CAPCHECK_ACCEL_ACCELERATOR_HH

#include <optional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "workloads/buffer_spec.hh"

namespace capcheck::accel
{

class Accelerator
{
  public:
    /** Per-instance control registers (MMIO-mapped for the driver). */
    struct InstanceRegs
    {
        bool busy = false;
        bool started = false;
        TaskId task = invalidTaskId;
        /** One base-pointer register per kernel buffer. */
        std::vector<Addr> objBase;
    };

    Accelerator(std::string name, const workloads::KernelSpec &spec,
                unsigned num_instances);

    const std::string &name() const { return _name; }
    const workloads::KernelSpec &spec() const { return _spec; }
    unsigned numInstances() const
    {
        return static_cast<unsigned>(instances.size());
    }

    /**
     * Find and claim a free instance.
     * @return instance index, or nullopt when all are busy.
     */
    std::optional<unsigned> claimInstance(TaskId task);

    /** Release an instance and clear its control registers (Fig. 6 (2)). */
    void releaseInstance(unsigned idx);

    InstanceRegs &regs(unsigned idx) { return instances.at(idx); }
    const InstanceRegs &regs(unsigned idx) const
    {
        return instances.at(idx);
    }

    /** Count of MMIO register writes needed to program one instance. */
    unsigned controlRegCount() const
    {
        return static_cast<unsigned>(_spec.buffers.size()) + 1;
    }

  private:
    std::string _name;
    const workloads::KernelSpec &_spec;
    std::vector<InstanceRegs> instances;
};

} // namespace capcheck::accel

#endif // CAPCHECK_ACCEL_ACCELERATOR_HH
