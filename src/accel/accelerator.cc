#include "accel/accelerator.hh"

#include "base/logging.hh"

namespace capcheck::accel
{

Accelerator::Accelerator(std::string name,
                         const workloads::KernelSpec &spec,
                         unsigned num_instances)
    : _name(std::move(name)), _spec(spec), instances(num_instances)
{
    if (num_instances == 0)
        fatal("accelerator %s needs at least one instance",
              _name.c_str());
    for (InstanceRegs &regs : instances)
        regs.objBase.assign(spec.buffers.size(), 0);
}

std::optional<unsigned>
Accelerator::claimInstance(TaskId task)
{
    for (unsigned i = 0; i < instances.size(); ++i) {
        if (!instances[i].busy) {
            instances[i].busy = true;
            instances[i].task = task;
            return i;
        }
    }
    return std::nullopt;
}

void
Accelerator::releaseInstance(unsigned idx)
{
    InstanceRegs &regs = instances.at(idx);
    if (!regs.busy)
        panic("accelerator %s: releasing idle instance %u",
              _name.c_str(), idx);
    // Clear control registers so a subsequent task mapped onto the same
    // functional unit cannot reuse stale pointers (Fig. 6 (2)).
    regs = InstanceRegs{};
    regs.objBase.assign(_spec.buffers.size(), 0);
}

} // namespace capcheck::accel
