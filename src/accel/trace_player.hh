/**
 * @file
 * Timing replay of an accelerator instance: streams input buffers in,
 * replays the recorded datapath/DMA trace with bounded outstanding
 * requests, and streams outputs back. All DMA goes through the
 * instance's interconnect master port, carrying the provenance the
 * CapChecker mode expects.
 */

#ifndef CAPCHECK_ACCEL_TRACE_PLAYER_HH
#define CAPCHECK_ACCEL_TRACE_PLAYER_HH

#include <functional>
#include <vector>

#include "accel/trace.hh"
#include "cpu/cpu_model.hh" // BufferMapping
#include "mem/interconnect.hh"
#include "workloads/buffer_spec.hh"

namespace capcheck::accel
{

/** How the player encodes object provenance into requests. */
struct AddressingMode
{
    /** Attach object ids as request metadata (CapChecker Fine). */
    bool objectMetadata = true;
    /** Fold the object id into address bits 63:56 (CapChecker Coarse). */
    bool objectInAddress = false;
};

class TracePlayer : public TickingObject, public ResponseHandler
{
  public:
    /** DMA engine credits for bulk stream transfers. */
    static constexpr unsigned streamCredits = 16;

    TracePlayer(EventQueue &eq, stats::StatGroup *parent_stats,
                std::string name, const workloads::KernelSpec &spec,
                InstanceTrace trace,
                std::vector<BufferMapping> buffers, TaskId task,
                PortId port, AxiInterconnect &xbar,
                AddressingMode addressing);

    /** Begin execution at @p when (after driver setup). */
    void start(Cycles when);

    bool done() const { return phase == Phase::done; }
    bool failed() const { return _failed; }
    Cycles finishCycle() const { return _finishCycle; }
    TaskId task() const { return taskId; }

    /** Invoked once when the instance finishes (or aborts). */
    void onDone(std::function<void()> fn) { doneFn = std::move(fn); }

    void handleResponse(const MemResponse &resp) override;
    bool tick() override;

  private:
    enum class Phase
    {
        idle,
        streamIn,
        body,
        streamOut,
        drain,
        done,
    };

    struct StreamBeat
    {
        MemCmd cmd;
        ObjectId obj;
        std::uint64_t off;
        std::uint32_t size;
    };

    void buildStreams();
    bool issue(MemCmd cmd, ObjectId obj, std::uint64_t off,
               std::uint32_t size);
    void finish();

    const workloads::KernelSpec &spec;
    InstanceTrace trace;
    std::vector<BufferMapping> buffers;
    TaskId taskId;
    PortId port;
    AxiInterconnect &xbar;
    AddressingMode addressing;

    Phase phase = Phase::idle;
    std::vector<StreamBeat> inBeats;
    std::vector<StreamBeat> outBeats;
    std::size_t streamIndex = 0;
    std::size_t opIndex = 0;
    unsigned outstanding = 0;
    Cycles busyUntil = 0;
    bool _failed = false;
    Cycles _finishCycle = 0;
    std::uint64_t nextReqId = 0;
    std::function<void()> doneFn;

    stats::Scalar beatsIssued;
    stats::Scalar deniedResponses;
};

} // namespace capcheck::accel

#endif // CAPCHECK_ACCEL_TRACE_PLAYER_HH
