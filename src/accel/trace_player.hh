/**
 * @file
 * Timing replay of an accelerator instance: streams input buffers in,
 * replays the recorded datapath/DMA trace with bounded outstanding
 * requests, and streams outputs back. All DMA goes through the
 * instance's interconnect master port, carrying the provenance the
 * CapChecker mode expects.
 */

#ifndef CAPCHECK_ACCEL_TRACE_PLAYER_HH
#define CAPCHECK_ACCEL_TRACE_PLAYER_HH

#include <functional>
#include <vector>

#include "accel/trace.hh"
#include "base/probe.hh"
#include "cpu/cpu_model.hh" // BufferMapping
#include "mem/packet.hh"
#include "sim/clocked.hh"
#include "sim/port.hh"
#include "workloads/buffer_spec.hh"

namespace capcheck::accel
{

/** Payload of the task start/finish probes. */
struct TaskLifecycleEvent
{
    TaskId task;
    /** Instance name ("gemm_ncubed#3"); borrowed for the call. */
    const std::string *name;
    Cycles cycle;
    /** Finish only: the instance aborted on a denied beat. */
    bool failed;
};

/** How the player encodes object provenance into requests. */
struct AddressingMode
{
    /** Attach object ids as request metadata (CapChecker Fine). */
    bool objectMetadata = true;
    /** Fold the object id into address bits 63:56 (CapChecker Coarse). */
    bool objectInAddress = false;
};

class TracePlayer : public TickingObject, public ResponseHandler
{
  public:
    /** DMA engine credits for bulk stream transfers. */
    static constexpr unsigned streamCredits = 16;

    /**
     * @param fast_replay Select the "player.retry" fast kernel
     *        (sim/kernels registry): instead of busy-polling the
     *        interconnect every cycle for a free slot, the player
     *        sleeps after each issue attempt and is woken by the
     *        crossbar's grant retry. A grant fires at arbitratePrio
     *        and the woken tick runs at requestPrio of the same cycle
     *        — exactly the cycle the reference poll would issue on —
     *        so every request leaves on the same cycle as the
     *        reference player's.
     */
    TracePlayer(EventQueue &eq, stats::StatGroup *parent_stats,
                std::string name, const workloads::KernelSpec &spec,
                InstanceTrace trace,
                std::vector<BufferMapping> buffers, TaskId task,
                PortId port, AddressingMode addressing,
                bool fast_replay = false);

    /**
     * Interconnect-facing master port; bind to an accel_side slot of
     * an interconnect before start(). DMA beats leave through it and
     * responses come back on it.
     */
    RequestPort &memSide() { return memSidePort; }

    /** Begin execution at @p when (after driver setup). */
    void start(Cycles when);

    bool done() const { return phase == Phase::done; }
    bool failed() const { return _failed; }
    Cycles finishCycle() const { return _finishCycle; }
    TaskId task() const { return taskId; }

    /** Invoked once when the instance finishes (or aborts). */
    void onDone(std::function<void()> fn) { doneFn = std::move(fn); }

    /**
     * Fired when a DMA beat leaves the instance into its xbar master
     * slot — the start of the beat's flight through the platform (the
     * flight recorder's issue hop).
     */
    probe::ProbePoint<MemRequest> &issueProbe() { return _issueProbe; }

    /** @{ Task lifecycle probes (start() and completion/abort). */
    probe::ProbePoint<TaskLifecycleEvent> &startProbe()
    {
        return _startProbe;
    }
    probe::ProbePoint<TaskLifecycleEvent> &finishProbe()
    {
        return _finishProbe;
    }
    /** @} */

    void handleResponse(const MemResponse &resp) override;
    void handleRetry() override;
    bool tick() override;
    const char *profKind() const override { return "player"; }

  private:
    enum class Phase
    {
        idle,
        streamIn,
        body,
        streamOut,
        drain,
        done,
    };

    struct StreamBeat
    {
        MemCmd cmd;
        ObjectId obj;
        std::uint64_t off;
        std::uint32_t size;
    };

    void buildStreams();
    bool issue(MemCmd cmd, ObjectId obj, std::uint64_t off,
               std::uint32_t size);
    /** tick() epilogue on the poll paths: where the reference player
     *  keeps ticking, fast replay sleeps and arms the retry wake. */
    bool pollSleep();
    void finish();

    const workloads::KernelSpec &spec;
    InstanceTrace trace;
    std::vector<BufferMapping> buffers;
    TaskId taskId;
    PortId port;
    RequestPort memSidePort;
    AddressingMode addressing;
    const bool fastReplay;

    Phase phase = Phase::idle;
    std::vector<StreamBeat> inBeats;
    std::vector<StreamBeat> outBeats;
    std::size_t streamIndex = 0;
    std::size_t opIndex = 0;
    unsigned outstanding = 0;
    /**
     * Fast replay only: armed when the player sleeps on a path where
     * the reference implementation would keep polling (an issue
     * attempt that did not saturate the credit window). Only then may
     * a grant retry wake the tick. Retries arriving while the player
     * sleeps on a response-driven precondition (credits, drain,
     * barrier) must be ignored: the reference reactivates one cycle
     * after the response, and a same-cycle retry wake would issue a
     * cycle early. An issue that fills the window keeps ticking for
     * one more cycle instead of arming, so it lands in the same
     * response-driven sleep the reference falls into.
     */
    bool awaitRetry = false;
    Cycles busyUntil = 0;
    bool _failed = false;
    Cycles _finishCycle = 0;
    std::uint64_t nextReqId = 0;
    std::function<void()> doneFn;

    stats::Scalar beatsIssued;
    stats::Scalar deniedResponses;

    probe::ProbePoint<MemRequest> _issueProbe{"accel.issue"};
    probe::ProbePoint<TaskLifecycleEvent> _startProbe{"accel.taskStart"};
    probe::ProbePoint<TaskLifecycleEvent> _finishProbe{
        "accel.taskFinish"};
};

} // namespace capcheck::accel

#endif // CAPCHECK_ACCEL_TRACE_PLAYER_HH
