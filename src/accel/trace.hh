/**
 * @file
 * The DMA/datapath trace an accelerator instance produces when a kernel
 * runs under the trace-recording envelope. The timing player replays
 * this against the simulated memory system.
 */

#ifndef CAPCHECK_ACCEL_TRACE_HH
#define CAPCHECK_ACCEL_TRACE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "mem/packet.hh"

namespace capcheck::accel
{

struct TraceOp
{
    enum class Kind
    {
        access,  ///< one DMA beat on an external buffer
        delay,   ///< datapath busy for @c cycles
        barrier, ///< wait for all outstanding responses
    };

    Kind kind = Kind::delay;

    // access fields
    MemCmd cmd = MemCmd::read;
    ObjectId obj = invalidObjectId;
    std::uint64_t off = 0;
    std::uint32_t size = 0;

    // delay field
    Cycles cycles = 0;

    static TraceOp
    access(MemCmd cmd, ObjectId obj, std::uint64_t off,
           std::uint32_t size)
    {
        TraceOp op;
        op.kind = Kind::access;
        op.cmd = cmd;
        op.obj = obj;
        op.off = off;
        op.size = size;
        return op;
    }

    static TraceOp
    delay(Cycles cycles)
    {
        TraceOp op;
        op.kind = Kind::delay;
        op.cycles = cycles;
        return op;
    }

    static TraceOp
    barrier()
    {
        TraceOp op;
        op.kind = Kind::barrier;
        return op;
    }
};

struct InstanceTrace
{
    std::vector<TraceOp> ops;

    std::uint64_t
    accessBeats() const
    {
        std::uint64_t n = 0;
        for (const TraceOp &op : ops)
            n += op.kind == TraceOp::Kind::access;
        return n;
    }

    Cycles
    delayCycles() const
    {
        Cycles n = 0;
        for (const TraceOp &op : ops) {
            if (op.kind == TraceOp::Kind::delay)
                n += op.cycles;
        }
        return n;
    }
};

} // namespace capcheck::accel

#endif // CAPCHECK_ACCEL_TRACE_HH
