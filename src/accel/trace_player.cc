#include "accel/trace_player.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/trace.hh"
#include "capchecker/capchecker.hh"

namespace capcheck::accel
{

TracePlayer::TracePlayer(EventQueue &eq, stats::StatGroup *parent_stats,
                         std::string name,
                         const workloads::KernelSpec &spec,
                         InstanceTrace trace,
                         std::vector<BufferMapping> buffers, TaskId task,
                         PortId port, AddressingMode addressing)
    : TickingObject(eq, std::move(name), parent_stats,
                    Event::requestPrio),
      spec(spec), trace(std::move(trace)), buffers(std::move(buffers)),
      taskId(task), port(port),
      memSidePort(*this, "mem_side",
                  static_cast<ResponseHandler &>(*this)),
      addressing(addressing),
      beatsIssued(stats, "beats", "DMA beats issued"),
      deniedResponses(stats, "denied", "beats denied by protection")
{
    buildStreams();
}

void
TracePlayer::buildStreams()
{
    using workloads::BufferAccess;
    using workloads::BufferPlacement;

    for (ObjectId obj = 0; obj < spec.buffers.size(); ++obj) {
        const workloads::BufferDef &def = spec.buffers[obj];
        if (def.placement != BufferPlacement::streamed)
            continue;
        for (std::uint64_t off = 0; off < def.size; off += 8) {
            const auto size = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(8, def.size - off));
            if (def.access != BufferAccess::writeOnly)
                inBeats.push_back(
                    StreamBeat{MemCmd::read, obj, off, size});
            if (def.access != BufferAccess::readOnly)
                outBeats.push_back(
                    StreamBeat{MemCmd::write, obj, off, size});
        }
    }
}

void
TracePlayer::start(Cycles when)
{
    if (phase != Phase::idle)
        panic("%s: started twice", name().c_str());
    phase = Phase::streamIn;
    busyUntil = when + spec.timing.startupCycles;
    _startProbe.notify(
        TaskLifecycleEvent{taskId, &name(), when, false});
    const Cycles now = curCycle();
    activate(busyUntil > now ? busyUntil - now : 1);
}

bool
TracePlayer::issue(MemCmd cmd, ObjectId obj, std::uint64_t off,
                   std::uint32_t size)
{
    if (!memSidePort.canSend())
        return false;

    MemRequest req;
    req.cmd = cmd;
    req.size = size;
    req.srcPort = port;
    req.task = taskId;
    const Addr phys = buffers[obj].base + off;
    if (addressing.objectInAddress) {
        req.addr =
            (Addr{obj} << capchecker::CapChecker::coarseAddrBits) | phys;
        req.object = invalidObjectId;
    } else {
        req.addr = phys;
        req.object = addressing.objectMetadata ? obj : invalidObjectId;
    }
    req.id = nextReqId++;

    _issueProbe.notify(req);
    memSidePort.trySend(req);
    ++outstanding;
    ++beatsIssued;
    return true;
}

void
TracePlayer::handleResponse(const MemResponse &resp)
{
    if (outstanding == 0)
        panic("%s: response with nothing outstanding", name().c_str());
    --outstanding;
    if (!resp.ok) {
        ++deniedResponses;
        // The CapChecker blocked this access: the instance aborts and
        // the driver will observe the exception flag.
        _failed = true;
        CAPCHECK_DPRINTF(debug::accel, "%s: beat denied, aborting",
                         name().c_str());
    }
    activate(1);
}

void
TracePlayer::finish()
{
    phase = Phase::done;
    _finishCycle = curCycle();
    _finishProbe.notify(
        TaskLifecycleEvent{taskId, &name(), _finishCycle, _failed});
    if (doneFn)
        doneFn();
}

bool
TracePlayer::tick()
{
    if (phase == Phase::idle || phase == Phase::done)
        return false;

    if (_failed) {
        // Abort: stop issuing, wait for in-flight beats to drain.
        if (outstanding == 0) {
            finish();
            return false;
        }
        return false; // reactivated by responses
    }

    if (busyUntil > curCycle()) {
        activate(busyUntil - curCycle());
        return false;
    }

    switch (phase) {
      case Phase::streamIn:
      case Phase::streamOut: {
        const std::vector<StreamBeat> &beats =
            phase == Phase::streamIn ? inBeats : outBeats;
        if (streamIndex >= beats.size()) {
            if (outstanding > 0)
                return false; // drain before switching phase
            if (phase == Phase::streamIn) {
                phase = Phase::body;
                opIndex = 0;
                return true;
            }
            finish();
            return false;
        }
        if (outstanding >= streamCredits)
            return false; // reactivated by a response
        const StreamBeat &beat = beats[streamIndex];
        if (issue(beat.cmd, beat.obj, beat.off, beat.size))
            ++streamIndex;
        return true;
      }

      case Phase::body: {
        if (opIndex >= trace.ops.size()) {
            phase = Phase::streamOut;
            streamIndex = 0;
            return true;
        }
        const TraceOp &op = trace.ops[opIndex];
        switch (op.kind) {
          case TraceOp::Kind::delay:
            ++opIndex;
            if (op.cycles == 0)
                return true;
            busyUntil = curCycle() + op.cycles;
            activate(op.cycles);
            return false;
          case TraceOp::Kind::barrier:
            if (outstanding > 0)
                return false; // reactivated by responses
            ++opIndex;
            return true;
          case TraceOp::Kind::access:
            if (outstanding >= spec.timing.maxOutstanding)
                return false;
            if (issue(op.cmd, op.obj, op.off, op.size))
                ++opIndex;
            return true;
        }
        return true;
      }

      case Phase::drain:
      case Phase::idle:
      case Phase::done:
        break;
    }
    return false;
}

} // namespace capcheck::accel
