#include "accel/trace_player.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/trace.hh"
#include "capchecker/capchecker.hh"
#include "obs/prof.hh"

namespace capcheck::accel
{

TracePlayer::TracePlayer(EventQueue &eq, stats::StatGroup *parent_stats,
                         std::string name,
                         const workloads::KernelSpec &spec,
                         InstanceTrace trace,
                         std::vector<BufferMapping> buffers, TaskId task,
                         PortId port, AddressingMode addressing,
                         bool fast_replay)
    : TickingObject(eq, std::move(name), parent_stats,
                    Event::requestPrio),
      spec(spec), trace(std::move(trace)), buffers(std::move(buffers)),
      taskId(task), port(port),
      memSidePort(*this, "mem_side",
                  static_cast<ResponseHandler &>(*this)),
      addressing(addressing), fastReplay(fast_replay),
      beatsIssued(stats, "beats", "DMA beats issued"),
      deniedResponses(stats, "denied", "beats denied by protection")
{
    buildStreams();
}

void
TracePlayer::buildStreams()
{
    using workloads::BufferAccess;
    using workloads::BufferPlacement;

    for (ObjectId obj = 0; obj < spec.buffers.size(); ++obj) {
        const workloads::BufferDef &def = spec.buffers[obj];
        if (def.placement != BufferPlacement::streamed)
            continue;
        for (std::uint64_t off = 0; off < def.size; off += 8) {
            const auto size = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(8, def.size - off));
            if (def.access != BufferAccess::writeOnly)
                inBeats.push_back(
                    StreamBeat{MemCmd::read, obj, off, size});
            if (def.access != BufferAccess::readOnly)
                outBeats.push_back(
                    StreamBeat{MemCmd::write, obj, off, size});
        }
    }
}

void
TracePlayer::start(Cycles when)
{
    if (phase != Phase::idle)
        panic("%s: started twice", name().c_str());
    phase = Phase::streamIn;
    busyUntil = when + spec.timing.startupCycles;
    _startProbe.notify(
        TaskLifecycleEvent{taskId, &name(), when, false});
    const Cycles now = curCycle();
    activate(busyUntil > now ? busyUntil - now : 1);
}

bool
TracePlayer::issue(MemCmd cmd, ObjectId obj, std::uint64_t off,
                   std::uint32_t size)
{
    if (!memSidePort.canSend())
        return false;

    MemRequest req;
    req.cmd = cmd;
    req.size = size;
    req.srcPort = port;
    req.task = taskId;
    const Addr phys = buffers[obj].base + off;
    if (addressing.objectInAddress) {
        req.addr =
            (Addr{obj} << capchecker::CapChecker::coarseAddrBits) | phys;
        req.object = invalidObjectId;
    } else {
        req.addr = phys;
        req.object = addressing.objectMetadata ? obj : invalidObjectId;
    }
    req.id = nextReqId++;

    _issueProbe.notify(req);
    memSidePort.trySend(req);
    ++outstanding;
    ++beatsIssued;
    return true;
}

void
TracePlayer::handleResponse(const MemResponse &resp)
{
    if (outstanding == 0)
        panic("%s: response with nothing outstanding", name().c_str());
    --outstanding;
    if (!resp.ok) {
        ++deniedResponses;
        // The CapChecker blocked this access: the instance aborts and
        // the driver will observe the exception flag.
        _failed = true;
        CAPCHECK_DPRINTF(debug::accel, "%s: beat denied, aborting",
                         name().c_str());
        activate(1);
        return;
    }
    // While the retry wake is armed the player is waiting on its
    // crossbar slot, and a response alone cannot unblock the next
    // issue — only the grant that frees the slot can (and its retry
    // wakes us). Skipping the wake here drops one no-op tick per
    // in-flight beat in fast replay; the reference never arms it, so
    // its every-cycle ticking is untouched.
    if (!awaitRetry)
        activate(1);
}

void
TracePlayer::handleRetry()
{
    // Fast replay sleeps between issues; the crossbar's grant just
    // freed our slot, so tick again later this same cycle (the grant
    // runs at arbitratePrio, our tick at requestPrio — the cycle the
    // reference player's poll would issue on). Only honoured while
    // awaitRetry is armed, i.e. while the reference would be polling:
    // a retry arriving while both players sleep on a response-driven
    // precondition must not wake us, because the reference reactivates
    // one cycle after the response and a same-cycle grant would let
    // the fast player issue a cycle early. The reference player's
    // handleRetry is the base no-op.
    if (fastReplay && awaitRetry)
        activate(0);
}

bool
TracePlayer::pollSleep()
{
    // The reference keeps ticking every cycle from here (the ticks do
    // no work until the slot state changes); fast replay sleeps and
    // lets the grant retry re-arm the tick on the issuing cycle.
    awaitRetry = fastReplay;
    return !fastReplay;
}

void
TracePlayer::finish()
{
    phase = Phase::done;
    _finishCycle = curCycle();
    _finishProbe.notify(
        TaskLifecycleEvent{taskId, &name(), _finishCycle, _failed});
    if (doneFn)
        doneFn();
}

bool
TracePlayer::tick()
{
    PROF_SCOPE("replay", "player.tick");
    // Every return path below re-decides whether a grant retry may
    // wake us; only pollSleep() arms it.
    awaitRetry = false;

    if (phase == Phase::idle || phase == Phase::done)
        return false;

    if (_failed) {
        // Abort: stop issuing, wait for in-flight beats to drain.
        if (outstanding == 0) {
            finish();
            return false;
        }
        return false; // reactivated by responses
    }

    if (busyUntil > curCycle()) {
        activate(busyUntil - curCycle());
        return false;
    }

    switch (phase) {
      case Phase::streamIn:
      case Phase::streamOut: {
        const std::vector<StreamBeat> &beats =
            phase == Phase::streamIn ? inBeats : outBeats;
        if (streamIndex >= beats.size()) {
            if (outstanding > 0)
                return false; // drain before switching phase
            if (phase == Phase::streamIn) {
                phase = Phase::body;
                opIndex = 0;
                return true;
            }
            finish();
            return false;
        }
        if (outstanding >= streamCredits)
            return false; // reactivated by a response
        const StreamBeat &beat = beats[streamIndex];
        if (issue(beat.cmd, beat.obj, beat.off, beat.size)) {
            ++streamIndex;
            if (outstanding >= streamCredits) {
                // This beat saturated the credit window. The reference
                // hits the credit check on its next tick and falls into
                // response-driven sleep; fast replay must take that
                // same tick rather than arm the retry wake, because a
                // grant landing on the same cycle as the
                // credit-freeing response would otherwise pull the
                // next issue one cycle early (grants fire at
                // arbitratePrio, after the response has already
                // dropped `outstanding` below the cap).
                return true;
            }
        }
        return pollSleep();
      }

      case Phase::body: {
        if (opIndex >= trace.ops.size()) {
            phase = Phase::streamOut;
            streamIndex = 0;
            return true;
        }
        const TraceOp &op = trace.ops[opIndex];
        switch (op.kind) {
          case TraceOp::Kind::delay:
            ++opIndex;
            if (op.cycles == 0)
                return true;
            busyUntil = curCycle() + op.cycles;
            activate(op.cycles);
            return false;
          case TraceOp::Kind::barrier:
            if (outstanding > 0)
                return false; // reactivated by responses
            ++opIndex;
            return true;
          case TraceOp::Kind::access:
            if (outstanding >= spec.timing.maxOutstanding)
                return false;
            if (issue(op.cmd, op.obj, op.off, op.size)) {
                ++opIndex;
                if (outstanding >= spec.timing.maxOutstanding) {
                    // Credit-saturating issue: take one more tick so
                    // we land in the same response-driven sleep as
                    // the reference (see the stream-phase comment for
                    // the same-cycle grant/response hazard).
                    return true;
                }
                if (opIndex >= trace.ops.size() ||
                    trace.ops[opIndex].kind != TraceOp::Kind::access) {
                    // A delay, barrier or the phase transition
                    // follows: the reference clocks it off the next
                    // cycle's tick, so both players must take it.
                    return true;
                }
                // Next op is another beat: the reference polls until
                // the slot frees; fast replay sleeps until the grant
                // retry, which lands on the same issuing cycle.
                return pollSleep();
            }
            return pollSleep();
        }
        return true;
      }

      case Phase::drain:
      case Phase::idle:
      case Phase::done:
        break;
    }
    return false;
}

} // namespace capcheck::accel
