#include "harness/run_request.hh"

#include <cstdio>

#include "base/logging.hh"
#include "harness/kernel_compare.hh"

namespace capcheck::harness
{

namespace
{

/**
 * FNV-1a, fed field by field with explicit widths so the hash is a
 * function of the request's *values*, not of struct layout or padding.
 */
class FieldHasher
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }

    void u32(std::uint32_t v) { u64(v); }
    void boolean(bool v) { u64(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
    }

    std::uint64_t digest() const { return h; }

  private:
    std::uint64_t h = 0xcbf29ce484222325ull;
};

void
hashConfig(FieldHasher &h, const system::SocConfig &cfg)
{
    h.u32(static_cast<std::uint32_t>(cfg.mode));
    h.u32(static_cast<std::uint32_t>(cfg.provenance));
    h.u32(cfg.numInstances);
    h.u32(cfg.capTableEntries);
    h.u64(cfg.checkCycles);
    h.boolean(cfg.perAccelCheckers);
    h.u32(cfg.capCacheEntries);
    h.u64(cfg.capCacheWalkCycles);
    h.u64(cfg.memLatency);
    h.u64(cfg.memBytes);
    h.u32(cfg.xbarMaxBurst);
    h.u64(cfg.guardBytes);
    h.boolean(cfg.collectStats);

    const CpuCostParams &cpu = cfg.cpuCosts;
    h.u64(cpu.intOp);
    h.u64(cpu.fpOp);
    h.u64(cpu.loadHit);
    h.u64(cpu.storeHit);
    h.u64(cpu.missPenalty);
    h.u64(cpu.copyPerWord);
    h.u32(cpu.cheriTagMissInterval);
    h.u64(cpu.cheriCapSetup);

    const driver::DriverCostParams &drv = cfg.driverCosts;
    h.u64(drv.mallocCall);
    h.u64(drv.freeCall);
    h.u64(drv.controlRegWrite);
    h.u64(drv.capDerive);
    h.u64(drv.pointerSetup);
    h.u64(drv.iommuMapPerPage);
    h.u64(drv.iommuUnmapPerPage);
    h.u64(drv.iopmpRegionSetup);
    h.u64(drv.scrubPerWord);

    h.u64(cfg.seed);

    // Mixed only when present so every pre-topology hash (and any
    // cached result keyed by it) stays stable for builtin topologies.
    if (!cfg.topologyFile.empty()) {
        h.str("topology");
        h.str(cfg.topologyFile);
    }

    // Same stability rule for the simulation kernel: ref (the default,
    // and the only choice before the kernel registry existed) leaves
    // the hash untouched.
    if (cfg.simKernel != sim::SimKernel::ref) {
        h.str("kernel");
        h.str(sim::simKernelName(cfg.simKernel));
    }
}

} // namespace

RunRequest
RunRequest::single(std::string benchmark, system::SocConfig cfg,
                   unsigned num_tasks)
{
    RunRequest req;
    req.benchmarks.push_back(std::move(benchmark));
    req.numTasks = num_tasks != 0 ? num_tasks : cfg.numInstances;
    req.config = std::move(cfg);
    return req;
}

RunRequest
RunRequest::mixed(std::vector<std::string> benchmarks,
                  system::SocConfig cfg)
{
    if (benchmarks.empty())
        fatal("RunRequest::mixed: empty benchmark list");
    RunRequest req;
    req.numTasks = static_cast<unsigned>(benchmarks.size());
    req.benchmarks = std::move(benchmarks);
    req.config = std::move(cfg);
    return req;
}

std::uint64_t
RunRequest::hash() const
{
    FieldHasher h;
    h.u64(benchmarks.size());
    for (const std::string &b : benchmarks)
        h.str(b);
    h.u32(numTasks);
    hashConfig(h, config);
    return h.digest();
}

std::string
RunRequest::hashHex() const
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash()));
    return buf;
}

std::string
RunRequest::label() const
{
    std::string name;
    if (isMixed()) {
        name = "mixed[" + std::to_string(benchmarks.size()) + ":" +
               benchmarks.front() + ",...]";
    } else {
        name = benchmarks.front();
    }
    name += " mode=" + std::string(system::systemModeName(config.mode)) +
            " tasks=" + std::to_string(numTasks) +
            " seed=" + std::to_string(config.seed);
    if (!config.topologyFile.empty())
        name += " topology=" + config.topologyFile;
    if (config.simKernel != sim::SimKernel::ref)
        name += " kernel=" +
                std::string(sim::simKernelName(config.simKernel));
    return name;
}

system::RunResult
RunRequest::execute() const
{
    return execute(obs::ObsOptions{});
}

system::RunResult
RunRequest::execute(const obs::ObsOptions &obs_opts) const
{
    if (benchmarks.empty())
        fatal("RunRequest: no benchmark named");
    if (config.simKernel == sim::SimKernel::compare)
        return executeComparing(*this, obs_opts);
    system::SocSystem soc(config);
    soc.setObsOptions(obs_opts);
    if (isMixed())
        return soc.runMixed(benchmarks);
    return soc.runBenchmark(benchmarks.front(), numTasks);
}

bool
RunRequest::operator==(const RunRequest &other) const
{
    // Value equality via the canonical field serialization: two
    // requests are the same experiment iff they hash identically and
    // name the same benchmarks (hash collisions across different
    // benchmark lists are caught here).
    return benchmarks == other.benchmarks &&
           numTasks == other.numTasks && hash() == other.hash();
}

} // namespace capcheck::harness
