/**
 * @file
 * Differential gate for the sim/kernels registry: execute one
 * RunRequest under both the reference and the fast simulation kernels
 * and require bit-identical results — the RunResult (stats dump
 * included) must compare equal and every observability artefact must
 * match byte for byte. This is what `--kernel compare` runs; it is the
 * harness-level counterpart of `capstat diff --tolerance 0` in CI.
 */

#ifndef CAPCHECK_HARNESS_KERNEL_COMPARE_HH
#define CAPCHECK_HARNESS_KERNEL_COMPARE_HH

#include "obs/options.hh"
#include "system/run_result.hh"

namespace capcheck::harness
{

struct RunRequest;

/**
 * Run @p req under the reference kernel (producing its artefacts at
 * the paths named in @p obs_opts) and again under the fast kernel
 * (artefacts redirected to temporary siblings, deleted afterwards),
 * then compare.
 *
 * @return the reference run's result.
 * @throw SimError naming the first divergence (result field mismatch
 *        or artefact file), with the fast run's artefacts left on disk
 *        for inspection.
 */
system::RunResult executeComparing(const RunRequest &req,
                                   const obs::ObsOptions &obs_opts);

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_KERNEL_COMPARE_HH
