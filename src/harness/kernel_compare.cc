#include "harness/kernel_compare.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "harness/run_request.hh"

namespace capcheck::harness
{

namespace
{

/** Suffix appended to each artefact path for the fast run's copy. */
constexpr const char *fastSuffix = ".fastcmp";

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("kernel compare: cannot reopen artefact '%s'",
              path.c_str());
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** The artefact files one run writes, in a fixed order. */
std::vector<std::string>
artefactPaths(const obs::ObsOptions &opts)
{
    std::vector<std::string> paths;
    for (const std::string *p :
         {&opts.traceFile, &opts.samplesFile, &opts.auditFile,
          &opts.flightFile, &opts.latencyFile}) {
        if (!p->empty())
            paths.push_back(*p);
    }
    return paths;
}

obs::ObsOptions
redirected(const obs::ObsOptions &opts)
{
    obs::ObsOptions out = opts;
    for (std::string *p :
         {&out.traceFile, &out.samplesFile, &out.auditFile,
          &out.flightFile, &out.latencyFile}) {
        if (!p->empty())
            *p += fastSuffix;
    }
    return out;
}

[[noreturn]] void
diverged(const RunRequest &req, const std::string &what)
{
    panic("kernel compare: fast kernel diverged from reference on "
          "[%s]: %s (fast artefacts kept with the '%s' suffix)",
          req.label().c_str(), what.c_str(), fastSuffix);
}

} // namespace

system::RunResult
executeComparing(const RunRequest &req, const obs::ObsOptions &obs_opts)
{
    // Both runs are the same experiment; only the simKernel field
    // differs, and it is pure host-side bookkeeping with no simulated
    // effect. The obs runLabel (caller-chosen) is shared verbatim so
    // label-bearing artefacts can be compared byte for byte.
    RunRequest ref_req = req;
    ref_req.config.simKernel = sim::SimKernel::ref;
    RunRequest fast_req = req;
    fast_req.config.simKernel = sim::SimKernel::fast;

    const system::RunResult ref_result = ref_req.execute(obs_opts);
    const obs::ObsOptions fast_opts = redirected(obs_opts);
    const system::RunResult fast_result = fast_req.execute(fast_opts);

    if (!(fast_result == ref_result)) {
        if (fast_result.totalCycles != ref_result.totalCycles) {
            diverged(req,
                     detail::formatString(
                         "totalCycles %llu (fast) != %llu (ref)",
                         static_cast<unsigned long long>(
                             fast_result.totalCycles),
                         static_cast<unsigned long long>(
                             ref_result.totalCycles)));
        }
        if (fast_result.statsJson != ref_result.statsJson)
            diverged(req, "stats dump differs");
        diverged(req, "run result differs");
    }

    for (const std::string &path : artefactPaths(obs_opts)) {
        const std::string fast_path = path + fastSuffix;
        if (slurp(path) != slurp(fast_path))
            diverged(req, "artefact '" + path + "' differs from '" +
                              fast_path + "'");
    }

    // Identical: the fast copies carry no information; drop them.
    for (const std::string &path : artefactPaths(obs_opts))
        std::remove((path + fastSuffix).c_str());

    return ref_result;
}

} // namespace capcheck::harness
