#include "harness/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "base/logging.hh"
#include "obs/prof.hh"
#include "sim/kernels/registry.hh"
#include "system/soc_config_builder.hh"

namespace capcheck::harness
{

namespace
{

/** One unique simulation point within a batch. */
struct Job
{
    const RunRequest *request = nullptr;
    system::RunResult result;
    double wallMillis = 0;
    bool fromCache = false;
    /** SimError raised inside the worker, re-thrown on the caller. */
    std::string error;
    /** Host-time profile; one buffer per job, touched by exactly one
     *  thread at a time, so --jobs N never contends. */
    std::unique_ptr<prof::RunProfile> profile;
};

} // namespace

SweepRunner::SweepRunner(Options options) : opts(std::move(options))
{
    numJobs = opts.jobs != 0 ? opts.jobs
                             : std::thread::hardware_concurrency();
    if (numJobs == 0)
        numJobs = 1;
    if (!opts.cacheDir.empty()) {
        disk = std::make_unique<DiskResultCache>(opts.cacheDir,
                                                 opts.cacheMaxBytes);
    }
}

system::RunResult
SweepRunner::runOne(const RunRequest &request)
{
    return run({request}, "single").front().result;
}

std::vector<RunOutcome>
SweepRunner::run(const std::vector<RunRequest> &requests,
                 const std::string &sweep_name)
{
    const auto batch_t0 = std::chrono::steady_clock::now();

    // Fail fast on inconsistent configurations, before any thread
    // spends minutes simulating a meaningless point.
    for (const RunRequest &req : requests) {
        const std::string errors =
            system::validationErrors(req.config);
        if (!errors.empty()) {
            fatal("sweep '%s': invalid request [%s]: %s",
                  sweep_name.c_str(), req.label().c_str(),
                  errors.c_str());
        }
    }

    // Deduplicate at submission time so cache attribution does not
    // depend on worker timing: the first occurrence of each hash
    // simulates (unless a previous batch already cached it), every
    // later occurrence is a cache hit by construction.
    std::vector<Job> jobs;
    std::vector<std::size_t> jobOf(requests.size());
    std::map<std::uint64_t, std::size_t> firstJob;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::uint64_t h = requests[i].hash();
        const auto it = firstJob.find(h);
        if (opts.cacheEnabled && it != firstJob.end()) {
            jobOf[i] = it->second;
            continue;
        }
        Job job;
        job.request = &requests[i];
        if (opts.cacheEnabled) {
            if (auto cached = resultCache.lookup(h)) {
                job.result = std::move(*cached);
                job.fromCache = true;
            } else if (disk) {
                // Second-level lookup: results persisted by an
                // earlier process (or the daemon) sharing cacheDir.
                if (auto stored = disk->lookup(h)) {
                    resultCache.store(h, *stored);
                    job.result = std::move(*stored);
                    job.fromCache = true;
                }
            }
            firstJob.emplace(h, jobs.size());
        }
        jobOf[i] = jobs.size();
        jobs.push_back(std::move(job));
    }

    // Work queue over the jobs that actually need simulating.
    std::vector<std::size_t> pendingJobs;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (!jobs[j].fromCache)
            pendingJobs.push_back(j);
    }

    // Observability output directories must exist before any worker
    // tries to write into them.
    {
        namespace fs = std::filesystem;
        std::error_code ec;
        for (const std::string *dir : {&opts.traceDir, &opts.auditDir,
                                       &opts.flightDir,
                                       &opts.latencyDir, &opts.profDir,
                                       &opts.foldedDir}) {
            if (dir->empty())
                continue;
            fs::create_directories(*dir, ec);
            if (ec) {
                warn("sweep '%s': cannot create dir '%s': %s",
                     sweep_name.c_str(), dir->c_str(),
                     ec.message().c_str());
            }
        }
        if (opts.sampleInterval > 0 && opts.traceDir.empty() &&
            !opts.jsonDir.empty())
            fs::create_directories(opts.jsonDir, ec);
    }

    std::mutex progress_mtx;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    const std::size_t total = pendingJobs.size();

    auto worker = [&]() {
        while (true) {
            const std::size_t slot =
                next.fetch_add(1, std::memory_order_relaxed);
            if (slot >= total)
                return;
            Job &job = jobs[pendingJobs[slot]];

            const bool profiling =
                !opts.profDir.empty() || !opts.foldedDir.empty();
            if (profiling)
                job.profile = std::make_unique<prof::RunProfile>();

            const auto t0 = std::chrono::steady_clock::now();
            try {
                // The worker owns this SocSystem outright; the event
                // queue inside never crosses a thread boundary. The
                // profile session covers exactly this job, on this
                // thread, so scopes hit a private buffer.
                std::optional<prof::ProfileSession> session;
                if (profiling)
                    session.emplace(*job.profile);
                job.result = job.request->execute(
                    obsOptionsFor(opts, *job.request));
            } catch (const SimError &e) {
                job.error = e.what();
            }
            const auto t1 = std::chrono::steady_clock::now();
            job.wallMillis =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();

            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opts.progress) {
                std::scoped_lock lock(progress_mtx);
                *opts.progress
                    << "[" << finished << "/" << total << "] "
                    << job.request->label()
                    << " cycles=" << job.result.totalCycles
                    << " cache=miss wall="
                    << static_cast<std::uint64_t>(job.wallMillis)
                    << "ms\n";
                opts.progress->flush();
            }
        }
    };

    const unsigned nthreads = static_cast<unsigned>(
        std::min<std::size_t>(numJobs, total));
    if (nthreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nthreads);
        for (unsigned t = 0; t < nthreads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const std::size_t j : pendingJobs) {
        if (!jobs[j].error.empty()) {
            fatal("sweep '%s': request [%s] failed: %s",
                  sweep_name.c_str(), jobs[j].request->label().c_str(),
                  jobs[j].error.c_str());
        }
    }

    // Publish fresh results to the cache(s) and tally counters. The
    // store cost is attributed to the run that produced the result
    // (workers are joined, so reopening each job's session is safe).
    for (const std::size_t j : pendingJobs) {
        if (opts.cacheEnabled) {
            std::optional<prof::ProfileSession> session;
            if (jobs[j].profile)
                session.emplace(*jobs[j].profile);
            resultCache.store(jobs[j].request->hash(), jobs[j].result);
            if (disk)
                disk->store(jobs[j].request->hash(), jobs[j].result);
        }
        ++executed;
    }

    // Assemble outcomes in input order.
    std::vector<RunOutcome> outcomes;
    outcomes.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const Job &job = jobs[jobOf[i]];
        RunOutcome out;
        out.request = requests[i];
        out.result = job.result;
        out.cacheHit = job.fromCache || job.request != &requests[i];
        out.wallMillis = out.cacheHit ? 0 : job.wallMillis;
        if (out.cacheHit)
            ++hits;
        if (opts.progress && out.cacheHit) {
            *opts.progress << "[cache] " << requests[i].label()
                           << " cycles=" << out.result.totalCycles
                           << " cache=hit\n";
        }
        outcomes.push_back(std::move(out));
    }

    SweepProfile profile;
    profile.workers = nthreads == 0 ? 1 : nthreads;
    profile.executed = total;
    profile.cacheHits = requests.size() - total;
    for (const std::size_t j : pendingJobs)
        profile.simWallMillis += jobs[j].wallMillis;
    profile.sweepWallMillis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - batch_t0)
            .count();
    profile.memCache = resultCache.stats();
    if (disk) {
        profile.diskCache = disk->stats();
        profile.diskCachePresent = true;
    }

    // Per-run wall-clock spread: a grid with one pathological point
    // looks healthy as a sum; min/p50/max makes the skew visible.
    if (!pendingJobs.empty()) {
        std::vector<double> walls;
        walls.reserve(pendingJobs.size());
        for (const std::size_t j : pendingJobs)
            walls.push_back(jobs[j].wallMillis);
        std::sort(walls.begin(), walls.end());
        profile.runWallMinMillis = walls.front();
        profile.runWallP50Millis = walls[walls.size() / 2];
        profile.runWallMaxMillis = walls.back();
    }

    if (opts.progress) {
        char util[16];
        std::snprintf(util, sizeof(util), "%.2f",
                      profile.utilization());
        *opts.progress << "[sweep " << sweep_name << "] "
                       << requests.size() << " requests: "
                       << profile.executed << " executed, "
                       << profile.cacheHits << " cached, wall="
                       << static_cast<std::uint64_t>(
                              profile.sweepWallMillis)
                       << "ms, jobs=" << profile.workers
                       << ", utilization=" << util;
        if (profile.executed > 0) {
            *opts.progress
                << ", runWall="
                << static_cast<std::uint64_t>(
                       profile.runWallMinMillis)
                << "/"
                << static_cast<std::uint64_t>(
                       profile.runWallP50Millis)
                << "/"
                << static_cast<std::uint64_t>(
                       profile.runWallMaxMillis)
                << "ms min/p50/max";
        }
        *opts.progress << "\n";
        opts.progress->flush();
    }

    std::map<std::uint64_t, prof::RunProfile *> profiles;
    for (const std::size_t j : pendingJobs) {
        if (jobs[j].profile)
            profiles.emplace(jobs[j].request->hash(),
                             jobs[j].profile.get());
    }

    if (!opts.jsonDir.empty()) {
        writeJson(outcomes, sweep_name, profile,
                  profiles.empty() ? nullptr : &profiles);
    }

    // All attribution windows are closed: render the profiles. Like
    // every other artefact, only fresh simulations produce files.
    for (const std::size_t j : pendingJobs) {
        const Job &job = jobs[j];
        if (!job.profile)
            continue;
        const obs::ObsOptions oo = obsOptionsFor(opts, *job.request);
        const char *kernel =
            sim::simKernelName(job.request->config.simKernel);
        if (!oo.profileFile.empty()) {
            std::ofstream os(oo.profileFile);
            if (os)
                os << job.profile->json(job.request->label(), kernel);
            else
                warn("cannot write '%s'", oo.profileFile.c_str());
        }
        if (!oo.foldedFile.empty()) {
            std::ofstream os(oo.foldedFile);
            if (os)
                os << job.profile->foldedText();
            else
                warn("cannot write '%s'", oo.foldedFile.c_str());
        }
    }

    return outcomes;
}

void
SweepRunner::writeJson(
    const std::vector<RunOutcome> &outcomes,
    const std::string &sweep_name, const SweepProfile &profile,
    const std::map<std::uint64_t, prof::RunProfile *> *profiles) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(opts.jsonDir, ec);
    if (ec) {
        warn("sweep '%s': cannot create json dir '%s': %s",
             sweep_name.c_str(), opts.jsonDir.c_str(),
             ec.message().c_str());
        return;
    }

    for (const RunOutcome &o : outcomes) {
        std::optional<prof::ProfileSession> session;
        if (profiles) {
            const auto it = profiles->find(o.request.hash());
            if (it != profiles->end())
                session.emplace(*it->second);
        }
        const fs::path file =
            fs::path(opts.jsonDir) /
            ("run-" + o.request.hashHex() + ".json");
        std::ofstream os(file);
        if (!os) {
            warn("cannot write '%s'", file.string().c_str());
            continue;
        }
        std::string text;
        {
            PROF_SCOPE("harness", "render.runjson");
            text = runJson(o.request, o.result);
        }
        {
            PROF_SCOPE("harness", "write.results");
            os << text;
        }
    }

    const fs::path manifest =
        fs::path(opts.jsonDir) / (sweep_name + ".manifest.json");
    std::ofstream os(manifest);
    if (!os) {
        warn("cannot write '%s'", manifest.string().c_str());
        return;
    }
    os << manifestJson(sweep_name, outcomes, &profile);
}

} // namespace capcheck::harness
