#include "harness/result_cache.hh"

#include "obs/prof.hh"

namespace capcheck::harness
{

std::uint64_t
resultApproxBytes(const system::RunResult &result)
{
    return sizeof(system::RunResult) + result.benchmark.size() +
           result.statsText.size() + result.statsJson.size();
}

std::optional<system::RunResult>
ResultCache::lookup(std::uint64_t hash) const
{
    PROF_SCOPE("harness", "cache.mem.lookup");
    std::scoped_lock lock(mtx);
    ++lookupCount;
    const auto it = entries.find(hash);
    if (it == entries.end())
        return std::nullopt;
    ++hitCount;
    return it->second;
}

void
ResultCache::store(std::uint64_t hash, const system::RunResult &result)
{
    PROF_SCOPE("harness", "cache.mem.store");
    std::scoped_lock lock(mtx);
    const auto [it, inserted] = entries.emplace(hash, result);
    if (inserted)
        totalBytes += resultApproxBytes(it->second);
}

std::size_t
ResultCache::size() const
{
    std::scoped_lock lock(mtx);
    return entries.size();
}

void
ResultCache::clear()
{
    std::scoped_lock lock(mtx);
    entries.clear();
    totalBytes = 0;
}

CacheStats
ResultCache::stats() const
{
    std::scoped_lock lock(mtx);
    CacheStats s;
    s.entries = entries.size();
    s.bytes = totalBytes;
    s.hits = hitCount;
    s.lookups = lookupCount;
    return s;
}

} // namespace capcheck::harness
