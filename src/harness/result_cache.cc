#include "harness/result_cache.hh"

namespace capcheck::harness
{

std::optional<system::RunResult>
ResultCache::lookup(std::uint64_t hash) const
{
    std::scoped_lock lock(mtx);
    const auto it = entries.find(hash);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

void
ResultCache::store(std::uint64_t hash, const system::RunResult &result)
{
    std::scoped_lock lock(mtx);
    entries.emplace(hash, result);
}

std::size_t
ResultCache::size() const
{
    std::scoped_lock lock(mtx);
    return entries.size();
}

void
ResultCache::clear()
{
    std::scoped_lock lock(mtx);
    entries.clear();
}

} // namespace capcheck::harness
