/**
 * @file
 * In-process result cache keyed by RunRequest content hash. Overlapping
 * sweeps (fig8/fig9/fig10 all re-run ccpu+accel points) share one
 * simulation per unique request instead of recomputing it. The cache
 * keeps entry-count/byte accounting and hit/lookup counters, surfaced
 * through stats() into sweep manifests and the capcheckd stats frame.
 */

#ifndef CAPCHECK_HARNESS_RESULT_CACHE_HH
#define CAPCHECK_HARNESS_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "harness/sweep_options.hh"
#include "system/run_result.hh"

namespace capcheck::harness
{

/** Approximate in-memory footprint of one cached result. */
std::uint64_t resultApproxBytes(const system::RunResult &result);

/** Thread-safe hash → RunResult store. */
class ResultCache
{
  public:
    /** @return the cached result for @p hash, if any. */
    std::optional<system::RunResult> lookup(std::uint64_t hash) const;

    /** Store @p result under @p hash (first writer wins). */
    void store(std::uint64_t hash, const system::RunResult &result);

    std::size_t size() const;
    void clear();

    /** Occupancy and lifetime hit/lookup counters. */
    CacheStats stats() const;

  private:
    mutable std::mutex mtx;
    std::map<std::uint64_t, system::RunResult> entries;
    std::uint64_t totalBytes = 0;
    mutable std::uint64_t hitCount = 0;
    mutable std::uint64_t lookupCount = 0;
};

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_RESULT_CACHE_HH
