/**
 * @file
 * SweepRunner: executes batches of RunRequests on a pool of worker
 * threads. Each worker owns the SocSystem it is running — the event
 * queue stays single-threaded per simulation — so parallelism is
 * across experiment points, never inside one. A content-hash result
 * cache deduplicates identical requests within and across batches,
 * and completed sweeps can be serialized as JSON under a results
 * directory.
 *
 * Determinism: a request's RunResult depends only on the request, so
 * the outcome vector (input order preserved) and all JSON output are
 * byte-identical whether the batch ran on 1 thread or 8. Wall-clock
 * metadata appears only in progress lines (stderr by convention).
 */

#ifndef CAPCHECK_HARNESS_SWEEP_RUNNER_HH
#define CAPCHECK_HARNESS_SWEEP_RUNNER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"
#include "harness/result_cache.hh"
#include "harness/result_json.hh"
#include "harness/run_request.hh"

namespace capcheck::harness
{

class SweepRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 = std::thread::hardware_concurrency(). */
        unsigned jobs = 0;

        /** Serve repeated requests from the result cache. */
        bool cacheEnabled = true;

        /** Per-run progress lines ("[3/40] gemm_ncubed ... cache=miss
         *  wall=12ms"); nullptr silences them. */
        std::ostream *progress = nullptr;

        /** Directory for run-<hash>.json and <sweep>.manifest.json;
         *  empty = no JSON output. Created on demand. */
        std::string jsonDir;

        /** Directory for per-run Chrome traces
         *  (run-<hash>.trace.json); empty = no tracing. Only fresh
         *  simulations produce files — cache hits reuse the original
         *  run's outputs, which are byte-identical by construction. */
        std::string traceDir;

        /** Cycles between per-run stat samples
         *  (run-<hash>.samples.json, in traceDir or else jsonDir);
         *  0 = sampling off. */
        Cycles sampleInterval = 0;

        /** Directory for per-run JSONL security audit logs
         *  (run-<hash>.audit.jsonl); empty = no audit logs. */
        std::string auditDir;

        /** Directory for per-run flight-recorder tables
         *  (run-<hash>.flights.json: the topN slowest DMA requests
         *  with per-hop breakdowns); empty = off. */
        std::string flightDir;

        /** Directory for per-run latency-attribution summaries
         *  (run-<hash>.latency.json: log2 latency histograms with
         *  p50/p95/p99 plus per-hop cycle attribution); empty = off. */
        std::string latencyDir;

        /** Slowest flights kept per run in the flight table. */
        unsigned topN = 10;
    };

    SweepRunner() : SweepRunner(Options{}) {}
    explicit SweepRunner(Options options);

    /**
     * Execute @p requests and return one outcome per request, in
     * input order. Every request is validated (validateSocConfig)
     * before anything runs; duplicates — within the batch or against
     * previous batches — are served from the cache. When a jsonDir is
     * configured, writes one run-<hash>.json per unique request plus
     * <sweep_name>.manifest.json.
     */
    std::vector<RunOutcome> run(const std::vector<RunRequest> &requests,
                                const std::string &sweep_name = "sweep");

    /** Convenience: run a single request through the same machinery. */
    system::RunResult runOne(const RunRequest &request);

    /** Resolved worker count. */
    unsigned jobs() const { return numJobs; }

    /** Simulations actually executed (cache misses) so far. */
    std::uint64_t simulationsExecuted() const { return executed; }

    /** Requests served from the cache so far. */
    std::uint64_t cacheHits() const { return hits; }

    ResultCache &cache() { return resultCache; }

  private:
    void writeJson(const std::vector<RunOutcome> &outcomes,
                   const std::string &sweep_name,
                   const SweepProfile &profile) const;

    /** Observability outputs for one request, keyed by its hash. */
    obs::ObsOptions obsOptionsFor(const RunRequest &request) const;

    Options opts;
    unsigned numJobs = 1;
    ResultCache resultCache;
    std::uint64_t executed = 0;
    std::uint64_t hits = 0;
};

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_SWEEP_RUNNER_HH
