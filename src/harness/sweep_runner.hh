/**
 * @file
 * SweepRunner: executes batches of RunRequests on a pool of worker
 * threads. Each worker owns the SocSystem it is running — the event
 * queue stays single-threaded per simulation — so parallelism is
 * across experiment points, never inside one. A content-hash result
 * cache deduplicates identical requests within and across batches,
 * and completed sweeps can be serialized as JSON under a results
 * directory.
 *
 * Determinism: a request's RunResult depends only on the request, so
 * the outcome vector (input order preserved) and all JSON output are
 * byte-identical whether the batch ran on 1 thread or 8. Wall-clock
 * metadata appears only in progress lines (stderr by convention).
 */

#ifndef CAPCHECK_HARNESS_SWEEP_RUNNER_HH
#define CAPCHECK_HARNESS_SWEEP_RUNNER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"
#include "harness/disk_cache.hh"
#include "harness/result_cache.hh"
#include "harness/result_json.hh"
#include "harness/run_request.hh"
#include "harness/sweep_options.hh"
#include "obs/prof.hh"

namespace capcheck::harness
{

class SweepRunner
{
  public:
    /**
     * The runner's knobs are the unified SweepOptions (serverSocket
     * is ignored here — backend selection happens one layer up in
     * service::makeService; a non-empty cacheDir attaches the
     * disk-backed result cache behind the in-memory one).
     */
    using Options = SweepOptions;

    SweepRunner() : SweepRunner(Options{}) {}
    explicit SweepRunner(Options options);

    /**
     * Execute @p requests and return one outcome per request, in
     * input order. Every request is validated (validateSocConfig)
     * before anything runs; duplicates — within the batch or against
     * previous batches — are served from the cache. When a jsonDir is
     * configured, writes one run-<hash>.json per unique request plus
     * <sweep_name>.manifest.json.
     */
    std::vector<RunOutcome> run(const std::vector<RunRequest> &requests,
                                const std::string &sweep_name = "sweep");

    /** Convenience: run a single request through the same machinery. */
    system::RunResult runOne(const RunRequest &request);

    /** Resolved worker count. */
    unsigned jobs() const { return numJobs; }

    /** Simulations actually executed (cache misses) so far. */
    std::uint64_t simulationsExecuted() const { return executed; }

    /** Requests served from the cache so far. */
    std::uint64_t cacheHits() const { return hits; }

    ResultCache &cache() { return resultCache; }

    /** The disk cache; nullptr unless Options::cacheDir was set. */
    DiskResultCache *diskCache() { return disk.get(); }

  private:
    /**
     * @p profiles maps request hashes of freshly executed runs to
     * their host-time profiles, so the JSON render and file writes
     * are attributed to the run they serve; nullptr when profiling
     * is off.
     */
    void writeJson(
        const std::vector<RunOutcome> &outcomes,
        const std::string &sweep_name, const SweepProfile &profile,
        const std::map<std::uint64_t, prof::RunProfile *> *profiles)
        const;

    Options opts;
    unsigned numJobs = 1;
    ResultCache resultCache;
    std::unique_ptr<DiskResultCache> disk;
    std::uint64_t executed = 0;
    std::uint64_t hits = 0;
};

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_SWEEP_RUNNER_HH
