/**
 * @file
 * SweepOptions: the one knob struct for running sweeps. It unifies
 * what used to be SweepRunner::Options plus the per-harness
 * observability flag plumbing, and adds the backend selectors of the
 * sweep service layer (remote daemon socket, disk-backed result
 * cache). Every consumer — SweepRunner, the capcheckd server, the
 * bench harness CLI — configures itself from this struct, so a flag
 * parsed once in bench/args.hh reaches all of them.
 *
 * The fluent with*() setters make one-expression construction read
 * naturally in tests and tools:
 *
 *     auto opts = SweepOptions{}.withJobs(4).withJsonDir("out");
 */

#ifndef CAPCHECK_HARNESS_SWEEP_OPTIONS_HH
#define CAPCHECK_HARNESS_SWEEP_OPTIONS_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "base/types.hh"
#include "obs/options.hh"

namespace capcheck::harness
{

struct RunRequest;

/**
 * Usage counters of one result cache (in-memory or disk-backed).
 * Entries/bytes describe current occupancy; hits/lookups/evictions
 * accumulate over the cache's lifetime.
 */
struct CacheStats
{
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t lookups = 0;
    std::uint64_t evictions = 0;
};

struct SweepOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Serve repeated requests from the result cache(s). */
    bool cacheEnabled = true;

    /** Per-run progress lines ("[3/40] gemm_ncubed ... cache=miss
     *  wall=12ms"); nullptr silences them. */
    std::ostream *progress = nullptr;

    /** Directory for run-<hash>.json and <sweep>.manifest.json;
     *  empty = no JSON output. Created on demand. */
    std::string jsonDir;

    /** Directory for per-run Chrome traces
     *  (run-<hash>.trace.json); empty = no tracing. Only fresh
     *  simulations produce files — cache hits reuse the original
     *  run's outputs, which are byte-identical by construction. */
    std::string traceDir;

    /** Cycles between per-run stat samples
     *  (run-<hash>.samples.json, in traceDir or else jsonDir);
     *  0 = sampling off. */
    Cycles sampleInterval = 0;

    /** Directory for per-run JSONL security audit logs
     *  (run-<hash>.audit.jsonl); empty = no audit logs. */
    std::string auditDir;

    /** Directory for per-run flight-recorder tables
     *  (run-<hash>.flights.json: the topN slowest DMA requests
     *  with per-hop breakdowns); empty = off. */
    std::string flightDir;

    /** Directory for per-run latency-attribution summaries
     *  (run-<hash>.latency.json: log2 latency histograms with
     *  p50/p95/p99 plus per-hop cycle attribution); empty = off. */
    std::string latencyDir;

    /** Directory for per-run host-time profiles
     *  (run-<hash>.prof.json: per-domain/site self/total nanos and
     *  share-of-run, from the PROF_SCOPE self-profiler); empty = off.
     *  Host wall-clock, so unlike the artefacts above these files are
     *  machine-dependent — but producing them never changes the
     *  simulated outputs. In-process sweeps only. */
    std::string profDir;

    /** Directory for per-run folded-stacks files (run-<hash>.folded,
     *  Brendan Gregg format for flamegraph.pl/speedscope); empty =
     *  off. In-process sweeps only. */
    std::string foldedDir;

    /** Slowest flights kept per run in the flight table. */
    unsigned topN = 10;

    /**
     * Unix-domain socket of a capcheckd daemon; when set, sweeps are
     * submitted to that daemon (service::RemoteService) instead of
     * simulating in-process. Empty = in-process execution.
     */
    std::string serverSocket;

    /**
     * Directory of the disk-backed content-addressed result cache
     * (hash → version-stamped result JSON). Empty = no disk cache.
     * Shared between in-process runs and the daemon: entries written
     * by either survive restarts and serve both.
     */
    std::string cacheDir;

    /**
     * LRU byte cap of the disk cache; least-recently-used entries are
     * evicted once the cache exceeds it. 0 = unbounded.
     */
    std::uint64_t cacheMaxBytes = 1ull << 30;

    /**
     * Trace id sent with remote submits so daemon-side spans and
     * JSONL log lines join against this client's run. Empty = the
     * daemon synthesizes one ("client<id>.batch<n>").
     */
    std::string traceId;

    /** @{ Fluent setters. */
    SweepOptions &withJobs(unsigned v) { jobs = v; return *this; }
    SweepOptions &withCache(bool v) { cacheEnabled = v; return *this; }
    SweepOptions &
    withProgress(std::ostream *v)
    {
        progress = v;
        return *this;
    }
    SweepOptions &
    withJsonDir(std::string v)
    {
        jsonDir = std::move(v);
        return *this;
    }
    SweepOptions &
    withTraceDir(std::string v)
    {
        traceDir = std::move(v);
        return *this;
    }
    SweepOptions &
    withSampleInterval(Cycles v)
    {
        sampleInterval = v;
        return *this;
    }
    SweepOptions &
    withAuditDir(std::string v)
    {
        auditDir = std::move(v);
        return *this;
    }
    SweepOptions &
    withFlightDir(std::string v)
    {
        flightDir = std::move(v);
        return *this;
    }
    SweepOptions &
    withLatencyDir(std::string v)
    {
        latencyDir = std::move(v);
        return *this;
    }
    SweepOptions &
    withProfDir(std::string v)
    {
        profDir = std::move(v);
        return *this;
    }
    SweepOptions &
    withFoldedDir(std::string v)
    {
        foldedDir = std::move(v);
        return *this;
    }
    SweepOptions &withTopN(unsigned v) { topN = v; return *this; }
    SweepOptions &
    withServerSocket(std::string v)
    {
        serverSocket = std::move(v);
        return *this;
    }
    SweepOptions &
    withCacheDir(std::string v)
    {
        cacheDir = std::move(v);
        return *this;
    }
    SweepOptions &
    withCacheMaxBytes(std::uint64_t v)
    {
        cacheMaxBytes = v;
        return *this;
    }
    SweepOptions &
    withTraceId(std::string v)
    {
        traceId = std::move(v);
        return *this;
    }
    /** @} */

    /**
     * Defaults with the environment applied: CAPCHECK_CACHE_DIR seeds
     * cacheDir, CAPCHECK_CACHE_MAX_BYTES seeds cacheMaxBytes,
     * CAPCHECK_SERVER seeds serverSocket and CAPCHECK_TRACE_ID seeds
     * traceId. Explicit flags parsed on top of this still win. Unit
     * tests constructing SweepOptions{} directly are unaffected by
     * the environment.
     */
    static SweepOptions fromEnvironment();
};

/**
 * The per-run observability outputs @p opts selects for @p request:
 * every artefact path is keyed by the request's content hash, so the
 * same request produces the same file names whether it runs
 * in-process or inside the daemon.
 */
obs::ObsOptions obsOptionsFor(const SweepOptions &opts,
                              const RunRequest &request);

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_SWEEP_OPTIONS_HH
