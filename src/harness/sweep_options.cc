#include "harness/sweep_options.hh"

#include <cstdlib>

#include "harness/run_request.hh"

namespace capcheck::harness
{

SweepOptions
SweepOptions::fromEnvironment()
{
    SweepOptions opts;
    if (const char *dir = std::getenv("CAPCHECK_CACHE_DIR"))
        opts.cacheDir = dir;
    if (const char *cap = std::getenv("CAPCHECK_CACHE_MAX_BYTES"))
        opts.cacheMaxBytes = std::strtoull(cap, nullptr, 10);
    if (const char *sock = std::getenv("CAPCHECK_SERVER"))
        opts.serverSocket = sock;
    if (const char *trace = std::getenv("CAPCHECK_TRACE_ID"))
        opts.traceId = trace;
    return opts;
}

obs::ObsOptions
obsOptionsFor(const SweepOptions &opts, const RunRequest &request)
{
    obs::ObsOptions oo;
    const std::string hex = request.hashHex();
    if (!opts.traceDir.empty())
        oo.traceFile = opts.traceDir + "/run-" + hex + ".trace.json";
    if (opts.sampleInterval > 0) {
        const std::string &dir =
            !opts.traceDir.empty() ? opts.traceDir : opts.jsonDir;
        if (!dir.empty()) {
            oo.samplesFile = dir + "/run-" + hex + ".samples.json";
            oo.sampleInterval = opts.sampleInterval;
        }
    }
    if (!opts.auditDir.empty())
        oo.auditFile = opts.auditDir + "/run-" + hex + ".audit.jsonl";
    if (!opts.flightDir.empty())
        oo.flightFile = opts.flightDir + "/run-" + hex + ".flights.json";
    if (!opts.latencyDir.empty())
        oo.latencyFile =
            opts.latencyDir + "/run-" + hex + ".latency.json";
    if (!opts.profDir.empty())
        oo.profileFile = opts.profDir + "/run-" + hex + ".prof.json";
    if (!opts.foldedDir.empty())
        oo.foldedFile = opts.foldedDir + "/run-" + hex + ".folded";
    if (oo.flightRecording() || oo.profiling()) {
        oo.topN = opts.topN;
        oo.runLabel = request.label();
    }
    return oo;
}

} // namespace capcheck::harness
