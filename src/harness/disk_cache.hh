/**
 * @file
 * Disk-backed content-addressed result cache: one version-stamped JSON
 * file per RunRequest hash under a cache directory. Entries are
 * written to a temporary name and published with an atomic rename, so
 * concurrent writers (an in-process sweep and a capcheckd daemon
 * sharing CAPCHECK_CACHE_DIR) can never expose a torn file, and a
 * restarted daemon re-indexes whatever the previous life left behind.
 *
 * Eviction is least-recently-used by total byte size: every hit bumps
 * the entry's recency (mirrored to the file's mtime so the order
 * survives restarts), and store() evicts the coldest entries until
 * the cache fits under its byte cap again.
 */

#ifndef CAPCHECK_HARNESS_DISK_CACHE_HH
#define CAPCHECK_HARNESS_DISK_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "harness/sweep_options.hh"
#include "system/run_result.hh"

namespace capcheck::harness
{

class DiskResultCache
{
  public:
    /** Bump when the entry document layout changes; readers treat a
     *  mismatched stamp as a miss and overwrite on the next store. */
    static constexpr unsigned formatVersion = 1;

    /**
     * Open (and index) the cache under @p dir, creating it if needed.
     * @p max_bytes is the LRU byte cap; 0 = unbounded.
     */
    explicit DiskResultCache(std::string dir,
                             std::uint64_t max_bytes = 0);

    /** The cached result for @p hash, if a valid entry exists. */
    std::optional<system::RunResult> lookup(std::uint64_t hash);

    /** Persist @p result under @p hash, then enforce the byte cap. */
    void store(std::uint64_t hash, const system::RunResult &result);

    /** Occupancy plus lifetime hit/lookup/eviction counters. */
    CacheStats stats() const;

    const std::string &directory() const { return dir; }
    std::uint64_t maxBytes() const { return byteCap; }

    /** The entry file for @p hash (inside the cache directory). */
    std::string pathFor(std::uint64_t hash) const;

  private:
    struct Entry
    {
        std::uint64_t bytes = 0;
        /** Monotonic recency stamp; smallest = coldest. */
        std::uint64_t stamp = 0;
    };

    void indexExisting();
    void evictLocked();

    std::string dir;
    std::uint64_t byteCap;

    mutable std::mutex mtx;
    std::map<std::uint64_t, Entry> index;
    std::uint64_t totalBytes = 0;
    std::uint64_t nextStamp = 1;
    std::uint64_t hitCount = 0;
    std::uint64_t lookupCount = 0;
    std::uint64_t evictCount = 0;
};

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_DISK_CACHE_HH
