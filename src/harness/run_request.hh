/**
 * @file
 * RunRequest: a value type naming one simulation point — benchmark(s),
 * full SocConfig, explicit task count — with a stable content hash.
 * The hash keys the SweepRunner's result cache and the JSON result
 * files, so two requests with identical parameters are recognized as
 * the same experiment no matter which harness submitted them.
 */

#ifndef CAPCHECK_HARNESS_RUN_REQUEST_HH
#define CAPCHECK_HARNESS_RUN_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "system/run_result.hh"
#include "system/soc_system.hh"

namespace capcheck::harness
{

struct RunRequest
{
    /**
     * One entry: a single-benchmark run (SocSystem::runBenchmark).
     * Several entries: a mixed system (SocSystem::runMixed) with one
     * accelerator pool and one task per entry.
     */
    std::vector<std::string> benchmarks;

    system::SocConfig config;

    /**
     * Concurrent task count, always explicit (never the old helper's
     * silent 0). single() resolves a 0 argument to
     * config.numInstances — the paper's one-task-per-instance setup —
     * at construction time, so every stored request states its real
     * task count and hashes accordingly.
     */
    unsigned numTasks = 1;

    /** Build a single-benchmark request (0 tasks = one per instance). */
    static RunRequest single(std::string benchmark,
                             system::SocConfig cfg,
                             unsigned num_tasks = 0);

    /** Build a mixed-system request (one task per named benchmark). */
    static RunRequest mixed(std::vector<std::string> benchmarks,
                            system::SocConfig cfg);

    bool isMixed() const { return benchmarks.size() > 1; }

    /**
     * Stable content hash over every field that influences the
     * simulation outcome (benchmarks, task count, and the full
     * SocConfig including cost parameters). Identical across
     * processes and platforms; used as the result-cache key and in
     * JSON file names.
     */
    std::uint64_t hash() const;

    /** hash() as a fixed-width lowercase hex string. */
    std::string hashHex() const;

    /** Compact human-readable description for progress lines. */
    std::string label() const;

    /** Construct a SocSystem for this request and run it. */
    system::RunResult execute() const;

    /**
     * execute() with observability outputs (Chrome trace, stat
     * samples, audit log) enabled for the run. The files depend only
     * on the request and simulated time, never on host threading.
     */
    system::RunResult execute(const obs::ObsOptions &obs_opts) const;

    bool operator==(const RunRequest &other) const;
};

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_RUN_REQUEST_HH
