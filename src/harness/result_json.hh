/**
 * @file
 * JSON serialization of RunRequest / RunResult pairs and sweep
 * manifests. Every field written here is a deterministic function of
 * the request and the simulation outcome — wall-clock metadata stays
 * in progress lines only — so the files produced by an 8-thread sweep
 * are byte-identical to a serial one.
 */

#ifndef CAPCHECK_HARNESS_RESULT_JSON_HH
#define CAPCHECK_HARNESS_RESULT_JSON_HH

#include <string>
#include <vector>

#include "base/json.hh"
#include "harness/run_request.hh"

namespace capcheck::harness
{

/** A request paired with its (possibly cache-served) result. */
struct RunOutcome
{
    RunRequest request;
    system::RunResult result;
    /** Served from the result cache instead of a fresh simulation. */
    bool cacheHit = false;
    /** Wall time of the simulation in milliseconds; 0 on cache hits.
     *  Progress-line metadata only — never serialized to JSON. */
    double wallMillis = 0;
};

/** Write the full SocConfig as a JSON object in value position. */
void writeConfigJson(json::JsonWriter &w,
                     const system::SocConfig &cfg);

/** Write one request + result as a self-describing JSON object. */
void writeRunJson(json::JsonWriter &w, const RunRequest &request,
                  const system::RunResult &result);

/** writeRunJson() rendered to a string (the run-<hash>.json body). */
std::string runJson(const RunRequest &request,
                    const system::RunResult &result);

/** The manifest document for one named sweep, in submission order. */
std::string manifestJson(const std::string &sweep_name,
                         const std::vector<RunOutcome> &outcomes);

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_RESULT_JSON_HH
