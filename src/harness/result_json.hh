/**
 * @file
 * JSON serialization of RunRequest / RunResult pairs and sweep
 * manifests. Every per-run field written here is a deterministic
 * function of the request and the simulation outcome, so the
 * run-<hash>.json files produced by an 8-thread sweep are
 * byte-identical to a serial one. The manifest may additionally carry
 * an explicitly non-deterministic "profile" block (wall-clock and
 * worker-utilization metadata) when the caller supplies one.
 */

#ifndef CAPCHECK_HARNESS_RESULT_JSON_HH
#define CAPCHECK_HARNESS_RESULT_JSON_HH

#include <optional>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/json_value.hh"
#include "harness/run_request.hh"
#include "harness/sweep_options.hh"

namespace capcheck::harness
{

/** A request paired with its (possibly cache-served) result. */
struct RunOutcome
{
    RunRequest request;
    system::RunResult result;
    /** Served from the result cache instead of a fresh simulation. */
    bool cacheHit = false;
    /** Wall time of the simulation in milliseconds; 0 on cache hits.
     *  Appears in progress lines and the manifest's profile block,
     *  never in run-<hash>.json. */
    double wallMillis = 0;
};

/** Write the full SocConfig as a JSON object in value position. */
void writeConfigJson(json::JsonWriter &w,
                     const system::SocConfig &cfg);

/** Write one request + result as a self-describing JSON object. */
void writeRunJson(json::JsonWriter &w, const RunRequest &request,
                  const system::RunResult &result);

/** writeRunJson() rendered to a string (the run-<hash>.json body). */
std::string runJson(const RunRequest &request,
                    const system::RunResult &result);

/**
 * @{
 * Wire serialization: a *complete*, invertible JSON encoding of
 * RunRequest and RunResult. Unlike writeConfigJson/writeRunJson —
 * whose documents are human-facing artefacts that omit default cost
 * tables — these emit every field that feeds RunRequest::hash() and
 * RunResult::operator==, so a request round-tripped through the
 * capcheckd socket protocol re-hashes to the same key and a result
 * round-tripped through the disk cache compares equal field by field.
 */
void writeRequestWireJson(json::JsonWriter &w,
                          const RunRequest &request);

/** Request rebuilt from writeRequestWireJson() output; nullopt (with
 *  a one-line @p error) on missing/ill-typed fields. */
std::optional<RunRequest> requestFromWireJson(const json::JsonValue &v,
                                              std::string *error);

void writeResultWireJson(json::JsonWriter &w,
                         const system::RunResult &result);

/** Result rebuilt from writeResultWireJson() output. */
std::optional<system::RunResult>
resultFromWireJson(const json::JsonValue &v, std::string *error);
/** @} */

/**
 * Host-side execution profile of one sweep batch. Everything in here
 * is wall-clock metadata: useful for tuning --jobs, excluded from the
 * determinism contract.
 */
struct SweepProfile
{
    /** Worker threads the batch actually used. */
    unsigned workers = 0;
    /** Fresh simulations (cache misses) in the batch. */
    std::uint64_t executed = 0;
    /** Requests served from the result cache. */
    std::uint64_t cacheHits = 0;
    /** Sum of per-simulation wall times (all workers). */
    double simWallMillis = 0;
    /** Wall-clock of the whole batch, submission to last join. */
    double sweepWallMillis = 0;
    /** @{ Per-run wall-time spread over the fresh simulations (all
     *  zero when the batch was fully cached): the sum above hides a
     *  grid skewed by one slow point; min/p50/max exposes it. */
    double runWallMinMillis = 0;
    double runWallP50Millis = 0;
    double runWallMaxMillis = 0;
    /** @} */

    /** In-memory result-cache counters after the batch. */
    CacheStats memCache;
    /** Disk-cache counters after the batch (when one is attached). */
    CacheStats diskCache;
    bool diskCachePresent = false;

    /**
     * simWall / (sweepWall * workers): 1.0 means every worker
     * simulated the whole time.
     */
    double utilization() const;
};

/**
 * The manifest document for one named sweep, in submission order.
 * With a @p profile, each entry gains its wall time and the document
 * gains a "profile" block (both non-deterministic).
 */
std::string manifestJson(const std::string &sweep_name,
                         const std::vector<RunOutcome> &outcomes,
                         const SweepProfile *profile = nullptr);

} // namespace capcheck::harness

#endif // CAPCHECK_HARNESS_RESULT_JSON_HH
