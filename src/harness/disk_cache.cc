#include "harness/disk_cache.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "base/json.hh"
#include "base/json_value.hh"
#include "obs/prof.hh"
#include "base/logging.hh"
#include "harness/result_json.hh"

namespace fs = std::filesystem;

namespace capcheck::harness
{

namespace
{

std::string
hashHex(std::uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** The hash encoded in an entry file name; nullopt for foreign files. */
std::optional<std::uint64_t>
hashFromName(const std::string &name)
{
    if (name.size() != 16 + 5 || name.substr(16) != ".json")
        return std::nullopt;
    std::uint64_t hash = 0;
    for (unsigned i = 0; i < 16; ++i) {
        const char c = name[i];
        hash <<= 4;
        if (c >= '0' && c <= '9')
            hash |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            hash |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return std::nullopt;
    }
    return hash;
}

} // namespace

DiskResultCache::DiskResultCache(std::string cache_dir,
                                 std::uint64_t max_bytes)
    : dir(std::move(cache_dir)), byteCap(max_bytes)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("disk cache: cannot create '%s': %s", dir.c_str(),
             ec.message().c_str());
    }
    indexExisting();
}

std::string
DiskResultCache::pathFor(std::uint64_t hash) const
{
    return dir + "/" + hashHex(hash) + ".json";
}

void
DiskResultCache::indexExisting()
{
    // Recency order across restarts comes from file mtimes: sort the
    // survivors oldest-first and hand out stamps in that order.
    struct Found
    {
        std::uint64_t hash;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        const auto hash = hashFromName(de.path().filename().string());
        if (!hash)
            continue;
        Found f;
        f.hash = *hash;
        f.bytes = de.file_size(ec);
        f.mtime = de.last_write_time(ec);
        found.push_back(f);
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.hash < b.hash;
              });
    for (const Found &f : found) {
        index[f.hash] = Entry{f.bytes, nextStamp++};
        totalBytes += f.bytes;
    }
}

std::optional<system::RunResult>
DiskResultCache::lookup(std::uint64_t hash)
{
    PROF_SCOPE("harness", "cache.disk.lookup");
    {
        std::scoped_lock lock(mtx);
        ++lookupCount;
        if (index.find(hash) == index.end())
            return std::nullopt;
    }

    const std::string path = pathFor(hash);
    std::string parse_error;
    const auto doc = json::parseJsonFile(path, &parse_error);
    std::optional<system::RunResult> result;
    std::string err;
    if (doc) {
        const json::JsonValue *version = doc->get("version");
        const json::JsonValue *stored = doc->get("hash");
        const json::JsonValue *body = doc->get("result");
        if (version && version->isNumber() &&
            static_cast<unsigned>(version->asNumber()) ==
                formatVersion &&
            stored && stored->isString() &&
            stored->asString() == hashHex(hash) && body) {
            result = resultFromWireJson(*body, &err);
        }
    }

    std::scoped_lock lock(mtx);
    const auto it = index.find(hash);
    if (it == index.end())
        return std::nullopt; // evicted while parsing
    if (!result) {
        // Stale version, foreign document, or torn write from a
        // pre-atomic-rename tool: drop the entry and report a miss so
        // the caller re-simulates and overwrites it.
        totalBytes -= std::min(totalBytes, it->second.bytes);
        index.erase(it);
        std::error_code ec;
        fs::remove(path, ec);
        return std::nullopt;
    }
    ++hitCount;
    it->second.stamp = nextStamp++;
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return result;
}

void
DiskResultCache::store(std::uint64_t hash,
                       const system::RunResult &result)
{
    PROF_SCOPE("harness", "cache.disk.store");
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("version").value(formatVersion);
    w.key("hash").value(hashHex(hash));
    w.key("result");
    writeResultWireJson(w, result);
    w.endObject();
    os << '\n';
    const std::string body = os.str();

    const std::string path = pathFor(hash);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("disk cache: cannot write '%s'", tmp.c_str());
            return;
        }
        out << body;
        if (!out.flush()) {
            warn("disk cache: short write to '%s'", tmp.c_str());
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("disk cache: cannot publish '%s': %s", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return;
    }

    std::scoped_lock lock(mtx);
    const auto it = index.find(hash);
    if (it != index.end())
        totalBytes -= std::min(totalBytes, it->second.bytes);
    index[hash] = Entry{body.size(), nextStamp++};
    totalBytes += body.size();
    evictLocked();
}

void
DiskResultCache::evictLocked()
{
    while (byteCap > 0 && totalBytes > byteCap && index.size() > 1) {
        auto coldest = index.begin();
        for (auto it = index.begin(); it != index.end(); ++it) {
            if (it->second.stamp < coldest->second.stamp)
                coldest = it;
        }
        std::error_code ec;
        fs::remove(pathFor(coldest->first), ec);
        totalBytes -= std::min(totalBytes, coldest->second.bytes);
        index.erase(coldest);
        ++evictCount;
    }
}

CacheStats
DiskResultCache::stats() const
{
    std::scoped_lock lock(mtx);
    CacheStats s;
    s.entries = index.size();
    s.bytes = totalBytes;
    s.hits = hitCount;
    s.lookups = lookupCount;
    s.evictions = evictCount;
    return s;
}

} // namespace capcheck::harness
