#include "harness/result_json.hh"

#include <sstream>

namespace capcheck::harness
{

void
writeConfigJson(json::JsonWriter &w, const system::SocConfig &cfg)
{
    w.beginObject();
    w.key("mode").value(system::systemModeName(cfg.mode));
    w.key("provenance").value(
        capchecker::provenanceName(cfg.provenance));
    w.key("numInstances").value(cfg.numInstances);
    w.key("capTableEntries").value(cfg.capTableEntries);
    w.key("checkCycles").value(std::uint64_t{cfg.checkCycles});
    w.key("perAccelCheckers").value(cfg.perAccelCheckers);
    w.key("capCacheEntries").value(cfg.capCacheEntries);
    w.key("capCacheWalkCycles")
        .value(std::uint64_t{cfg.capCacheWalkCycles});
    w.key("memLatency").value(std::uint64_t{cfg.memLatency});
    w.key("memBytes").value(std::uint64_t{cfg.memBytes});
    w.key("xbarMaxBurst").value(cfg.xbarMaxBurst);
    w.key("guardBytes").value(std::uint64_t{cfg.guardBytes});
    w.key("collectStats").value(cfg.collectStats);
    w.key("seed").value(std::uint64_t{cfg.seed});
    if (!cfg.topologyFile.empty())
        w.key("topologyFile").value(cfg.topologyFile);
    w.endObject();
}

namespace
{

void
writeResultFields(json::JsonWriter &w, const system::RunResult &r)
{
    w.key("benchmark").value(r.benchmark);
    w.key("mode").value(system::systemModeName(r.mode));
    w.key("numTasks").value(r.numTasks);
    w.key("totalCycles").value(std::uint64_t{r.totalCycles});
    w.key("driverAllocCycles")
        .value(std::uint64_t{r.driverAllocCycles});
    w.key("kernelCycles").value(std::uint64_t{r.kernelCycles});
    w.key("driverDeallocCycles")
        .value(std::uint64_t{r.driverDeallocCycles});
    w.key("initCycles").value(std::uint64_t{r.initCycles});
    w.key("functionallyCorrect").value(r.functionallyCorrect);
    w.key("exceptions").value(r.exceptions);
    w.key("dmaBeats").value(std::uint64_t{r.dmaBeats});
    w.key("peakTableEntries")
        .value(std::uint64_t{r.peakTableEntries});
    if (!r.statsJson.empty())
        w.key("stats").rawValue(r.statsJson);
}

} // namespace

void
writeRunJson(json::JsonWriter &w, const RunRequest &request,
             const system::RunResult &result)
{
    w.beginObject();
    w.key("requestHash").value(request.hashHex());
    w.key("benchmarks").beginArray();
    for (const std::string &b : request.benchmarks)
        w.value(b);
    w.endArray();
    w.key("numTasks").value(request.numTasks);
    w.key("config");
    writeConfigJson(w, request.config);
    w.key("result").beginObject();
    writeResultFields(w, result);
    w.endObject();
    w.endObject();
}

std::string
runJson(const RunRequest &request, const system::RunResult &result)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    writeRunJson(w, request, result);
    os << '\n';
    return os.str();
}

double
SweepProfile::utilization() const
{
    if (workers == 0 || sweepWallMillis <= 0)
        return 0;
    return simWallMillis / (sweepWallMillis * workers);
}

std::string
manifestJson(const std::string &sweep_name,
             const std::vector<RunOutcome> &outcomes,
             const SweepProfile *profile)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("sweep").value(sweep_name);
    w.key("runs").value(std::uint64_t{outcomes.size()});
    w.key("entries").beginArray();
    for (const RunOutcome &o : outcomes) {
        w.beginObject();
        w.key("requestHash").value(o.request.hashHex());
        w.key("label").value(o.request.label());
        w.key("cacheHit").value(o.cacheHit);
        w.key("totalCycles")
            .value(std::uint64_t{o.result.totalCycles});
        w.key("functionallyCorrect")
            .value(o.result.functionallyCorrect);
        w.key("exceptions").value(o.result.exceptions);
        if (profile)
            w.key("wallMillis").value(o.wallMillis);
        w.endObject();
    }
    w.endArray();
    if (profile) {
        w.key("profile").beginObject();
        w.key("workers").value(profile->workers);
        w.key("executed").value(std::uint64_t{profile->executed});
        w.key("cacheHits").value(std::uint64_t{profile->cacheHits});
        w.key("simWallMillis").value(profile->simWallMillis);
        w.key("sweepWallMillis").value(profile->sweepWallMillis);
        w.key("workerUtilization").value(profile->utilization());
        w.endObject();
    }
    w.endObject();
    os << '\n';
    return os.str();
}

} // namespace capcheck::harness
