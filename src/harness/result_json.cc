#include "harness/result_json.hh"

#include <sstream>

namespace capcheck::harness
{

void
writeConfigJson(json::JsonWriter &w, const system::SocConfig &cfg)
{
    w.beginObject();
    w.key("mode").value(system::systemModeName(cfg.mode));
    w.key("provenance").value(
        capchecker::provenanceName(cfg.provenance));
    w.key("numInstances").value(cfg.numInstances);
    w.key("capTableEntries").value(cfg.capTableEntries);
    w.key("checkCycles").value(std::uint64_t{cfg.checkCycles});
    w.key("perAccelCheckers").value(cfg.perAccelCheckers);
    w.key("capCacheEntries").value(cfg.capCacheEntries);
    w.key("capCacheWalkCycles")
        .value(std::uint64_t{cfg.capCacheWalkCycles});
    w.key("memLatency").value(std::uint64_t{cfg.memLatency});
    w.key("memBytes").value(std::uint64_t{cfg.memBytes});
    w.key("xbarMaxBurst").value(cfg.xbarMaxBurst);
    w.key("guardBytes").value(std::uint64_t{cfg.guardBytes});
    w.key("collectStats").value(cfg.collectStats);
    w.key("seed").value(std::uint64_t{cfg.seed});
    if (!cfg.topologyFile.empty())
        w.key("topologyFile").value(cfg.topologyFile);
    if (cfg.simKernel != sim::SimKernel::ref)
        w.key("simKernel").value(sim::simKernelName(cfg.simKernel));
    w.endObject();
}

namespace
{

void
writeResultFields(json::JsonWriter &w, const system::RunResult &r)
{
    w.key("benchmark").value(r.benchmark);
    w.key("mode").value(system::systemModeName(r.mode));
    w.key("numTasks").value(r.numTasks);
    w.key("totalCycles").value(std::uint64_t{r.totalCycles});
    w.key("driverAllocCycles")
        .value(std::uint64_t{r.driverAllocCycles});
    w.key("kernelCycles").value(std::uint64_t{r.kernelCycles});
    w.key("driverDeallocCycles")
        .value(std::uint64_t{r.driverDeallocCycles});
    w.key("initCycles").value(std::uint64_t{r.initCycles});
    w.key("functionallyCorrect").value(r.functionallyCorrect);
    w.key("exceptions").value(r.exceptions);
    w.key("dmaBeats").value(std::uint64_t{r.dmaBeats});
    w.key("peakTableEntries")
        .value(std::uint64_t{r.peakTableEntries});
    if (!r.statsJson.empty())
        w.key("stats").rawValue(r.statsJson);
}

} // namespace

void
writeRunJson(json::JsonWriter &w, const RunRequest &request,
             const system::RunResult &result)
{
    w.beginObject();
    w.key("requestHash").value(request.hashHex());
    w.key("benchmarks").beginArray();
    for (const std::string &b : request.benchmarks)
        w.value(b);
    w.endArray();
    w.key("numTasks").value(request.numTasks);
    w.key("config");
    writeConfigJson(w, request.config);
    w.key("result").beginObject();
    writeResultFields(w, result);
    w.endObject();
    w.endObject();
}

std::string
runJson(const RunRequest &request, const system::RunResult &result)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    writeRunJson(w, request, result);
    os << '\n';
    return os.str();
}

namespace
{

/** Emit the cost tables writeConfigJson() leaves implicit. */
void
writeCostsJson(json::JsonWriter &w, const system::SocConfig &cfg)
{
    const CpuCostParams &cpu = cfg.cpuCosts;
    w.key("cpuCosts").beginObject();
    w.key("intOp").value(std::uint64_t{cpu.intOp});
    w.key("fpOp").value(std::uint64_t{cpu.fpOp});
    w.key("loadHit").value(std::uint64_t{cpu.loadHit});
    w.key("storeHit").value(std::uint64_t{cpu.storeHit});
    w.key("missPenalty").value(std::uint64_t{cpu.missPenalty});
    w.key("copyPerWord").value(std::uint64_t{cpu.copyPerWord});
    w.key("cheriTagMissInterval").value(cpu.cheriTagMissInterval);
    w.key("cheriCapSetup").value(std::uint64_t{cpu.cheriCapSetup});
    w.endObject();

    const driver::DriverCostParams &drv = cfg.driverCosts;
    w.key("driverCosts").beginObject();
    w.key("mallocCall").value(std::uint64_t{drv.mallocCall});
    w.key("freeCall").value(std::uint64_t{drv.freeCall});
    w.key("controlRegWrite").value(std::uint64_t{drv.controlRegWrite});
    w.key("capDerive").value(std::uint64_t{drv.capDerive});
    w.key("pointerSetup").value(std::uint64_t{drv.pointerSetup});
    w.key("iommuMapPerPage").value(std::uint64_t{drv.iommuMapPerPage});
    w.key("iommuUnmapPerPage")
        .value(std::uint64_t{drv.iommuUnmapPerPage});
    w.key("iopmpRegionSetup")
        .value(std::uint64_t{drv.iopmpRegionSetup});
    w.key("scrubPerWord").value(std::uint64_t{drv.scrubPerWord});
    w.endObject();
}

/**
 * Typed field extraction for the parse direction. Each reader records
 * the first missing/ill-typed key into *err and returns a default, so
 * callers can fail once at the end with a precise message.
 */
struct FieldReader
{
    const json::JsonValue &v;
    std::string *err;

    void
    fail(const std::string &key, const char *want) const
    {
        if (err && err->empty())
            *err = "field '" + key + "': expected " + want;
    }

    std::uint64_t
    u64(const std::string &key)
    {
        const json::JsonValue *f = v.get(key);
        if (!f || !f->isNumber()) {
            fail(key, "number");
            return 0;
        }
        return static_cast<std::uint64_t>(f->asNumber());
    }

    unsigned u32(const std::string &key)
    {
        return static_cast<unsigned>(u64(key));
    }

    bool
    boolean(const std::string &key)
    {
        const json::JsonValue *f = v.get(key);
        if (!f || !f->isBool()) {
            fail(key, "bool");
            return false;
        }
        return f->asBool();
    }

    std::string
    str(const std::string &key)
    {
        const json::JsonValue *f = v.get(key);
        if (!f || !f->isString()) {
            fail(key, "string");
            return {};
        }
        return f->asString();
    }

    /** Optional string: absent key reads as "". */
    std::string
    optStr(const std::string &key)
    {
        const json::JsonValue *f = v.get(key);
        if (!f)
            return {};
        if (!f->isString()) {
            fail(key, "string");
            return {};
        }
        return f->asString();
    }
};

} // namespace

void
writeRequestWireJson(json::JsonWriter &w, const RunRequest &request)
{
    w.beginObject();
    w.key("hash").value(request.hashHex());
    w.key("benchmarks").beginArray();
    for (const std::string &b : request.benchmarks)
        w.value(b);
    w.endArray();
    w.key("numTasks").value(request.numTasks);
    w.key("config").beginObject();
    const system::SocConfig &cfg = request.config;
    w.key("mode").value(system::systemModeName(cfg.mode));
    w.key("provenance").value(
        capchecker::provenanceName(cfg.provenance));
    w.key("numInstances").value(cfg.numInstances);
    w.key("capTableEntries").value(cfg.capTableEntries);
    w.key("checkCycles").value(std::uint64_t{cfg.checkCycles});
    w.key("perAccelCheckers").value(cfg.perAccelCheckers);
    w.key("capCacheEntries").value(cfg.capCacheEntries);
    w.key("capCacheWalkCycles")
        .value(std::uint64_t{cfg.capCacheWalkCycles});
    w.key("memLatency").value(std::uint64_t{cfg.memLatency});
    w.key("memBytes").value(std::uint64_t{cfg.memBytes});
    w.key("xbarMaxBurst").value(cfg.xbarMaxBurst);
    w.key("guardBytes").value(std::uint64_t{cfg.guardBytes});
    w.key("collectStats").value(cfg.collectStats);
    w.key("seed").value(std::uint64_t{cfg.seed});
    if (!cfg.topologyFile.empty())
        w.key("topologyFile").value(cfg.topologyFile);
    if (cfg.simKernel != sim::SimKernel::ref)
        w.key("simKernel").value(sim::simKernelName(cfg.simKernel));
    writeCostsJson(w, cfg);
    w.endObject();
    w.endObject();
}

std::optional<RunRequest>
requestFromWireJson(const json::JsonValue &v, std::string *error)
{
    std::string err;
    if (!v.isObject()) {
        err = "request: expected object";
    }
    RunRequest req;
    if (err.empty()) {
        const json::JsonValue *benchmarks = v.get("benchmarks");
        if (!benchmarks || !benchmarks->isArray() ||
            benchmarks->elements().empty()) {
            err = "field 'benchmarks': expected non-empty array";
        } else {
            for (const json::JsonValue &b : benchmarks->elements()) {
                if (!b.isString()) {
                    err = "field 'benchmarks': expected strings";
                    break;
                }
                req.benchmarks.push_back(b.asString());
            }
        }
    }
    const json::JsonValue *cfg =
        err.empty() ? v.get("config") : nullptr;
    if (err.empty() && (!cfg || !cfg->isObject()))
        err = "field 'config': expected object";
    if (err.empty()) {
        FieldReader top{v, &err};
        req.numTasks = top.u32("numTasks");

        FieldReader c{*cfg, &err};
        system::SocConfig &sc = req.config;
        if (!system::systemModeFromName(c.str("mode"), sc.mode))
            err = "field 'mode': unknown system mode";
        if (err.empty() &&
            !capchecker::provenanceFromName(c.str("provenance"),
                                            sc.provenance))
            err = "field 'provenance': unknown provenance";
        sc.numInstances = c.u32("numInstances");
        sc.capTableEntries = c.u32("capTableEntries");
        sc.checkCycles = c.u64("checkCycles");
        sc.perAccelCheckers = c.boolean("perAccelCheckers");
        sc.capCacheEntries = c.u32("capCacheEntries");
        sc.capCacheWalkCycles = c.u64("capCacheWalkCycles");
        sc.memLatency = c.u64("memLatency");
        sc.memBytes = c.u64("memBytes");
        sc.xbarMaxBurst = c.u32("xbarMaxBurst");
        sc.guardBytes = c.u64("guardBytes");
        sc.collectStats = c.boolean("collectStats");
        sc.seed = c.u64("seed");
        sc.topologyFile = c.optStr("topologyFile");
        // Absent = ref (the field is only written when it differs).
        const std::string kernel = c.optStr("simKernel");
        if (!kernel.empty() &&
            !sim::simKernelFromName(kernel, sc.simKernel) &&
            err.empty()) {
            err = "field 'simKernel': unknown kernel '" + kernel +
                  "' (choices: " + sim::simKernelChoices() + ")";
        }

        const json::JsonValue *cpu = cfg->get("cpuCosts");
        if (!cpu || !cpu->isObject()) {
            if (err.empty())
                err = "field 'cpuCosts': expected object";
        } else {
            FieldReader r{*cpu, &err};
            CpuCostParams &p = sc.cpuCosts;
            p.intOp = r.u64("intOp");
            p.fpOp = r.u64("fpOp");
            p.loadHit = r.u64("loadHit");
            p.storeHit = r.u64("storeHit");
            p.missPenalty = r.u64("missPenalty");
            p.copyPerWord = r.u64("copyPerWord");
            p.cheriTagMissInterval = r.u32("cheriTagMissInterval");
            p.cheriCapSetup = r.u64("cheriCapSetup");
        }
        const json::JsonValue *drv = cfg->get("driverCosts");
        if (!drv || !drv->isObject()) {
            if (err.empty())
                err = "field 'driverCosts': expected object";
        } else {
            FieldReader r{*drv, &err};
            driver::DriverCostParams &p = sc.driverCosts;
            p.mallocCall = r.u64("mallocCall");
            p.freeCall = r.u64("freeCall");
            p.controlRegWrite = r.u64("controlRegWrite");
            p.capDerive = r.u64("capDerive");
            p.pointerSetup = r.u64("pointerSetup");
            p.iommuMapPerPage = r.u64("iommuMapPerPage");
            p.iommuUnmapPerPage = r.u64("iommuUnmapPerPage");
            p.iopmpRegionSetup = r.u64("iopmpRegionSetup");
            p.scrubPerWord = r.u64("scrubPerWord");
        }
    }
    if (!err.empty()) {
        if (error)
            *error = err;
        return std::nullopt;
    }
    return req;
}

void
writeResultWireJson(json::JsonWriter &w,
                    const system::RunResult &result)
{
    w.beginObject();
    w.key("benchmark").value(result.benchmark);
    w.key("mode").value(system::systemModeName(result.mode));
    w.key("numTasks").value(result.numTasks);
    w.key("totalCycles").value(std::uint64_t{result.totalCycles});
    w.key("driverAllocCycles")
        .value(std::uint64_t{result.driverAllocCycles});
    w.key("kernelCycles").value(std::uint64_t{result.kernelCycles});
    w.key("driverDeallocCycles")
        .value(std::uint64_t{result.driverDeallocCycles});
    w.key("initCycles").value(std::uint64_t{result.initCycles});
    w.key("functionallyCorrect").value(result.functionallyCorrect);
    w.key("exceptions").value(result.exceptions);
    w.key("dmaBeats").value(std::uint64_t{result.dmaBeats});
    w.key("peakTableEntries")
        .value(std::uint64_t{result.peakTableEntries});
    // As *strings* (escaped), not spliced raw: the stats dumps must
    // survive the round trip byte-for-byte, and re-parsing spliced
    // JSON would re-format numbers.
    w.key("statsText").value(result.statsText);
    w.key("statsJson").value(result.statsJson);
    w.endObject();
}

std::optional<system::RunResult>
resultFromWireJson(const json::JsonValue &v, std::string *error)
{
    std::string err;
    if (!v.isObject())
        err = "result: expected object";
    system::RunResult r;
    if (err.empty()) {
        FieldReader f{v, &err};
        r.benchmark = f.str("benchmark");
        if (!system::systemModeFromName(f.str("mode"), r.mode))
            err = "field 'mode': unknown system mode";
        r.numTasks = f.u32("numTasks");
        r.totalCycles = f.u64("totalCycles");
        r.driverAllocCycles = f.u64("driverAllocCycles");
        r.kernelCycles = f.u64("kernelCycles");
        r.driverDeallocCycles = f.u64("driverDeallocCycles");
        r.initCycles = f.u64("initCycles");
        r.functionallyCorrect = f.boolean("functionallyCorrect");
        r.exceptions = f.u32("exceptions");
        r.dmaBeats = f.u64("dmaBeats");
        r.peakTableEntries = f.u64("peakTableEntries");
        r.statsText = f.str("statsText");
        r.statsJson = f.str("statsJson");
    }
    if (!err.empty()) {
        if (error)
            *error = err;
        return std::nullopt;
    }
    return r;
}

double
SweepProfile::utilization() const
{
    if (workers == 0 || sweepWallMillis <= 0)
        return 0;
    return simWallMillis / (sweepWallMillis * workers);
}

std::string
manifestJson(const std::string &sweep_name,
             const std::vector<RunOutcome> &outcomes,
             const SweepProfile *profile)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("sweep").value(sweep_name);
    w.key("runs").value(std::uint64_t{outcomes.size()});
    w.key("entries").beginArray();
    for (const RunOutcome &o : outcomes) {
        w.beginObject();
        w.key("requestHash").value(o.request.hashHex());
        w.key("label").value(o.request.label());
        w.key("cacheHit").value(o.cacheHit);
        w.key("totalCycles")
            .value(std::uint64_t{o.result.totalCycles});
        w.key("functionallyCorrect")
            .value(o.result.functionallyCorrect);
        w.key("exceptions").value(o.result.exceptions);
        if (profile)
            w.key("wallMillis").value(o.wallMillis);
        w.endObject();
    }
    w.endArray();
    if (profile) {
        w.key("profile").beginObject();
        w.key("workers").value(profile->workers);
        w.key("executed").value(std::uint64_t{profile->executed});
        w.key("cacheHits").value(std::uint64_t{profile->cacheHits});
        w.key("simWallMillis").value(profile->simWallMillis);
        w.key("sweepWallMillis").value(profile->sweepWallMillis);
        w.key("runWall").beginObject();
        w.key("minMillis").value(profile->runWallMinMillis);
        w.key("p50Millis").value(profile->runWallP50Millis);
        w.key("maxMillis").value(profile->runWallMaxMillis);
        w.endObject();
        w.key("workerUtilization").value(profile->utilization());
        const auto writeCacheStats = [&w](const CacheStats &c) {
            w.beginObject();
            w.key("entries").value(std::uint64_t{c.entries});
            w.key("bytes").value(std::uint64_t{c.bytes});
            w.key("hits").value(std::uint64_t{c.hits});
            w.key("lookups").value(std::uint64_t{c.lookups});
            w.key("evictions").value(std::uint64_t{c.evictions});
            w.endObject();
        };
        w.key("cache").beginObject();
        w.key("memory");
        writeCacheStats(profile->memCache);
        if (profile->diskCachePresent) {
            w.key("disk");
            writeCacheStats(profile->diskCache);
        }
        w.endObject();
        w.endObject();
    }
    w.endObject();
    os << '\n';
    return os.str();
}

} // namespace capcheck::harness
