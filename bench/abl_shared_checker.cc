/**
 * @file
 * Ablation (Section 5.2.1): one shared CapChecker vs an exclusive
 * CapChecker per accelerator. On the prototype's single-beat
 * interconnect the paper argues distribution "only increases the area
 * and does not bring performance improvement" — this harness measures
 * both sides of that claim.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"
#include "model/area_power.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader(
        "Ablation: shared vs per-accelerator CapCheckers",
        "Section 5.2.1");

    TextTable table({"Benchmark", "Shared cycles", "Per-accel cycles",
                     "Perf delta", "Shared LUTs", "Per-accel LUTs"});

    const auto shared_luts = model::AreaPowerModel::capCheckerLuts(256);
    // Eight exclusive checkers sized for one task's capabilities each.
    const auto split_luts =
        8 * model::AreaPowerModel::capCheckerLuts(32);

    for (const std::string name :
         {"gemm_ncubed", "bfs_bulk", "backprop", "stencil2d"}) {
        system::SocConfig cfg;
        cfg.mode = SystemMode::ccpuCaccel;
        const auto shared = system::SocSystem(cfg).runBenchmark(name);

        cfg.perAccelCheckers = true;
        cfg.capTableEntries = 32; // per-checker table
        const auto split = system::SocSystem(cfg).runBenchmark(name);

        table.addRow({name, std::to_string(shared.totalCycles),
                      std::to_string(split.totalCycles),
                      fmtPercent(split.overheadVs(shared)),
                      std::to_string(shared_luts),
                      std::to_string(split_luts)});
    }
    table.print(std::cout);

    std::cout << "\nExpectation: near-zero performance difference (the "
                 "single-beat interconnect is the bottleneck either "
                 "way); the distributed configuration costs additional "
                 "area.\n";
    return 0;
}
