/**
 * @file
 * Ablation (Section 5.2.1): one shared CapChecker vs an exclusive
 * CapChecker per accelerator. On the prototype's single-beat
 * interconnect the paper argues distribution "only increases the area
 * and does not bring performance improvement" — this harness measures
 * both sides of that claim.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"
#include "model/area_power.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader(
        "Ablation: shared vs per-accelerator CapCheckers",
        "Section 5.2.1");

    const std::vector<std::string> names = {"gemm_ncubed", "bfs_bulk",
                                            "backprop", "stencil2d"};

    std::vector<harness::RunRequest> requests;
    for (const std::string &name : names) {
        requests.push_back(harness::RunRequest::single(
            name, bench::modeConfig(SystemMode::ccpuCaccel)));
        requests.push_back(harness::RunRequest::single(
            name, system::SocConfigBuilder()
                      .mode(SystemMode::ccpuCaccel)
                      .perAccelCheckers(true)
                      .capTableEntries(32) // per-checker table
                      .build()));
    }

    const auto outcomes = runner.run(requests, "abl_shared_checker");

    TextTable table({"Benchmark", "Shared cycles", "Per-accel cycles",
                     "Perf delta", "Shared LUTs", "Per-accel LUTs"});

    const auto shared_luts = model::AreaPowerModel::capCheckerLuts(256);
    // Eight exclusive checkers sized for one task's capabilities each.
    const auto split_luts =
        8 * model::AreaPowerModel::capCheckerLuts(32);

    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &shared = outcomes[2 * i].result;
        const auto &split = outcomes[2 * i + 1].result;

        table.addRow({names[i], std::to_string(shared.totalCycles),
                      std::to_string(split.totalCycles),
                      fmtPercent(split.overheadVs(shared)),
                      std::to_string(shared_luts),
                      std::to_string(split_luts)});
    }
    table.print(std::cout);

    std::cout << "\nExpectation: near-zero performance difference (the "
                 "single-beat interconnect is the bottleneck either "
                 "way); the distributed configuration costs additional "
                 "area.\n";
    return 0;
}
