/**
 * @file
 * Ablation: check-pipeline depth. Sweeps the CapChecker's per-request
 * latency from 1 to 8 cycles on a latency-sensitive (bfs_bulk) and a
 * throughput-bound (gemm_ncubed) benchmark — quantifying how much the
 * paper's single-cycle pipelined check matters, e.g. when a cache in
 * front of a larger in-memory table would lengthen the check path.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader("Ablation: CapChecker pipeline depth",
                       "Section 5.2.3 (table caching discussion)");

    const std::vector<std::string> names = {"bfs_bulk", "gemm_ncubed"};
    const std::vector<Cycles> latencies = {1, 2, 4, 8};

    std::vector<harness::RunRequest> requests;
    for (const std::string &name : names) {
        requests.push_back(harness::RunRequest::single(
            name, bench::modeConfig(SystemMode::ccpuAccel)));
        for (const Cycles latency : latencies) {
            requests.push_back(harness::RunRequest::single(
                name, system::SocConfigBuilder()
                          .mode(SystemMode::ccpuCaccel)
                          .checkCycles(latency)
                          .build()));
        }
    }

    const auto outcomes = runner.run(requests, "abl_check_latency");

    TextTable table({"Benchmark", "Check cycles", "Total cycles",
                     "Overhead vs no checker"});

    const std::size_t stride = 1 + latencies.size();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &base = outcomes[i * stride].result;
        for (std::size_t l = 0; l < latencies.size(); ++l) {
            const auto &with = outcomes[i * stride + 1 + l].result;
            table.addRow({names[i], std::to_string(latencies[l]),
                          std::to_string(with.totalCycles),
                          fmtPercent(with.overheadVs(base))});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpectation: deeper check pipelines barely affect "
                 "throughput-bound benchmarks but hurt dependent-access "
                 "(latency-bound) ones linearly.\n";
    return 0;
}
