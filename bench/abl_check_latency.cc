/**
 * @file
 * Ablation: check-pipeline depth. Sweeps the CapChecker's per-request
 * latency from 1 to 8 cycles on a latency-sensitive (bfs_bulk) and a
 * throughput-bound (gemm_ncubed) benchmark — quantifying how much the
 * paper's single-cycle pipelined check matters, e.g. when a cache in
 * front of a larger in-memory table would lengthen the check path.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader("Ablation: CapChecker pipeline depth",
                       "Section 5.2.3 (table caching discussion)");

    TextTable table({"Benchmark", "Check cycles", "Total cycles",
                     "Overhead vs no checker"});

    for (const std::string name : {"bfs_bulk", "gemm_ncubed"}) {
        system::SocConfig cfg;
        cfg.mode = SystemMode::ccpuAccel;
        const auto base = system::SocSystem(cfg).runBenchmark(name);

        for (const Cycles latency : {1u, 2u, 4u, 8u}) {
            cfg.mode = SystemMode::ccpuCaccel;
            cfg.checkCycles = latency;
            const auto with = system::SocSystem(cfg).runBenchmark(name);
            table.addRow({name, std::to_string(latency),
                          std::to_string(with.totalCycles),
                          fmtPercent(with.overheadVs(base))});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpectation: deeper check pipelines barely affect "
                 "throughput-bound benchmarks but hurt dependent-access "
                 "(latency-bound) ones linearly.\n";
    return 0;
}
