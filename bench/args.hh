/**
 * @file
 * The one command-line parser for every bench harness. All sweep
 * knobs — parallelism, caching, JSON output, the observability
 * artefact selectors, and the service-mode backend selectors
 * (--server, --cache-dir) — land in a single harness::SweepOptions,
 * so a flag parsed here configures SweepRunner, the capcheckd client
 * and the daemon identically. Environment defaults (CAPCHECK_SERVER,
 * CAPCHECK_CACHE_DIR, CAPCHECK_CACHE_MAX_BYTES) are applied first;
 * explicit flags win.
 */

#ifndef CAPCHECK_BENCH_ARGS_HH
#define CAPCHECK_BENCH_ARGS_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/trace.hh"
#include "harness/sweep_options.hh"
#include "sim/kernels/registry.hh"
#include "system/topology.hh"

namespace capcheck::bench
{

namespace detail
{
/**
 * The --topology file from the last parseOptions() call. modeConfig()
 * folds it into every SocConfig so one flag retargets a whole
 * harness's sweep without touching each request-building loop.
 */
inline std::string cliTopologyFile; // NOLINT(cert-err58-cpp)
/**
 * True when the loaded file forces a checker scheme ("capchecker" /
 * "checker_bank" rather than "auto"): such a shape can only elaborate
 * under modes with a CHERI CPU, so modeConfig() keeps the builtin
 * shape for the non-CHERI points instead of fataling mid-sweep.
 */
inline bool cliTopologyNeedsChecker = false;
/**
 * The --kernel choice from the last parseOptions() call; modeConfig()
 * folds it into every SocConfig, so one flag switches a whole sweep
 * between the reference and fast simulation kernels (or the
 * differential compare harness).
 */
inline sim::SimKernel cliKernel = sim::SimKernel::ref;
} // namespace detail

/** The options every bench harness accepts. */
struct BenchOptions
{
    /** Everything the sweep backends consume, parsed in one place. */
    harness::SweepOptions sweep;

    bool quiet = false; ///< --quiet silences progress lines

    /** --topology FILE: JSON platform topology for every run. */
    std::string topology;
    /** --dump-topology[=MODE]: print canonical topology JSON, exit. */
    bool dumpTopology = false;
    /** Builtin dumped when no --topology file names one. */
    std::string dumpTopologyMode = "ccpu+caccel";

    /** --kernel ref|fast|compare: simulation kernel for every run. */
    sim::SimKernel kernel = sim::SimKernel::ref;
};

inline void
printUsage(const char *argv0)
{
    std::cout
        << "usage: " << argv0
        << " [--jobs N] [--json-dir DIR] [--no-cache] [--quiet]\n"
        << "       [--server SOCK] [--cache-dir DIR]"
        << " [--cache-max-bytes N] [--trace-id ID]\n"
        << "       [--trace-out DIR] [--sample-interval N]"
        << " [--audit-log DIR]\n"
        << "       [--flight-out DIR] [--latency-json DIR] [--topn N]"
        << " [--debug-flags LIST]\n"
        << "       [--prof-out DIR] [--prof-folded DIR]\n"
        << "       [--topology FILE] [--dump-topology]"
        << " [--kernel ref|fast|compare]\n"
        << "  --jobs N            worker threads (default: all cores)\n"
        << "  --json-dir DIR      write run-<hash>.json + manifest\n"
        << "  --no-cache          re-simulate repeated requests\n"
        << "  --quiet             no per-run progress lines on stderr\n"
        << "  --server SOCK       submit to the capcheckd daemon at\n"
        << "                      this Unix socket instead of\n"
        << "                      simulating in-process (or set\n"
        << "                      CAPCHECK_SERVER)\n"
        << "  --cache-dir DIR     disk-backed result cache shared\n"
        << "                      across runs and restarts (or set\n"
        << "                      CAPCHECK_CACHE_DIR)\n"
        << "  --cache-max-bytes N LRU byte cap of the disk cache\n"
        << "                      (default 1 GiB, 0 = unbounded)\n"
        << "  --trace-id ID       trace id sent with remote submits\n"
        << "                      so daemon-side spans and JSONL log\n"
        << "                      lines join against this run (or set\n"
        << "                      CAPCHECK_TRACE_ID)\n"
        << "  --trace-out DIR     write run-<hash>.trace.json Chrome\n"
        << "                      trace timelines (Perfetto-loadable)\n"
        << "  --sample-interval N snapshot stats every N cycles into\n"
        << "                      run-<hash>.samples.json\n"
        << "  --audit-log DIR     write run-<hash>.audit.jsonl\n"
        << "                      security audit logs\n"
        << "  --flight-out DIR    write run-<hash>.flights.json tables\n"
        << "                      of the slowest DMA requests with\n"
        << "                      per-hop latency breakdowns\n"
        << "  --latency-json DIR  write run-<hash>.latency.json log2\n"
        << "                      latency histograms (p50/p95/p99) and\n"
        << "                      per-component cycle attribution\n"
        << "  --topn N            slowest flights kept per run (10)\n"
        << "  --prof-out DIR      write run-<hash>.prof.json host-time\n"
        << "                      profiles (per-domain self/total nanos\n"
        << "                      and share-of-run; read with 'capstat\n"
        << "                      prof'). Host wall-clock: enabling it\n"
        << "                      never changes the simulated outputs.\n"
        << "                      In-process runs only (no --server)\n"
        << "  --prof-folded DIR   write run-<hash>.folded stacks for\n"
        << "                      flamegraph.pl / speedscope\n"
        << "  --topology FILE     load the platform topology from a\n"
        << "                      JSON file instead of the builtin\n"
        << "                      shape for each mode\n"
        << "  --dump-topology     print the (builtin or loaded)\n"
        << "                      topology as canonical JSON and exit\n"
        << "  --kernel NAME       simulation kernel: ref (default),\n"
        << "                      fast (hash-indexed tables, bucketed\n"
        << "                      event queue, retry-driven replay;\n"
        << "                      bit-identical results), or compare\n"
        << "                      (run both, fail on any divergence)\n"
        << "  --debug-flags LIST  enable debug flags (? lists them)\n";
}

inline BenchOptions
parseOptions(int argc, char **argv)
{
    // Honour CAPCHECK_DEBUG in every harness, not just the examples.
    trace::DebugFlag::applyEnvironment();

    BenchOptions opts;
    opts.sweep = harness::SweepOptions::fromEnvironment();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs an argument\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            opts.sweep.jobs =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.sweep.jobs = static_cast<unsigned>(
                std::atoi(arg.c_str() + std::strlen("--jobs=")));
        } else if (arg == "--json-dir") {
            opts.sweep.jsonDir = next();
        } else if (arg.rfind("--json-dir=", 0) == 0) {
            opts.sweep.jsonDir =
                arg.substr(std::strlen("--json-dir="));
        } else if (arg == "--no-cache") {
            opts.sweep.cacheEnabled = false;
        } else if (arg == "--server") {
            opts.sweep.serverSocket = next();
        } else if (arg.rfind("--server=", 0) == 0) {
            opts.sweep.serverSocket =
                arg.substr(std::strlen("--server="));
        } else if (arg == "--cache-dir") {
            opts.sweep.cacheDir = next();
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            opts.sweep.cacheDir =
                arg.substr(std::strlen("--cache-dir="));
        } else if (arg == "--trace-id") {
            opts.sweep.traceId = next();
        } else if (arg.rfind("--trace-id=", 0) == 0) {
            opts.sweep.traceId =
                arg.substr(std::strlen("--trace-id="));
        } else if (arg == "--cache-max-bytes") {
            opts.sweep.cacheMaxBytes =
                std::strtoull(next(), nullptr, 10);
        } else if (arg.rfind("--cache-max-bytes=", 0) == 0) {
            opts.sweep.cacheMaxBytes = std::strtoull(
                arg.c_str() + std::strlen("--cache-max-bytes="),
                nullptr, 10);
        } else if (arg == "--trace-out") {
            opts.sweep.traceDir = next();
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.sweep.traceDir =
                arg.substr(std::strlen("--trace-out="));
        } else if (arg == "--sample-interval") {
            opts.sweep.sampleInterval =
                static_cast<Cycles>(std::atoll(next()));
        } else if (arg.rfind("--sample-interval=", 0) == 0) {
            opts.sweep.sampleInterval = static_cast<Cycles>(std::atoll(
                arg.c_str() + std::strlen("--sample-interval=")));
        } else if (arg == "--audit-log") {
            opts.sweep.auditDir = next();
        } else if (arg.rfind("--audit-log=", 0) == 0) {
            opts.sweep.auditDir =
                arg.substr(std::strlen("--audit-log="));
        } else if (arg == "--flight-out") {
            opts.sweep.flightDir = next();
        } else if (arg.rfind("--flight-out=", 0) == 0) {
            opts.sweep.flightDir =
                arg.substr(std::strlen("--flight-out="));
        } else if (arg == "--latency-json") {
            opts.sweep.latencyDir = next();
        } else if (arg.rfind("--latency-json=", 0) == 0) {
            opts.sweep.latencyDir =
                arg.substr(std::strlen("--latency-json="));
        } else if (arg == "--prof-out") {
            opts.sweep.profDir = next();
        } else if (arg.rfind("--prof-out=", 0) == 0) {
            opts.sweep.profDir =
                arg.substr(std::strlen("--prof-out="));
        } else if (arg == "--prof-folded") {
            opts.sweep.foldedDir = next();
        } else if (arg.rfind("--prof-folded=", 0) == 0) {
            opts.sweep.foldedDir =
                arg.substr(std::strlen("--prof-folded="));
        } else if (arg == "--kernel" || arg.rfind("--kernel=", 0) == 0) {
            const std::string name =
                arg == "--kernel"
                    ? std::string(next())
                    : arg.substr(std::strlen("--kernel="));
            if (!sim::simKernelFromName(name, opts.kernel)) {
                std::cerr << "unknown --kernel '" << name
                          << "'; choices: "
                          << sim::simKernelChoices() << "\n";
                std::exit(2);
            }
        } else if (arg == "--topology") {
            opts.topology = next();
        } else if (arg.rfind("--topology=", 0) == 0) {
            opts.topology = arg.substr(std::strlen("--topology="));
        } else if (arg == "--dump-topology" ||
                   arg.rfind("--dump-topology=", 0) == 0) {
            opts.dumpTopology = true;
            if (arg.rfind("--dump-topology=", 0) == 0) {
                opts.dumpTopologyMode =
                    arg.substr(std::strlen("--dump-topology="));
                bool known = false;
                for (const std::string &n :
                     system::Topology::builtinNames())
                    known = known || n == opts.dumpTopologyMode;
                if (!known) {
                    std::cerr << "unknown --dump-topology mode '"
                              << opts.dumpTopologyMode
                              << "'; choices:";
                    for (const std::string &n :
                         system::Topology::builtinNames())
                        std::cerr << " " << n;
                    std::cerr << "\n";
                    std::exit(2);
                }
            }
        } else if (arg == "--topn") {
            opts.sweep.topN =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg.rfind("--topn=", 0) == 0) {
            opts.sweep.topN = static_cast<unsigned>(
                std::atoi(arg.c_str() + std::strlen("--topn=")));
        } else if (arg == "--debug-flags") {
            const std::string list = next();
            if (list == "?") {
                trace::DebugFlag::listFlags(std::cout);
                std::exit(0);
            }
            trace::DebugFlag::applyList(list);
        } else if (arg.rfind("--debug-flags=", 0) == 0) {
            const std::string list =
                arg.substr(std::strlen("--debug-flags="));
            if (list == "?") {
                trace::DebugFlag::listFlags(std::cout);
                std::exit(0);
            }
            trace::DebugFlag::applyList(list);
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            printUsage(argv[0]);
            std::exit(2);
        }
    }
    opts.sweep.progress = opts.quiet ? nullptr : &std::cerr;
    detail::cliTopologyFile = opts.topology;
    detail::cliKernel = opts.kernel;
    if (!opts.topology.empty() && !opts.dumpTopology) {
        // Fail at the command line, not mid-sweep: a missing or
        // malformed file is an argument error, not a simulation one.
        try {
            const system::Topology topo =
                system::Topology::loadFile(opts.topology);
            for (const system::TopologyNode &node : topo.nodes) {
                if (node.kind != "protect")
                    continue;
                const json::JsonValue *scheme =
                    node.params.get("scheme");
                if (scheme && (scheme->asString() == "capchecker" ||
                               scheme->asString() == "checker_bank"))
                    detail::cliTopologyNeedsChecker = true;
            }
        } catch (const system::TopologyError &e) {
            std::cerr << e.what() << "\n";
            std::exit(2);
        }
    }
    if (opts.dumpTopology) {
        try {
            const system::Topology topo =
                !opts.topology.empty()
                    ? system::Topology::loadFile(opts.topology)
                    : system::Topology::builtinByName(
                          opts.dumpTopologyMode);
            std::cout << topo.toJsonText();
            std::exit(0);
        } catch (const system::TopologyError &e) {
            std::cerr << e.what() << "\n";
            std::exit(2);
        }
    }
    return opts;
}

} // namespace capcheck::bench

#endif // CAPCHECK_BENCH_ARGS_HH
