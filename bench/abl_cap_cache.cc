/**
 * @file
 * Ablation (Section 5.2.3): a cached CapChecker backed by an in-memory
 * capability table instead of a full on-chip SRAM table. Sweeps the
 * cache size and reports the performance cost of misses against the
 * area saved, on a capability-hungry benchmark (backprop, 7 buffers
 * per task) and a single-buffer one (aes).
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"
#include "model/area_power.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader(
        "Ablation: capability cache vs full SRAM table",
        "Section 5.2.3 (in-memory table caching)");

    TextTable table({"Benchmark", "Cache entries", "Total cycles",
                     "Overhead vs no checker", "Checker LUTs (model)"});

    for (const std::string name : {"backprop", "aes", "md_knn"}) {
        system::SocConfig cfg;
        cfg.mode = SystemMode::ccpuAccel;
        const auto base = system::SocSystem(cfg).runBenchmark(name);

        // Full 256-entry SRAM table (the paper's prototype).
        cfg.mode = SystemMode::ccpuCaccel;
        const auto full = system::SocSystem(cfg).runBenchmark(name);
        table.addRow({name, "SRAM table",
                      std::to_string(full.totalCycles),
                      fmtPercent(full.overheadVs(base)),
                      std::to_string(
                          model::AreaPowerModel::capCheckerLuts(256))});

        for (const unsigned entries : {4u, 8u, 16u, 32u}) {
            cfg.capCacheEntries = entries;
            const auto cached =
                system::SocSystem(cfg).runBenchmark(name);
            table.addRow(
                {name, std::to_string(entries),
                 std::to_string(cached.totalCycles),
                 fmtPercent(cached.overheadVs(base)),
                 std::to_string(
                     model::AreaPowerModel::capCheckerLuts(entries))});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpectation: once the cache covers the concurrent "
                 "working set (buffers x active tasks), the cached "
                 "checker matches the SRAM table at a fraction of the "
                 "area; undersized caches pay per-beat table walks.\n";
    return 0;
}
