/**
 * @file
 * Ablation (Section 5.2.3): a cached CapChecker backed by an in-memory
 * capability table instead of a full on-chip SRAM table. Sweeps the
 * cache size and reports the performance cost of misses against the
 * area saved, on a capability-hungry benchmark (backprop, 7 buffers
 * per task) and a single-buffer one (aes).
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"
#include "model/area_power.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader(
        "Ablation: capability cache vs full SRAM table",
        "Section 5.2.3 (in-memory table caching)");

    const std::vector<std::string> names = {"backprop", "aes",
                                            "md_knn"};
    const std::vector<unsigned> cache_sizes = {4, 8, 16, 32};

    std::vector<harness::RunRequest> requests;
    for (const std::string &name : names) {
        requests.push_back(harness::RunRequest::single(
            name, bench::modeConfig(SystemMode::ccpuAccel)));
        // Full 256-entry SRAM table (the paper's prototype).
        requests.push_back(harness::RunRequest::single(
            name, bench::modeConfig(SystemMode::ccpuCaccel)));
        for (const unsigned entries : cache_sizes) {
            requests.push_back(harness::RunRequest::single(
                name, system::SocConfigBuilder()
                          .mode(SystemMode::ccpuCaccel)
                          .capCache(entries)
                          .build()));
        }
    }

    const auto outcomes = runner.run(requests, "abl_cap_cache");

    TextTable table({"Benchmark", "Cache entries", "Total cycles",
                     "Overhead vs no checker", "Checker LUTs (model)"});

    const std::size_t stride = 2 + cache_sizes.size();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &base = outcomes[i * stride].result;
        const auto &full = outcomes[i * stride + 1].result;
        table.addRow({names[i], "SRAM table",
                      std::to_string(full.totalCycles),
                      fmtPercent(full.overheadVs(base)),
                      std::to_string(
                          model::AreaPowerModel::capCheckerLuts(256))});

        for (std::size_t c = 0; c < cache_sizes.size(); ++c) {
            const auto &cached = outcomes[i * stride + 2 + c].result;
            table.addRow(
                {names[i], std::to_string(cache_sizes[c]),
                 std::to_string(cached.totalCycles),
                 fmtPercent(cached.overheadVs(base)),
                 std::to_string(model::AreaPowerModel::capCheckerLuts(
                     cache_sizes[c]))});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpectation: once the cache covers the concurrent "
                 "working set (buffers x active tasks), the cached "
                 "checker matches the SRAM table at a fraction of the "
                 "area; undersized caches pay per-beat table walks.\n";
    return 0;
}
