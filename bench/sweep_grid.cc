/**
 * @file
 * The full paper grid in one sweep: every benchmark under every
 * system mode (covering Figs. 7, 8 and 10), the 20 mixed-accelerator
 * systems of Fig. 9, and the Fig. 11 task-count sweep. Because the
 * points are the same RunRequests the individual figure harnesses
 * build, a shared --json-dir gives one results tree for all of them,
 * and repeated points (e.g. the cpu/ccpu+caccel columns shared by
 * Figs. 7 and 10) are served from the result cache.
 *
 * Usage: sweep_grid [--jobs N] [--json-dir DIR] [--no-cache]
 *                   [--quiet] [--quick]
 * --quick trims the grid to a spot-check subset (3 benchmarks, 4
 * mixed systems, 2 task counts) for smoke testing.
 */

#include <iostream>
#include <vector>

#include "base/random.hh"
#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    // Strip our one extra flag, then reuse the standard option parser.
    bool quick = false;
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::string(argv[i]) == "--quick")
            quick = true;
        else
            passthrough.push_back(argv[i]);
    }
    const auto opts = bench::parseOptions(
        static_cast<int>(passthrough.size()), passthrough.data());
    bench::Sweeper runner(opts.sweep);

    bench::printHeader("Full experiment grid",
                       "Figs. 7-11 simulation points");

    const auto &all_names = workloads::allKernelNames();
    std::vector<std::string> names = all_names;
    unsigned mixed_systems = 20;
    std::vector<unsigned> task_counts = {1, 2, 3, 4, 5, 6, 7, 8};
    if (quick) {
        names = {"aes", "gemm_ncubed", "bfs_bulk"};
        mixed_systems = 4;
        task_counts = {1, 8};
    }

    std::vector<harness::RunRequest> requests;

    // Figs. 7/8/10: every benchmark under every mode.
    const SystemMode all_modes[] = {
        SystemMode::cpu, SystemMode::ccpu, SystemMode::cpuAccel,
        SystemMode::ccpuAccel, SystemMode::ccpuCaccel};
    for (const std::string &name : names)
        for (const SystemMode mode : all_modes)
            requests.push_back(harness::RunRequest::single(
                name, bench::modeConfig(mode)));

    // Fig. 9: mixed-accelerator systems (same seeds as fig9_mixed, so
    // the two harnesses share cache entries and JSON files).
    for (unsigned sys_id = 0; sys_id < mixed_systems; ++sys_id) {
        Rng rng(1000 + sys_id);
        std::vector<std::string> mix;
        for (unsigned i = 0; i < 8; ++i)
            mix.push_back(all_names[rng.nextBounded(all_names.size())]);

        const std::uint64_t seed = 42 + sys_id;
        requests.push_back(harness::RunRequest::mixed(
            mix, bench::modeConfig(SystemMode::ccpuAccel, seed)));
        requests.push_back(harness::RunRequest::mixed(
            mix, bench::modeConfig(SystemMode::ccpuCaccel, seed)));
    }

    // Fig. 11: gemm_ncubed across task counts.
    for (const unsigned tasks : task_counts)
        for (const SystemMode mode :
             {SystemMode::cpu, SystemMode::ccpuAccel,
              SystemMode::ccpuCaccel})
            requests.push_back(harness::RunRequest::single(
                "gemm_ncubed", bench::modeConfig(mode), tasks));

    const auto outcomes = runner.run(requests, "sweep_grid");

    std::uint64_t failures = 0;
    std::uint64_t exceptions = 0;
    for (const auto &out : outcomes) {
        failures += !out.result.functionallyCorrect;
        exceptions += out.result.exceptions;
    }

    TextTable table({"Metric", "Value"});
    table.addRow({"grid points", std::to_string(outcomes.size())});
    table.addRow({"simulations executed",
                  std::to_string(runner.simulationsExecuted())});
    table.addRow({"cache hits", std::to_string(runner.cacheHits())});
    table.addRow({"worker threads", std::to_string(runner.jobs())});
    table.addRow({"functional failures", std::to_string(failures)});
    table.addRow({"capability exceptions", std::to_string(exceptions)});
    table.print(std::cout);

    if (!opts.sweep.jsonDir.empty())
        std::cout << "\nJSON results under " << opts.sweep.jsonDir
                  << " (sweep_grid.manifest.json lists every point).\n";

    return failures ? 1 : 0;
}
