/**
 * @file
 * Reproduces Fig. 12: number of protection entries required by an
 * IOMMU (4 KiB pages, at most one buffer per page to match the
 * CapChecker's isolation granularity) versus the CapChecker (one
 * capability per buffer), per benchmark with 8 instances. The IOMMU
 * numbers come from actually mapping every buffer in the IOMMU model.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"
#include "protect/iommu.hh"

using namespace capcheck;

int
main(int argc, char **argv)
{
    bench::parseOptions(argc, argv); // uniform CLI; no simulations here
    bench::printHeader(
        "Fig. 12: IOMMU vs CapChecker entry requirements", "Fig. 12");
    std::cout << "(IOMMU page size = 4 kB, one buffer per page)\n\n";

    TextTable table({"Benchmark", "IOMMU entries", "CapChecker entries",
                     "Ratio"});

    for (const std::string &name : workloads::allKernelNames()) {
        const auto &spec = workloads::kernelSpec(name);
        constexpr unsigned instances = 8;

        protect::Iommu iommu;
        unsigned iommu_entries = 0;
        Addr next_page = 0;
        for (unsigned inst = 0; inst < instances; ++inst) {
            for (const auto &buf : spec.buffers) {
                // One buffer per page: each buffer starts on its own
                // page boundary.
                iommu_entries += iommu.mapRange(
                    inst, next_page, buf.size, true);
                const std::uint64_t pages =
                    (buf.size + protect::Iommu::pageSize - 1) /
                    protect::Iommu::pageSize;
                next_page += pages * protect::Iommu::pageSize;
            }
        }

        const unsigned cap_entries =
            static_cast<unsigned>(spec.buffers.size()) * instances;
        table.addRow(
            {name, std::to_string(iommu_entries),
             std::to_string(cap_entries),
             fmtDouble(static_cast<double>(iommu_entries) /
                           static_cast<double>(cap_entries),
                       2)});
    }
    table.print(std::cout);

    std::cout << "\nPaper expectation: the CapChecker needs fewer "
                 "entries than the IOMMU for most benchmarks because "
                 "IOMMU entries scale with buffer *size* while "
                 "capability entries scale only with buffer *count*.\n";
    return 0;
}
