/**
 * @file
 * Ablation: interconnect burst length. With burst-sticky arbitration a
 * streaming accelerator (gemm) can hold the bus for whole bursts,
 * which helps DMA efficiency but starves latency-bound neighbours
 * (stencil's dependent accesses) in a mixed system — quantifying why
 * the prototype's single-beat interleaving is kind to heterogeneous
 * mixes.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader("Ablation: interconnect burst length",
                       "platform design choice (Section 5.2.1)");

    const std::vector<std::string> mix = {
        "gemm_ncubed", "gemm_ncubed", "stencil2d", "stencil2d",
        "viterbi",     "backprop",    "bfs_bulk",  "spmv_crs",
    };
    const std::vector<unsigned> bursts = {1, 4, 16, 64};

    std::vector<harness::RunRequest> requests;
    for (const unsigned burst : bursts) {
        requests.push_back(harness::RunRequest::mixed(
            mix, system::SocConfigBuilder()
                     .mode(SystemMode::ccpuCaccel)
                     .xbarMaxBurst(burst)
                     .build()));
    }

    const auto outcomes = runner.run(requests, "abl_burst");

    TextTable table({"Burst beats", "Mixed-system cycles",
                     "vs burst 1"});

    const Cycles baseline = outcomes.front().result.totalCycles;
    for (std::size_t b = 0; b < bursts.size(); ++b) {
        const auto &r = outcomes[b].result;
        table.addRow(
            {std::to_string(bursts[b]),
             std::to_string(r.totalCycles),
             fmtPercent(static_cast<double>(r.totalCycles) /
                            static_cast<double>(baseline) -
                        1.0)});
    }
    table.print(std::cout);

    std::cout << "\nExpectation: longer bursts change completion time "
                 "only marginally when the bus is the bottleneck, but "
                 "they skew fairness between streaming and "
                 "latency-bound accelerators.\n";
    return 0;
}
