/**
 * @file
 * Ablation: interconnect burst length. With burst-sticky arbitration a
 * streaming accelerator (gemm) can hold the bus for whole bursts,
 * which helps DMA efficiency but starves latency-bound neighbours
 * (stencil's dependent accesses) in a mixed system — quantifying why
 * the prototype's single-beat interleaving is kind to heterogeneous
 * mixes.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader("Ablation: interconnect burst length",
                       "platform design choice (Section 5.2.1)");

    const std::vector<std::string> mix = {
        "gemm_ncubed", "gemm_ncubed", "stencil2d", "stencil2d",
        "viterbi",     "backprop",    "bfs_bulk",  "spmv_crs",
    };

    TextTable table({"Burst beats", "Mixed-system cycles",
                     "vs burst 1"});

    Cycles baseline = 0;
    for (const unsigned burst : {1u, 4u, 16u, 64u}) {
        system::SocConfig cfg;
        cfg.mode = SystemMode::ccpuCaccel;
        cfg.xbarMaxBurst = burst;
        const auto r = system::SocSystem(cfg).runMixed(mix);
        if (burst == 1)
            baseline = r.totalCycles;
        table.addRow(
            {std::to_string(burst), std::to_string(r.totalCycles),
             fmtPercent(static_cast<double>(r.totalCycles) /
                            static_cast<double>(baseline) -
                        1.0)});
    }
    table.print(std::cout);

    std::cout << "\nExpectation: longer bursts change completion time "
                 "only marginally when the bus is the bottleneck, but "
                 "they skew fairness between streaming and "
                 "latency-bound accelerators.\n";
    return 0;
}
