/**
 * @file
 * Reproduces Table 3: the CWE memory-safety weakness matrix across
 * No-Method / IOPMP / IOMMU / sNPU-style / CapChecker-Coarse /
 * CapChecker-Fine. Group (a) and (b) cells come from *executing* the
 * attacks in security::AttackLab; the remaining groups follow the
 * paper's analytical treatment. Also runs the Fig. 2 capability
 * forging demonstration end to end.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"
#include "security/scenarios.hh"

using namespace capcheck;
using namespace capcheck::security;

int
main(int argc, char **argv)
{
    bench::parseOptions(argc, argv); // uniform CLI; no simulations here
    bench::printHeader("Table 3: CWE memory-weakness matrix", "Table 3");
    std::cout << "PG/TA/OB = protection at page/task/object "
                 "granularity; X = unprotected; ok = defeated; NA = not "
                 "applicable. '*' marks cells produced by a live "
                 "attack.\n\n";

    const auto matrix = buildTable3();

    TextTable table({"grp", "CWE", "Weakness", "none", "iopmp", "iommu",
                     "snpu", "coarse", "fine"});
    for (const Table3Row &row : matrix) {
        std::vector<std::string> cells = {
            cweGroupName(row.entry.group),
            std::to_string(row.entry.id),
            row.entry.name.size() > 42
                ? row.entry.name.substr(0, 39) + "..."
                : row.entry.name,
        };
        for (const Table3Cell &cell : row.cells) {
            std::string text = gradeSymbol(cell.grade);
            if (cell.executed)
                text += "*";
            cells.push_back(text);
        }
        table.addRow(cells);
    }
    table.print(std::cout);

    std::cout << "\n--- Fig. 2 capability forging demonstration ---\n";
    for (const SchemeKind kind : allSchemes) {
        const AttackOutcome outcome = runForgingDemo(kind);
        std::cout << "  " << schemeName(kind) << ": "
                  << (outcome.grade == Grade::protectedFull
                          ? "forgery DEFEATED"
                          : "forgery SUCCEEDED")
                  << " (" << outcome.note << ")\n";
    }

    std::cout << "\nPaper expectation: only the two CapChecker modes "
                 "defeat forging; group (a) grades are TA for Coarse "
                 "and OB for Fine; IOMMU degrades to page granularity "
                 "on shared pages.\n";
    return 0;
}
