/**
 * @file
 * Reproduces Table 3: the CWE memory-safety weakness matrix across
 * No-Method / IOPMP / IOMMU / sNPU-style / CapChecker-Coarse /
 * CapChecker-Fine. Group (a) and (b) cells come from *executing* the
 * attacks in security::AttackLab; the remaining groups follow the
 * paper's analytical treatment. Also runs the Fig. 2 capability
 * forging demonstration end to end.
 */

#include <filesystem>
#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"
#include "obs/audit.hh"
#include "security/scenarios.hh"

using namespace capcheck;
using namespace capcheck::security;

namespace
{

/**
 * Re-run the executable attacks against one CapChecker scheme and
 * dump every violation as a JSONL audit log. Violations are captured
 * through the checker's exception probe at deny time — some scenarios
 * (use-after-free) rebuild the lab mid-attack, which would discard
 * records harvested from the exception log afterwards. The lab is
 * untimed, so records are stamped cycle 0; record order is attack
 * order and therefore deterministic.
 */
void
writeAuditLog(SchemeKind kind, const std::string &dir)
{
    obs::AuditLog log; // outlives the lab's probe listeners
    AttackLab lab(kind);

    const capchecker::CapChecker *attached = nullptr;
    const auto ensure_listener = [&]() {
        auto *checker =
            dynamic_cast<capchecker::CapChecker *>(&lab.checker());
        if (!checker || checker == attached)
            return;
        const capchecker::Provenance mode = checker->provenance();
        checker->exceptionProbe().attach(
            [&log, mode](const capchecker::ExceptionRecord &rec) {
                log.record(0, rec, mode);
            });
        attached = checker;
    };

    using Attack = AttackOutcome (AttackLab::*)();
    constexpr Attack attacks[] = {
        &AttackLab::bufferOverflow,    &AttackLab::bufferUnderflow,
        &AttackLab::writeWhatWhere,    &AttackLab::indexValidation,
        &AttackLab::integerOverflow,   &AttackLab::incorrectLength,
        &AttackLab::untrustedPointer,  &AttackLab::capabilityForging,
        &AttackLab::useAfterFree,      &AttackLab::fixedAddressPointer,
    };
    for (const Attack attack : attacks) {
        ensure_listener(); // the lab may have rebuilt its checker
        (lab.*attack)();
    }

    const std::string file = dir + "/table3-" +
                             std::string(schemeName(kind)) +
                             ".audit.jsonl";
    log.writeFile(file);
    std::cout << "  " << file << ": " << log.size()
              << " violations recorded\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Uniform CLI; no timed simulations here, but --audit-log selects
    // JSONL violation logs from the executable attacks below.
    const bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader("Table 3: CWE memory-weakness matrix", "Table 3");
    std::cout << "PG/TA/OB = protection at page/task/object "
                 "granularity; X = unprotected; ok = defeated; NA = not "
                 "applicable. '*' marks cells produced by a live "
                 "attack.\n\n";

    const auto matrix = buildTable3();

    TextTable table({"grp", "CWE", "Weakness", "none", "iopmp", "iommu",
                     "snpu", "coarse", "fine"});
    for (const Table3Row &row : matrix) {
        std::vector<std::string> cells = {
            cweGroupName(row.entry.group),
            std::to_string(row.entry.id),
            row.entry.name.size() > 42
                ? row.entry.name.substr(0, 39) + "..."
                : row.entry.name,
        };
        for (const Table3Cell &cell : row.cells) {
            std::string text = gradeSymbol(cell.grade);
            if (cell.executed)
                text += "*";
            cells.push_back(text);
        }
        table.addRow(cells);
    }
    table.print(std::cout);

    std::cout << "\n--- Fig. 2 capability forging demonstration ---\n";
    for (const SchemeKind kind : allSchemes) {
        const AttackOutcome outcome = runForgingDemo(kind);
        std::cout << "  " << schemeName(kind) << ": "
                  << (outcome.grade == Grade::protectedFull
                          ? "forgery DEFEATED"
                          : "forgery SUCCEEDED")
                  << " (" << outcome.note << ")\n";
    }

    if (!opts.sweep.auditDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.sweep.auditDir, ec);
        std::cout << "\n--- Security audit logs (JSONL) ---\n";
        writeAuditLog(SchemeKind::capCoarse, opts.sweep.auditDir);
        writeAuditLog(SchemeKind::capFine, opts.sweep.auditDir);
    }

    std::cout << "\nPaper expectation: only the two CapChecker modes "
                 "defeat forging; group (a) grades are TA for Coarse "
                 "and OB for Fine; IOMMU degrades to page granularity "
                 "on shared pages.\n";
    return 0;
}
