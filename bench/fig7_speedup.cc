/**
 * @file
 * Reproduces Fig. 7: accelerator speedup over CPU execution for every
 * MachSuite benchmark on the proposed (ccpu+caccel) system, 8
 * accelerator instances.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader("Fig. 7: accelerator speedup per benchmark",
                       "Fig. 7");

    TextTable table({"Benchmark", "cpu cycles", "ccpu+caccel cycles",
                     "Speedup", "Correct"});

    for (const std::string &name : workloads::allKernelNames()) {
        const auto cpu = bench::runMode(name, SystemMode::cpu);
        const auto accel = bench::runMode(name, SystemMode::ccpuCaccel);
        table.addRow({name, std::to_string(cpu.totalCycles),
                      std::to_string(accel.totalCycles),
                      fmtSpeedup(accel.speedupVs(cpu)),
                      (cpu.functionallyCorrect &&
                       accel.functionallyCorrect)
                          ? "yes"
                          : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nPaper expectation: backprop and viterbi exceed "
                 "2000x; md_knn, stencil2d, bfs_bulk and bfs_queue are "
                 "memory-bound and show the lowest speedups (the bfs/"
                 "stencil pair below 1x).\n";
    return 0;
}
