/**
 * @file
 * Reproduces Fig. 7: accelerator speedup over CPU execution for every
 * MachSuite benchmark on the proposed (ccpu+caccel) system, 8
 * accelerator instances. Both configurations of all 19 benchmarks go
 * through the SweepRunner as one request list.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader("Fig. 7: accelerator speedup per benchmark",
                       "Fig. 7");

    const auto &names = workloads::allKernelNames();
    std::vector<harness::RunRequest> requests;
    for (const std::string &name : names) {
        requests.push_back(harness::RunRequest::single(
            name, bench::modeConfig(SystemMode::cpu)));
        requests.push_back(harness::RunRequest::single(
            name, bench::modeConfig(SystemMode::ccpuCaccel)));
    }

    const auto outcomes = runner.run(requests, "fig7_speedup");

    TextTable table({"Benchmark", "cpu cycles", "ccpu+caccel cycles",
                     "Speedup", "Correct"});

    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &cpu = outcomes[2 * i].result;
        const auto &accel = outcomes[2 * i + 1].result;
        table.addRow({names[i], std::to_string(cpu.totalCycles),
                      std::to_string(accel.totalCycles),
                      fmtSpeedup(accel.speedupVs(cpu)),
                      (cpu.functionallyCorrect &&
                       accel.functionallyCorrect)
                          ? "yes"
                          : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nPaper expectation: backprop and viterbi exceed "
                 "2000x; md_knn, stencil2d, bfs_bulk and bfs_queue are "
                 "memory-bound and show the lowest speedups (the bfs/"
                 "stencil pair below 1x).\n";
    return 0;
}
