/**
 * @file
 * Reproduces Table 2: data buffer sizes held in the CapChecker per
 * benchmark with 8 accelerator instances. The numbers come from
 * actually running the trusted driver: eight tasks are allocated per
 * benchmark and the installed capability-table entries are inspected.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "accel/accelerator.hh"
#include "base/table.hh"
#include "bench/common.hh"
#include "cheri/captree.hh"
#include "driver/driver.hh"
#include "mem/allocator.hh"
#include "mem/tagged_memory.hh"
#include "workloads/kernel.hh"

using namespace capcheck;

int
main(int argc, char **argv)
{
    bench::parseOptions(argc, argv); // uniform CLI; no simulations here
    bench::printHeader("Table 2: buffer footprint per benchmark",
                       "Table 2");
    std::cout << "(8 accelerator instances, 256-entry CapChecker; "
                 "buffer counts/sizes observed from live driver "
                 "allocations)\n\n";

    constexpr unsigned instances = 8;

    TextTable table({"Benchmark", "Buffer count", "Min bytes",
                     "Max bytes", "Table entries used"});

    bool all_fit = true;
    for (const std::string &name : workloads::allKernelNames()) {
        TaggedMemory mem(64ull << 20);
        RegionAllocator heap(1 << 20, (64ull << 20) - (1 << 20));
        cheri::CapTree tree;
        const auto app = tree.derive(
            tree.rootNode(), cheri::CapNodeKind::cpuTask,
            tree.capOf(tree.rootNode()).setBounds(1 << 20, 63ull << 20),
            "app");

        capchecker::CapChecker checker;
        driver::Driver driver(mem, heap, tree, /*cheri=*/true,
                              &checker);
        accel::Accelerator accel(name, workloads::kernelSpec(name),
                                 instances);

        std::vector<driver::TaskHandle> handles;
        std::uint64_t min_bytes = ~0ull;
        std::uint64_t max_bytes = 0;
        unsigned count = 0;
        for (unsigned t = 0; t < instances; ++t) {
            auto handle = driver.allocateTask(accel, t, app);
            if (!handle) {
                std::cerr << "allocation failed for " << name << "\n";
                return 1;
            }
            for (const BufferMapping &buf : handle->buffers) {
                min_bytes = std::min(min_bytes, buf.size);
                max_bytes = std::max(max_bytes, buf.size);
                ++count;
            }
            handles.push_back(std::move(*handle));
        }

        all_fit &= checker.capTable().used() <= 256;
        table.addRow({name, std::to_string(count),
                      std::to_string(min_bytes),
                      std::to_string(max_bytes),
                      std::to_string(checker.capTable().used())});

        for (auto &handle : handles)
            driver.deallocateTask(handle, false);
    }

    table.print(std::cout);
    std::cout << "\nAll benchmarks fit the 256-entry CapChecker: "
              << (all_fit ? "yes" : "NO") << "\n";
    return 0;
}
