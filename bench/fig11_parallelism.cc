/**
 * @file
 * Reproduces Fig. 11: gemm_ncubed wall-clock overhead of the
 * CapChecker and speedup over the CPU across 1..8 parallel
 * accelerator tasks. Task counts are explicit in each RunRequest; the
 * 24-point sweep runs through the SweepRunner.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader(
        "Fig. 11: gemm_ncubed vs degree of parallelism", "Fig. 11");

    std::vector<harness::RunRequest> requests;
    for (unsigned tasks = 1; tasks <= 8; ++tasks) {
        for (const SystemMode mode :
             {SystemMode::cpu, SystemMode::ccpuAccel,
              SystemMode::ccpuCaccel}) {
            requests.push_back(harness::RunRequest::single(
                "gemm_ncubed", bench::modeConfig(mode), tasks));
        }
    }

    const auto outcomes = runner.run(requests, "fig11_parallelism");

    TextTable table({"Parallel tasks", "cpu", "ccpu+accel",
                     "ccpu+caccel", "Overhead", "Speedup"});

    for (unsigned tasks = 1; tasks <= 8; ++tasks) {
        const std::size_t row = (tasks - 1) * 3;
        const auto &cpu = outcomes[row].result;
        const auto &base = outcomes[row + 1].result;
        const auto &with = outcomes[row + 2].result;
        table.addRow({std::to_string(tasks),
                      std::to_string(cpu.totalCycles),
                      std::to_string(base.totalCycles),
                      std::to_string(with.totalCycles),
                      fmtPercent(with.overheadVs(base)),
                      fmtSpeedup(with.speedupVs(cpu))});
    }
    table.print(std::cout);

    std::cout << "\nPaper expectation: more parallel tasks give more "
                 "speedup, and the relative CapChecker overhead tends "
                 "to shrink as shared-memory contention dominates.\n";
    return 0;
}
