/**
 * @file
 * Reproduces Fig. 11: gemm_ncubed wall-clock overhead of the
 * CapChecker and speedup over the CPU across 1..8 parallel
 * accelerator tasks.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader(
        "Fig. 11: gemm_ncubed vs degree of parallelism", "Fig. 11");

    TextTable table({"Parallel tasks", "cpu", "ccpu+accel",
                     "ccpu+caccel", "Overhead", "Speedup"});

    for (unsigned tasks = 1; tasks <= 8; ++tasks) {
        const auto cpu =
            bench::runMode("gemm_ncubed", SystemMode::cpu, tasks);
        const auto base =
            bench::runMode("gemm_ncubed", SystemMode::ccpuAccel, tasks);
        const auto with = bench::runMode("gemm_ncubed",
                                         SystemMode::ccpuCaccel, tasks);
        table.addRow({std::to_string(tasks),
                      std::to_string(cpu.totalCycles),
                      std::to_string(base.totalCycles),
                      std::to_string(with.totalCycles),
                      fmtPercent(with.overheadVs(base)),
                      fmtSpeedup(with.speedupVs(cpu))});
    }
    table.print(std::cout);

    std::cout << "\nPaper expectation: more parallel tasks give more "
                 "speedup, and the relative CapChecker overhead tends "
                 "to shrink as shared-memory contention dominates.\n";
    return 0;
}
