/**
 * @file
 * Scaling sweep over generated hierarchical topologies: 8 -> 128
 * accelerators under each protection scheme (none, shared capchecker,
 * banked checkers, IOMMU, IOPMP), every point running on a
 * capgen-generated two-level crossbar tree with interleaved memory
 * channels. This is the paper's scaling argument end-to-end: the
 * capability schemes keep every task functionally correct at 128
 * masters while the fixed-region IOPMP saturates its comparators and
 * starts denying legitimate DMA.
 *
 * Usage: scale_sweep [--jobs N] [--json-dir DIR] [--no-cache]
 *                    [--quiet] [--quick] [--out FILE]
 *                    [--topo-dir DIR] [--kernel ref|fast|compare]
 *
 * --out writes a BENCH_scale.json document: one record per sweep
 * point with simulated cycles, DMA beats, exception counts and the
 * run label. Every number is simulated time, so the file is
 * byte-identical at any --jobs; the generated topology files land in
 * --topo-dir (default /tmp/capcheck-scale-topos) so the labels that
 * embed their paths are stable too.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/table.hh"
#include "bench/common.hh"
#include "system/topogen.hh"

using namespace capcheck;
using system::SystemMode;

namespace
{

struct SchemePoint
{
    const char *name;   ///< scheme label in the report
    const char *scheme; ///< protect-node scheme param
    SystemMode mode;    ///< system mode the point runs under
    /** A scheme that cannot protect at scale is allowed to deny
     *  legitimate DMA (the paper's point); the others must stay
     *  functionally correct at every accelerator count. */
    bool mayDeny;
};

const SchemePoint schemes[] = {
    // The capability checkers need CHERI-aware accelerators (object
    // metadata on every beat, mode ccpu+caccel); IOMMU/IOPMP protect
    // unmodified accelerators by address alone (mode ccpu+accel).
    {"none", "none", SystemMode::cpuAccel, false},
    {"shared", "capchecker", SystemMode::ccpuCaccel, false},
    {"banked", "checker_bank", SystemMode::ccpuCaccel, false},
    {"iommu", "iommu", SystemMode::ccpuAccel, false},
    {"iopmp", "iopmp", SystemMode::ccpuAccel, true},
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out;
    std::string topo_dir = "/tmp/capcheck-scale-topos";
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = i > 0 ? argv[i] : "";
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            if (i + 1 >= argc) {
                std::cerr << "--out needs an argument\n";
                return 2;
            }
            out = argv[++i];
        } else if (arg == "--topo-dir") {
            if (i + 1 >= argc) {
                std::cerr << "--topo-dir needs an argument\n";
                return 2;
            }
            topo_dir = argv[++i];
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    const auto opts = bench::parseOptions(
        static_cast<int>(passthrough.size()), passthrough.data());
    bench::Sweeper runner(opts.sweep);

    bench::printHeader("Protection scaling sweep",
                       "Sec. 6 scaling, generated topologies");

    std::vector<unsigned> counts = {8, 16, 32, 64, 128};
    if (quick)
        counts = {8, 32};

    std::error_code ec;
    std::filesystem::create_directories(topo_dir, ec);
    if (ec) {
        std::cerr << "scale_sweep: cannot create '" << topo_dir
                  << "': " << ec.message() << "\n";
        return 2;
    }

    // Generate (and persist) one two-level topology per sweep point.
    // The graph depends only on (accels, scheme), so re-runs rewrite
    // identical files and the request labels stay stable.
    struct Point
    {
        const SchemePoint *scheme;
        unsigned accels;
    };
    std::vector<Point> points;
    std::vector<harness::RunRequest> requests;
    for (const SchemePoint &scheme : schemes) {
        for (const unsigned accels : counts) {
            system::TopoGenParams params;
            params.accels = accels;
            params.levels = 2;
            params.fanout = 4;
            params.channels = 2;
            params.banks = std::string(scheme.scheme) == "checker_bank"
                               ? 4
                               : 0;
            params.scheme = scheme.scheme;
            params.seed = 42;
            const std::string path = topo_dir + "/scale-" +
                                     scheme.name + "-a" +
                                     std::to_string(accels) + ".json";
            {
                std::ofstream os(path);
                if (!os) {
                    std::cerr << "scale_sweep: cannot write '" << path
                              << "'\n";
                    return 2;
                }
                os << system::generateTopology(params).toJsonText();
            }
            // All accelerators concurrent (one functional unit per
            // task): waves only form when a protection resource —
            // the shared capability table, IOPMP comparators — runs
            // out, which is exactly the scaling effect under test.
            const system::SocConfig cfg =
                system::SocConfigBuilder()
                    .mode(scheme.mode)
                    .seed(1)
                    .numInstances(accels)
                    .simKernel(opts.kernel)
                    .topologyFile(path)
                    .build();
            points.push_back(Point{&scheme, accels});
            requests.push_back(
                harness::RunRequest::single("aes", cfg, accels));
        }
    }

    const auto outcomes = runner.run(requests, "scale_sweep");

    TextTable table(
        {"Scheme", "Accels", "Cycles", "DMA beats", "Exceptions",
         "Correct"});
    std::uint64_t unexpected_failures = 0;
    std::ostringstream doc;
    doc << "{\n  \"points\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Point &point = points[i];
        const system::RunResult &res = outcomes[i].result;
        const bool ok = res.functionallyCorrect;
        if (!ok && !point.scheme->mayDeny)
            ++unexpected_failures;
        table.addRow({point.scheme->name,
                      std::to_string(point.accels),
                      std::to_string(res.totalCycles),
                      std::to_string(res.dmaBeats),
                      std::to_string(res.exceptions),
                      ok ? "yes" : "no"});
        doc << "    {\n"
            << "      \"scheme\": \"" << point.scheme->name << "\",\n"
            << "      \"accels\": " << point.accels << ",\n"
            << "      \"label\": \""
            << json::escape(requests[i].label()) << "\",\n"
            << "      \"cycles\": " << res.totalCycles << ",\n"
            << "      \"dmaBeats\": " << res.dmaBeats << ",\n"
            << "      \"exceptions\": " << res.exceptions << ",\n"
            << "      \"peakTableEntries\": " << res.peakTableEntries
            << ",\n"
            << "      \"correct\": " << (ok ? "true" : "false")
            << "\n    }" << (i + 1 < outcomes.size() ? "," : "")
            << "\n";
    }
    doc << "  ]\n}\n";
    table.print(std::cout);

    if (!out.empty()) {
        std::ofstream os(out);
        if (!os) {
            std::cerr << "scale_sweep: cannot write '" << out << "'\n";
            return 2;
        }
        os << doc.str();
        std::cout << "\nwrote " << out << "\n";
    }

    if (unexpected_failures) {
        std::cerr << "scale_sweep: " << unexpected_failures
                  << " point(s) failed under a scheme that must stay "
                     "correct\n";
        return 1;
    }
    return 0;
}
