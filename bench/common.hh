/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 */

#ifndef CAPCHECK_BENCH_COMMON_HH
#define CAPCHECK_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "base/table.hh"
#include "system/soc_system.hh"
#include "workloads/kernel.hh"

namespace capcheck::bench
{

inline void
printHeader(const std::string &what, const std::string &paper_ref)
{
    std::cout << "\n=== " << what << " (reproduces " << paper_ref
              << ") ===\n";
}

/** Run one benchmark under one mode with default parameters. */
inline system::RunResult
runMode(const std::string &benchmark, system::SystemMode mode,
        unsigned num_tasks = 0, std::uint64_t seed = 1)
{
    system::SocConfig cfg;
    cfg.mode = mode;
    cfg.seed = seed;
    system::SocSystem soc(cfg);
    return soc.runBenchmark(benchmark, num_tasks);
}

} // namespace capcheck::bench

#endif // CAPCHECK_BENCH_COMMON_HH
