/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * standard sweep command line (bench/args.hh), the Sweeper facade
 * over the service layer, and config shorthands. All simulation
 * points flow through harness::RunRequest lists submitted to a
 * SweepService, so every harness parallelizes with --jobs, shares a
 * result cache, can emit the full set of observability artefacts —
 * and, with --server SOCK (or CAPCHECK_SERVER), targets a capcheckd
 * daemon instead of simulating in-process, with byte-identical
 * artefacts either way.
 */

#ifndef CAPCHECK_BENCH_COMMON_HH
#define CAPCHECK_BENCH_COMMON_HH

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/table.hh"
#include "bench/args.hh"
#include "harness/sweep_runner.hh"
#include "service/sweep_service.hh"
#include "system/soc_config_builder.hh"
#include "system/soc_system.hh"
#include "workloads/kernel.hh"

namespace capcheck::bench
{

inline void
printHeader(const std::string &what, const std::string &paper_ref)
{
    std::cout << "\n=== " << what << " (reproduces " << paper_ref
              << ") ===\n";
}

/**
 * The harness-side sweep client: a thin facade over SweepService that
 * keeps the counters the summary tables print. Backend selection —
 * in-process SweepRunner vs. remote capcheckd — is entirely inside
 * makeService(), so harness code is identical for both.
 */
class Sweeper
{
  public:
    explicit Sweeper(const harness::SweepOptions &opts)
        : svc(service::makeService(opts))
    {
    }

    /** Execute @p requests; outcomes in input order. */
    std::vector<harness::RunOutcome>
    run(const std::vector<harness::RunRequest> &requests,
        const std::string &sweep_name = "sweep")
    {
        auto outcomes = svc->submit(requests, sweep_name);
        for (const harness::RunOutcome &o : outcomes) {
            if (o.cacheHit)
                ++hits;
            else
                ++executed;
        }
        return outcomes;
    }

    /** Run a single request through the same machinery. */
    system::RunResult
    runOne(const harness::RunRequest &request)
    {
        return run({request}, "single").front().result;
    }

    /** Worker threads behind the backend (daemon's pool if remote). */
    unsigned
    jobs()
    {
        if (!jobsKnown) {
            jobsCache = svc->stats().jobs;
            jobsKnown = true;
        }
        return jobsCache;
    }

    /** Fresh simulations this client caused (cache misses). */
    std::uint64_t simulationsExecuted() const { return executed; }

    /** Requests served from a cache or by deduplication. */
    std::uint64_t cacheHits() const { return hits; }

    service::SweepService &service() { return *svc; }

  private:
    std::unique_ptr<service::SweepService> svc;
    std::uint64_t executed = 0;
    std::uint64_t hits = 0;
    unsigned jobsCache = 0;
    bool jobsKnown = false;
};

/** Parse the standard command line and build the sweep client. */
inline Sweeper
makeSweeper(int argc, char **argv)
{
    return Sweeper(parseOptions(argc, argv).sweep);
}

/** @{ Legacy helpers, kept so out-of-tree harness code still builds.
 *  New code should use makeSweeper(): a SweepRunner constructed here
 *  always simulates in-process and ignores --server. */
inline harness::SweepRunner::Options
toRunnerOptions(const BenchOptions &opts)
{
    return opts.sweep;
}

inline harness::SweepRunner
makeRunner(int argc, char **argv)
{
    return harness::SweepRunner(toRunnerOptions(parseOptions(argc,
                                                             argv)));
}
/** @} */

/**
 * Validated SocConfig for @p mode with default platform parameters.
 * Honours the harness-wide --topology flag: when one was parsed, every
 * accelerator-mode config (and therefore every RunRequest) elaborates
 * that file. CPU-only modes have no platform to shape, so harnesses
 * that mix cpu and accel points keep working under --topology. The
 * --kernel flag is folded in uniformly (a CPU-only run has no event
 * queue or checker to speed up, but the request labels and hashes stay
 * consistent across the sweep).
 */
inline system::SocConfig
modeConfig(system::SystemMode mode, std::uint64_t seed = 1)
{
    return system::SocConfigBuilder()
        .mode(mode)
        .seed(seed)
        .simKernel(detail::cliKernel)
        .topologyFile(system::modeUsesAccel(mode) &&
                              (!detail::cliTopologyNeedsChecker ||
                               system::modeUsesCapChecker(mode))
                          ? detail::cliTopologyFile
                          : std::string())
        .build();
}

} // namespace capcheck::bench

#endif // CAPCHECK_BENCH_COMMON_HH
